//! Criterion benches of the IPC hot paths (library wall-clock, i.e. how
//! fast the simulator itself executes the paper's operations).

use criterion::{criterion_group, criterion_main, Criterion};
use sb_microkernel::{Kernel, KernelConfig, Personality, ThreadId};
use skybridge::SkyBridge;

struct IpcRig {
    k: Kernel,
    client: ThreadId,
    server: ThreadId,
    slot: usize,
}

fn ipc_rig(personality: Personality, cross: bool) -> IpcRig {
    let mut k = Kernel::boot(KernelConfig::native(personality));
    let code = sb_rewriter::corpus::generate(61, 1024, 0);
    let cp = k.create_process(&code);
    let sp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let server = k.create_thread(sp, if cross { 1 } else { 0 });
    let (ep, _) = k.create_endpoint(sp);
    let slot = k.grant_send(cp, ep);
    k.server_recv(server, ep);
    k.run_thread(client);
    IpcRig {
        k,
        client,
        server,
        slot,
    }
}

fn bench_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_roundtrip");
    for (name, personality) in [
        ("sel4", Personality::sel4()),
        ("fiasco", Personality::fiasco_oc()),
        ("zircon", Personality::zircon()),
    ] {
        let mut rig = ipc_rig(personality.clone(), false);
        group.bench_function(format!("{name}_fastpath"), |b| {
            b.iter(|| {
                rig.k
                    .ipc_roundtrip(rig.client, rig.slot, rig.server)
                    .unwrap()
            })
        });
        let mut rig = ipc_rig(personality, true);
        group.bench_function(format!("{name}_cross_core"), |b| {
            b.iter(|| {
                rig.k
                    .ipc_roundtrip(rig.client, rig.slot, rig.server)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_skybridge(c: &mut Criterion) {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let code = sb_rewriter::corpus::generate(62, 1024, 0);
    let cp = k.create_process(&code);
    let sp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let server_tid = k.create_thread(sp, 0);
    let server = sb
        .register_server(
            &mut k,
            server_tid,
            4,
            64,
            Box::new(|_, _, _, _| Ok(vec![].into())),
        )
        .unwrap();
    sb.register_client(&mut k, client, server).unwrap();
    k.run_thread(client);
    let mut group = c.benchmark_group("skybridge");
    group.bench_function("direct_server_call_empty", |b| {
        b.iter(|| sb.direct_server_call(&mut k, client, server, &[]).unwrap())
    });
    let big = vec![9u8; 4096];
    group.bench_function("direct_server_call_4k", |b| {
        b.iter(|| sb.direct_server_call(&mut k, client, server, &big).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("vmfunc");
    group.bench_function("switch", |b| {
        b.iter(|| {
            let rk = k.rootkernel.as_mut().unwrap();
            rk.vmfunc(&mut k.machine, 0, 0, 0).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ipc, bench_skybridge);
criterion_main!(benches);
