//! Criterion benches of the binary scanner/rewriter (real x86 work: this
//! is the load-time cost a SkyBridge registration pays).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sb_rewriter::{
    corpus,
    rewrite::rewrite_code,
    scan::{classify, find_occurrences, instruction_boundaries},
};

fn bench_scan(c: &mut Criterion) {
    let clean = corpus::generate(7, 256 * 1024, 0);
    let dirty = corpus::generate(8, 256 * 1024, 25);
    let mut group = c.benchmark_group("scan");
    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("find_occurrences_256k", |b| {
        b.iter(|| find_occurrences(&clean))
    });
    group.bench_function("decode_boundaries_256k", |b| {
        b.iter(|| instruction_boundaries(&clean))
    });
    group.bench_function("classify_dirty_256k", |b| b.iter(|| classify(&dirty)));
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let dirty = corpus::generate(9, 64 * 1024, 25);
    let occurrences = find_occurrences(&dirty).len();
    assert!(occurrences > 0);
    let mut group = c.benchmark_group("rewrite");
    group.throughput(Throughput::Bytes(dirty.len() as u64));
    group.bench_function("rewrite_64k_dirty", |b| {
        b.iter(|| rewrite_code(&dirty, 0x40_0000, 0x1000).unwrap())
    });
    group.finish();
}

fn bench_elf_scan(c: &mut Criterion) {
    // Scan this bench binary's own .text (a real Rust/LLVM image).
    let me = std::env::current_exe().unwrap();
    let data = std::fs::read(me).unwrap();
    let sections = sb_rewriter::elf::exec_sections(&data).unwrap();
    let text = sections
        .iter()
        .find(|s| s.name == ".text")
        .expect(".text")
        .bytes
        .clone();
    let mut group = c.benchmark_group("elf");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("scan_own_text", |b| b.iter(|| find_occurrences(&text)));
    group.finish();
}

criterion_group!(benches, bench_scan, bench_rewrite, bench_elf_scan);
criterion_main!(benches);
