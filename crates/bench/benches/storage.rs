//! Criterion benches of the storage substrates (xv6fs + minidb) and the
//! memory-translation machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_db::{Database, Value};
use sb_fs::{FileSystem, RamDisk};
use sb_mem::{
    paging::{AddressSpace, PteFlags},
    walk, Gva, HostMem,
};
use sb_sim::Machine;

fn bench_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs");
    group.bench_function("write_4k", |b| {
        let mut fs = FileSystem::mkfs(RamDisk::new(64 * 1024), 64);
        let f = fs.create("/bench").unwrap();
        let data = vec![7u8; 4096];
        let mut off = 0usize;
        b.iter(|| {
            fs.write_at(f, off % (40 << 20), &data).unwrap();
            off += 4096;
        })
    });
    group.bench_function("read_4k_warm", |b| {
        let mut fs = FileSystem::mkfs(RamDisk::new(16 * 1024), 64);
        let f = fs.create("/bench").unwrap();
        fs.write_at(f, 0, &vec![7u8; 64 * 1024]).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut off = 0usize;
        b.iter(|| {
            fs.read_at(f, off % (60 * 1024), &mut buf);
            off += 4096;
        })
    });
    group.finish();
}

fn bench_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("db");
    group.bench_function("insert", |b| {
        let fs = FileSystem::mkfs(RamDisk::new(64 * 1024), 64);
        let mut db = Database::open(fs, "/b.db", 128).unwrap();
        db.create_table("t").unwrap();
        let mut k = 0i64;
        let row = vec![Value::Text("x".repeat(100))];
        b.iter(|| {
            db.insert("t", k, &row).unwrap();
            k += 1;
        })
    });
    group.bench_function("query_hot", |b| {
        let fs = FileSystem::mkfs(RamDisk::new(64 * 1024), 64);
        let mut db = Database::open(fs, "/b.db", 128).unwrap();
        db.create_table("t").unwrap();
        for k in 0..1000i64 {
            db.insert("t", k, &[Value::Int(k)]).unwrap();
        }
        let mut k = 0i64;
        b.iter(|| {
            db.query("t", k % 1000).unwrap();
            k += 1;
        })
    });
    group.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.bench_function("translate_tlb_hit", |b| {
        let mut m = Machine::skylake();
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        asp.alloc_and_map(&mut mem, Gva(0x5000_0000), 4, PteFlags::USER_DATA);
        m.cpu_mut(0).load_cr3(asp.root_gpa.0, 1);
        walk::read_u64(&mut m, 0, &mem, Gva(0x5000_0000), true).unwrap();
        b.iter(|| walk::read_u64(&mut m, 0, &mem, Gva(0x5000_0000), true).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fs, bench_db, bench_walk);
criterion_main!(benches);
