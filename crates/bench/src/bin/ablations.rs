//! Ablations of SkyBridge's design choices (DESIGN.md §6).
//!
//! * huge-page vs fine-grained EPT mappings (nested-walk accesses, §4.1);
//! * shallow-copy vs deep-copy binding EPTs (§4.3);
//! * KPTI on/off on the IPC direct cost (§2.1.1);
//! * register vs shared-buffer message crossover (§4.4);
//! * pass-through vs commercial exit controls (§4.1);
//! * the >512-server EPTP-list LRU extension (§10).

use sb_bench::print_table;
use sb_mem::{
    ept::{Ept, EptPerms, PageSize},
    paging::{AddressSpace, PteFlags},
    phys::RESERVED_BYTES,
    walk, Gpa, Gva, HostMem, Hpa,
};
use sb_microkernel::{ipc::Component, Kernel, KernelConfig, Personality};
use sb_sim::Machine;
use skybridge::SkyBridge;

fn ept_walk_ablation() {
    let mut rows = Vec::new();
    for (name, granule) in [
        ("no EPT (native)", None),
        ("1 GiB (Rootkernel)", Some(PageSize::Size1G)),
        ("2 MiB", Some(PageSize::Size2M)),
        ("4 KiB (commodity hypervisor)", Some(PageSize::Size4K)),
    ] {
        let mut m = Machine::skylake();
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        asp.alloc_and_map(&mut mem, Gva(0x50_0000), 2, PteFlags::USER_DATA);
        if let Some(g) = granule {
            let ept = Ept::new(&mut mem);
            match g {
                PageSize::Size1G => {
                    ept.map_identity_range(&mut mem, 0, 4 << 30, PageSize::Size1G, EptPerms::RWX)
                }
                PageSize::Size2M => ept.map_identity_range(
                    &mut mem,
                    RESERVED_BYTES,
                    1 << 30,
                    PageSize::Size2M,
                    EptPerms::RWX,
                ),
                PageSize::Size4K => {
                    for page in 0..16384u64 {
                        let at = RESERVED_BYTES + page * 4096;
                        ept.map(&mut mem, Gpa(at), Hpa(at), PageSize::Size4K, EptPerms::RWX);
                    }
                }
            }
            m.cpu_mut(0).load_eptp(ept.root.0);
        }
        m.cpu_mut(0).load_cr3(asp.root_gpa.0, 1);
        let before = m.cpu(0).pmu;
        let t0 = m.cpu(0).tsc;
        walk::read_u64(&mut m, 0, &mem, Gva(0x50_0000), true).unwrap();
        let d = m.cpu(0).pmu.delta(&before);
        rows.push(vec![
            name.to_string(),
            d.walk_memory_accesses.to_string(),
            (m.cpu(0).tsc - t0).to_string(),
        ]);
    }
    print_table(
        "Ablation: TLB-miss nested-walk cost by EPT granularity",
        &["configuration", "walk memory accesses", "cold-walk cycles"],
        &rows,
    );
}

fn ept_copy_ablation() {
    let mut mem = HostMem::new();
    let base = Ept::new(&mut mem);
    base.map_identity_range(
        &mut mem,
        RESERVED_BYTES,
        1 << 30,
        PageSize::Size2M,
        EptPerms::RWX,
    );
    base.map_identity_range(&mut mem, 1 << 30, 16 << 30, PageSize::Size1G, EptPerms::RWX);
    let client = mem.alloc_frame();
    let server = mem.alloc_frame();
    let (_, shallow) = Ept::shallow_copy_with_remap(&mut mem, &base, Gpa(client.0), server);
    let (_, deep) = Ept::deep_copy(&mut mem, &base);
    // A 4 KiB-managed EPT for contrast.
    let fine = Ept::new(&mut mem);
    for page in 0..32768u64 {
        let at = RESERVED_BYTES + page * 4096;
        fine.map(&mut mem, Gpa(at), Hpa(at), PageSize::Size4K, EptPerms::RWX);
    }
    let (_, deep_fine) = Ept::deep_copy(&mut mem, &fine);
    print_table(
        "Ablation: EPT pages written per client/server binding",
        &["strategy", "pages written"],
        &[
            vec![
                "shallow copy + CR3 remap (SkyBridge)".to_string(),
                shallow.to_string(),
            ],
            vec![
                "deep copy of huge-page base EPT".to_string(),
                deep.to_string(),
            ],
            vec![
                "deep copy of 4 KiB-managed EPT (128 MiB)".to_string(),
                deep_fine.to_string(),
            ],
        ],
    );
}

fn kpti_ablation() {
    let mut rows = Vec::new();
    for kpti in [false, true] {
        let mut k = Kernel::boot(KernelConfig {
            kpti,
            ..KernelConfig::native(Personality::sel4())
        });
        let code = sb_rewriter::corpus::generate(41, 2048, 0);
        let cp = k.create_process(&code);
        let sp = k.create_process(&code);
        let client = k.create_thread(cp, 0);
        let server = k.create_thread(sp, 0);
        let (ep, _) = k.create_endpoint(sp);
        let slot = k.grant_send(cp, ep);
        k.server_recv(server, ep);
        k.run_thread(client);
        for _ in 0..64 {
            k.ipc_roundtrip(client, slot, server).unwrap();
        }
        let b = k.ipc_roundtrip(client, slot, server).unwrap();
        rows.push(vec![
            if kpti { "KPTI on" } else { "KPTI off" }.to_string(),
            b.get(Component::ContextSwitch).to_string(),
            b.total().to_string(),
        ]);
    }
    print_table(
        "Ablation: Meltdown mitigation (KPTI) on the seL4 fastpath roundtrip",
        &["configuration", "context-switch cycles", "total cycles"],
        &rows,
    );
}

fn message_size_ablation() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let code = sb_rewriter::corpus::generate(42, 2048, 0);
    let cp = k.create_process(&code);
    let sp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let server_tid = k.create_thread(sp, 0);
    let server = sb
        .register_server(
            &mut k,
            server_tid,
            4,
            64,
            Box::new(|_, _, _, _| Ok(vec![].into())),
        )
        .unwrap();
    sb.register_client(&mut k, client, server).unwrap();
    k.run_thread(client);
    let mut rows = Vec::new();
    for size in [0usize, 16, 64, 128, 512, 2048, 8192] {
        let msg = vec![7u8; size];
        for _ in 0..32 {
            sb.direct_server_call(&mut k, client, server, &msg).unwrap();
        }
        let core = k.core_of(client);
        let t0 = k.machine.cpu(core).tsc;
        let iters = 64;
        for _ in 0..iters {
            sb.direct_server_call(&mut k, client, server, &msg).unwrap();
        }
        let avg = (k.machine.cpu(core).tsc - t0) / iters;
        rows.push(vec![
            format!("{size} B"),
            if size <= 64 {
                "registers"
            } else {
                "shared buffer"
            }
            .to_string(),
            avg.to_string(),
        ]);
    }
    print_table(
        "Ablation: direct_server_call latency vs message size",
        &["message", "path", "cycles/roundtrip"],
        &rows,
    );
}

fn exit_controls_ablation() {
    use sb_mem::HostMem;
    use sb_rootkernel::{vmcs::ExitControls, Rootkernel, RootkernelConfig};
    let mut rows = Vec::new();
    for (name, controls) in [
        ("SkyBridge pass-through", ExitControls::skybridge()),
        ("commercial hypervisor", ExitControls::commercial()),
    ] {
        let mut machine = Machine::skylake();
        let mut mem = HostMem::new();
        let mut rk = Rootkernel::boot(
            &mut machine,
            &mut mem,
            RootkernelConfig {
                controls,
                ..RootkernelConfig::small()
            },
        );
        let t0 = machine.cpu(0).tsc;
        // A representative second of activity: 1000 timer interrupts,
        // 5000 context switches (CR3 writes).
        for _ in 0..1000 {
            rk.external_interrupt(&mut machine, 0);
        }
        for _ in 0..5000 {
            rk.cr3_write(&mut machine, 0);
        }
        rows.push(vec![
            name.to_string(),
            rk.exits.total().to_string(),
            (machine.cpu(0).tsc - t0).to_string(),
        ]);
    }
    print_table(
        "Ablation: exit controls under 1k interrupts + 5k CR3 writes",
        &["configuration", "VM exits", "cycles of exit overhead"],
        &rows,
    );
}

fn eptp_lru_ablation() {
    // The §10 extension: more servers than EPTP slots. Bind one client to
    // 520 servers and round-robin calls across 514 of them; stale slots
    // fault to the Rootkernel and get reinstalled.
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let code = sb_rewriter::corpus::generate(43, 1024, 0);
    let cp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let mut servers = Vec::new();
    let n_servers = sb_bench::knob("SB_LRU_SERVERS", 520);
    for i in 0..n_servers {
        let sp = k.create_process(&code);
        let tid = k.create_thread(sp, 0);
        let sid = sb
            .register_server(&mut k, tid, 2, 64, Box::new(|_, _, _, _| Ok(vec![].into())))
            .unwrap();
        sb.register_client(&mut k, client, sid).unwrap();
        servers.push(sid);
        let _ = i;
    }
    k.run_thread(client);
    let exits0 = k.rootkernel.as_ref().unwrap().exits.total();
    let core = k.core_of(client);
    let t0 = k.machine.cpu(core).tsc;
    let calls = 2 * servers.len();
    for i in 0..calls {
        let sid = servers[i % servers.len()];
        sb.direct_server_call(&mut k, client, sid, &[]).unwrap();
    }
    let avg = (k.machine.cpu(core).tsc - t0) / calls as u64;
    let faults = k.rootkernel.as_ref().unwrap().exits.total() - exits0;
    print_table(
        "Extension (§10): EPTP-list LRU with more servers than slots",
        &["servers", "calls", "slot-fault exits", "avg cycles/call"],
        &[vec![
            servers.len().to_string(),
            calls.to_string(),
            faults.to_string(),
            avg.to_string(),
        ]],
    );
    println!(
        "  (each fault = one VM exit + EPTP-list reinstall; with ≤ 511\n\
         bound servers the fault count is zero)"
    );
}

fn temporary_mapping_ablation() {
    // §8.1: L4's temporary mapping halves the copy cost of long IPC
    // messages; "orthogonal to SkyBridge".
    let mut rows = Vec::new();
    for (name, personality) in [
        ("seL4 (two copies)", Personality::sel4()),
        (
            "seL4 + temporary mapping",
            Personality::sel4().with_temporary_mapping(),
        ),
    ] {
        let mut k = Kernel::boot(KernelConfig::native(personality));
        let code = sb_rewriter::corpus::generate(44, 1024, 0);
        let cp = k.create_process(&code);
        let sp = k.create_process(&code);
        let client = k.create_thread(cp, 0);
        let server = k.create_thread(sp, 0);
        let (ep, _) = k.create_endpoint(sp);
        let slot = k.grant_send(cp, ep);
        k.server_recv(server, ep);
        k.run_thread(client);
        let mut row = vec![name.to_string()];
        for len in [256usize, 1024, 4096] {
            for _ in 0..32 {
                k.ipc_call(client, slot, len).unwrap();
                k.ipc_reply(server, client, 0).unwrap();
            }
            let mut sum = 0u64;
            for _ in 0..64 {
                let mut b = k.ipc_call(client, slot, len).unwrap();
                b.merge(&k.ipc_reply(server, client, 0).unwrap());
                sum += b.get(Component::MessageCopy);
            }
            row.push((sum / 64).to_string());
        }
        rows.push(row);
    }
    print_table(
        "§8.1: temporary mapping vs two-copy long messages (copy cycles)",
        &["configuration", "256 B", "1 KiB", "4 KiB"],
        &rows,
    );
}

fn main() {
    temporary_mapping_ablation();
    ept_walk_ablation();
    ept_copy_ablation();
    kpti_ablation();
    message_size_ablation();
    exit_controls_ablation();
    eptp_lru_ablation();
}
