//! The chaos sweep: seeds × fault mixes × IPC personalities, plus the
//! file-system crash cells.
//!
//! Every serving cell is one open-loop run with retry-with-backoff and
//! transport recovery enabled, faults injected per a seeded
//! `sb_faultplane::FaultMix`; the bin prints the per-cell fault ledger
//! (injected / detected / recovered / leaked) next to the serving
//! outcome, and writes everything to `results/chaos.json`. A non-zero
//! leak count anywhere is a failure — the process exits non-zero so CI
//! can gate on it.
//!
//! Knobs: `SB_CHAOS_SEEDS` (seeds per cell, default 3), `SB_REQUESTS`
//! (arrivals per serving cell, default 400), `SB_FS_SEEDS` (seeds per FS
//! mix, default 64).

use sb_bench::{
    knob, print_table,
    report::{chaos_outcome_json, fs_chaos_json, write_json, Json},
};
use skybridge_repro::scenarios::chaos::{fs_mixes, run_chaos_cell, run_fs_chaos, serving_mixes};
use skybridge_repro::scenarios::runtime::Backend;

fn main() {
    let seeds = knob("SB_CHAOS_SEEDS", 3) as u64;
    let requests = knob("SB_REQUESTS", 400) as u64;
    let fs_seeds = knob("SB_FS_SEEDS", 64) as u64;

    let mut json_rows: Vec<Json> = Vec::new();
    let mut leaked_total = 0u64;

    for transport in Backend::all() {
        let mut rows = Vec::new();
        for mix in serving_mixes() {
            let mut row = vec![mix.name.to_string()];
            for s in 0..seeds {
                let seed = 0xc4a0_5000 + s;
                let out = run_chaos_cell(&transport, seed, &mix, requests);
                assert!(
                    out.conserved(),
                    "{}/{}/{seed:#x}: conservation violated",
                    transport.label(),
                    mix.name
                );
                assert!(
                    out.trace_matches_ledger(),
                    "{}/{}/{seed:#x}: trace counters {:?} disagree with the ledger {}",
                    transport.label(),
                    mix.name,
                    out.trace,
                    out.report
                );
                leaked_total += out.report.leaked();
                row.push(format!(
                    "inj={} rec={} leak={} done={} shed={} fail={}",
                    out.report.injected(),
                    out.report.recovered(),
                    out.report.leaked(),
                    out.stats.completed,
                    out.stats.shed(),
                    out.stats.failed,
                ));
                json_rows.push(
                    chaos_outcome_json(&out, mix.name, seed).field("transport", transport.label()),
                );
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("mix".to_string())
            .chain((0..seeds).map(|s| format!("seed {s}")))
            .collect();
        print_table(
            &format!("chaos on {} ({requests} requests/cell)", transport.label()),
            &header,
            &rows,
        );
    }

    let mut fs_rows = Vec::new();
    let mut fs_json: Vec<Json> = Vec::new();
    for mix in fs_mixes() {
        let (mut torn, mut lost, mut replays) = (0u64, 0u64, 0u64);
        let mut leaked = 0u64;
        for s in 0..fs_seeds {
            let out = run_fs_chaos(0xf5ee_0000 + s, &mix, 12);
            torn += out.torn_discarded as u64;
            lost += (out.committed < out.attempted) as u64;
            replays += (out.replayed > 0) as u64;
            leaked += out.report.leaked();
            fs_json.push(fs_chaos_json(&out, mix.name, 0xf5ee_0000 + s));
        }
        leaked_total += leaked;
        fs_rows.push(vec![
            mix.name.to_string(),
            format!("{fs_seeds}"),
            format!("{torn}"),
            format!("{lost}"),
            format!("{replays}"),
            format!("{leaked}"),
        ]);
    }
    print_table(
        "fs chaos (committed-prefix across remount)",
        &[
            "mix",
            "cells",
            "torn hdrs",
            "txns lost",
            "replays",
            "leaked",
        ],
        &fs_rows,
    );

    let doc = Json::obj()
        .field("bench", "chaos")
        .field("requests_per_cell", requests)
        .field("seeds_per_cell", seeds)
        .field("leaked_total", leaked_total)
        .field("serving_cells", Json::Arr(json_rows))
        .field("fs_cells", Json::Arr(fs_json));
    match write_json("chaos", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if leaked_total > 0 {
        eprintln!("FAIL: {leaked_total} faults leaked (injected but never detected/recovered)");
        std::process::exit(1);
    }
    println!("all injected faults detected and recovered; zero leaks");
}
