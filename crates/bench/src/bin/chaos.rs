//! The chaos sweep: seeds × fault mixes × IPC personalities, plus the
//! file-system crash cells and the flight-recorder drill.
//!
//! Every serving cell is one open-loop run with retry-with-backoff and
//! transport recovery enabled, faults injected per a seeded
//! `sb_faultplane::FaultMix`; the bin prints the per-cell fault ledger
//! (injected / detected / recovered / leaked) next to the serving
//! outcome, and writes everything to `results/chaos.json`. Cells run
//! with the sentinel armed: an unrecovered fault or SLO breach must
//! produce a postmortem bundle under `results/postmortem/`, and the
//! drill cell proves the recorder fires end-to-end by leaking a fault on
//! purpose. The process exits non-zero on any leak, on an incident
//! without a bundle, or on a drill bundle that fails schema validation.
//!
//! Knobs: `SB_CHAOS_SEEDS` (seeds per cell, default 3), `SB_REQUESTS`
//! (arrivals per serving cell, default 400), `SB_FS_SEEDS` (seeds per FS
//! mix, default 64).

use sb_bench::{
    knob, print_table,
    report::{chaos_outcome_json, fs_chaos_json, results_dir, write_json, Json},
};
use sb_sentinel::PostmortemSpec;
use skybridge_repro::scenarios::chaos::{
    fs_mixes, run_chaos_cell_watched, run_fs_chaos, run_postmortem_drill, serving_mixes,
};
use skybridge_repro::scenarios::runtime::Backend;

fn main() {
    let seeds = knob("SB_CHAOS_SEEDS", 3) as u64;
    let requests = knob("SB_REQUESTS", 400) as u64;
    let fs_seeds = knob("SB_FS_SEEDS", 64) as u64;
    let flight = PostmortemSpec::in_dir(results_dir().join("postmortem"));

    let mut json_rows: Vec<Json> = Vec::new();
    let mut leaked_total = 0u64;
    let mut incidents = 0u64;
    let mut missing_bundles = 0u64;

    for transport in Backend::all() {
        let mut rows = Vec::new();
        for mix in serving_mixes() {
            let mut row = vec![mix.name.to_string()];
            for s in 0..seeds {
                let seed = 0xc4a0_5000 + s;
                let out = run_chaos_cell_watched(&transport, seed, &mix, requests, &flight);
                assert!(
                    out.conserved(),
                    "{}/{}/{seed:#x}: conservation violated",
                    transport.label(),
                    mix.name
                );
                assert!(
                    out.trace_matches_ledger(),
                    "{}/{}/{seed:#x}: trace counters {:?} disagree with the ledger {}",
                    transport.label(),
                    mix.name,
                    out.trace,
                    out.report
                );
                leaked_total += out.report.leaked();
                // The sentinel contract: every incident gets a bundle.
                if out.report.unrecovered() > 0 || out.slo.breached() {
                    incidents += 1;
                    if out.postmortem.is_none() {
                        missing_bundles += 1;
                        eprintln!(
                            "MISSING BUNDLE: {}/{}/{seed:#x} tripped the sentinel \
                             but wrote no postmortem",
                            transport.label(),
                            mix.name
                        );
                    }
                }
                if let Some(r) = &out.postmortem {
                    println!(
                        "postmortem: {} ({} events, {} clipped, {} overwritten)",
                        r.path.display(),
                        r.included_events,
                        r.truncated_events,
                        r.ring_dropped
                    );
                }
                row.push(format!(
                    "inj={} rec={} leak={} done={} shed={} fail={} slo={}",
                    out.report.injected(),
                    out.report.recovered(),
                    out.report.leaked(),
                    out.stats.completed,
                    out.stats.shed(),
                    out.stats.failed,
                    if out.slo.breached() { "BREACH" } else { "ok" },
                ));
                json_rows.push(
                    chaos_outcome_json(&out, mix.name, seed).field("transport", transport.label()),
                );
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("mix".to_string())
            .chain((0..seeds).map(|s| format!("seed {s}")))
            .collect();
        print_table(
            &format!("chaos on {} ({requests} requests/cell)", transport.label()),
            &header,
            &rows,
        );
    }

    let mut fs_rows = Vec::new();
    let mut fs_json: Vec<Json> = Vec::new();
    for mix in fs_mixes() {
        let (mut torn, mut lost, mut replays) = (0u64, 0u64, 0u64);
        let mut leaked = 0u64;
        for s in 0..fs_seeds {
            let out = run_fs_chaos(0xf5ee_0000 + s, &mix, 12);
            torn += out.torn_discarded as u64;
            lost += (out.committed < out.attempted) as u64;
            replays += (out.replayed > 0) as u64;
            leaked += out.report.leaked();
            fs_json.push(fs_chaos_json(&out, mix.name, 0xf5ee_0000 + s));
        }
        leaked_total += leaked;
        fs_rows.push(vec![
            mix.name.to_string(),
            format!("{fs_seeds}"),
            format!("{torn}"),
            format!("{lost}"),
            format!("{replays}"),
            format!("{leaked}"),
        ]);
    }
    print_table(
        "fs chaos (committed-prefix across remount)",
        &[
            "mix",
            "cells",
            "torn hdrs",
            "txns lost",
            "replays",
            "leaked",
        ],
        &fs_rows,
    );

    // The flight-recorder drill: leak a fault on purpose and demand a
    // schema-clean bundle. Its deliberate leak does not count against
    // the suite's zero-leak gate.
    let drill = run_postmortem_drill(&Backend::SkyBridge, 0xd811_0001, 120, &flight);
    let drill_json = match &drill.postmortem {
        Some(r) => {
            let body = std::fs::read_to_string(&r.path)
                .unwrap_or_else(|e| panic!("drill bundle {} unreadable: {e}", r.path.display()));
            if let Err(e) = sb_observe::validate_json(&body) {
                eprintln!(
                    "FAIL: drill bundle {} is not valid JSON: {e}",
                    r.path.display()
                );
                std::process::exit(1);
            }
            println!(
                "flight-recorder drill: {} ({} events, {} clipped, {} overwritten)",
                r.path.display(),
                r.included_events,
                r.truncated_events,
                r.ring_dropped
            );
            Json::obj()
                .field("path", r.path.display().to_string())
                .field("included_events", r.included_events)
                .field("truncated_events", r.truncated_events)
                .field("ring_dropped", r.ring_dropped)
        }
        None => {
            eprintln!(
                "FAIL: the drill leaked {} fault(s) but the flight recorder wrote no bundle",
                drill.report.unrecovered()
            );
            std::process::exit(1);
        }
    };

    let doc = Json::obj()
        .field("bench", "chaos")
        .field("requests_per_cell", requests)
        .field("seeds_per_cell", seeds)
        .field("leaked_total", leaked_total)
        .field("incidents", incidents)
        .field("missing_bundles", missing_bundles)
        .field("drill", drill_json)
        .field("serving_cells", Json::Arr(json_rows))
        .field("fs_cells", Json::Arr(fs_json));
    match write_json("chaos", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if leaked_total > 0 {
        eprintln!("FAIL: {leaked_total} faults leaked (injected but never detected/recovered)");
        std::process::exit(1);
    }
    if missing_bundles > 0 {
        eprintln!("FAIL: {missing_bundles} incident(s) fired without a postmortem bundle");
        std::process::exit(1);
    }
    println!("all injected faults detected and recovered; zero leaks");
    println!("sentinel: {incidents} incident(s), every one with a postmortem bundle");
}
