//! Figure 2: average KV-store operation latency vs key/value length for
//! Baseline / Delay / IPC / IPC-CrossCore.

use sb_bench::{knob, print_table};
use sb_ycsb::kv::KV_LENGTHS;
use skybridge_repro::scenarios::kv::{KvMode, KvPipeline};

/// Paper values (cycles), rows per length, columns per mode.
pub const PAPER: [[u64; 4]; 4] = [
    // Baseline, Delay, IPC, IPC-CrossCore.
    [2707, 4735, 7929, 18895],
    [3485, 5345, 8548, 19609],
    [5884, 7828, 11025, 22162],
    [14652, 16906, 20577, 32061],
];

fn main() {
    let ops = knob("SB_OPS", 384);
    let modes = [
        ("Baseline", KvMode::Baseline),
        ("Delay", KvMode::Delay),
        ("IPC", KvMode::Ipc),
        ("IPC-CrossCore", KvMode::IpcCrossCore),
    ];
    let mut rows = Vec::new();
    for (li, &len) in KV_LENGTHS.iter().enumerate() {
        let mut row = vec![format!("{len}-Bytes")];
        for (mi, (_, mode)) in modes.iter().enumerate() {
            let mut p = KvPipeline::new(*mode, len, ops + 128);
            p.run_ops(64);
            let s = p.run_ops(ops);
            row.push(format!("{} ({})", s.avg_cycles, PAPER[li][mi]));
        }
        rows.push(row);
    }
    print_table(
        "Figure 2: KV op latency in cycles — measured (paper)",
        &["key/value", "Baseline", "Delay", "IPC", "IPC-CrossCore"],
        &rows,
    );
    println!(
        "\nShape to check: Baseline < Delay < IPC < IPC-CrossCore at every\n\
         length; gaps shrink relative to totals as the length grows."
    );
}
