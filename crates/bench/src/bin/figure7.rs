//! Figure 7: synchronous-IPC roundtrip breakdowns across the three
//! microkernels, single- and cross-core, plus the SkyBridge bars.

use sb_bench::{knob, print_table};
use sb_microkernel::{
    ipc::{Breakdown, Component},
    Kernel, KernelConfig, Personality,
};
use skybridge::SkyBridge;

fn ipc_bar(personality: Personality, cross: bool, iters: usize) -> Breakdown {
    let mut k = Kernel::boot(KernelConfig::native(personality));
    let code = sb_rewriter::corpus::generate(31, 2048, 0);
    let cp = k.create_process(&code);
    let sp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let server = k.create_thread(sp, if cross { 1 } else { 0 });
    let (ep, _) = k.create_endpoint(sp);
    let slot = k.grant_send(cp, ep);
    k.server_recv(server, ep);
    k.run_thread(client);
    for _ in 0..64 {
        k.ipc_roundtrip(client, slot, server).unwrap();
    }
    let mut total = Breakdown::new();
    for _ in 0..iters {
        total.merge(&k.ipc_roundtrip(client, slot, server).unwrap());
    }
    total.scaled_down(iters as u64)
}

fn skybridge_bar(personality: Personality, iters: usize) -> Breakdown {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(personality));
    let mut sb = SkyBridge::new();
    let code = sb_rewriter::corpus::generate(32, 2048, 0);
    let cp = k.create_process(&code);
    let sp = k.create_process(&code);
    let client = k.create_thread(cp, 0);
    let server_tid = k.create_thread(sp, 0);
    let server = sb
        .register_server(
            &mut k,
            server_tid,
            4,
            64,
            Box::new(|_, _, _, _| Ok(vec![].into())),
        )
        .unwrap();
    sb.register_client(&mut k, client, server).unwrap();
    k.run_thread(client);
    for _ in 0..64 {
        sb.direct_server_call(&mut k, client, server, &[]).unwrap();
    }
    let mut total = Breakdown::new();
    for _ in 0..iters {
        let (_, b) = sb.direct_server_call(&mut k, client, server, &[]).unwrap();
        total.merge(&b);
    }
    total.scaled_down(iters as u64)
}

fn main() {
    let iters = knob("SB_ITERS", 2000);
    let bars: Vec<(String, Breakdown, u64)> = vec![
        (
            "seL4-SkyBridge".into(),
            skybridge_bar(Personality::sel4(), iters),
            396,
        ),
        (
            "Fiasco.OC-SkyBridge".into(),
            skybridge_bar(Personality::fiasco_oc(), iters),
            396,
        ),
        (
            "Zircon-SkyBridge".into(),
            skybridge_bar(Personality::zircon(), iters),
            396,
        ),
        (
            "seL4 fastpath 1-core".into(),
            ipc_bar(Personality::sel4(), false, iters),
            986,
        ),
        (
            "seL4 cross-core".into(),
            ipc_bar(Personality::sel4(), true, iters),
            6764,
        ),
        (
            "Fiasco fastpath 1-core".into(),
            ipc_bar(Personality::fiasco_oc(), false, iters),
            2717,
        ),
        (
            "Fiasco cross-core".into(),
            ipc_bar(Personality::fiasco_oc(), true, iters),
            8440,
        ),
        (
            "Zircon 1-core".into(),
            ipc_bar(Personality::zircon(), false, iters),
            8157,
        ),
        (
            "Zircon cross-core".into(),
            ipc_bar(Personality::zircon(), true, iters),
            20099,
        ),
    ];
    let mut rows = Vec::new();
    for (name, b, paper) in &bars {
        let mut row = vec![name.clone()];
        for c in Component::ALL {
            row.push(b.get(c).to_string());
        }
        row.push(format!("{} ({})", b.total(), paper));
        rows.push(row);
    }
    let mut header = vec!["configuration".to_string()];
    header.extend(Component::ALL.iter().map(|c| c.label().to_string()));
    header.push("total (paper)".to_string());
    print_table(
        "Figure 7: IPC roundtrip breakdown, cycles — measured (paper total)",
        &header,
        &rows,
    );
    println!(
        "\nShape to check: the three SkyBridge bars are identical (kernel\n\
         personality is irrelevant once the kernel is off the path) and\n\
         ~396 cycles; cross-core bars are dominated by the two IPIs; Zircon\n\
         pays scheduling + double message copies on every path."
    );
}
