//! Figure 8: Figure 2's sweep plus the SkyBridge configuration.

use sb_bench::{knob, print_table};
use sb_ycsb::kv::KV_LENGTHS;
use skybridge_repro::scenarios::kv::{KvMode, KvPipeline};

/// Paper values (cycles): Baseline, Delay, IPC, IPC-CrossCore, SkyBridge.
const PAPER: [[u64; 5]; 4] = [
    [2707, 4735, 7929, 18895, 3512],
    [3485, 5345, 8548, 19609, 4112],
    [5884, 7828, 11025, 22162, 6413],
    [14652, 16906, 20577, 32061, 15378],
];

fn main() {
    let ops = knob("SB_OPS", 384);
    let modes = [
        ("Baseline", KvMode::Baseline),
        ("Delay", KvMode::Delay),
        ("IPC", KvMode::Ipc),
        ("IPC-CrossCore", KvMode::IpcCrossCore),
        ("SkyBridge", KvMode::SkyBridge),
    ];
    let mut rows = Vec::new();
    for (li, &len) in KV_LENGTHS.iter().enumerate() {
        let mut row = vec![format!("{len}-Bytes")];
        for (mi, (_, mode)) in modes.iter().enumerate() {
            let mut p = KvPipeline::new(*mode, len, ops + 128);
            p.run_ops(64);
            let s = p.run_ops(ops);
            row.push(format!("{} ({})", s.avg_cycles, PAPER[li][mi]));
        }
        rows.push(row);
    }
    print_table(
        "Figure 8: KV op latency with SkyBridge — measured (paper)",
        &[
            "key/value",
            "Baseline",
            "Delay",
            "IPC",
            "IPC-CrossCore",
            "SkyBridge",
        ],
        &rows,
    );
    println!(
        "\nShape to check: SkyBridge sits between Baseline and IPC at small\n\
         lengths (\"SkyBridge can reduce the latency from 7929 cycles to\n\
         3512\"), and its advantage shrinks as payloads grow (\"When the\n\
         length is large, the overhead of SkyBridge is negligible\")."
    );
}
