//! Figures 9, 10, 11: YCSB-A throughput vs client-thread count for
//! ST / MT / SkyBridge on each microkernel.

use sb_bench::{
    knob, print_table,
    report::{write_json, Json},
};
use sb_microkernel::Personality;
use skybridge_repro::scenarios::sqlite::{SqliteStack, StackMode};

/// Paper values (ops/s) at 1/2/4/8 threads for st, mt, SkyBridge.
const PAPER: [(&str, [[f64; 4]; 3]); 3] = [
    (
        "seL4",
        [
            [9627.0, 3748.0, 1863.0, 1387.0],
            [9660.0, 4456.0, 2182.0, 1489.0],
            [17575.0, 8321.0, 6059.0, 2122.0],
        ],
    ),
    (
        "Fiasco.OC",
        [
            [3644.0, 2342.0, 1365.0, 786.0],
            [4245.0, 2933.0, 1640.0, 940.0],
            [8080.0, 4811.0, 2970.0, 2607.0],
        ],
    ),
    (
        "Zircon",
        [
            [2466.0, 1137.0, 743.0, 75.0],
            [4181.0, 1602.0, 1187.0, 27.0],
            [11296.0, 6162.0, 3630.0, 2060.0],
        ],
    ),
];

fn main() {
    let records = knob("SB_RECORDS", 1000) as u64;
    let ops = knob("SB_OPS", 120);
    let threads = [1usize, 2, 4, 8];
    let kernels = [
        ("seL4", Personality::sel4()),
        ("Fiasco.OC", Personality::fiasco_oc()),
        ("Zircon", Personality::zircon()),
    ];
    let mut json_rows: Vec<Json> = Vec::new();
    for (ki, (kname, personality)) in kernels.iter().enumerate() {
        let mut rows = Vec::new();
        for (mi, (mname, mode)) in [
            ("st", StackMode::IpcSt),
            ("mt", StackMode::IpcMt),
            ("SkyBridge", StackMode::SkyBridge),
        ]
        .iter()
        .enumerate()
        {
            let mut row = vec![format!("{kname}-{mname}")];
            for (ti, &n) in threads.iter().enumerate() {
                let mut s = SqliteStack::new(personality.clone(), *mode, n, false);
                s.load(records, 100);
                let stats = s.run_ycsb(ops);
                row.push(format!(
                    "{:.0} ({:.0})",
                    stats.ops_per_sec, PAPER[ki].1[mi][ti]
                ));
                json_rows.push(
                    Json::obj()
                        .field("kernel", *kname)
                        .field("configuration", *mname)
                        .field("threads", n)
                        .field("ops_per_sec", stats.ops_per_sec)
                        .field("paper_ops_per_sec", PAPER[ki].1[mi][ti]),
                );
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure {}: YCSB-A throughput on {kname}, ops/s — measured (paper)",
                9 + ki
            ),
            &[
                "configuration",
                "1-thread",
                "2-thread",
                "4-thread",
                "8-thread",
            ],
            &rows,
        );
    }
    let doc = Json::obj()
        .field("bench", "figure9_11")
        .field("workload", "ycsb-a")
        .field("records", records)
        .field("ops", ops)
        .field("rows", Json::Arr(json_rows));
    match write_json("figure9_11", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }
    println!(
        "\nShape to check: SkyBridge on top at every thread count;\n\
         throughput *decreases* with threads (the file system's one big\n\
         lock); st trails mt (cross-core IPIs)."
    );
}
