//! Serving-graph macro-benchmark: YCSB-A/B/C through the client →
//! gateway → cache → db → fs graph on all five IPC personalities, plus
//! the replay and power-loss drills the commit log buys.
//!
//! Four sections, all landing in `results/graph.json`:
//!
//! * **workloads** — open-loop throughput/latency per backend ×
//!   workload (YCSB-A 50/50, B 95/5, C read-only).
//! * **attribution** — per-hop critical-path attribution from the
//!   sentinel-assembled span trees of a traced run (no instrumentation
//!   added: the inner transports' recorders light up).
//! * **replay** — snapshot mid-run, replay `log.since(snapshot)`,
//!   compare disk digests. Divergence is a hard failure (exit 1).
//! * **chaos** — the power-loss matrix; a leaked fault or a recovered
//!   state diverging from the full-replay reference is a hard failure.
//!
//! Knobs: `SB_GRAPH_OPS` (requests per workload cell, default 2000),
//! `SB_GRAPH_LANES` (server threads, default 2), `SB_GRAPH_RECORDS`
//! (table size, default 192), `SB_GRAPH_DRILL_OPS` (drill trace length,
//! default 160).

use sb_bench::{
    knob, print_table,
    report::{run_stats_json, write_json, Json},
};
use sb_graph::GraphSpec;
use sb_observe::Recorder;
use sb_runtime::{AdmissionPolicy, RuntimeConfig, Transport};
use sb_sentinel::assemble;
use sb_ycsb::WorkloadSpec;
use skybridge_repro::scenarios::graph::{
    build_graph, client_payload, drive_one, replay_drill, run_graph_chaos, run_graph_open_loop,
    DRILL_VALUE_LEN,
};
use skybridge_repro::scenarios::runtime::{ops_per_sec, Backend};

const CACHE_CAPACITY: usize = 32;
const CHAOS_SEEDS: [u64; 3] = [0xc0de_0001, 0xc0de_0002, 0xc0de_0003];

fn spec(records: usize) -> GraphSpec {
    GraphSpec::standard(records as u64, DRILL_VALUE_LEN, CACHE_CAPACITY)
}

/// Mean end-to-end service cycles of one graph request on a warm cell.
fn calibrate(backend: &Backend, spec: &GraphSpec) -> f64 {
    let mut t = build_graph(backend, spec, 1);
    let payload = client_payload(spec);
    let (warm, n) = (16u64, 48u64);
    for i in 0..warm {
        drive_one(&mut t, i + 1, i % spec.records, i % 2 == 0, payload);
    }
    let t0 = t.now(0);
    for i in 0..n {
        drive_one(
            &mut t,
            warm + i + 1,
            (i * 7) % spec.records,
            i % 2 == 0,
            payload,
        );
    }
    (t.now(0) - t0) as f64 / n as f64
}

type WorkloadCtor = fn(u64, usize) -> WorkloadSpec;

fn workload_sweep(records: usize, requests: u64, lanes: usize) -> (Vec<Json>, Vec<Vec<String>>) {
    let cfg = RuntimeConfig {
        queue_capacity: 64,
        policy: AdmissionPolicy::Shed,
        queue_deadline: None,
        ..RuntimeConfig::default()
    };
    let spec = spec(records);
    let workloads: [(&str, WorkloadCtor); 3] = [
        ("ycsb_a", WorkloadSpec::ycsb_a),
        ("ycsb_b", WorkloadSpec::ycsb_b),
        ("ycsb_c", WorkloadSpec::ycsb_c),
    ];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for backend in Backend::all() {
        // Offer ~70% of the calibrated capacity so queueing is visible
        // but the cell stays stable.
        let svc = calibrate(&backend, &spec);
        let mean_gap = svc / (lanes as f64 * 0.7);
        for (name, make) in workloads {
            let s = run_graph_open_loop(
                &backend,
                &spec,
                lanes,
                cfg.clone(),
                make(spec.records, spec.value_len),
                mean_gap,
                requests,
                0x6a_0001,
            );
            table.push(vec![
                backend.label().to_string(),
                name.to_string(),
                format!("{:.0}", ops_per_sec(&s)),
                format!("{}", s.p50()),
                format!("{}", s.p99()),
                format!("{}", s.shed()),
            ]);
            rows.push(
                run_stats_json(&s)
                    .field("backend", backend.label())
                    .field("workload", name)
                    .field("service_cycles", svc),
            );
        }
    }
    (rows, table)
}

/// Per-hop attribution from a traced run: drive a small fixed trace
/// with a live recorder, assemble the span forest, and attribute each
/// request's children in route order (gateway, cache, db) with
/// everything past the route being fs crossings made by the db's
/// pager I/O.
fn attribution(records: usize) -> (Vec<Json>, Vec<Vec<String>>) {
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for backend in Backend::all() {
        let spec = spec(records);
        let mut t = build_graph(&backend, &spec, 1);
        let rec = Recorder::new(sb_observe::DEFAULT_RING_CAPACITY);
        t.attach_recorder(rec.clone());
        let hop_names = t.hop_names();
        let payload = client_payload(&spec);
        let traced = 32u64;
        for i in 0..traced {
            drive_one(&mut t, i + 1, (i * 5) % spec.records, i % 3 == 0, payload);
        }
        let forest = assemble(&rec);
        let mut per_hop: Vec<(String, u64, u64)> = hop_names
            .iter()
            .map(|n| (n.clone(), 0u64, 0u64))
            .chain(std::iter::once(("fs".to_string(), 0, 0)))
            .collect();
        let mut requests = 0u64;
        let mut path_total = 0u64;
        let mut end_to_end = 0u64;
        for corr in 1..=traced {
            let Some(tr) = forest.request(corr) else {
                continue;
            };
            if tr.roots.len() != 1 {
                eprintln!(
                    "FAIL: {} corr {corr} assembled {} roots (want 1 connected tree)",
                    backend.label(),
                    tr.roots.len()
                );
                std::process::exit(1);
            }
            requests += 1;
            end_to_end += tr.roots[0].dur;
            path_total += tr.critical_path_cycles();
            for (i, child) in tr.roots[0].children.iter().enumerate() {
                let slot = i.min(per_hop.len() - 1);
                per_hop[slot].1 += child.dur;
                per_hop[slot].2 += 1;
            }
        }
        if requests == 0 {
            eprintln!("FAIL: {} traced run produced no spans", backend.label());
            std::process::exit(1);
        }
        for (hop, cycles, crossings) in &per_hop {
            table.push(vec![
                backend.label().to_string(),
                hop.clone(),
                format!("{:.0}", *cycles as f64 / requests as f64),
                format!("{:.1}", *crossings as f64 / requests as f64),
            ]);
            rows.push(
                Json::obj()
                    .field("backend", backend.label())
                    .field("hop", hop.as_str())
                    .field("mean_cycles", *cycles as f64 / requests as f64)
                    .field("crossings_per_request", *crossings as f64 / requests as f64),
            );
        }
        rows.push(
            Json::obj()
                .field("backend", backend.label())
                .field("hop", "total")
                .field("mean_cycles", end_to_end as f64 / requests as f64)
                .field(
                    "critical_path_share",
                    path_total as f64 / end_to_end.max(1) as f64,
                ),
        );
    }
    (rows, table)
}

fn replay_section(ops: u64) -> Vec<Json> {
    let mut rows = Vec::new();
    for backend in Backend::all() {
        let d = replay_drill(&backend, ops, 0x5eed);
        if !d.ok() {
            eprintln!(
                "FAIL: {} replay diverged: live {:#x} != replay {:#x} (caches match: {})",
                d.label, d.live_digest, d.replay_digest, d.cache_match
            );
            std::process::exit(1);
        }
        rows.push(
            Json::obj()
                .field("backend", d.label.as_str())
                .field("ops", d.ops)
                .field("snapshot_seq", d.snapshot_seq)
                .field("replayed", d.replayed)
                .field("disk_digest", format!("{:#018x}", d.live_digest))
                .field("log_digest", format!("{:#018x}", d.log_digest))
                .field("byte_identical", true),
        );
    }
    rows
}

fn chaos_section(ops: u64) -> Vec<Json> {
    let mut rows = Vec::new();
    let mut died_somewhere = false;
    for backend in Backend::all() {
        for seed in CHAOS_SEEDS {
            let o = run_graph_chaos(&backend, seed, ops);
            if !o.ok() {
                eprintln!(
                    "FAIL: {} seed {seed:#x}: leaked {} faults, rows_match {}",
                    o.label, o.leaked, o.rows_match
                );
                std::process::exit(1);
            }
            died_somewhere |= o.died;
            rows.push(
                Json::obj()
                    .field("backend", o.label.as_str())
                    .field("seed", seed)
                    .field("ops_driven", o.ops)
                    .field("died", o.died)
                    .field("recovered_seq", o.recovered_seq)
                    .field("rolled_forward", o.rolled_forward)
                    .field("injected", o.injected)
                    .field("leaked", o.leaked)
                    .field("rows_match", o.rows_match),
            );
        }
    }
    if !died_somewhere {
        eprintln!("FAIL: no chaos seed ever cut the power — the matrix is vacuous");
        std::process::exit(1);
    }
    rows
}

fn main() {
    let requests = knob("SB_GRAPH_OPS", 2000) as u64;
    let lanes = knob("SB_GRAPH_LANES", 2);
    let records = knob("SB_GRAPH_RECORDS", 192);
    let drill_ops = knob("SB_GRAPH_DRILL_OPS", 160) as u64;

    let (workload_rows, workload_table) = workload_sweep(records, requests, lanes);
    print_table(
        "YCSB over the serving graph (client → gateway → cache → db → fs)",
        &["backend", "workload", "ops/s", "p50", "p99", "shed"],
        &workload_table,
    );

    let (attr_rows, attr_table) = attribution(records);
    print_table(
        "Per-hop attribution (sentinel-assembled span trees)",
        &["backend", "hop", "mean cycles", "crossings/req"],
        &attr_table,
    );

    let replay_rows = replay_section(drill_ops);
    println!(
        "replay: {} cells byte-identical after snapshot + commit-log replay",
        replay_rows.len()
    );
    let chaos_rows = chaos_section(drill_ops);
    println!(
        "chaos: {} power-loss runs recovered with zero leaked faults",
        chaos_rows.len()
    );

    let doc = Json::obj()
        .field(
            "config",
            Json::obj()
                .field("requests", requests as u64)
                .field("lanes", lanes)
                .field("records", records)
                .field("drill_ops", drill_ops),
        )
        .field("workloads", workload_rows)
        .field("attribution", attr_rows)
        .field("replay", replay_rows)
        .field("chaos", chaos_rows);
    let path = write_json("graph", &doc).expect("write results/graph.json");
    println!("wrote {}", path.display());
}
