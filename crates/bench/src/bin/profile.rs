//! The sampling profiler's evaluation harness: five-way flamegraphs,
//! the sampled-vs-exact gate, and profile-diff regression attribution.
//!
//! One serving lane per IPC personality runs the KV workload with the
//! full observability stack on — span tracing plus the cycle sampler —
//! harvested in chunks the event ring holds completely, so the exact
//! [`PhaseProfile`] loses nothing no matter how long the run. Per
//! personality the bin then:
//!
//! 1. checks the capture was exact (zero ring overwrites, zero sample
//!    drops, zero poisoned or desynced stacks);
//! 2. gates the sampler against the exact profile: every in-call phase
//!    with at least 2% of self-time must be sampled within ±10%
//!    (relative) of its exact share;
//! 3. writes a collapsed-stack flamegraph
//!    (`results/flamegraphs/<backend>.collapsed`, the format
//!    `flamegraph.pl` and speedscope ingest) plus a per-tenant variant
//!    with the tenant as the root frame;
//! 4. diffs the per-phase cycle budget against
//!    `results/profile_baseline.json` in dual units — Δ cycles/call and
//!    relative percent (ns at the modeled 4 GHz are cycles/4) — and
//!    attributes any end-to-end movement to named phases.
//!
//! The diff gate is the regression-attribution contract: an end-to-end
//! regression beyond 1% whose residual (the part no named phase
//! explains) exceeds 5% of the baseline exits non-zero. A regression
//! that *is* attributed still prints its per-phase account but leaves
//! the verdict to the perf-trajectory gates; an unattributed one means
//! the instrumentation lost track of where cycles went, which is a bug
//! in its own right. Without a committed baseline the matrix runs
//! twice and diffs the second pass against the first (identical by
//! determinism — the mechanics stay exercised).
//!
//! Knobs: `SB_PROFILE_CALLS` (timed calls per personality, default
//! 65,536), `SB_PERIOD` (sample grid period, default
//! [`DEFAULT_SAMPLE_PERIOD`]), `SB_PROFILE_WRITE=1` rewrites
//! `results/profile_baseline.json` from this run.

use sb_bench::report::{read_to_string, results_dir, write_json, write_raw, Json};
use sb_bench::{baseline_field, knob, print_table};
use sb_observe::{
    attribute, collapsed_lines, compare_shares, fold_samples, fold_samples_by_tenant, PhaseProfile,
    Recorder, Sample, SamplerConfig, ShareComparison, SpanKind, DEFAULT_RING_CAPACITY,
    DEFAULT_SAMPLE_PERIOD,
};
use sb_runtime::{RequestFactory, Transport};
use sb_ycsb::WorkloadSpec;
use skybridge_repro::scenarios::runtime::{build_backend, Backend, ServingScenario};

/// Phases below this exact self-time share are too small to gate.
const MIN_SHARE: f64 = 0.02;
/// Relative tolerance on sampled vs exact shares.
const SHARE_TOLERANCE: f64 = 0.10;
/// End-to-end movement below this fraction of the baseline is noise.
const REGRESSION_GATE: f64 = 0.01;
/// Largest unattributed share of a regression the gate tolerates.
const RESIDUAL_GATE: f64 = 0.05;
/// The modeled part runs at 4 GHz: ns = cycles / 4.
const CYCLES_PER_NS: f64 = 4.0;
/// Tenants in the profiled mix (Zipf-skewed, like the tenant bench).
const TENANTS: u16 = 4;

struct BackendProfile {
    label: String,
    prof: PhaseProfile,
    samples: Vec<Sample>,
    shares: Vec<ShareComparison>,
}

impl BackendProfile {
    fn e2e_per_call(&self) -> f64 {
        self.prof.end_to_end as f64 / self.prof.calls.max(1) as f64
    }
}

/// Profiles one personality exactly: chunked harvests sized so neither
/// the event ring nor the sample ring can wrap between drains.
fn profile_backend(backend: &Backend, calls: u64) -> Result<BackendProfile, String> {
    let label = backend.label().to_string();
    let mut t = build_backend(ServingScenario::Kv, backend, 1);
    let recorder = Recorder::new(knob("SB_RING", DEFAULT_RING_CAPACITY));
    recorder.enable_sampling(SamplerConfig {
        period: knob("SB_PERIOD", DEFAULT_SAMPLE_PERIOD as usize) as u64,
        backend: label.clone(),
        ..SamplerConfig::default()
    });
    t.attach_recorder(recorder.clone());

    let mut f = RequestFactory::with_zipf_tenants(WorkloadSpec::ycsb_a(10_000, 64), 64, TENANTS, 7);
    for _ in 0..256 {
        let r = f.make(t.now(0), None);
        t.call(0, &r)
            .map_err(|e| format!("{label}: warm call: {e:?}"))?;
    }
    recorder.clear();

    // A call emits at most ~12 events; a chunk of capacity/16 calls
    // keeps the ring under capacity with margin to spare.
    let chunk = (recorder.capacity() / 16).max(1) as u64;
    let mut prof = PhaseProfile::default();
    let mut samples: Vec<Sample> = Vec::new();
    let mut done = 0u64;
    while done < calls {
        let n = chunk.min(calls - done);
        for _ in 0..n {
            let r = f.make(t.now(0), None);
            t.call(0, &r).map_err(|e| format!("{label}: call: {e:?}"))?;
        }
        done += n;
        let by_lane = recorder.take_lane_events();
        prof.merge(&attribute(&by_lane));
        samples.extend(recorder.drain_samples());
    }

    // The capture must be exact: this bin sizes its chunks so any loss
    // is an accounting bug, not pressure.
    if recorder.dropped() > 0 {
        return Err(format!(
            "{label}: chunked capture overwrote {} events",
            recorder.dropped()
        ));
    }
    let sstats = recorder.sample_stats();
    if sstats.dropped > 0 || sstats.poisoned > 0 || sstats.broken_events > 0 {
        return Err(format!(
            "{label}: sampler lost attribution ({} dropped, {} poisoned, {} broken events)",
            sstats.dropped, sstats.poisoned, sstats.broken_events
        ));
    }
    if prof.unmatched > 0 || prof.unclosed > 0 {
        return Err(format!(
            "{label}: malformed span stream ({} unmatched, {} unclosed)",
            prof.unmatched, prof.unclosed
        ));
    }

    let shares = compare_shares(&samples, &prof, MIN_SHARE, SHARE_TOLERANCE)
        .map_err(|e| format!("{label}: sampled shares diverge from exact: {e}"))?;

    Ok(BackendProfile {
        label,
        prof,
        samples,
        shares,
    })
}

/// One flat JSON row per personality, `baseline_field`-readable:
/// `"transport":"<label>"` then `e2e_cycles_per_call` and one
/// `phase_<name>_cycles_per_call` per observed phase.
fn profile_row(p: &BackendProfile) -> Json {
    let mut row = Json::obj()
        .field("transport", p.label.as_str())
        .field("calls", p.prof.calls)
        .field("e2e_cycles_per_call", p.e2e_per_call());
    for kind in SpanKind::ALL {
        if p.prof.get(kind) > 0 {
            row = row.field(
                &format!("phase_{}_cycles_per_call", kind.name()),
                p.prof.per_call(kind),
            );
        }
    }
    let shares: Vec<Json> = p
        .shares
        .iter()
        .map(|s| {
            Json::obj()
                .field("phase", s.phase)
                .field("exact_share", s.exact)
                .field("sampled_share", s.sampled)
        })
        .collect();
    row.field("samples", p.samples.len() as u64)
        .field("sampled_vs_exact", Json::Arr(shares))
}

/// One phase's movement against the baseline, in dual units.
struct PhaseDelta {
    name: &'static str,
    cycles: f64,
    pct: Option<f64>,
}

impl PhaseDelta {
    fn render(&self) -> String {
        match self.pct {
            Some(p) => format!("`{}` {:+.1}%", self.name, p),
            None => format!("`{}` new ({:+.1} cyc)", self.name, self.cycles),
        }
    }
}

struct BackendDiff {
    label: String,
    base_e2e: f64,
    cur_e2e: f64,
    deltas: Vec<PhaseDelta>,
    /// End-to-end movement no named phase explains.
    residual: f64,
    unattributed_regression: bool,
}

/// Diffs one personality's profile against the baseline document.
fn diff_backend(doc: &str, p: &BackendProfile) -> Option<BackendDiff> {
    let base_e2e = baseline_field(doc, &p.label, "e2e_cycles_per_call")?;
    let cur_e2e = p.e2e_per_call();
    let d_e2e = cur_e2e - base_e2e;
    let mut deltas = Vec::new();
    let mut attributed = 0.0;
    for kind in SpanKind::ALL {
        let field = format!("phase_{}_cycles_per_call", kind.name());
        let base = baseline_field(doc, &p.label, &field);
        let cur = if p.prof.get(kind) > 0 {
            Some(p.prof.per_call(kind))
        } else {
            None
        };
        let (b, c) = match (base, cur) {
            (None, None) => continue,
            (b, c) => (b.unwrap_or(0.0), c.unwrap_or(0.0)),
        };
        let d = c - b;
        // Wait phases overlap service and the doorbell is outside the
        // call: only in-call self-times add up to end-to-end.
        if !matches!(
            kind,
            SpanKind::QueueWait | SpanKind::Backoff | SpanKind::RingWait | SpanKind::Doorbell
        ) {
            attributed += d;
        }
        if d.abs() > 1e-9 {
            deltas.push(PhaseDelta {
                name: kind.name(),
                cycles: d,
                pct: (b > 0.0).then(|| (c / b - 1.0) * 100.0),
            });
        }
    }
    let residual = d_e2e - attributed;
    let unattributed_regression =
        d_e2e > base_e2e * REGRESSION_GATE && residual.abs() > base_e2e * RESIDUAL_GATE;
    Some(BackendDiff {
        label: p.label.clone(),
        base_e2e,
        cur_e2e,
        deltas,
        residual,
        unattributed_regression,
    })
}

fn diff_row(d: &BackendDiff) -> Json {
    let d_e2e = d.cur_e2e - d.base_e2e;
    let phases: Vec<Json> = d
        .deltas
        .iter()
        .map(|p| {
            Json::obj()
                .field("phase", p.name)
                .field("delta_cycles_per_call", p.cycles)
                .field("delta_ns_per_call", p.cycles / CYCLES_PER_NS)
                .field("delta_pct", p.pct.map(Json::Num).unwrap_or(Json::Null))
        })
        .collect();
    Json::obj()
        .field("transport", d.label.as_str())
        .field("baseline_e2e_cycles_per_call", d.base_e2e)
        .field("e2e_delta_cycles_per_call", d_e2e)
        .field("e2e_delta_ns_per_call", d_e2e / CYCLES_PER_NS)
        .field(
            "e2e_delta_pct",
            if d.base_e2e > 0.0 {
                Json::Num((d.cur_e2e / d.base_e2e - 1.0) * 100.0)
            } else {
                Json::Null
            },
        )
        .field("residual_cycles_per_call", d.residual)
        .field("unattributed_regression", d.unattributed_regression)
        .field("phases", Json::Arr(phases))
}

fn main() {
    let calls = knob("SB_PROFILE_CALLS", 65_536) as u64;
    let mut failures: Vec<String> = Vec::new();

    let mut profiles = Vec::new();
    for backend in Backend::all() {
        match profile_backend(&backend, calls) {
            Ok(p) => profiles.push(p),
            Err(e) => failures.push(e),
        }
    }

    // The flamegraphs: one collapsed-stack file per personality, plus a
    // per-tenant variant rooted at the tenant.
    let mut gate_rows = Vec::new();
    for p in &profiles {
        let folds = fold_samples(&p.samples, &p.label);
        if let Err(e) = write_raw(
            &format!("flamegraphs/{}.collapsed", p.label),
            &collapsed_lines(&folds),
        ) {
            failures.push(format!("{}: could not write flamegraph: {e}", p.label));
        }
        let mut tenants = String::new();
        for (tenant, folds) in fold_samples_by_tenant(&p.samples, &p.label) {
            for (stack, count) in &folds {
                tenants.push_str(&format!("tenant{tenant};{stack} {count}\n"));
            }
        }
        if let Err(e) = write_raw(
            &format!("flamegraphs/{}.tenants.collapsed", p.label),
            &tenants,
        ) {
            failures.push(format!(
                "{}: could not write tenant flamegraph: {e}",
                p.label
            ));
        }
        let worst = p
            .shares
            .iter()
            .map(|s| (s.sampled / s.exact.max(1e-12) - 1.0).abs())
            .fold(0.0f64, f64::max);
        gate_rows.push(vec![
            p.label.clone(),
            format!("{:.0}", p.e2e_per_call()),
            format!("{}", p.samples.len()),
            format!("{}", p.shares.len()),
            format!("{:.1}%", worst * 100.0),
        ]);
    }
    print_table(
        &format!(
            "sampled-vs-exact gate ({calls} calls, ±{:.0}% on phases ≥{:.0}%)",
            SHARE_TOLERANCE * 100.0,
            MIN_SHARE * 100.0
        ),
        &[
            "transport",
            "e2e cyc/call",
            "samples",
            "phases gated",
            "worst err",
        ],
        &gate_rows,
    );

    let rows: Vec<Json> = profiles.iter().map(profile_row).collect();
    let rows_doc = Json::obj()
        .field("bench", "profile")
        .field("calls", calls)
        .field("rows", Json::Arr(rows.clone()));

    if knob("SB_PROFILE_WRITE", 0) != 0 {
        match write_json("profile_baseline", &rows_doc) {
            Ok(path) => println!("\nwrote baseline {}", path.display()),
            Err(e) => failures.push(format!("could not write baseline: {e}")),
        }
    }

    // The diff: against the committed baseline when present, else a
    // deterministic second pass of the same matrix.
    let baseline = read_to_string(&results_dir().join("profile_baseline.json"))
        .ok()
        .or_else(|| {
            println!("\nno committed baseline; re-running the matrix for a self-diff");
            let rows: Vec<Json> = Backend::all()
                .iter()
                .filter_map(|b| profile_backend(b, calls).ok())
                .map(|p| profile_row(&p))
                .collect();
            Some(Json::obj().field("rows", Json::Arr(rows)).to_string())
        });

    let mut diffs = Vec::new();
    if let Some(doc) = &baseline {
        let mut diff_table = Vec::new();
        for p in &profiles {
            let Some(d) = diff_backend(doc, p) else {
                failures.push(format!("{}: no baseline row to diff against", p.label));
                continue;
            };
            let d_e2e = d.cur_e2e - d.base_e2e;
            let account = if d.deltas.is_empty() {
                "unchanged".to_string()
            } else {
                d.deltas
                    .iter()
                    .map(PhaseDelta::render)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            diff_table.push(vec![
                d.label.clone(),
                format!("{:+.1} cyc ({:+.1} ns)", d_e2e, d_e2e / CYCLES_PER_NS),
                format!(
                    "{:+.2}%",
                    if d.base_e2e > 0.0 {
                        (d.cur_e2e / d.base_e2e - 1.0) * 100.0
                    } else {
                        0.0
                    }
                ),
                format!("{:+.1} cyc", d.residual),
                account,
            ]);
            if d.unattributed_regression {
                failures.push(format!(
                    "{}: end-to-end regressed {:+.1} cycles/call but named phases explain \
                     only {:+.1} (residual {:+.1}, gate {:.0}% of baseline)",
                    d.label,
                    d_e2e,
                    d_e2e - d.residual,
                    d.residual,
                    RESIDUAL_GATE * 100.0
                ));
            }
            diffs.push(d);
        }
        print_table(
            "profile diff vs baseline (Δ per call; ns at 4 GHz)",
            &["transport", "e2e Δ", "e2e Δ%", "residual", "attribution"],
            &diff_table,
        );
    }

    let doc = rows_doc.field("diff", Json::Arr(diffs.iter().map(diff_row).collect()));
    match write_json("profile", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("sampled shares match exact profiles; every regression attributed");
}
