//! The ring sweep: what batching the VMFUNC boundary buys, and what it
//! must not cost.
//!
//! Two sections, both CI-enforced:
//!
//! 1. **Simulated sweep** — ρ ∈ {0.2, 0.6, 0.95} × batch budget
//!    ∈ {1, 4, 8, 16} × every IPC personality, identical Poisson
//!    arrival streams in ring mode and direct mode, all in deterministic
//!    simulated cycles. The **latency gate** reads off the low-ρ row:
//!    on SkyBridge at ρ = 0.2 the ring-mode p50 with the working budget
//!    (8) must sit within 5% of direct mode — the adaptive doorbell has
//!    to degrade to batch-of-one when the system is idle, or async
//!    submission would tax exactly the workloads that don't need it.
//! 2. **Amortization gate** — host ns/call driving a saturated
//!    SkyBridge ring directly (submit a full budget, one doorbell, reap),
//!    interleaved min-of-N against batch-of-one on the same transport
//!    instance. At budget ≥ 8 the amortized cost must come in under
//!    294 host-speed units/call — the committed direct-mode baseline
//!    (~278 units) plus ~5%: batching pays the per-crossing work
//!    (trampoline, function-list fetch, key check) once per batch, so
//!    anything *above* the direct baseline means the ring machinery
//!    leaks per-call overhead. The check is noise-robust and dual-unit:
//!    the gate value is the **smaller** of (a) ns/call divided by the
//!    freshly probed host speed unit and (b) ns/call rescaled through
//!    the committed `results/BENCH_runtime.json` ns→units ratio. A real
//!    regression inflates both together; host noise (a slow host, a
//!    lucky probe draw) moves them apart, so only coherent movement
//!    counts, and a breach earns up to two fresh re-measurements.
//!
//! Knobs: `SB_RING_REQUESTS` (arrivals per sweep cell, default 2,000),
//! `SB_CALLS` (timed calls per rep, default 2,000), `SB_REPS`
//! (repetitions, default 5), `SB_BENCH_BASELINE` (baseline path,
//! default `results/BENCH_runtime.json`; `off` skips the rescale
//! signal).

use std::hint::black_box;
use std::time::Instant;

use sb_bench::{
    baseline_field, knob, print_table,
    report::{run_stats_json, write_json, Json},
    unit_probe,
};
use sb_runtime::{
    AdmissionPolicy, RequestFactory, RingConfig, RingTransport, RuntimeConfig, Transport,
};
use sb_ycsb::WorkloadSpec;
use skybridge_repro::scenarios::runtime::{
    build_backend, build_ring_backend, run_open_loop, run_ring_open_loop, Backend, ServingScenario,
};

/// The amortization gate: saturated ring-mode SkyBridge at batch ≥ 8
/// must cost less than this many host units per call.
const AMORTIZED_UNITS_BUDGET: f64 = 294.0;
/// The low-ρ latency gate: ring-mode p50 within 5% of direct.
const LATENCY_TOLERANCE: f64 = 0.05;
/// The ρ row the latency gate reads.
const LOW_RHO: f64 = 0.2;
/// The batch budget both gates certify.
const GATE_BUDGET: usize = 8;

const RHOS: [f64; 3] = [0.2, 0.6, 0.95];
const BUDGETS: [usize; 4] = [1, 4, 8, 16];

fn factory() -> RequestFactory {
    RequestFactory::new(WorkloadSpec::ycsb_a(10_000, 64), 64)
}

fn sweep_cfg() -> RuntimeConfig {
    RuntimeConfig {
        queue_capacity: 64,
        policy: AdmissionPolicy::Shed,
        queue_deadline: None,
        ..RuntimeConfig::default()
    }
}

/// Deterministic direct-mode cycles per call — the service rate the ρ
/// grid is scaled against.
fn cycles_per_call(backend: &Backend) -> f64 {
    let mut t = build_backend(ServingScenario::Kv, backend, 1);
    let mut f = factory();
    // Past the KV store's growth phase, so the sweep sees steady state.
    for _ in 0..512 {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("calibration call");
    }
    let t0 = t.now(0);
    let n = 512u64;
    for _ in 0..n {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("calibration call");
    }
    (t.now(0) - t0) as f64 / n as f64
}

/// One timed repetition of the saturated ring hot path: fill the
/// submission ring to `budget`, one doorbell, reap every completion.
/// One call site for every budget (`inline(never)`), so batch-of-one
/// and batch-of-eight share machine code and the measured difference is
/// amortization, not layout.
#[inline(never)]
fn rep_ring(rt: &mut RingTransport<Box<dyn Transport>>, budget: usize, calls: u64) -> f64 {
    let mut f = factory();
    let batches = (calls as usize).div_ceil(budget);
    let wall = Instant::now();
    for _ in 0..batches {
        for _ in 0..budget {
            let r = f.make(rt.now(0), None);
            rt.submit(0, &r).expect("ring slot");
        }
        rt.doorbell(0);
        while let Some(c) = rt.pop_completion(0) {
            black_box(c.corr);
        }
        black_box(rt.completion_reply(0));
    }
    wall.elapsed().as_nanos() as f64 / (batches * budget) as f64
}

struct Amortized {
    ns_batch1: f64,
    ns_batched: f64,
    unit_ns: f64,
    units_fresh: f64,
}

/// The host-time section: batch-of-one vs the gate budget on one ring
/// instance, reps interleaved with alternating order, unit probes
/// between reps, min-of-N everywhere.
fn measure_amortized(calls: u64, reps: u64) -> Amortized {
    let mut rt = build_ring_backend(
        ServingScenario::Kv,
        &Backend::SkyBridge,
        1,
        RingConfig {
            capacity: 2 * GATE_BUDGET,
            batch_budget: GATE_BUDGET,
            slot_bytes: 4096,
        },
    );
    let mut f = factory();
    for _ in 0..25_000 {
        let r = f.make(rt.now(0), None);
        rt.inner_mut().call(0, &r).expect("warm call");
    }
    let mut unit_arr = vec![0u64; 1 << 19]; // 4 MiB of u64.
    let mut ns = [f64::INFINITY; 2];
    let mut unit_ns = f64::INFINITY;
    for i in 0..reps {
        for j in 0..2usize {
            let m = if i % 2 == 0 { j } else { 1 - j };
            let budget = if m == 0 { 1 } else { GATE_BUDGET };
            ns[m] = ns[m].min(rep_ring(&mut rt, budget, calls));
        }
        unit_ns = unit_ns.min(unit_probe(&mut unit_arr));
    }
    Amortized {
        ns_batch1: ns[0],
        ns_batched: ns[1],
        unit_ns,
        units_fresh: ns[1] / unit_ns,
    }
}

fn main() {
    let requests = knob("SB_RING_REQUESTS", 2_000) as u64;
    let calls = knob("SB_CALLS", 2_000) as u64;
    let reps = knob("SB_REPS", 5) as u64;
    let seed = 0x51de_0007u64;
    let baseline_path = std::env::var("SB_BENCH_BASELINE")
        .unwrap_or_else(|_| "results/BENCH_runtime.json".to_string());
    let baseline = if baseline_path == "off" {
        None
    } else {
        std::fs::read_to_string(&baseline_path).ok()
    };
    let mut failures: Vec<String> = Vec::new();

    // Section 1: the deterministic sweep.
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    let mut direct_json = Vec::new();
    let mut low_rho_gate: Option<(u64, u64)> = None; // (direct p50, ring p50)
    for backend in Backend::all() {
        let svc = cycles_per_call(&backend);
        for &rho in &RHOS {
            let gap = svc / rho;
            let direct = run_open_loop(
                ServingScenario::Kv,
                &backend,
                1,
                sweep_cfg(),
                gap,
                requests,
                seed,
            );
            direct_json.push(
                run_stats_json(&direct)
                    .field("rho", rho)
                    .field("mean_gap_cycles", gap),
            );
            for &budget in &BUDGETS {
                let ring = run_ring_open_loop(
                    ServingScenario::Kv,
                    &backend,
                    1,
                    sweep_cfg(),
                    RingConfig {
                        capacity: 64.max(2 * budget),
                        batch_budget: budget,
                        slot_bytes: 4096,
                    },
                    gap,
                    requests,
                    seed,
                );
                let p50_vs_direct = if direct.p50() == 0 {
                    1.0
                } else {
                    ring.p50() as f64 / direct.p50() as f64
                };
                if matches!(backend, Backend::SkyBridge) && rho == LOW_RHO && budget == GATE_BUDGET
                {
                    low_rho_gate = Some((direct.p50(), ring.p50()));
                }
                rows.push(vec![
                    backend.label().to_string(),
                    format!("{rho:.2}"),
                    format!("{budget}"),
                    format!("{}", ring.p50()),
                    format!("{}", direct.p50()),
                    format!(
                        "{p50_vs_direct:+.1}%",
                        p50_vs_direct = (p50_vs_direct - 1.0) * 100.0
                    ),
                    format!("{:.2}", ring.throughput_per_mcycle()),
                    format!("{:.2}", direct.throughput_per_mcycle()),
                    format!("{}", ring.shed()),
                ]);
                sweep_json.push(
                    run_stats_json(&ring)
                        .field("rho", rho)
                        .field("batch_budget", budget)
                        .field("mean_gap_cycles", gap)
                        .field("p50_vs_direct", p50_vs_direct),
                );
                assert_eq!(
                    ring.offered,
                    ring.completed + ring.shed() + ring.timed_out + ring.failed,
                    "{}: ring sweep must conserve requests",
                    backend.label()
                );
            }
        }
    }
    print_table(
        &format!("ring sweep ({requests} arrivals/cell, 1 lane, simulated cycles)"),
        &[
            "transport",
            "rho",
            "budget",
            "ring p50",
            "direct p50",
            "p50 delta",
            "ring thr/Mcyc",
            "direct thr/Mcyc",
            "shed",
        ],
        &rows,
    );

    let (direct_p50, ring_p50) = low_rho_gate.expect("the sweep covers the gate cell");
    let latency_ratio = if direct_p50 == 0 {
        1.0
    } else {
        ring_p50 as f64 / direct_p50 as f64
    };
    if latency_ratio > 1.0 + LATENCY_TOLERANCE {
        failures.push(format!(
            "skybridge: ring p50 at rho={LOW_RHO} is {ring_p50} cycles vs {direct_p50} direct \
             ({:+.1}%, budget {:.0}%)",
            (latency_ratio - 1.0) * 100.0,
            LATENCY_TOLERANCE * 100.0
        ));
    }

    // Section 2: the amortization gate, re-measured on a breach.
    let base = baseline.as_deref().and_then(|doc| {
        Some((
            baseline_field(doc, "skybridge", "ns_per_call")?,
            baseline_field(doc, "skybridge", "units_per_call")?,
        ))
    });
    // The dual-unit gate value: fresh-probe units, or the committed
    // ns→units rescale, whichever is *smaller* — host noise moves them
    // apart, a real cost moves them together.
    let gate_units = |a: &Amortized| match base {
        Some((base_ns, base_units)) => a.units_fresh.min(a.ns_batched * base_units / base_ns),
        None => a.units_fresh,
    };
    let mut amortized = measure_amortized(calls, reps);
    let mut tries = 0;
    while gate_units(&amortized) >= AMORTIZED_UNITS_BUDGET && tries < 2 {
        tries += 1;
        eprintln!(
            "note: amortization gate breached ({:.0} units), re-measuring",
            gate_units(&amortized)
        );
        let again = measure_amortized(calls, reps);
        if gate_units(&again) < gate_units(&amortized) {
            amortized = again;
        }
    }
    let units = gate_units(&amortized);
    print_table(
        &format!("skybridge amortization ({calls} calls/rep, best of {reps})"),
        &["batch", "ns/call", "units/call", "budget"],
        &[
            vec![
                "1".to_string(),
                format!("{:.0}", amortized.ns_batch1),
                format!("{:.1}", amortized.ns_batch1 / amortized.unit_ns),
                "-".to_string(),
            ],
            vec![
                format!("{GATE_BUDGET}"),
                format!("{:.0}", amortized.ns_batched),
                format!("{units:.1}"),
                format!("< {AMORTIZED_UNITS_BUDGET:.0}"),
            ],
        ],
    );
    if baseline.is_none() && baseline_path != "off" {
        println!("note: no committed baseline at {baseline_path}; fresh-probe units only");
    }
    if units >= AMORTIZED_UNITS_BUDGET {
        failures.push(format!(
            "skybridge: amortized ring mode costs {units:.0} units/call at batch \
             {GATE_BUDGET} (budget < {AMORTIZED_UNITS_BUDGET:.0})"
        ));
    }

    let doc = Json::obj()
        .field("bench", "ring")
        .field("amortized_units_budget", AMORTIZED_UNITS_BUDGET)
        .field("latency_tolerance", LATENCY_TOLERANCE)
        .field("gate_budget", GATE_BUDGET)
        .field("requests", requests)
        .field("calls", calls)
        .field("reps", reps)
        .field(
            "latency_gate",
            Json::obj()
                .field("rho", LOW_RHO)
                .field("direct_p50", direct_p50)
                .field("ring_p50", ring_p50)
                .field("ratio", latency_ratio),
        )
        .field(
            "amortization_gate",
            Json::obj()
                .field("ns_per_call_batch1", amortized.ns_batch1)
                .field("ns_per_call_batched", amortized.ns_batched)
                .field("host_unit_ns", amortized.unit_ns)
                .field("units_fresh", amortized.units_fresh)
                .field("units_gate_value", units),
        )
        .field("sweep", Json::Arr(sweep_json))
        .field("direct", Json::Arr(direct_json));
    match write_json("ring", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "ring gates hold: amortized {units:.0} units/call < {AMORTIZED_UNITS_BUDGET:.0}, \
         low-rho p50 {:+.1}% of direct",
        (latency_ratio - 1.0) * 100.0
    );
}
