//! Serving-runtime scaling sweep: threads × offered load × IPC transport.
//!
//! For each of the four transports (seL4, Fiasco.OC, Zircon kernel IPC,
//! and SkyBridge direct server calls) and each worker-thread count
//! (1/2/4/8 simulated cores), the sweep calibrates the transport's base
//! service time, then offers open-loop Poisson load at multiples of the
//! theoretical capacity (ρ = offered / capacity) and records throughput,
//! p50/p95/p99 latency, shed counts, and per-core utilization. Results go
//! to `results/runtime_scaling.json`.
//!
//! Defaults simulate ~1.04M requests (80 cells × 13,000); `SB_REQUESTS`
//! scales the per-cell count.
//!
//! Set `SB_TRACE=1` (or `SB_TRACE=<backend label>`, e.g.
//! `SB_TRACE=fiasco`) to additionally run one traced cell with a live
//! recorder and dump `results/runtime_scaling_trace.json` — a Chrome
//! trace-event file: open <https://ui.perfetto.dev> and drag it in, or
//! load it at `chrome://tracing`.

use sb_bench::{
    knob, print_table,
    report::{run_stats_json, write_json, write_raw, Json},
};
use sb_observe::{chrome_trace, Recorder};
use sb_runtime::{AdmissionPolicy, RequestFactory, RuntimeConfig, Transport};
use skybridge_repro::scenarios::runtime::{
    build_backend, ops_per_sec, run_open_loop, Backend, ServingScenario,
};

/// Mean service cycles of one request, measured on a warm lane.
fn calibrate(transport: &mut dyn Transport, factory: &mut RequestFactory) -> f64 {
    let (warm, n) = (64, 256);
    for _ in 0..warm {
        let req = factory.make(transport.now(0), None);
        transport.call(0, &req).expect("calibration call");
    }
    let t0 = transport.now(0);
    for _ in 0..n {
        let req = factory.make(transport.now(0), None);
        transport.call(0, &req).expect("calibration call");
    }
    (transport.now(0) - t0) as f64 / n as f64
}

/// `SB_TRACE` mode: one fully traced cell whose Chrome trace goes to
/// `results/traces/runtime_scaling_trace.json` for Perfetto (the
/// `traces/` subtree is scratch output and stays untracked; a small
/// checked-in sample lives at `results/sample_trace.json`). Uses a ring much
/// larger than the always-on default so a whole cell fits without
/// overwrites (and reports how many events were dropped if not).
fn dump_trace(which: &str, requests: u64, capacity: usize) {
    let which = which.to_ascii_lowercase();
    let backend = Backend::all()
        .into_iter()
        .find(|b| b.label().to_ascii_lowercase().starts_with(&which))
        .unwrap_or(Backend::SkyBridge);
    let recorder = Recorder::new(knob("SB_TRACE_RING", 1 << 15));
    let cfg = RuntimeConfig {
        queue_capacity: capacity,
        policy: AdmissionPolicy::Shed,
        queue_deadline: None,
        recorder: recorder.clone(),
        ..RuntimeConfig::default()
    };
    let mut cal = build_backend(ServingScenario::Kv, &backend, 1);
    let mut cal_factory = RequestFactory::new(
        ServingScenario::Kv.workload(),
        ServingScenario::Kv.payload(),
    );
    let svc = calibrate(cal.as_mut(), &mut cal_factory);
    let workers = 4;
    let traced = requests.min(2_000);
    let stats = run_open_loop(
        ServingScenario::Kv,
        &backend,
        workers,
        cfg,
        svc / (workers as f64 * 0.8),
        traced,
        0x7a_ced0_5eed,
    );
    let trace = chrome_trace(&recorder);
    match write_raw("traces/runtime_scaling_trace.json", &trace.json) {
        Ok(path) => {
            println!(
                "\ntraced kv/ycsb-a on {} ({} requests, {} events{}):\n  open https://ui.perfetto.dev and drag in {}",
                backend.label(),
                stats.completed,
                trace.events,
                if trace.truncated {
                    format!(", ring overwrote {} — raise SB_TRACE_RING", trace.dropped)
                } else {
                    String::new()
                },
                path.display()
            );
        }
        Err(e) => eprintln!("\ncould not write trace: {e}"),
    }
}

fn main() {
    let requests = knob("SB_REQUESTS", 13_000) as u64;
    let capacity = knob("SB_QUEUE_CAPACITY", 64);
    let scenario = ServingScenario::Kv;
    let threads = [1usize, 2, 4, 8];
    let rhos = [0.5, 0.8, 1.0, 1.2, 1.5];
    let cells = Backend::all().len() * threads.len() * rhos.len();
    println!(
        "runtime_scaling: {} cells x {requests} requests = {} total simulated requests",
        cells,
        cells as u64 * requests
    );

    let mut json_rows: Vec<Json> = Vec::new();
    for (ti, transport) in Backend::all().iter().enumerate() {
        let mut cal_transport = build_backend(scenario, transport, 1);
        let mut cal_factory = RequestFactory::new(scenario.workload(), scenario.payload());
        let svc = calibrate(cal_transport.as_mut(), &mut cal_factory);
        let mut rows = Vec::new();
        for (wi, &workers) in threads.iter().enumerate() {
            let mut row = vec![format!("{} threads", workers)];
            for (ri, &rho) in rhos.iter().enumerate() {
                let mean_ia = svc / (workers as f64 * rho);
                let cfg = RuntimeConfig {
                    queue_capacity: capacity,
                    policy: AdmissionPolicy::Shed,
                    queue_deadline: None,
                    ..RuntimeConfig::default()
                };
                let seed = 0x0005_ca1e_0000 + (ti * 1000 + wi * 100 + ri) as u64;
                let stats =
                    run_open_loop(scenario, transport, workers, cfg, mean_ia, requests, seed);
                row.push(format!(
                    "{:.1}/Mc p99={} shed={}",
                    stats.throughput_per_mcycle(),
                    stats.p99(),
                    stats.shed()
                ));
                json_rows.push(
                    Json::obj()
                        .field("transport", transport.label())
                        .field("workers", workers)
                        .field("rho", rho)
                        .field("service_cycles", svc)
                        .field("mean_inter_arrival", mean_ia)
                        .field("offered_per_mcycle", 1e6 / mean_ia)
                        .field("ops_per_sec", ops_per_sec(&stats))
                        .field("stats", run_stats_json(&stats)),
                );
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "runtime scaling on {} (service ~{:.0} cycles) — throughput/Mcycle, p99 cycles, shed",
                transport.label(),
                svc
            ),
            &["workers", "rho=0.5", "rho=0.8", "rho=1.0", "rho=1.2", "rho=1.5"],
            &rows,
        );
    }

    let doc = Json::obj()
        .field("bench", "runtime_scaling")
        .field("scenario", "kv")
        .field("workload", "ycsb-a")
        .field("requests_per_cell", requests)
        .field("queue_capacity", capacity)
        .field("rows", Json::Arr(json_rows));
    match write_json("runtime_scaling", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }
    println!(
        "\nShape to check: at every thread count SkyBridge's zero-shed\n\
         offered load sits above each trap-based kernel's, and p99 blows\n\
         up past rho = 1.0 while the Shed policy bounds queue depth."
    );

    if let Ok(which) = std::env::var("SB_TRACE") {
        dump_trace(&which, requests, capacity);
    }
}
