//! Serving-runtime scaling sweep: threads × offered load × IPC transport.
//!
//! For each of the five transports (seL4, Fiasco.OC, Zircon kernel IPC,
//! SkyBridge direct server calls, and MPK protection-key crossings) and
//! each worker-thread count (1/2/4/8 simulated cores), the sweep
//! calibrates the transport's base service time, then offers open-loop
//! Poisson load at multiples of the theoretical capacity
//! (ρ = offered / capacity) and records throughput, p50/p95/p99 latency,
//! shed counts, and per-core utilization. Results go to
//! `results/runtime_scaling.json`.
//!
//! A CI-enforced **five-way gate** closes the sweep: every personality's
//! traced phase self-times must decompose its end-to-end cycles (within
//! 5%), the trap kernels' calibrated service time must exceed
//! SkyBridge's, and MPK's must undercut it — two WRPKRU flips
//! (2 × 28 cycles) against a VMFUNC round trip (2 × 134). A breach
//! prints `FAIL:` lines and exits nonzero.
//!
//! Defaults simulate ~1.04M requests (80 cells × 13,000); `SB_REQUESTS`
//! scales the per-cell count.
//!
//! Set `SB_TRACE=1` (or `SB_TRACE=<backend label>`, e.g.
//! `SB_TRACE=fiasco`) to additionally run one traced cell with a live
//! recorder and dump `results/runtime_scaling_trace.json` — a Chrome
//! trace-event file: open <https://ui.perfetto.dev> and drag it in, or
//! load it at `chrome://tracing`.

use sb_bench::{
    knob, print_table,
    report::{run_stats_json, write_json, write_raw, Json},
};
use sb_observe::{attribute, chrome_trace, Recorder, SpanKind};
use sb_runtime::{AdmissionPolicy, RequestFactory, RuntimeConfig, Transport};
use skybridge_repro::scenarios::runtime::{
    build_backend, ops_per_sec, run_open_loop, Backend, ServingScenario,
};

/// Mean service cycles of one request, measured on a warm lane.
fn calibrate(transport: &mut dyn Transport, factory: &mut RequestFactory) -> f64 {
    let (warm, n) = (64, 256);
    for _ in 0..warm {
        let req = factory.make(transport.now(0), None);
        transport.call(0, &req).expect("calibration call");
    }
    let t0 = transport.now(0);
    for _ in 0..n {
        let req = factory.make(transport.now(0), None);
        transport.call(0, &req).expect("calibration call");
    }
    (transport.now(0) - t0) as f64 / n as f64
}

/// `SB_TRACE` mode: one fully traced cell whose Chrome trace goes to
/// `results/traces/runtime_scaling_trace.json` for Perfetto (the
/// `traces/` subtree is scratch output and stays untracked; a small
/// checked-in sample lives at `results/sample_trace.json`). Uses a ring much
/// larger than the always-on default so a whole cell fits without
/// overwrites (and reports how many events were dropped if not).
fn dump_trace(which: &str, requests: u64, capacity: usize) {
    let which = which.to_ascii_lowercase();
    let backend = Backend::all()
        .into_iter()
        .find(|b| b.label().to_ascii_lowercase().starts_with(&which))
        .unwrap_or(Backend::SkyBridge);
    let recorder = Recorder::new(knob("SB_TRACE_RING", 1 << 15));
    let cfg = RuntimeConfig {
        queue_capacity: capacity,
        policy: AdmissionPolicy::Shed,
        queue_deadline: None,
        recorder: recorder.clone(),
        ..RuntimeConfig::default()
    };
    let mut cal = build_backend(ServingScenario::Kv, &backend, 1);
    let mut cal_factory = RequestFactory::new(
        ServingScenario::Kv.workload(),
        ServingScenario::Kv.payload(),
    );
    let svc = calibrate(cal.as_mut(), &mut cal_factory);
    let workers = 4;
    let traced = requests.min(2_000);
    let stats = run_open_loop(
        ServingScenario::Kv,
        &backend,
        workers,
        cfg,
        svc / (workers as f64 * 0.8),
        traced,
        0x7a_ced0_5eed,
    );
    let trace = chrome_trace(&recorder);
    match write_raw("traces/runtime_scaling_trace.json", &trace.json) {
        Ok(path) => {
            println!(
                "\ntraced kv/ycsb-a on {} ({} requests, {} events{}):\n  open https://ui.perfetto.dev and drag in {}",
                backend.label(),
                stats.completed,
                trace.events,
                if trace.truncated {
                    format!(", ring overwrote {} — raise SB_TRACE_RING", trace.dropped)
                } else {
                    String::new()
                },
                path.display()
            );
        }
        Err(e) => eprintln!("\ncould not write trace: {e}"),
    }
}

/// Tolerance on the per-personality phase-decomposition identity.
const PHASE_TOLERANCE: f64 = 0.05;

/// The five-way gate: every personality's traced phases must decompose
/// its end-to-end cycles, and the calibrated service times must order
/// the way the crossing costs say they should — each trap kernel above
/// SkyBridge, and MPK below it (two WRPKRU flips against a VMFUNC round
/// trip). `svcs` carries the (label, service cycles) pairs the sweep
/// calibrated; breaches land in `failures`.
fn five_way_gate(svcs: &[(String, f64)], failures: &mut Vec<String>) -> Json {
    let mut rows = Vec::new();
    for backend in Backend::all() {
        let recorder = Recorder::new(1 << 14);
        let mut t = build_backend(ServingScenario::Kv, &backend, 1);
        let mut f = RequestFactory::new(
            ServingScenario::Kv.workload(),
            ServingScenario::Kv.payload(),
        );
        for _ in 0..64 {
            let r = f.make(t.now(0), None);
            t.call(0, &r).expect("warm call");
        }
        t.attach_recorder(recorder.clone());
        for _ in 0..256 {
            let r = f.make(t.now(0), None);
            t.call(0, &r).expect("traced call");
        }
        let by_lane: Vec<_> = (0..recorder.lane_count())
            .map(|l| recorder.events(l))
            .collect();
        let prof = attribute(&by_lane);
        let ratio = if prof.end_to_end == 0 {
            0.0
        } else {
            prof.in_call_total() as f64 / prof.end_to_end as f64
        };
        if (ratio - 1.0).abs() > PHASE_TOLERANCE {
            failures.push(format!(
                "{}: phase self-times cover {:.1}% of end-to-end cycles",
                backend.label(),
                ratio * 100.0
            ));
        }
        let mut phases = Vec::new();
        for kind in SpanKind::ALL {
            if prof.get(kind) > 0 {
                phases.push(
                    Json::obj()
                        .field("phase", kind.name())
                        .field("cycles_per_call", prof.per_call(kind)),
                );
            }
        }
        let svc = svcs
            .iter()
            .find(|(l, _)| l == backend.label())
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        rows.push(
            Json::obj()
                .field("transport", backend.label())
                .field("service_cycles", svc)
                .field("phase_sum_over_end_to_end", ratio)
                .field("breakdown", Json::Arr(phases)),
        );
    }

    let svc_of = |label: &str| svcs.iter().find(|(l, _)| l == label).map(|&(_, s)| s);
    match (svc_of("skybridge"), svc_of("mpk")) {
        (Some(sky), Some(mpk)) => {
            if mpk >= sky {
                failures.push(format!(
                    "mpk: {mpk:.0} service cycles/call must undercut skybridge's {sky:.0} — \
                     two WRPKRU flips against a VMFUNC round trip"
                ));
            }
            for (label, svc) in svcs {
                if label != "skybridge" && label != "mpk" && *svc <= sky {
                    failures.push(format!(
                        "{label}: trap IPC at {svc:.0} cycles/call must cost more than \
                         skybridge's {sky:.0}"
                    ));
                }
            }
        }
        _ => failures.push("five-way gate: skybridge or mpk missing from the sweep".to_string()),
    }

    Json::obj()
        .field("phase_tolerance", PHASE_TOLERANCE)
        .field("rows", Json::Arr(rows))
}

fn main() {
    let requests = knob("SB_REQUESTS", 13_000) as u64;
    let capacity = knob("SB_QUEUE_CAPACITY", 64);
    let scenario = ServingScenario::Kv;
    let threads = [1usize, 2, 4, 8];
    let rhos = [0.5, 0.8, 1.0, 1.2, 1.5];
    let cells = Backend::all().len() * threads.len() * rhos.len();
    println!(
        "runtime_scaling: {} cells x {requests} requests = {} total simulated requests",
        cells,
        cells as u64 * requests
    );

    let mut json_rows: Vec<Json> = Vec::new();
    let mut svcs: Vec<(String, f64)> = Vec::new();
    for (ti, transport) in Backend::all().iter().enumerate() {
        let mut cal_transport = build_backend(scenario, transport, 1);
        let mut cal_factory = RequestFactory::new(scenario.workload(), scenario.payload());
        let svc = calibrate(cal_transport.as_mut(), &mut cal_factory);
        svcs.push((transport.label().to_string(), svc));
        let mut rows = Vec::new();
        for (wi, &workers) in threads.iter().enumerate() {
            let mut row = vec![format!("{} threads", workers)];
            for (ri, &rho) in rhos.iter().enumerate() {
                let mean_ia = svc / (workers as f64 * rho);
                let cfg = RuntimeConfig {
                    queue_capacity: capacity,
                    policy: AdmissionPolicy::Shed,
                    queue_deadline: None,
                    ..RuntimeConfig::default()
                };
                let seed = 0x0005_ca1e_0000 + (ti * 1000 + wi * 100 + ri) as u64;
                let stats =
                    run_open_loop(scenario, transport, workers, cfg, mean_ia, requests, seed);
                row.push(format!(
                    "{:.1}/Mc p99={} shed={}",
                    stats.throughput_per_mcycle(),
                    stats.p99(),
                    stats.shed()
                ));
                json_rows.push(
                    Json::obj()
                        .field("transport", transport.label())
                        .field("workers", workers)
                        .field("rho", rho)
                        .field("service_cycles", svc)
                        .field("mean_inter_arrival", mean_ia)
                        .field("offered_per_mcycle", 1e6 / mean_ia)
                        .field("ops_per_sec", ops_per_sec(&stats))
                        .field("stats", run_stats_json(&stats)),
                );
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "runtime scaling on {} (service ~{:.0} cycles) — throughput/Mcycle, p99 cycles, shed",
                transport.label(),
                svc
            ),
            &["workers", "rho=0.5", "rho=0.8", "rho=1.0", "rho=1.2", "rho=1.5"],
            &rows,
        );
    }

    let mut failures: Vec<String> = Vec::new();
    let five_way = five_way_gate(&svcs, &mut failures);
    let mut order = svcs.clone();
    order.sort_by(|a, b| a.1.total_cmp(&b.1));
    print_table(
        "five-way crossing comparison (calibrated service cycles/call, cheapest first)",
        &["transport", "service cycles"],
        &order
            .iter()
            .map(|(l, s)| vec![l.clone(), format!("{s:.0}")])
            .collect::<Vec<_>>(),
    );

    let doc = Json::obj()
        .field("bench", "runtime_scaling")
        .field("scenario", "kv")
        .field("workload", "ycsb-a")
        .field("requests_per_cell", requests)
        .field("queue_capacity", capacity)
        .field("five_way", five_way)
        .field("rows", Json::Arr(json_rows));
    match write_json("runtime_scaling", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }
    println!(
        "\nShape to check: at every thread count SkyBridge's zero-shed\n\
         offered load sits above each trap-based kernel's with MPK's above\n\
         both, and p99 blows up past rho = 1.0 while the Shed policy\n\
         bounds queue depth."
    );

    if let Ok(which) = std::env::var("SB_TRACE") {
        dump_trace(&which, requests, capacity);
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "five-way gate holds: phases decompose on every personality; \
         traps > skybridge > mpk per crossing"
    );
}
