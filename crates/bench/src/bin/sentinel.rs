//! The sentinel tax and the perf trajectory: host ns per call with the
//! full sentinel armed (tracing + online SLO tracking) against plain
//! always-on tracing, plus the critical-path decomposition of multi-hop
//! chains, plus the committed ns/call baseline gate.
//!
//! Three sections, all CI-enforced:
//!
//! 1. **Overhead gate** — on one transport instance per personality,
//!    interleaved min-of-N (order alternating every round, one full
//!    re-measurement pass on a breach): `sentinel` mode (live recorder
//!    plus per-call SLO recording, the production configuration) must
//!    cost at most 5% over `traced` mode, the live recorder alone —
//!    PR 4's enabled mode.
//! 2. **Critical path** — a depth-3 chain per personality, assembled
//!    into span trees; the critical path must cover end-to-end cycles
//!    within 5% on every request.
//! 3. **Perf trajectory** — fresh sentinel-armed ns/call per
//!    personality is compared against the committed baseline at
//!    `results/BENCH_runtime.json` — the single canonical copy — and
//!    then written back to the same path (the baseline is read before
//!    the write; refreshing it means committing the rewritten file).
//!    Override the path with `SB_BENCH_BASELINE`. Any personality
//!    regressing more than 10% fails the run, after up to two fresh
//!    re-measurements. The gate demands *coherent* regression across
//!    two signals: raw ns/call, and ns/call divided by the minimum
//!    of a memory-bound reference loop probed between reps (the
//!    "host speed unit"). A real code regression inflates both
//!    together; host noise moves them apart — a sustained slow host
//!    inflates raw ns but divides out of the units, while a lucky
//!    layout draw for the reference loop moves the units while raw
//!    ns stands still — so only the *smaller* of the two regressions
//!    counts against the budget. Re-measurements run in a *fresh
//!    child process* (`SB_ONLY=<transport>` re-exec): the residual
//!    run-to-run variance is the address-space layout drawn at
//!    process start, which no amount of in-process repetition
//!    re-rolls. Simulated cycles per call ride along in the rows as
//!    the fully machine-independent signal.
//!
//! Knobs: `SB_CALLS` (timed calls per rep, default 3,000), `SB_REPS`
//! (repetitions per mode, default 5), `SB_BENCH_BASELINE` (baseline
//! path, default `results/BENCH_runtime.json`; set to `off` to skip
//! the gate).

use std::hint::black_box;
use std::time::Instant;

use sb_bench::{
    baseline_field, knob, print_table,
    report::{write_json, Json},
    unit_probe,
};
use sb_observe::Recorder;
use sb_runtime::{RequestFactory, Transport};
use sb_sentinel::{assemble, SloHandle, SloSpec};
use sb_ycsb::WorkloadSpec;
use skybridge_repro::scenarios::runtime::{build_backend, Backend, ServingScenario};
use skybridge_repro::scenarios::sentinel::chain_for;

/// The sentinel's ns/call budget over plain tracing: 5% relative.
const SENTINEL_BUDGET: f64 = 0.05;
/// Tolerance on critical-path coverage of end-to-end cycles.
const PATH_TOLERANCE: f64 = 0.05;
/// The perf-trajectory gate: >10% ns/call over the committed baseline
/// fails.
const REGRESSION_BUDGET: f64 = 0.10;

fn factory() -> RequestFactory {
    RequestFactory::new(WorkloadSpec::ycsb_a(10_000, 64), 64)
}

/// One timed repetition. Both modes execute this exact function — one
/// call site, `inline(never)` — so they share machine code, loop shape,
/// alignment, and per-call `now()` reads, and the measured difference
/// is the sentinel's SLO recording and nothing else. (Letting the two
/// modes inline separately skews a ~1 µs SkyBridge call by >10% from
/// code layout alone.) With `slo: None` this is PR 4's `traced` enabled
/// mode; with `Some` it is the full production path the dispatcher
/// runs.
#[inline(never)]
fn rep(t: &mut dyn Transport, calls: u64, slo: Option<&SloHandle>) -> f64 {
    let mut f = factory();
    let wall = Instant::now();
    for _ in 0..calls {
        let r = f.make(t.now(0), None);
        match t.call(0, &r) {
            Ok(_) => {
                let done = t.now(0);
                if let Some(s) = slo {
                    s.complete(done, done.saturating_sub(r.arrival));
                }
                black_box(done);
            }
            Err(_) => {
                if let Some(s) = slo {
                    s.error(t.now(0));
                }
            }
        }
        black_box(t.reply(0));
    }
    wall.elapsed().as_nanos() as f64 / calls as f64
}

// The KV store behind the service grows until the 10k keyspace is fully
// populated; warming must ride past that point or the first-timed mode
// runs against a smaller, faster store and the comparison is unfair.
fn warm(t: &mut dyn Transport) {
    let mut f = factory();
    for _ in 0..25_000 {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("warm call");
    }
}

struct BackendResult {
    label: String,
    traced_ns: f64,
    sentinel_ns: f64,
    /// `min(sentinel rep ns) / min(unit probe ns)` over the whole
    /// interleaved run — the host-speed-normalized cost the
    /// trajectory gate compares.
    units_per_call: f64,
    /// The best (quiet-window) unit probe, for the record.
    unit_ns: f64,
    cycles_per_call: f64,
    path_cover: f64,
    dominant: String,
    failures: Vec<String>,
}

fn run_backend(backend: &Backend, calls: u64, reps: u64) -> BackendResult {
    let label = backend.label().to_string();
    let mut failures = Vec::new();

    // Both modes run on ONE transport instance (separate instances
    // differ by several percent from allocation layout alone), reps
    // interleaved with alternating order so slow host drift cancels;
    // min-of-N filters scheduler noise, and a gate breach earns one
    // full re-measurement pass with the minima carried over.
    let mut t = build_backend(ServingScenario::Kv, backend, 1);
    let recorder = Recorder::new(sb_observe::DEFAULT_RING_CAPACITY);
    t.attach_recorder(recorder.clone());
    let slo = SloHandle::new(SloSpec::default());
    let mut unit_arr = vec![0u64; 1 << 19]; // 4 MiB of u64.
    warm(t.as_mut());
    let mut ns = [f64::INFINITY; 2];
    let mut unit_ns = f64::INFINITY;
    for pass in 0..3 {
        for i in 0..reps {
            for j in 0..2usize {
                let m = if i % 2 == 0 { j } else { 1 - j };
                let slo_arg = if m == 0 { None } else { Some(&slo) };
                ns[m] = ns[m].min(rep(t.as_mut(), calls, slo_arg));
            }
            // Probe the unit between reps so its samples share the
            // run's timeline: both minima land in quiet windows.
            unit_ns = unit_ns.min(unit_probe(&mut unit_arr));
        }
        if ns[1] <= ns[0] * (1.0 + SENTINEL_BUDGET) {
            break;
        }
        if pass == 0 {
            eprintln!("note: {label}: sentinel gate breached on pass 1, re-measuring");
        }
    }
    let [traced_ns, sentinel_ns] = ns;
    let units_per_call = sentinel_ns / unit_ns;
    if sentinel_ns > traced_ns * (1.0 + SENTINEL_BUDGET) {
        failures.push(format!(
            "{label}: sentinel costs {sentinel_ns:.0} ns/call vs {traced_ns:.0} traced \
             (budget {:.0}%)",
            SENTINEL_BUDGET * 100.0
        ));
    }

    // The machine-independent signal: simulated cycles per call on a
    // deterministic run.
    let cycles_per_call = {
        let t0 = t.now(0);
        let mut f = factory();
        let n = 512u64;
        for _ in 0..n {
            let r = f.make(t.now(0), None);
            t.call(0, &r).expect("cycle-count call");
        }
        (t.now(0) - t0) as f64 / n as f64
    };

    // Critical path on a fresh multi-hop chain: the assembled tree must
    // cover the client-observed end-to-end cycles on every request.
    let chain_rec = Recorder::new(sb_observe::DEFAULT_RING_CAPACITY);
    let run = chain_for(backend, 3, 8, &chain_rec);
    let forest = assemble(&chain_rec);
    let mut worst = 1.0f64;
    let mut dominant = String::from("-");
    for &(corr, end_to_end) in &run.requests {
        match forest.request(corr) {
            Some(tr) => {
                let cover = if end_to_end == 0 {
                    1.0
                } else {
                    tr.critical_path_cycles() as f64 / end_to_end as f64
                };
                if (cover - 1.0).abs() > (worst - 1.0).abs() {
                    worst = cover;
                }
                if let Some(step) = tr.dominant() {
                    dominant = format!("{} ({} cyc)", step.kind.name(), step.cycles);
                }
            }
            None => failures.push(format!("{label}: request {corr} missing from the forest")),
        }
    }
    if (worst - 1.0).abs() > PATH_TOLERANCE {
        failures.push(format!(
            "{label}: critical path covers {:.1}% of end-to-end cycles",
            worst * 100.0
        ));
    }

    BackendResult {
        label,
        traced_ns,
        sentinel_ns,
        units_per_call,
        unit_ns,
        cycles_per_call,
        path_cover: worst,
        dominant,
        failures,
    }
}

/// Re-times one backend in a fresh child process (`SB_ONLY` mode).
/// Once the unit calibration has divided host speed out, the dominant
/// run-to-run variance left is the address-space layout drawn at
/// process start — re-rolled only by a re-exec, never by repeating
/// the measurement in-process.
fn remeasure(label: &str, calls: u64, reps: u64) -> Option<(f64, f64)> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .env("SB_ONLY", label)
        .env("SB_CALLS", calls.to_string())
        .env("SB_REPS", reps.to_string())
        .output()
        .ok()?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> Option<f64> {
        let prefix = format!("{key}:");
        let line = stdout.lines().find(|l| l.starts_with(&prefix))?;
        line[prefix.len()..].trim().parse().ok()
    };
    Some((field("ns_per_call")?, field("units_per_call")?))
}

fn main() {
    let calls = knob("SB_CALLS", 3_000) as u64;
    let reps = knob("SB_REPS", 5) as u64;
    if let Ok(only) = std::env::var("SB_ONLY") {
        // Child re-measure mode: one backend under a freshly drawn
        // address-space layout; the parent parses the line below.
        let backend = Backend::all()
            .into_iter()
            .find(|b| b.label() == only)
            .unwrap_or_else(|| panic!("SB_ONLY={only}: unknown transport"));
        let r = run_backend(&backend, calls, reps);
        println!("ns_per_call:{}", r.sentinel_ns);
        println!("units_per_call:{}", r.units_per_call);
        return;
    }
    let baseline_path = std::env::var("SB_BENCH_BASELINE")
        .unwrap_or_else(|_| "results/BENCH_runtime.json".to_string());

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut bench_rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let baseline = if baseline_path == "off" {
        None
    } else {
        std::fs::read_to_string(&baseline_path).ok()
    };

    for backend in Backend::all() {
        let r = run_backend(&backend, calls, reps);
        let base = baseline.as_deref().and_then(|doc| {
            Some((
                baseline_field(doc, &r.label, "ns_per_call")?,
                baseline_field(doc, &r.label, "units_per_call")?,
            ))
        });
        // The gate value: the *smaller* regression of the two signals.
        // Raw ns and host-normalized units move apart under host noise
        // but together under a real code regression.
        let reg = |ns: f64, units: f64, (base_ns, base_units): (f64, f64)| {
            (ns / base_ns).min(units / base_units) - 1.0
        };
        // A breach of the trajectory gate earns up to two fresh
        // re-measurements in child processes — same policy as the tax
        // gate: a transient hiccup or an unlucky layout draw must not
        // read as a code regression; a real regression survives every
        // re-roll.
        let (mut gate_ns, mut gate_units) = (r.sentinel_ns, r.units_per_call);
        if let Some(base) = base {
            let mut tries = 0;
            while reg(gate_ns, gate_units, base) > REGRESSION_BUDGET && tries < 2 {
                tries += 1;
                eprintln!(
                    "note: {}: baseline gate breached ({gate_ns:.0} ns, {gate_units:.0} \
                     units vs {:.0} ns, {:.0} units), re-measuring in a fresh process",
                    r.label, base.0, base.1
                );
                let (ns2, units2) = remeasure(&r.label, calls, reps).unwrap_or_else(|| {
                    // A host where re-exec is unavailable still gets an
                    // in-process retry for its burst-filtering value.
                    let again = run_backend(&backend, calls, reps);
                    (again.sentinel_ns, again.units_per_call)
                });
                gate_ns = gate_ns.min(ns2);
                gate_units = gate_units.min(units2);
            }
        }
        let vs_baseline = base.map(|base| {
            let ratio = reg(gate_ns, gate_units, base);
            if ratio > REGRESSION_BUDGET {
                failures.push(format!(
                    "{}: {gate_ns:.0} ns/call and {gate_units:.0} units/call both \
                     regressed {:+.1}% over the committed {:.0} ns / {:.0} units \
                     (budget {:.0}%)",
                    r.label,
                    ratio * 100.0,
                    base.0,
                    base.1,
                    REGRESSION_BUDGET * 100.0
                ));
            }
            ratio
        });
        rows.push(vec![
            r.label.clone(),
            format!("{:.0}", r.traced_ns),
            format!("{:.0}", r.sentinel_ns),
            format!("{:+.1}%", (r.sentinel_ns / r.traced_ns - 1.0) * 100.0),
            format!("{:.0}", r.cycles_per_call),
            format!("{:.1}%", r.path_cover * 100.0),
            vs_baseline.map_or("-".to_string(), |d| format!("{:+.1}%", d * 100.0)),
        ]);
        json_rows.push(
            Json::obj()
                .field("transport", r.label.as_str())
                .field("traced_ns_per_call", r.traced_ns)
                .field("sentinel_ns_per_call", r.sentinel_ns)
                .field("sentinel_overhead", r.sentinel_ns / r.traced_ns - 1.0)
                .field("cycles_per_call", r.cycles_per_call)
                .field("critical_path_cover", r.path_cover)
                .field("dominant_step", r.dominant.as_str()),
        );
        bench_rows.push(
            Json::obj()
                .field("transport", r.label.as_str())
                .field("ns_per_call", r.sentinel_ns)
                .field("units_per_call", r.units_per_call)
                .field("host_unit_ns", r.unit_ns)
                .field("cycles_per_call", r.cycles_per_call),
        );
        failures.extend(r.failures);
    }
    print_table(
        &format!("sentinel tax ({calls} calls/rep, best of {reps})"),
        &[
            "transport",
            "traced ns",
            "sentinel ns",
            "sentinel tax",
            "sim cyc/call",
            "path cover",
            "vs baseline",
        ],
        &rows,
    );
    if baseline.is_none() && baseline_path != "off" {
        println!("note: no committed baseline at {baseline_path}; regression gate skipped");
    }

    let doc = Json::obj()
        .field("bench", "sentinel")
        .field("sentinel_budget", SENTINEL_BUDGET)
        .field("path_tolerance", PATH_TOLERANCE)
        .field("regression_budget", REGRESSION_BUDGET)
        .field("rows", Json::Arr(json_rows));
    match write_json("sentinel", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }
    let bench_doc = Json::obj()
        .field("bench", "runtime_baseline")
        .field("calls", calls)
        .field("reps", reps)
        .field("rows", Json::Arr(bench_rows));
    match write_json("BENCH_runtime", &bench_doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_runtime.json: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("sentinel tax within budget; critical paths cover end-to-end; no regression");
}
