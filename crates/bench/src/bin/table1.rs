//! Table 1: pollution of processor structures by 512 KV-store operations
//! under the Baseline / Delay / IPC process layouts.

use sb_bench::{knob, print_table};
use skybridge_repro::scenarios::kv::{KvMode, KvPipeline};

fn main() {
    let ops = knob("SB_OPS", 512);
    let len = knob("SB_KVLEN", 64);
    let mut rows = Vec::new();
    for (name, mode) in [
        ("Baseline", KvMode::Baseline),
        ("Delay", KvMode::Delay),
        ("IPC", KvMode::Ipc),
    ] {
        let mut p = KvPipeline::new(mode, len, ops + 128);
        p.run_ops(64); // Warm up, as the paper's measured region is hot.
        let stats = p.run_ops(ops);
        rows.push(vec![
            name.to_string(),
            stats.pmu.l1i_misses.to_string(),
            stats.pmu.l1d_misses.to_string(),
            stats.pmu.l2_misses.to_string(),
            stats.pmu.l3_misses.to_string(),
            stats.pmu.itlb_misses.to_string(),
            stats.pmu.dtlb_misses.to_string(),
        ]);
    }
    print_table(
        &format!("Table 1: processor-structure misses across {ops} KV ops"),
        &["layout", "i-cache", "d-cache", "L2", "L3", "i-TLB", "d-TLB"],
        &rows,
    );
    println!("\npaper (512 ops):   i-cache   d-cache     L2    L3  i-TLB  d-TLB");
    println!("  Baseline              15     10624  13237    43      8     17");
    println!("  Delay                 15     10639  13258    43      9     19");
    println!("  IPC                  696     27054  15974    44     11   7832");
    println!(
        "\nShape to check: IPC ≫ Delay ≈ Baseline on i-cache and d-TLB;\n\
         the Delay row compensates the *direct* cost, so its pollution\n\
         matches Baseline."
    );
}
