//! Table 2 + §2.1.1: latencies of the primitive instructions and
//! operations, measured on the simulated machine.

use sb_bench::{print_table, with_ref};
use sb_microkernel::{Kernel, KernelConfig, Personality};
use sb_rootkernel::EptpList;

fn main() {
    // §2.1.1 mode-switch components, measured as the model charges them.
    let cost = sb_sim::CostModel::skylake();
    print_table(
        "§2.1.1 mode-switch components (cycles)",
        &["operation", "measured"],
        &[
            vec!["SYSCALL".to_string(), with_ref(cost.syscall, 82)],
            vec!["SWAPGS".to_string(), with_ref(cost.swapgs, 26)],
            vec!["SYSRET".to_string(), with_ref(cost.sysret, 75)],
            vec![
                "address space switch".to_string(),
                with_ref(cost.cr3_write, 186),
            ],
            vec![
                "seL4 fastpath IPC logic".to_string(),
                with_ref(cost.sel4_fastpath_logic, 98),
            ],
            vec![
                "one-way fastpath total".to_string(),
                with_ref(cost.sel4_fastpath_direct(), 493),
            ],
            vec!["IPI".to_string(), with_ref(cost.ipi, 1913)],
        ],
    );

    // Table 2 proper: run each operation on the live machine and measure
    // the cycle delta.
    let mut rows = Vec::new();

    // Write to CR3.
    {
        let mut k = Kernel::boot(KernelConfig::native(Personality::sel4()));
        let a = k.create_process(&[0x90; 64]);
        let b = k.create_process(&[0x90; 64]);
        let ta = k.create_thread(a, 0);
        let tb = k.create_thread(b, 0);
        k.run_thread(ta);
        let t0 = k.machine.cpu(0).tsc;
        k.run_thread(tb);
        rows.push(vec![
            "write to CR3".to_string(),
            with_ref(k.machine.cpu(0).tsc - t0, "186±10"),
        ]);
    }

    // No-op system call with and without KPTI (mode switch + dispatch).
    for kpti in [true, false] {
        let k = Kernel::boot(KernelConfig {
            kpti,
            ..KernelConfig::native(Personality::sel4())
        });
        let measured = k.machine.cost.noop_syscall(kpti);
        rows.push(vec![
            format!(
                "no-op system call {}",
                if kpti { "w/ KPTI" } else { "w/o KPTI" }
            ),
            with_ref(measured, if kpti { "431±13" } else { "181±5" }),
        ]);
    }

    // VMFUNC on the live Rootkernel.
    {
        let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
        let rk = k.rootkernel.as_mut().unwrap();
        let mut list = EptpList::new(1);
        list.pin(0, rk.base_ept.root);
        rk.install_eptp_list(&mut k.machine, 0, list);
        let t0 = k.machine.cpu(0).tsc;
        let mut iters = 0u64;
        for _ in 0..1000 {
            k.rootkernel
                .as_mut()
                .unwrap()
                .vmfunc(&mut k.machine, 0, 0, 0)
                .unwrap();
            iters += 1;
        }
        rows.push(vec![
            "VMFUNC".to_string(),
            with_ref((k.machine.cpu(0).tsc - t0) / iters, "134±3"),
        ]);
    }

    print_table(
        "Table 2: instruction/operation latencies (cycles)",
        &["operation", "measured"],
        &rows,
    );
}
