//! Table 3: the rewriting strategy for every inadvertent-VMFUNC overlap
//! case, demonstrated on real encodings (scan → classify → rewrite →
//! verify clean → interpret for equivalence).

use sb_bench::print_table;
use sb_rewriter::{
    interp::{run, Program, State},
    rewrite::rewrite_code,
    scan::{classify, find_occurrences, OverlapKind},
};

const CODE_BASE: u64 = 0x40_0000;
const PAGE_BASE: u64 = 0x1000;

struct Case {
    name: &'static str,
    strategy: &'static str,
    code: Vec<u8>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "1: opcode = VMFUNC",
            strategy: "replace with 3 NOPs",
            code: vec![0x0f, 0x01, 0xd4, 0xc3, 0x90, 0x90],
        },
        Case {
            name: "2: ModRM = 0x0F",
            strategy: "push/pop scratch register",
            // imul ecx, [rdi], 0xD401.
            code: vec![0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3, 0x90],
        },
        Case {
            name: "3: SIB = 0x0F",
            strategy: "push/pop scratch register",
            // lea ebx, [rdi + rcx + 0xD401].
            code: vec![0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3],
        },
        Case {
            name: "4: displacement = 0x0F..",
            strategy: "precompute displacement (LEA split)",
            // add ebx, [rax + 0xD4010F].
            code: vec![0x03, 0x98, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90],
        },
        Case {
            name: "5: immediate = 0x0F..",
            strategy: "apply instruction twice",
            // add eax, 0xD4010F.
            code: vec![0x05, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90],
        },
        Case {
            name: "5b: jump-like immediate",
            strategy: "relocate + recompute offset",
            // call rel32 = 0xD4010F.
            code: vec![0xe8, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90],
        },
        Case {
            name: "C2: spanning instructions",
            strategy: "relocate with NOP separator",
            // mov eax, 0x0F000000 ; add esp, edx.
            code: vec![0xb8, 0x00, 0x00, 0x00, 0x0f, 0x01, 0xd4, 0xc3, 0x90],
        },
    ]
}

fn main() {
    let mut rows = Vec::new();
    for case in cases() {
        let occs = classify(&case.code);
        let kind = occs
            .first()
            .map(|o| match o.kind {
                OverlapKind::Vmfunc => "C1".to_string(),
                OverlapKind::Spanning => "C2".to_string(),
                OverlapKind::Within(f) => format!("C3/{f:?}"),
            })
            .unwrap_or_else(|| "none".into());
        let out = rewrite_code(&case.code, CODE_BASE, PAGE_BASE).unwrap();
        let clean = find_occurrences(&out.code).is_empty()
            && find_occurrences(&out.rewrite_page).is_empty();
        // Equivalence spot check for interpretable cases (all but the
        // out-of-range call, which the unit tests verify statically).
        let equivalent = if case.name.starts_with("5b") {
            "static".to_string()
        } else {
            let setup = |s: &mut State| {
                s.regs[0] = 0x1111;
                s.regs[1] = 3;
                s.regs[2] = 0;
                s.regs[3] = 5;
                s.regs[7] = 0x9000;
                for i in 0..8u64 {
                    s.mem.insert(0x9000 + i, 7);
                    s.mem.insert(0x9000 + 0xd4010f + i, 9);
                    s.mem.insert(0x100 + 0xd4010f + i, 9);
                }
            };
            let mut a = State::new();
            setup(&mut a);
            run(
                Program {
                    code: &case.code,
                    code_base: CODE_BASE,
                    page: &[],
                    page_base: PAGE_BASE,
                },
                &mut a,
                10_000,
            )
            .unwrap();
            let mut b = State::new();
            setup(&mut b);
            run(
                Program {
                    code: &out.code,
                    code_base: CODE_BASE,
                    page: &out.rewrite_page,
                    page_base: PAGE_BASE,
                },
                &mut b,
                10_000,
            )
            .unwrap();
            if a.regs == b.regs {
                "yes".to_string()
            } else {
                "NO".into()
            }
        };
        rows.push(vec![
            case.name.to_string(),
            kind,
            case.strategy.to_string(),
            if clean { "yes" } else { "NO" }.to_string(),
            equivalent,
            format!("{}B stub", out.rewrite_page.len()),
        ]);
    }
    print_table(
        "Table 3: rewrite strategies for inadvertent VMFUNC encodings",
        &[
            "case",
            "classified",
            "strategy",
            "clean",
            "equivalent",
            "stub",
        ],
        &rows,
    );
}
