//! Table 4: SQLite basic-operation throughput (insert / update / query /
//! delete) under ST-Server, MT-Server, and SkyBridge, for each
//! microkernel.

use sb_bench::{knob, print_table, speedup};
use sb_microkernel::Personality;
use sb_ycsb::OpKind;
use skybridge_repro::scenarios::sqlite::{SqliteStack, StackMode};

/// Paper values, ops/s: rows = (kernel, op), columns = ST/MT/SkyBridge.
const PAPER: [(&str, &str, [f64; 3]); 12] = [
    ("seL4", "Insert", [4839.08, 6001.82, 11251.08]),
    ("seL4", "Update", [3943.71, 4714.52, 7335.57]),
    ("seL4", "Query", [13245.92, 14025.37, 18610.60]),
    ("seL4", "Delete", [4326.92, 5314.04, 7339.31]),
    ("Fiasco", "Insert", [1296.83, 1685.39, 5000.00]),
    ("Fiasco", "Update", [1222.83, 1557.09, 4545.45]),
    ("Fiasco", "Query", [8108.11, 8256.88, 15789.47]),
    ("Fiasco", "Delete", [1255.23, 1607.14, 4568.53]),
    ("Zircon", "Insert", [1408.42, 2467.90, 7710.63]),
    ("Zircon", "Update", [1376.77, 2360.00, 6643.24]),
    ("Zircon", "Query", [9432.34, 9535.56, 17843.54]),
    ("Zircon", "Delete", [1389.64, 1389.64, 7027.30]),
];

fn measure(personality: Personality, mode: StackMode, records: u64, ops: usize) -> [f64; 4] {
    let mut s = SqliteStack::new(personality, mode, 1, false);
    s.load(records, 100);
    let insert = s.measure_op(OpKind::Insert, ops).ops_per_sec;
    let update = s.measure_op(OpKind::Update, ops).ops_per_sec;
    // Warm the cache before the query pass, as a running database would
    // be.
    s.measure_op(OpKind::Read, ops);
    let query = s.measure_op(OpKind::Read, ops).ops_per_sec;
    let delete = s.measure_delete(ops).ops_per_sec;
    [insert, update, query, delete]
}

fn main() {
    let records = knob("SB_RECORDS", 2000) as u64;
    let ops = knob("SB_OPS", 150);
    let kernels = [
        ("seL4", Personality::sel4()),
        ("Fiasco", Personality::fiasco_oc()),
        ("Zircon", Personality::zircon()),
    ];
    let mut rows = Vec::new();
    for (kname, personality) in kernels {
        let st = measure(personality.clone(), StackMode::IpcSt, records, ops);
        let mt = measure(personality.clone(), StackMode::IpcMt, records, ops);
        let sb = measure(personality.clone(), StackMode::SkyBridge, records, ops);
        for (oi, op) in ["Insert", "Update", "Query", "Delete"].iter().enumerate() {
            let paper = PAPER
                .iter()
                .find(|(k, o, _)| *k == kname && o == op)
                .map(|(_, _, v)| *v)
                .unwrap();
            rows.push(vec![
                kname.to_string(),
                op.to_string(),
                format!("{:.0} ({:.0})", st[oi], paper[0]),
                format!("{:.0} ({:.0})", mt[oi], paper[1]),
                format!("{:.0} ({:.0})", sb[oi], paper[2]),
                format!(
                    "{} ({})",
                    speedup(sb[oi], mt[oi]),
                    speedup(paper[2], paper[1])
                ),
            ]);
        }
    }
    print_table(
        "Table 4: SQLite op throughput, ops/s — measured (paper)",
        &[
            "kernel",
            "op",
            "ST-Server",
            "MT-Server",
            "SkyBridge",
            "speedup vs MT",
        ],
        &rows,
    );
    println!(
        "\nShape to check: ST < MT < SkyBridge for every kernel and op; the\n\
         query column shows the smallest speedup (the SQLite page cache\n\
         absorbs reads, so queries barely touch the IPC path)."
    );
}
