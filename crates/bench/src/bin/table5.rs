//! Table 5: SQLite/YCSB-A throughput in the native vs Rootkernel
//! (virtualized, no SkyBridge) environments, and the VM-exit count.

use sb_bench::{knob, print_table};
use sb_microkernel::Personality;
use skybridge_repro::scenarios::sqlite::{SqliteStack, StackMode};

fn main() {
    let records = knob("SB_RECORDS", 1000) as u64;
    let ops = knob("SB_OPS", 150);
    let mut rows = Vec::new();
    for (label, threads, paper_native, paper_rk) in [
        ("YCSB-A 1 thread", 1usize, 9745.15, 9694.49),
        ("YCSB-A 8 thread", 8, 1465.95, 1411.64),
    ] {
        let mut native = SqliteStack::new(Personality::sel4(), StackMode::IpcMt, threads, false);
        native.load(records, 100);
        let native_stats = native.run_ycsb(ops);
        let mut virt = SqliteStack::new(
            Personality::sel4(),
            StackMode::IpcMt,
            threads,
            true, // Boot the Rootkernel underneath, without SkyBridge.
        );
        virt.load(records, 100);
        let exits_before = virt.vm_exits();
        let virt_stats = virt.run_ycsb(ops);
        let exits = virt.vm_exits() - exits_before;
        rows.push(vec![
            label.to_string(),
            format!("{:.0} ({paper_native:.0})", native_stats.ops_per_sec),
            format!("{:.0} ({paper_rk:.0})", virt_stats.ops_per_sec),
            format!("{exits} (0)"),
        ]);
    }
    print_table(
        "Table 5: native vs Rootkernel throughput (ops/s) and VM exits — measured (paper)",
        &["workload", "Native", "Rootkernel", "#VM exits"],
        &rows,
    );
    println!(
        "\nShape to check: the Rootkernel column matches Native (pass-through\n\
         exit controls + huge-page base EPT) and the measured-region exit\n\
         count is zero."
    );
}
