//! Table 6: inadvertent `VMFUNC` occurrences across a program corpus.
//!
//! The paper scanned SPEC CPU 2006, PARSEC, Nginx, Apache, Memcached,
//! Redis, `vmlinux`, 2,934 kernel modules and 2,605 other programs, and
//! found exactly one inadvertent occurrence (in GIMP 2.8, inside a call
//! immediate). Our corpus is (a) the ELF binaries installed in this
//! container — real compiler output — and (b) deterministic synthetic
//! instruction streams, including one with injected occurrences to prove
//! the scanner's sensitivity.

use std::{fs, path::PathBuf};

use sb_bench::{knob, print_table};
use sb_rewriter::{corpus, elf::exec_sections, scan::find_occurrences};

fn scan_dir(dir: &str, limit: usize) -> (usize, usize, usize, Vec<String>) {
    let mut programs = 0;
    let mut bytes = 0usize;
    let mut hits = 0;
    let mut hit_names = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return (0, 0, 0, hit_names);
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths.into_iter().take(limit) {
        let Ok(data) = fs::read(&path) else { continue };
        let Ok(sections) = exec_sections(&data) else {
            continue;
        };
        if sections.is_empty() {
            continue;
        }
        programs += 1;
        for sec in &sections {
            bytes += sec.bytes.len();
            let found = find_occurrences(&sec.bytes).len();
            if found > 0 {
                hits += found;
                hit_names.push(format!(
                    "{} ({}, {found})",
                    path.file_name().unwrap().to_string_lossy(),
                    sec.name
                ));
            }
        }
    }
    (programs, bytes, hits, hit_names)
}

fn main() {
    let limit = knob("SB_ELF_LIMIT", 400);
    let mut rows = Vec::new();
    let mut all_hits = Vec::new();
    for dir in ["/usr/bin", "/usr/sbin", "/bin", "/usr/lib/x86_64-linux-gnu"] {
        let (programs, bytes, hits, names) = scan_dir(dir, limit);
        if programs == 0 {
            continue;
        }
        rows.push(vec![
            dir.to_string(),
            programs.to_string(),
            format!("{}", bytes / 1024),
            hits.to_string(),
        ]);
        all_hits.extend(names);
    }
    // Synthetic corpora: clean and injected.
    for (name, inject) in [("synthetic (clean)", 0u64), ("synthetic (injected)", 25)] {
        let mut programs = 0;
        let mut bytes = 0;
        let mut hits = 0;
        for seed in 1..=64u64 {
            let code = corpus::generate(seed, 64 * 1024, inject);
            programs += 1;
            bytes += code.len();
            hits += find_occurrences(&code).len();
        }
        rows.push(vec![
            name.to_string(),
            programs.to_string(),
            format!("{}", bytes / 1024),
            hits.to_string(),
        ]);
    }
    print_table(
        "Table 6: inadvertent VMFUNC occurrences",
        &["corpus", "programs", "code KiB", "VMFUNC count"],
        &rows,
    );
    if all_hits.is_empty() {
        println!("\nno occurrences in the real-binary corpus");
    } else {
        println!("\noccurrences found in:");
        for h in &all_hits {
            println!("  {h}");
        }
    }
    println!(
        "\npaper: 0 occurrences across SPEC/PARSEC/servers/vmlinux/modules;\n\
         exactly 1 in 2,605 other programs (GIMP 2.8, call immediate).\n\
         Shape to check: real binaries are (almost always) clean; the\n\
         injected synthetic corpus shows the scanner finds what exists."
    );
}
