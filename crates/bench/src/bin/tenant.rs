//! The tenant fabric sweep: fairness under production skew, and the
//! noisy-neighbor isolation gate.
//!
//! Two sections, both CI-enforced:
//!
//! 1. **Skew sweep** — tenant population ∈ {4, 64, 512} × arrival skew
//!    ∈ {uniform round-robin, scrambled-Zipfian} × every IPC
//!    personality, identical Poisson arrival streams at ρ ≈ 0.8, every
//!    tenant on the default contract (weight 1, 64-deep lane, shed).
//!    Each cell reports the busiest tenants' p99s and Jain's fairness
//!    index J = (Σx)²/(n·Σx²) over per-tenant completion ratios — J = 1
//!    is perfect fairness; the **fairness gate** requires J ≥ 0.95 on
//!    the uniform cells (equal offered load and equal weights must get
//!    equal service), and every cell must balance its per-tenant
//!    ledgers exactly ([`RunStats::tenants_conserved`]).
//! 2. **Noisy-neighbor gate** — the [`scenarios::tenant`] storm matrix
//!    across every personality × {direct, ring}: three victims run
//!    byte-identical streams solo and then against an aggressor
//!    offering 10× its contracted rate. The fabric must classify and
//!    quarantine the aggressor, and every victim's contended p99 must
//!    land within 10% (plus the service-quantization slack) of its solo
//!    p99 with zero SLO breach episodes. Any violated cell exits
//!    non-zero.
//!
//! Knobs: `SB_TENANT_REQUESTS` (arrivals per sweep cell, default
//! 4,000), `SB_TENANT_SEED` (stream seed, default 0x7e47).

use sb_bench::{
    knob, print_table,
    report::{run_stats_json, write_json, Json},
};
use sb_runtime::{
    AdmissionPolicy, PoissonArrivals, RequestFactory, RunStats, RuntimeConfig, ServerRuntime,
    TenantAction, TenantId, TenantRegistry, TenantSpec,
};
use skybridge_repro::scenarios::runtime::{build_backend, Backend, ServingScenario};
use skybridge_repro::scenarios::tenant::{run_noisy_neighbor, TenantOutcome};

/// The fairness gate: Jain's index on uniform cells must clear this.
const FAIRNESS_FLOOR: f64 = 0.95;
/// The isolation gate: victim contended p99 within 10% of solo.
const ISOLATION_HEADROOM: f64 = 1.10;
/// Offered load relative to the calibrated service rate.
const RHO: f64 = 0.8;
/// Tenant populations the sweep covers.
const TENANT_COUNTS: [u16; 3] = [4, 64, 512];
/// How many of the busiest tenants each cell prints.
const TOP_K: usize = 4;

/// Jain's fairness index over per-tenant completion ratios
/// (completed/offered). 1.0 means every tenant got the same fraction of
/// its offered load served; 1/n means one tenant got everything.
fn jain_index(stats: &RunStats) -> f64 {
    let ratios: Vec<f64> = stats
        .tenants
        .values()
        .filter(|t| t.offered > 0)
        .map(|t| t.completed as f64 / t.offered as f64)
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sum_sq: f64 = ratios.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (ratios.len() as f64 * sum_sq)
}

/// Deterministic direct-mode cycles per call, for scaling the arrival
/// rate to ρ.
fn cycles_per_call(backend: &Backend) -> f64 {
    let mut t = build_backend(ServingScenario::Kv, backend, 1);
    let mut f = RequestFactory::new(
        ServingScenario::Kv.workload(),
        ServingScenario::Kv.payload(),
    );
    for _ in 0..512 {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("calibration call");
    }
    let t0 = t.now(0);
    let n = 512u64;
    for _ in 0..n {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("calibration call");
    }
    (t.now(0) - t0) as f64 / n as f64
}

/// Every tenant on the default contract, each with its own bounded lane.
fn sweep_registry() -> TenantRegistry {
    TenantRegistry::new(TenantSpec {
        weight: 1,
        queue_capacity: 64,
        policy: AdmissionPolicy::Shed,
        rate: None,
        slo: None,
    })
}

/// One skew-sweep cell: `requests` Poisson arrivals at ρ = [`RHO`]
/// against two lanes, tenants drawn uniform round-robin or Zipfian.
fn run_sweep_cell(
    backend: &Backend,
    tenants: u16,
    zipf: bool,
    gap: f64,
    requests: u64,
    seed: u64,
) -> RunStats {
    let scenario = ServingScenario::Kv;
    let mut factory = if zipf {
        RequestFactory::with_zipf_tenants(scenario.workload(), scenario.payload(), tenants, seed)
    } else {
        let schedule: Vec<TenantId> = (0..requests).map(|i| (i % tenants as u64) as u16).collect();
        RequestFactory::with_tenant_schedule(scenario.workload(), scenario.payload(), schedule)
    };
    let cfg = RuntimeConfig {
        tenants: Some(sweep_registry()),
        ..RuntimeConfig::default()
    };
    let mut transport = build_backend(scenario, backend, 2);
    let arrivals = PoissonArrivals::new(gap, seed).take(requests as usize);
    ServerRuntime::new(transport.as_mut(), cfg).run_open_loop(arrivals, &mut factory)
}

fn quarantine_count(out: &TenantOutcome) -> usize {
    out.actions
        .iter()
        .filter(|a| matches!(a, TenantAction::Quarantine { .. }))
        .count()
}

fn main() {
    let requests = knob("SB_TENANT_REQUESTS", 4_000) as u64;
    let seed = knob("SB_TENANT_SEED", 0x7e47) as u64;
    let mut failures: Vec<String> = Vec::new();

    // Section 1: the skew sweep.
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for backend in Backend::all() {
        let gap = cycles_per_call(&backend) / RHO;
        for &tenants in &TENANT_COUNTS {
            for zipf in [false, true] {
                let skew = if zipf { "zipf" } else { "uniform" };
                let stats = run_sweep_cell(&backend, tenants, zipf, gap, requests, seed);
                let jain = jain_index(&stats);
                if !stats.tenants_conserved() {
                    failures.push(format!(
                        "{} {tenants} tenants {skew}: per-tenant ledgers do not balance",
                        backend.label()
                    ));
                }
                if !zipf && jain < FAIRNESS_FLOOR {
                    failures.push(format!(
                        "{} {tenants} tenants uniform: Jain index {jain:.4} below \
                         floor {FAIRNESS_FLOOR}",
                        backend.label()
                    ));
                }
                let top: Vec<String> = stats
                    .top_tenants(TOP_K)
                    .iter()
                    .map(|(id, t)| format!("t{id}:{}", t.p99()))
                    .collect();
                rows.push(vec![
                    backend.label().to_string(),
                    format!("{tenants}"),
                    skew.to_string(),
                    format!("{}", stats.completed),
                    format!("{}", stats.shed()),
                    format!("{}", stats.p99()),
                    format!("{jain:.4}"),
                    top.join(" "),
                ]);
                sweep_json.push(
                    run_stats_json(&stats)
                        .field("tenant_population", tenants as u64)
                        .field("skew", skew)
                        .field("jain_index", jain)
                        .field("mean_gap_cycles", gap),
                );
            }
        }
    }
    print_table(
        &format!("tenant skew sweep ({requests} arrivals/cell, 2 lanes, rho={RHO})"),
        &[
            "transport",
            "tenants",
            "skew",
            "completed",
            "shed",
            "p99",
            "jain",
            "busiest p99s",
        ],
        &rows,
    );

    // Section 2: the noisy-neighbor isolation matrix.
    let mut nn_rows = Vec::new();
    let mut nn_json = Vec::new();
    for backend in Backend::all() {
        for ring_mode in [false, true] {
            let out = run_noisy_neighbor(ServingScenario::Kv, &backend, ring_mode, seed);
            let isolated = out.isolated(ISOLATION_HEADROOM);
            let quarantined = out.aggressor_quarantined();
            if !out.solo.tenants_conserved() || !out.contended.tenants_conserved() {
                failures.push(format!(
                    "{} {}: noisy-neighbor ledgers do not balance",
                    out.backend, out.mode
                ));
            }
            if !quarantined {
                failures.push(format!(
                    "{} {}: storming aggressor was never quarantined",
                    out.backend, out.mode
                ));
            }
            if !isolated {
                failures.push(format!(
                    "{} {}: victim isolation breached (worst p99 ratio {:.3}, \
                     headroom {ISOLATION_HEADROOM}): {:?}",
                    out.backend,
                    out.mode,
                    out.worst_ratio(),
                    out.victims
                ));
            }
            let breaches: u64 = out.victims.iter().map(|v| v.breaches).sum();
            nn_rows.push(vec![
                out.backend.clone(),
                out.mode.to_string(),
                format!("{:.3}", out.worst_ratio()),
                format!("{breaches}"),
                format!("{}", out.contended.shed_rate_limit),
                format!("{}", quarantine_count(&out)),
                if isolated && quarantined {
                    "ok"
                } else {
                    "FAIL"
                }
                .to_string(),
            ]);
            let victims = out
                .victims
                .iter()
                .map(|v| {
                    Json::obj()
                        .field("tenant", v.tenant as u64)
                        .field("solo_p99", v.solo_p99)
                        .field("contended_p99", v.contended_p99)
                        .field("breaches", v.breaches)
                })
                .collect();
            nn_json.push(
                Json::obj()
                    .field("backend", out.backend.as_str())
                    .field("mode", out.mode)
                    .field("worst_p99_ratio", out.worst_ratio())
                    .field("aggressor_quarantined", quarantined)
                    .field("isolated", isolated)
                    .field("shed_rate_limit", out.contended.shed_rate_limit)
                    .field("victims", Json::Arr(victims))
                    .field("contended", run_stats_json(&out.contended))
                    .field("solo", run_stats_json(&out.solo)),
            );
        }
    }
    print_table(
        &format!("noisy neighbor: 3 victims vs one 10x storm (headroom {ISOLATION_HEADROOM})"),
        &[
            "transport",
            "mode",
            "worst ratio",
            "victim breaches",
            "rate shed",
            "quarantines",
            "verdict",
        ],
        &nn_rows,
    );

    let doc = Json::obj()
        .field("bench", "tenant")
        .field("requests", requests)
        .field("rho", RHO)
        .field("fairness_floor", FAIRNESS_FLOOR)
        .field("isolation_headroom", ISOLATION_HEADROOM)
        .field("sweep", Json::Arr(sweep_json))
        .field("noisy_neighbor", Json::Arr(nn_json));
    match write_json("tenant", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "tenant gates hold: uniform Jain >= {FAIRNESS_FLOOR}, every noisy-neighbor cell \
         isolated within {ISOLATION_HEADROOM}x and the aggressor quarantined"
    );
}
