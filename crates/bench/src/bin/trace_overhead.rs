//! The tracing tax: host ns per call with tracing absent, attached but
//! disabled, and fully enabled — plus the phase-attribution consistency
//! check (the software Figure 7 must decompose end-to-end cycles).
//!
//! Three modes per kernel-backed transport, all measured on the same
//! transport instance (separate instances differ by several percent
//! from allocation layout alone) by swapping the attached recorder:
//!
//! * `baseline` — the constructor-default off recorder (the state every
//!   transport is born with).
//! * `disabled` — a [`Recorder::off`] attached explicitly to every
//!   hook: each emit is one flag read, which must cost (statistically)
//!   nothing, and the attach itself must be free.
//! * `enabled` — a live recorder capturing every span of every call,
//!   with the cycle sampler enabled, so the tax gate bounds the whole
//!   always-on observability stack (spans + sampling).
//!
//! Each mode runs `SB_REPS` timed repetitions, interleaved and with the
//! order alternating every round so slow host drift cancels, keeping
//! the fastest (min-of-N filters scheduler noise); a gate breach earns
//! one full re-measurement pass with the minima carried over, so a
//! one-off host spike can't fail CI but a real regression still does.
//! Gates, all CI-enforced:
//!
//! 1. `disabled` within 5% of `baseline` — attached-but-off is free;
//! 2. `enabled` within 5% of `disabled` — the always-on tax is bounded;
//! 3. the in-call phase self-times decompose end-to-end cycles within
//!    5% (they are equal by construction; the gate catches regressions
//!    in the emit sites, e.g. a dropped or double-counted span);
//! 4. the quiescent profiled capture loses nothing: zero ring
//!    overwrites, zero dropped/poisoned samples, zero export
//!    truncation;
//! 5. the Chrome trace export of the profiled run is valid JSON.
//!
//! Results go to `results/trace_overhead.json`, including the per-phase
//! cycle breakdown and a PMU metrics snapshot through the registry.
//!
//! Knobs: `SB_CALLS` (timed calls per rep, default 4,000), `SB_REPS`
//! (repetitions per mode, default 7), `SB_RING` (enabled-mode ring
//! capacity in events, default [`sb_observe::DEFAULT_RING_CAPACITY`]).

use std::hint::black_box;
use std::time::Instant;

use sb_bench::{
    knob, print_table,
    report::{snapshot_json, write_json, Json},
};
use sb_microkernel::Personality;
use sb_observe::{
    attribute, chrome_trace, validate_json, Recorder, Registry, SamplerConfig, SpanKind,
};
use sb_runtime::{RequestFactory, ServiceSpec, SkyBridgeTransport, Transport, TrapIpcTransport};
use sb_ycsb::WorkloadSpec;

/// Host-noise guard on the two overhead gates: 5% relative.
const OVERHEAD_BUDGET: f64 = 0.05;
/// Tolerance on the phase-decomposition identity.
const PHASE_TOLERANCE: f64 = 0.05;

fn factory() -> RequestFactory {
    RequestFactory::new(WorkloadSpec::ycsb_a(10_000, 64), 64)
}

/// One timed repetition: `calls` requests through lane 0, returning
/// host ns per call.
fn rep(t: &mut dyn Transport, calls: u64) -> f64 {
    let mut f = factory();
    let wall = Instant::now();
    for _ in 0..calls {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("call");
        black_box(t.reply(0));
    }
    wall.elapsed().as_nanos() as f64 / calls as f64
}

/// Warm-up: populate caches, TLBs and lane allocations.
fn warm(t: &mut dyn Transport) {
    let mut f = factory();
    for _ in 0..256 {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("warm call");
    }
}

struct TransportResult {
    name: &'static str,
    baseline_ns: f64,
    disabled_ns: f64,
    enabled_ns: f64,
    phases: Json,
    phase_ratio: f64,
    trace_events: u64,
    trace_valid: bool,
    samples_taken: u64,
    failures: Vec<String>,
}

fn build(name: &str, spec: &ServiceSpec) -> Box<dyn Transport> {
    match name {
        "skybridge" => Box::new(SkyBridgeTransport::new(1, spec)),
        _ => Box::new(TrapIpcTransport::new(Personality::sel4(), 1, spec)),
    }
}

fn run_transport(name: &'static str, calls: u64, reps: u64) -> TransportResult {
    let spec = ServiceSpec::default();
    let mut failures = Vec::new();

    // All three modes run on ONE transport instance, swapping only the
    // attached recorder between repetitions: separate instances differ
    // by several percent from allocation layout alone, which would
    // drown the quantity under test. `baseline` is a transport whose
    // recorder is the constructor-default off handle, `disabled` an
    // explicitly attached off recorder (the attach must be free), and
    // `enabled` the live ring. Repetitions interleave with the order
    // alternating every round so slow host drift cancels; min-of-N
    // filters the jitter on top.
    let recorder = Recorder::new(knob("SB_RING", sb_observe::DEFAULT_RING_CAPACITY));
    // The enabled mode carries the cycle sampler too, so the ≤5% tax
    // gate bounds spans *and* sampling together — the full always-on
    // observability cost, not just the event writes. `SB_SAMPLE=0`
    // isolates the span-only tax when attributing a breach.
    if knob("SB_SAMPLE", 1) != 0 {
        recorder.enable_sampling(SamplerConfig {
            backend: name.to_string(),
            ..SamplerConfig::default()
        });
    }
    let modes: [Recorder; 3] = [Recorder::off(), Recorder::off(), recorder.clone()];
    let mut t = build(name, &spec);
    warm(t.as_mut());
    // Min-of-N only ever over-reports a cost (noise inflates a minimum,
    // never deflates it), so on a gate breach re-measurement passes are
    // sound: the minima carry across passes and a genuine regression
    // fails every pass, while a scheduler spike that inflated one
    // mode's minimum washes out. Three retry passes keep the gate
    // honest on busy shared hosts where a single re-run still lands
    // inside the same noise window.
    let mut ns = [f64::INFINITY; 3];
    for pass in 0..4 {
        for i in 0..reps {
            for j in 0..3usize {
                let m = if i % 2 == 0 { j } else { 2 - j };
                t.attach_recorder(modes[m].clone());
                ns[m] = ns[m].min(rep(t.as_mut(), calls));
            }
        }
        let within_budget = |cost: f64, base: f64| cost <= base * (1.0 + OVERHEAD_BUDGET);
        if within_budget(ns[1], ns[0]) && within_budget(ns[2], ns[1]) {
            break;
        }
        if pass < 3 {
            eprintln!(
                "note: {name}: gate breached on pass {}, re-measuring",
                pass + 1
            );
        }
    }
    let [baseline_ns, disabled_ns, enabled_ns] = ns;
    t.attach_recorder(recorder.clone());

    if disabled_ns > baseline_ns * (1.0 + OVERHEAD_BUDGET) {
        failures.push(format!(
            "{name}: disabled recorder costs {disabled_ns:.0} ns/call vs {baseline_ns:.0} baseline"
        ));
    }
    if enabled_ns > disabled_ns * (1.0 + OVERHEAD_BUDGET) {
        failures.push(format!(
            "{name}: enabled tracing costs {enabled_ns:.0} ns/call vs {disabled_ns:.0} disabled \
             (budget {:.0}%)",
            OVERHEAD_BUDGET * 100.0
        ));
    }

    // Phase attribution on a fresh, non-wrapping capture: the timed loop
    // overwrote the ring many times over, so profile a short run the
    // ring holds completely (a call emits at most ~12 events).
    recorder.clear();
    let profiled = (recorder.capacity() / 16).clamp(32, 512) as u64;
    let mut f = factory();
    for _ in 0..profiled {
        let r = f.make(t.now(0), None);
        t.call(0, &r).expect("profiled call");
    }
    let by_lane: Vec<_> = (0..recorder.lane_count())
        .map(|l| recorder.events(l))
        .collect();
    let prof = attribute(&by_lane);
    let phase_ratio = if prof.end_to_end == 0 {
        0.0
    } else {
        prof.in_call_total() as f64 / prof.end_to_end as f64
    };
    if (phase_ratio - 1.0).abs() > PHASE_TOLERANCE {
        failures.push(format!(
            "{name}: phase self-times cover {:.1}% of end-to-end cycles",
            phase_ratio * 100.0
        ));
    }
    if prof.unmatched > 0 || prof.unclosed > 0 {
        failures.push(format!(
            "{name}: malformed span stream ({} unmatched, {} unclosed)",
            prof.unmatched, prof.unclosed
        ));
    }

    // A quiescent cell — a capture sized to fit its rings — must lose
    // nothing: zero ring overwrites, zero sample drops, zero poisoned
    // or desynced sampler stacks, zero export truncation. Any loss here
    // is an accounting bug, not pressure.
    let sstats = recorder.sample_stats();
    if recorder.dropped() > 0 {
        failures.push(format!(
            "{name}: quiescent capture overwrote {} events",
            recorder.dropped()
        ));
    }
    if sstats.dropped > 0 || sstats.poisoned > 0 || sstats.broken_events > 0 {
        failures.push(format!(
            "{name}: quiescent sampler lost samples ({} dropped, {} poisoned, {} broken events)",
            sstats.dropped, sstats.poisoned, sstats.broken_events
        ));
    }

    let trace = chrome_trace(&recorder);
    let trace_valid = validate_json(&trace.json).is_ok() && !trace.truncated;
    if !trace_valid {
        failures.push(format!(
            "{name}: chrome trace export invalid or truncated ({} dropped)",
            trace.dropped
        ));
    }

    let mut phases = Vec::new();
    for kind in SpanKind::ALL {
        let cycles = prof.get(kind);
        if cycles > 0 {
            phases.push(
                Json::obj()
                    .field("phase", kind.name())
                    .field("cycles_per_call", prof.per_call(kind)),
            );
        }
    }
    let phases = Json::obj()
        .field("calls", prof.calls)
        .field(
            "end_to_end_cycles_per_call",
            prof.end_to_end as f64 / prof.calls.max(1) as f64,
        )
        .field("breakdown", Json::Arr(phases));

    TransportResult {
        name,
        baseline_ns,
        disabled_ns,
        enabled_ns,
        phases,
        phase_ratio,
        trace_events: trace.events,
        trace_valid,
        samples_taken: sstats.taken,
        failures,
    }
}

fn main() {
    let calls = knob("SB_CALLS", 4_000) as u64;
    let reps = knob("SB_REPS", 7) as u64;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for name in ["skybridge", "sel4-trap"] {
        let r = run_transport(name, calls, reps);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.baseline_ns),
            format!("{:.0}", r.disabled_ns),
            format!("{:.0}", r.enabled_ns),
            format!("{:+.1}%", (r.enabled_ns / r.disabled_ns - 1.0) * 100.0),
            format!("{:.1}%", r.phase_ratio * 100.0),
        ]);
        json_rows.push(
            Json::obj()
                .field("transport", r.name)
                .field("calls", calls)
                .field("reps", reps)
                .field("baseline_ns_per_call", r.baseline_ns)
                .field("disabled_ns_per_call", r.disabled_ns)
                .field("enabled_ns_per_call", r.enabled_ns)
                .field("enabled_overhead", r.enabled_ns / r.disabled_ns - 1.0)
                .field("disabled_overhead", r.disabled_ns / r.baseline_ns - 1.0)
                .field("phase_sum_over_end_to_end", r.phase_ratio)
                .field("trace_events", r.trace_events)
                .field("trace_valid_json", r.trace_valid)
                .field("samples_taken", r.samples_taken)
                .field("profile", r.phases),
        );
        failures.extend(r.failures);
    }
    print_table(
        &format!("tracing tax ({calls} calls/rep, best of {reps})"),
        &[
            "transport",
            "baseline ns",
            "disabled ns",
            "enabled ns",
            "enabled tax",
            "phase cover",
        ],
        &rows,
    );

    // The metrics side of the exporter story: surface the simulated
    // PMU of one traced SkyBridge run through the registry.
    let spec = ServiceSpec::default();
    let mut sky = SkyBridgeTransport::new(1, &spec);
    let pmu_rec = Recorder::new(1 << 14);
    pmu_rec.enable_sampling(SamplerConfig {
        backend: "skybridge".to_string(),
        ..SamplerConfig::default()
    });
    sky.attach_recorder(pmu_rec.clone());
    let mut f = factory();
    let mut reg = Registry::new();
    let before = {
        reg.record_pmu("cpu0", &sky.k.machine.cpu(0).pmu);
        reg.snapshot()
    };
    for _ in 0..256 {
        let r = f.make(sky.now(0), None);
        sky.call(0, &r).expect("pmu run call");
    }
    reg.record_pmu("cpu0", &sky.k.machine.cpu(0).pmu);
    // Fold the trace-completeness ledger into the same snapshot: ring
    // and sampler loss counters plus the exporter's truncation flag,
    // so the results file carries a `trace_loss` section.
    reg.record_trace_loss(&pmu_rec);
    reg.record_export(&chrome_trace(&pmu_rec));
    let pmu = reg.snapshot().diff(&before);

    let doc = Json::obj()
        .field("bench", "trace_overhead")
        .field("overhead_budget", OVERHEAD_BUDGET)
        .field("phase_tolerance", PHASE_TOLERANCE)
        .field("rows", Json::Arr(json_rows))
        .field("pmu_delta", snapshot_json(&pmu));
    match write_json("trace_overhead", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("tracing tax within budget; phases decompose end-to-end; exports valid");
}
