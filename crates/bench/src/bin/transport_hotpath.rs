//! Transport hot-path copy audit: bytes copied and host ns per call,
//! before vs. after the zero-copy Wire layer.
//!
//! Two modes per transport personality:
//!
//! * `wire-zero-copy` — the shipping path: one [`Lane`]-staged encode per
//!   call, the reply served in place from the lane's payload half.
//! * `legacy-marshalling` — an emulation of the pre-`sb-transport` call
//!   path layered on top of the same transport: per call the old code
//!   materialised the request payload into a fresh `Vec`
//!   (`Request::encode`), copied it again at the serve boundary
//!   (`req.to_vec()` in the old SkyBridge engine), and materialised the
//!   echo reply as a third owned `Vec` (`request.to_vec()` in
//!   `direct_server_call`). Those three payload copies are re-performed
//!   and metered here so the comparison is measured, not remembered.
//!
//! Simulated cycles per call are identical by construction (the machine
//! model charges the same translations either way) — the bin records
//! them per mode to prove it. Host wall-clock ns/call and bytes-copied
//! are the quantities the refactor changes. Results go to
//! `results/transport_hotpath.json`.
//!
//! `SB_CALLS` scales the per-mode call count (default 20,000 for the
//! synthetic transport, 2,000 for the kernel-backed ones).

use std::hint::black_box;
use std::time::Instant;

use sb_bench::{
    knob, print_table,
    report::{write_json, Json},
};
use sb_microkernel::Personality;
use sb_runtime::{
    FixedServiceTransport, RequestFactory, ServiceSpec, SkyBridgeTransport, Transport,
    TrapIpcTransport,
};
use sb_ycsb::WorkloadSpec;

/// A transport constructor paired with its label and call count.
type Target = (String, Box<dyn FnMut() -> Box<dyn Transport>>, u64);

struct ModeResult {
    bytes_per_call: f64,
    ns_per_call: f64,
    sim_cycles_per_call: f64,
}

/// Drives `calls` requests through lane 0, optionally re-performing the
/// legacy marshalling copies, and returns the per-call averages.
fn drive(t: &mut dyn Transport, calls: u64, legacy: bool) -> ModeResult {
    let mut factory = RequestFactory::new(WorkloadSpec::ycsb_a(10_000, 64), 64);
    // Warm: populate caches, TLBs and the lane allocation.
    for _ in 0..calls.min(256) {
        let r = factory.make(t.now(0), None);
        t.call(0, &r).expect("warm call");
    }
    let bytes0 = t.bytes_copied();
    let mut legacy_bytes = 0u64;
    let cyc0 = t.now(0);
    let wall = Instant::now();
    for _ in 0..calls {
        let r = factory.make(t.now(0), None);
        if legacy {
            // The old path's three owned payload images per call:
            // encode, serve-boundary to_vec, reply materialisation.
            let encoded = r.encode();
            let at_boundary = encoded.clone();
            t.call(0, &r).expect("call");
            let reply = at_boundary.clone();
            legacy_bytes += (encoded.len() + at_boundary.len() + reply.len()) as u64;
            black_box((encoded, at_boundary, reply));
        } else {
            t.call(0, &r).expect("call");
            black_box(t.reply(0));
        }
    }
    let ns = wall.elapsed().as_nanos() as f64;
    ModeResult {
        bytes_per_call: (t.bytes_copied() - bytes0 + legacy_bytes) as f64 / calls as f64,
        ns_per_call: ns / calls as f64,
        sim_cycles_per_call: (t.now(0) - cyc0) as f64 / calls as f64,
    }
}

fn main() {
    let spec = ServiceSpec::default();
    let targets: Vec<Target> = vec![
        (
            "fixed".to_string(),
            Box::new(|| Box::new(FixedServiceTransport::new(1, 200))),
            knob("SB_CALLS", 20_000) as u64,
        ),
        (
            "skybridge".to_string(),
            Box::new({
                let spec = spec.clone();
                move || Box::new(SkyBridgeTransport::new(1, &spec))
            }),
            knob("SB_CALLS", 2_000) as u64,
        ),
        (
            "sel4-trap".to_string(),
            Box::new({
                let spec = spec.clone();
                move || Box::new(TrapIpcTransport::new(Personality::sel4(), 1, &spec))
            }),
            knob("SB_CALLS", 2_000) as u64,
        ),
    ];

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut regressions = 0u32;
    for (name, mut build, calls) in targets {
        let legacy = drive(build().as_mut(), calls, true);
        let wire = drive(build().as_mut(), calls, false);
        let copy_cut = 1.0 - wire.bytes_per_call / legacy.bytes_per_call;
        // Host-time noise guard: the wire path must not be meaningfully
        // slower (copies only went away; 15% covers scheduler jitter).
        if wire.ns_per_call > legacy.ns_per_call * 1.15 {
            regressions += 1;
        }
        rows.push(vec![
            name.clone(),
            format!("{:.0}", legacy.bytes_per_call),
            format!("{:.0}", wire.bytes_per_call),
            format!("{:.0}%", copy_cut * 100.0),
            format!("{:.0}", legacy.ns_per_call),
            format!("{:.0}", wire.ns_per_call),
        ]);
        for (mode, m) in [("legacy-marshalling", &legacy), ("wire-zero-copy", &wire)] {
            json_rows.push(
                Json::obj()
                    .field("transport", name.as_str())
                    .field("mode", mode)
                    .field("calls", calls)
                    .field("bytes_copied_per_call", m.bytes_per_call)
                    .field("ns_per_call", m.ns_per_call)
                    .field("sim_cycles_per_call", m.sim_cycles_per_call),
            );
        }
    }
    print_table(
        "transport hot path: marshalling bytes and host ns per call",
        &[
            "transport",
            "legacy B/call",
            "wire B/call",
            "copies cut",
            "legacy ns",
            "wire ns",
        ],
        &rows,
    );

    let doc = Json::obj()
        .field("bench", "transport_hotpath")
        .field("rows", Json::Arr(json_rows));
    match write_json("transport_hotpath", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write results JSON: {e}"),
    }
    if regressions > 0 {
        eprintln!("FAIL: {regressions} transport(s) slower per call on the zero-copy path");
        std::process::exit(1);
    }
    println!("zero-copy wire path: fewer bytes copied, host time no worse");
}
