//! Benchmark harness support: table formatting and paper reference
//! values.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (`cargo run --release -p sb-bench --bin
//! table4`, …). This library holds the shared plumbing: aligned table
//! printing, paper-reference constants for side-by-side output, and
//! environment knobs for run sizes.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

pub mod report;

/// One probe of the host speed unit: ns per iteration of a fixed
/// reference loop — xorshift-indexed reads and writes over the caller's
/// working set (4 MiB by convention), deliberately memory-bound like
/// the simulator itself. Gates that compare against a committed ns
/// baseline divide their minimum rep time by the minimum probe time,
/// with probes interleaved between reps across the whole run: each
/// minimum lands in a quiet window of the host, so host speed (CPU
/// steal, throttling, a neighbor hammering the cache) divides out of
/// the comparison. A pure-register reference does not work here:
/// shared hosts perturb the memory subsystem far more than the core
/// clock.
pub fn unit_probe(arr: &mut [u64]) -> f64 {
    const ITERS: u64 = 1_000_000;
    let mask = arr.len() - 1;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut sum = 0u64;
    let wall = Instant::now();
    for _ in 0..ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let i = (x as usize) & mask;
        sum = sum.wrapping_add(arr[i]);
        arr[i] = sum ^ x;
    }
    black_box((&arr, sum));
    wall.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Pulls `"<field>":<x>` for the row `"transport":"<label>"` out of a
/// committed baseline document without a JSON parser: rows are flat and
/// emitted by the sentinel bin, so field order is stable.
pub fn baseline_field(doc: &str, label: &str, field: &str) -> Option<f64> {
    let key = format!("\"transport\":\"{label}\"");
    let at = doc.find(&key)?;
    let rest = &doc[at..];
    // Bound the lookup to this row: rows need not share a field set
    // (per-phase fields differ by personality), so a missing field must
    // read as absent, not as the next row's value.
    let rest = match rest[key.len()..].find("\"transport\":\"") {
        Some(next) => &rest[..key.len() + next],
        None => rest,
    };
    let needle = format!("\"{field}\":");
    let ns_at = rest.find(&needle)?;
    let tail = &rest[ns_at + needle.len()..];
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Prints an aligned table: `header` then `rows`, all columns padded.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let hdr: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let cols = hdr.len();
    let mut widths: Vec<usize> = hdr.iter().map(|h| h.len()).collect();
    for row in &body {
        for (i, c) in row.iter().enumerate() {
            if i < cols {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |row: &[String]| {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", cells.join("  "));
    };
    line(&hdr);
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in &body {
        line(row);
    }
}

/// Formats `measured` next to the paper's reference value.
pub fn with_ref(measured: impl Display, paper: impl Display) -> String {
    format!("{measured} (paper {paper})")
}

/// Relative speedup `a` over `b`, formatted the way the paper quotes it
/// ("81.9%" below 2x, "1.44x" above).
pub fn speedup(faster: f64, slower: f64) -> String {
    if slower <= 0.0 {
        return "n/a".into();
    }
    let s = faster / slower;
    if s < 2.0 {
        format!("{:.1}%", (s - 1.0) * 100.0)
    } else {
        format!("{:.2}x", s - 1.0)
    }
}

/// Reads a run-size knob from the environment.
pub fn knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats_like_the_paper() {
        assert_eq!(speedup(11251.08, 6001.82), "87.5%");
        assert_eq!(speedup(5000.0, 1685.39), "1.97x");
        assert_eq!(speedup(1.0, 0.0), "n/a");
    }

    #[test]
    fn knob_defaults() {
        assert_eq!(knob("SB_DOES_NOT_EXIST_XYZ", 42), 42);
    }
}
