//! Machine-readable benchmark output: the JSON value type, the row
//! emitters for runtime/chaos results, and the `results/` file writer.
//!
//! This is the single JSON home of the workspace. The build environment
//! is offline (no serde), so result files are emitted through the
//! hand-rolled [`Json`] builder below: objects with ordered keys, arrays,
//! strings, and numbers — exactly what the benches need. Measurement
//! crates (`sb-runtime`, the scenario modules) stay serialization-free;
//! their result structs are rendered to rows here.

use std::{
    fmt, fs,
    io::Write,
    path::{Path, PathBuf},
};

use sb_observe::Snapshot;
use sb_runtime::RunStats;
use skybridge_repro::scenarios::chaos::{ChaosOutcome, FsChaosOutcome};

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers print without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds `key: value` to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// How many of a run's busiest tenants get their own row in the JSON
/// report.
const TOP_TENANTS: usize = 8;

/// One runtime run as a JSON object (`results/*.json` rows).
///
/// Multi-tenant runs additionally carry a `tenants` array — the
/// [`TOP_TENANTS`] busiest tenants by offered load, each with its own
/// conservation ledger and p99 — plus the per-tenant conservation
/// verdict for the whole run. Single-tenant runs stay compact (no
/// per-tenant section), keeping historical report shapes unchanged.
pub fn run_stats_json(s: &RunStats) -> Json {
    let mut row = Json::obj()
        .field("label", s.label.as_str())
        .field("workers", s.workers)
        .field("offered", s.offered)
        .field("completed", s.completed)
        .field("shed_queue_full", s.shed_queue_full)
        .field("shed_deadline", s.shed_deadline)
        .field("shed_rate_limit", s.shed_rate_limit)
        .field("timed_out", s.timed_out)
        .field("failed", s.failed)
        .field("retries", s.retries)
        .field("recoveries", s.recoveries)
        .field("bytes_copied", s.bytes_copied)
        .field("window_cycles", s.window())
        .field("throughput_per_mcycle", s.throughput_per_mcycle())
        .field("latency_mean", s.mean())
        .field("latency_p50", s.p50())
        .field("latency_p95", s.p95())
        .field("latency_p99", s.p99())
        .field("max_queue_depth", s.max_queue_depth)
        .field("utilization", s.utilization());
    if s.tenants.len() > 1 {
        let rows: Vec<Json> = s
            .top_tenants(TOP_TENANTS)
            .into_iter()
            .map(|(id, t)| {
                Json::obj()
                    .field("tenant", u64::from(id))
                    .field("offered", t.offered)
                    .field("completed", t.completed)
                    .field("shed_queue_full", t.shed_queue_full)
                    .field("shed_deadline", t.shed_deadline)
                    .field("shed_rate_limit", t.shed_rate_limit)
                    .field("timed_out", t.timed_out)
                    .field("failed", t.failed)
                    .field("latency_p50", t.percentile(50.0))
                    .field("latency_p99", t.p99())
            })
            .collect();
        row = row
            .field("tenant_count", s.tenants.len())
            .field("tenants_conserved", s.tenants_conserved())
            .field("tenants", Json::Arr(rows));
    }
    row
}

/// One serving chaos cell as a JSON row (`results/chaos.json`).
pub fn chaos_outcome_json(out: &ChaosOutcome, mix: &str, seed: u64) -> Json {
    let mut rows = Vec::new();
    for r in &out.report.rows {
        rows.push(
            Json::obj()
                .field("point", r.point.name())
                .field("injected", r.injected)
                .field("detected", r.detected)
                .field("recovered", r.recovered)
                .field("leaked", r.leaked),
        );
    }
    let slo = Json::obj()
        .field("good", out.slo.good)
        .field("bad", out.slo.bad)
        .field("fast_burn", out.slo.fast_burn)
        .field("slow_burn", out.slo.slow_burn)
        .field("breaches", out.slo.breaches)
        .field("breached", out.slo.breached());
    let postmortem = out.postmortem.as_ref().map_or(Json::Null, |r| {
        Json::obj()
            .field("path", r.path.display().to_string())
            .field("included_events", r.included_events)
            .field("truncated_events", r.truncated_events)
            .field("ring_dropped", r.ring_dropped)
    });
    Json::obj()
        .field("mix", mix)
        .field("seed", seed)
        .field("injected", out.report.injected())
        .field("detected", out.report.detected())
        .field("recovered", out.report.recovered())
        .field("leaked", out.report.leaked())
        .field("unrecovered", out.report.unrecovered())
        .field("conserved", out.conserved())
        .field("trace_injected", out.trace.injected())
        .field("trace_detected", out.trace.detected)
        .field("trace_recovered", out.trace.recovered)
        .field("trace_matches_ledger", out.trace_matches_ledger())
        .field("slo", slo)
        .field("postmortem", postmortem)
        .field("faults", Json::Arr(rows))
        .field("run", run_stats_json(&out.stats))
}

/// One FS chaos cell as a JSON row.
pub fn fs_chaos_json(out: &FsChaosOutcome, mix: &str, seed: u64) -> Json {
    Json::obj()
        .field("mix", mix)
        .field("seed", seed)
        .field("attempted", out.attempted as u64)
        .field("committed", out.committed as u64)
        .field("torn_discarded", out.torn_discarded)
        .field("replayed", out.replayed)
        .field("injected", out.report.injected())
        .field("leaked", out.report.leaked())
}

/// A metrics [`Snapshot`] as a JSON object: counters and gauges as flat
/// maps, histograms as fixed-quantile summaries (with their retained
/// exemplars, when any). When the snapshot carries `trace.*` loss
/// counters (see `Registry::record_trace_loss` / `record_export`), they
/// are additionally surfaced as a `trace_loss` object so a results file
/// states on its face whether the trace behind it was complete.
pub fn snapshot_json(s: &Snapshot) -> Json {
    let mut counters = Vec::new();
    for (k, &v) in &s.counters {
        counters.push(Json::obj().field("name", k.as_str()).field("value", v));
    }
    let mut gauges = Vec::new();
    for (k, &v) in &s.gauges {
        gauges.push(Json::obj().field("name", k.as_str()).field("value", v));
    }
    let mut hists = Vec::new();
    for (k, h) in &s.histograms {
        let mut row = Json::obj()
            .field("name", k.as_str())
            .field("count", h.count)
            .field("mean", h.mean)
            .field("min", h.min)
            .field("p50", h.p50)
            .field("p95", h.p95)
            .field("p99", h.p99)
            .field("max", h.max);
        if let Some(ex) = s.exemplars.get(k) {
            let rows: Vec<Json> = ex
                .iter()
                .map(|e| Json::obj().field("corr", e.corr).field("value", e.value))
                .collect();
            row = row.field("exemplars", Json::Arr(rows));
        }
        hists.push(row);
    }
    let mut out = Json::obj()
        .field("counters", Json::Arr(counters))
        .field("gauges", Json::Arr(gauges))
        .field("histograms", Json::Arr(hists));
    if s.counters.keys().any(|k| k.starts_with("trace.")) {
        let c = |name: &str| s.counters.get(name).copied().unwrap_or(0);
        out = out.field(
            "trace_loss",
            Json::obj()
                .field("events_recorded", c("trace.events_recorded"))
                .field("events_dropped", c("trace.events_dropped"))
                .field("export_truncated", c("trace.export_truncated"))
                .field("samples_taken", c("trace.samples_taken"))
                .field("samples_dropped", c("trace.samples_dropped"))
                .field("samples_poisoned", c("trace.samples_poisoned")),
        );
    }
    out
}

/// The output directory, overridable with `SB_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    std::env::var("SB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Writes `value` to `results/<name>.json` (pretty enough for diffing:
/// one trailing newline) and returns the path.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{value}")?;
    Ok(path)
}

/// Writes pre-serialized `contents` to `results/<name>` verbatim —
/// for exports that are already strings, like a Chrome trace. `name`
/// may carry subdirectories (`traces/foo.json`); they are created.
pub fn write_raw(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let path = results_dir().join(name);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(&path, contents)?;
    Ok(path)
}

/// Reads a previously written report back (test support).
pub fn read_to_string(path: &Path) -> std::io::Result<String> {
    fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj()
            .field("name", "p50")
            .field("cycles", 1234u64)
            .field("ratio", 0.5)
            .field("tags", vec!["a", "b"])
            .field("ok", true);
        assert_eq!(
            j.to_string(),
            r#"{"name":"p50","cycles":1234,"ratio":0.5,"tags":["a","b"],"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).to_string(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
    }

    #[test]
    fn run_stats_row_has_the_key_fields() {
        let mut s = RunStats::new("sel4", 2);
        s.offered = 10;
        s.completed = 8;
        s.shed_queue_full = 2;
        s.bytes_copied = 704;
        s.start = 0;
        s.end = 1000;
        s.latencies = vec![10, 20, 30].into();
        s.seal();
        let row = run_stats_json(&s).to_string();
        assert!(row.contains("\"label\":\"sel4\""));
        assert!(row.contains("\"shed_queue_full\":2"));
        assert!(row.contains("\"bytes_copied\":704"));
        assert!(row.contains("\"latency_p50\":20"));
    }

    #[test]
    fn multi_tenant_runs_emit_a_tenant_breakdown() {
        let mut s = RunStats::new("sel4", 1);
        s.offered = 5;
        s.completed = 5;
        s.end = 1000;
        s.latencies = vec![10, 20, 30, 40, 50].into();
        for (tenant, lat) in [(3u16, 10), (3, 20), (3, 30), (9, 40), (9, 50)] {
            let t = s.tenant_mut(tenant);
            t.offered += 1;
            t.completed += 1;
            t.latencies.push(lat);
        }
        s.seal();
        let row = run_stats_json(&s).to_string();
        assert!(row.contains("\"tenant_count\":2"), "{row}");
        assert!(row.contains("\"tenants_conserved\":true"), "{row}");
        // Busiest tenant first.
        assert!(
            row.find("\"tenant\":3").unwrap() < row.find("\"tenant\":9").unwrap(),
            "{row}"
        );

        // Single-tenant runs keep the historical compact shape.
        let mut solo = RunStats::new("sel4", 1);
        solo.offered = 1;
        solo.completed = 1;
        solo.tenant_mut(0).offered += 1;
        solo.tenant_mut(0).completed += 1;
        solo.seal();
        assert!(!run_stats_json(&solo).to_string().contains("\"tenants\""));
    }

    #[test]
    fn snapshots_surface_exemplars_and_trace_loss() {
        let mut r = sb_observe::Registry::new();
        r.observe_tagged("latency", 100, 7);
        r.count("trace.events_recorded", 10);
        r.count("trace.events_dropped", 3);
        let row = snapshot_json(&r.snapshot()).to_string();
        assert!(
            row.contains(r#""exemplars":[{"corr":7,"value":100}]"#),
            "{row}"
        );
        assert!(row.contains(r#""trace_loss":{"#), "{row}");
        assert!(row.contains(r#""events_dropped":3"#), "{row}");

        // No trace counters -> no loss object, histograms stay compact.
        let mut quiet = sb_observe::Registry::new();
        quiet.observe("latency", 100);
        let row = snapshot_json(&quiet.snapshot()).to_string();
        assert!(!row.contains("trace_loss"), "{row}");
        assert!(!row.contains("exemplars"), "{row}");
    }

    #[test]
    fn writes_and_reads_back() {
        let dir = std::env::temp_dir().join("sb-bench-report-test");
        std::env::set_var("SB_RESULTS_DIR", &dir);
        let j = Json::obj().field("x", 1u64);
        let path = write_json("unit", &j).unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "{\"x\":1}\n");
        std::env::remove_var("SB_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
