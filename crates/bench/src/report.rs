//! Machine-readable benchmark output: JSON files under `results/`.
//!
//! Every bench binary that produces figures worth post-processing writes
//! its rows here in addition to the human-readable table. The JSON values
//! come from [`sb_runtime::Json`] (hand-rolled; the environment has no
//! serde).

use std::{
    fs,
    io::Write,
    path::{Path, PathBuf},
};

pub use sb_runtime::Json;

/// The output directory, overridable with `SB_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    std::env::var("SB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Writes `value` to `results/<name>.json` (pretty enough for diffing:
/// one trailing newline) and returns the path.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{value}")?;
    Ok(path)
}

/// Reads a previously written report back (test support).
pub fn read_to_string(path: &Path) -> std::io::Result<String> {
    fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_back() {
        let dir = std::env::temp_dir().join("sb-bench-report-test");
        std::env::set_var("SB_RESULTS_DIR", &dir);
        let j = Json::obj().field("x", 1u64);
        let path = write_json("unit", &j).unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "{\"x\":1}\n");
        std::env::remove_var("SB_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
