//! The SkyBridge user-level API: registration and `direct_server_call`.

use std::collections::HashMap;

use rand::{rngs::SmallRng, RngCore, SeedableRng};
use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};
use sb_mem::{Gva, Hpa, PteFlags, PAGE_SIZE};
use sb_microkernel::{
    ipc::{Breakdown, Component},
    layout, Kernel, ProcessId, ThreadId,
};
use sb_observe::{Recorder, SpanKind};
use sb_rewriter::rewrite::rewrite_code;
use sb_rootkernel::EptpList;
use sb_sim::Cycles;

use crate::{
    error::SbError,
    registry::{Binding, ServerId, ServerInfo, Violation},
    trampoline,
};

/// Maximum bytes carried in registers (the x86-64 calling convention's
/// argument registers).
pub const REGISTER_ARGS_MAX: usize = 64;

/// A server handler: runs *in the server's address space on the client's
/// thread* (thread-migration model), reading the request and producing a
/// reply. It receives the kernel and SkyBridge handles so servers can
/// perform nested `direct_server_call`s (the KV-store pipeline of Fig. 1).
pub type Handler =
    Box<dyn FnMut(&mut SkyBridge, &mut Kernel, HandlerCtx, &[u8]) -> Result<HandlerReply, SbError>>;

/// What a handler sends back.
///
/// The echo contract every serving personality implements needs no bytes
/// at all: the reply *is* the request, already sitting in the shared
/// buffer, so the return path serves it in place without materialising a
/// `Vec`. Handlers with a real payload return [`HandlerReply::Bytes`]
/// (a `Vec<u8>` converts via `.into()`).
#[derive(Debug)]
pub enum HandlerReply {
    /// Reply with the request's own bytes, served in place from the
    /// shared buffer — the zero-copy echo path.
    Echo,
    /// Explicit reply bytes, written into the caller-visible half of the
    /// shared buffer (or returned in registers when small).
    Bytes(Vec<u8>),
}

impl From<Vec<u8>> for HandlerReply {
    fn from(v: Vec<u8>) -> Self {
        HandlerReply::Bytes(v)
    }
}

/// What a handler knows about the call it is serving.
#[derive(Debug, Clone, Copy)]
pub struct HandlerCtx {
    /// The server being called.
    pub server: ServerId,
    /// The serving process (whose address space is active).
    pub server_process: ProcessId,
    /// The calling thread (migrated into the server space).
    pub caller: ThreadId,
    /// The shared buffer of this connection.
    pub shared_buf: Gva,
    /// The connection index.
    pub connection: usize,
}

/// An open batched crossing: the migrated thread is parked in the
/// server's EPT between [`SkyBridge::batch_begin`] and
/// [`SkyBridge::batch_end`], serving ring frames one after another
/// without re-paying the trampoline + VMFUNC boundary per frame.
#[derive(Debug)]
pub struct BatchSession {
    server: ServerId,
    client_tid: ThreadId,
    client_pid: ProcessId,
    core: usize,
    binding: Binding,
    server_pid: ProcessId,
    return_root: Hpa,
    return_identity: ProcessId,
    client_key: u64,
    open: bool,
    served: u64,
}

impl BatchSession {
    /// Whether the session still holds the server EPT (an error path
    /// forces the return crossing early and closes it).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Frames served to completion inside this crossing.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// The SkyBridge facility (the state the Subkernel integration keeps).
pub struct SkyBridge {
    servers: Vec<ServerInfo>,
    handlers: Vec<Option<Handler>>,
    bindings: HashMap<(ProcessId, ServerId), Binding>,
    /// Per-process EPTP slot of each binding EPT root.
    registered: HashMap<ProcessId, ()>,
    /// Recorded security violations.
    pub violations: Vec<Violation>,
    /// Optional call timeout (§7 DoS defense).
    pub timeout: Option<Cycles>,
    /// The global server-function-list frame (mapped read-only into every
    /// registered process at [`layout::SERVER_LIST_BASE`]).
    fn_list_gpa: Option<u64>,
    rng: SmallRng,
    /// Total direct server calls completed.
    pub call_count: u64,
    /// The chaos fault plane. Defaults to an all-zero mix, i.e. no
    /// injection; [`SkyBridge::attach_faults`] swaps in a live one.
    faults: FaultHandle,
    /// Trace recorder. Defaults to off (a flag check per emit site);
    /// [`SkyBridge::set_recorder`] swaps in a live one. Spans land on
    /// recorder lane = the calling thread's core.
    recorder: Recorder,
    /// The request-scoped trace id every emitted span carries — the
    /// wire `corr` of the call currently in flight. The transport stamps
    /// it before issuing the call; nested `direct_server_call`s made by
    /// handlers on the migrated thread deliberately inherit it, so a
    /// whole client→db→fs chain assembles under one id.
    trace_corr: u64,
}

impl std::fmt::Debug for SkyBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkyBridge")
            .field("servers", &self.servers.len())
            .field("bindings", &self.bindings.len())
            .field("violations", &self.violations)
            .field("call_count", &self.call_count)
            .finish()
    }
}

impl SkyBridge {
    /// Creates the facility (deterministic key RNG for reproducibility).
    pub fn new() -> Self {
        SkyBridge {
            servers: Vec::new(),
            handlers: Vec::new(),
            bindings: HashMap::new(),
            registered: HashMap::new(),
            violations: Vec::new(),
            timeout: None,
            fn_list_gpa: None,
            rng: SmallRng::seed_from_u64(0x5b_1d9e),
            call_count: 0,
            faults: FaultHandle::new(0, FaultMix::none()),
            recorder: Recorder::off(),
            trace_corr: 0,
        }
    }

    /// Attaches a trace recorder; phase spans (trampoline / switch /
    /// handler / marshal) are emitted on lane = calling core.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Stamps the trace id (wire `corr`) the next call's spans carry.
    /// Call sites that drive `direct_server_call` directly (tests,
    /// examples) may skip this and keep the previous id; the transports
    /// stamp it per request. Nested calls inherit the stamped id — the
    /// root of the chain owns the whole trace.
    pub fn set_trace_corr(&mut self, corr: u64) {
        self.trace_corr = corr;
    }

    /// The currently stamped trace id.
    pub fn trace_corr(&self) -> u64 {
        self.trace_corr
    }

    /// Attaches a live fault plane (chaos runs). Without this call the
    /// facility keeps its default all-zero mix and never injects.
    pub fn attach_faults(&mut self, faults: FaultHandle) {
        self.faults = faults;
    }

    /// The attached fault plane (for report collection).
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }

    /// Kills `server` (chaos/test control, and the internal effect of an
    /// injected handler panic): its thread dies and every subsequent call
    /// refuses with [`SbError::ServerDead`] until a revive.
    pub fn kill_server(&mut self, k: &mut Kernel, server: ServerId) {
        self.servers[server].dead = true;
        k.kill_thread(self.servers[server].thread);
    }

    /// Revives a crashed server — the supervisor restart half of the
    /// crash-recovery path. The outstanding handler-panic instance is
    /// marked recovered; clients still need to rebind.
    pub fn revive_server(&mut self, k: &mut Kernel, server: ServerId) {
        if self.servers[server].dead {
            self.servers[server].dead = false;
            k.revive_thread(self.servers[server].thread);
            self.faults.recovered(FaultPoint::HandlerPanic);
        }
    }

    /// Whether `server` is currently dead (crashed, not yet revived).
    pub fn server_dead(&self, server: ServerId) -> bool {
        self.servers.get(server).is_some_and(|s| s.dead)
    }

    /// Dissolves the `(client, server)` binding, returning its connection
    /// slot to the server's free list. The crash-recovery sequence is
    /// unbind → revive → `register_client`. Returns whether a binding
    /// existed.
    pub fn unbind_client(&mut self, client: ProcessId, server: ServerId) -> bool {
        match self.bindings.remove(&(client, server)) {
            Some(b) => {
                self.servers[server].free_connections.push(b.connection);
                true
            }
            None => false,
        }
    }

    /// Registers `pid` with SkyBridge: scans and rewrites its binary
    /// (§5.1), maps the trampoline page, and creates its own EPT with a
    /// pinned EPTP slot 0.
    ///
    /// Idempotent. This is the "~200 LoC of Subkernel integration" work.
    pub fn register_process(&mut self, k: &mut Kernel, pid: ProcessId) -> Result<(), SbError> {
        if self.registered.contains_key(&pid) {
            return Ok(());
        }
        self.rewrite_process(k, pid)?;
        // Map the trampoline page (X-only) at the shared address.
        let image = trampoline::page_image();
        Self::map_code_region(k, pid, layout::TRAMPOLINE_BASE, &image);
        // Map the global server function list (read-only; the Subkernel
        // writes entries through the physical frame at registration).
        let frame = *self
            .fn_list_gpa
            .get_or_insert_with(|| k.mem.alloc_frame().0);
        k.processes[pid].asp.map(
            &mut k.mem,
            layout::SERVER_LIST_BASE,
            sb_mem::Gpa(frame),
            PteFlags::USER_RO,
        );
        // The process's own EPT, pinned at slot 0 of its EPTP list.
        let cr3 = k.processes[pid].cr3();
        let own = if let Some(mut rk) = k.rootkernel.take() {
            let core = k.threads[k.processes[pid].threads[0]].core;
            let (machine, mem) = (&mut k.machine, &mut k.mem);
            let own = rk.process_ept(machine, core, mem, cr3);
            k.rootkernel = Some(rk);
            own
        } else {
            Hpa(0)
        };
        let mut list = EptpList::new(1);
        list.pin(0, own);
        k.processes[pid].own_ept = Some(own);
        k.processes[pid].eptp_list = Some(list);
        self.registered.insert(pid, ());
        self.reinstall_if_current(k, pid);
        Ok(())
    }

    /// Scans the process image for inadvertent `VMFUNC`s and patches them
    /// (W^X flip: writable during the patch, executable after).
    fn rewrite_process(&mut self, k: &mut Kernel, pid: ProcessId) -> Result<(), SbError> {
        let len = k.processes[pid].code_len;
        if len == 0 {
            return Ok(());
        }
        let asp = k.processes[pid].asp;
        let mut code = vec![0u8; len];
        read_setup(k, pid, layout::CODE_BASE, &mut code);
        let out = rewrite_code(&code, layout::CODE_BASE.0, layout::REWRITE_PAGE.0)?;
        // Write the patched image back (W^X: flip writable, write, flip
        // back).
        let pages = len.div_ceil(PAGE_SIZE as usize);
        for i in 0..pages {
            let gva = layout::CODE_BASE.add(i as u64 * PAGE_SIZE);
            asp.protect(&mut k.mem, gva, PteFlags::USER_DATA);
        }
        write_setup(k, pid, layout::CODE_BASE, &out.code);
        for i in 0..pages {
            let gva = layout::CODE_BASE.add(i as u64 * PAGE_SIZE);
            asp.protect(&mut k.mem, gva, PteFlags::USER_CODE);
        }
        if !out.rewrite_page.is_empty() {
            Self::map_code_region(k, pid, layout::REWRITE_PAGE, &out.rewrite_page);
        }
        Ok(())
    }

    /// Maps `bytes` as a W^X code region at `at` in `pid`.
    pub(crate) fn map_code_region(k: &mut Kernel, pid: ProcessId, at: Gva, bytes: &[u8]) {
        let asp = k.processes[pid].asp;
        let pages = bytes.len().div_ceil(PAGE_SIZE as usize).max(1);
        asp.alloc_and_map(&mut k.mem, at, pages, PteFlags::USER_DATA);
        write_setup(k, pid, at, bytes);
        for i in 0..pages {
            asp.protect(
                &mut k.mem,
                at.add(i as u64 * PAGE_SIZE),
                PteFlags::USER_CODE,
            );
        }
    }

    /// `register_server` (Fig. 4): registers `handler` for the process of
    /// `server_tid`, supporting `connections` simultaneous clients.
    /// Returns the server ID clients bind to.
    pub fn register_server(
        &mut self,
        k: &mut Kernel,
        server_tid: ThreadId,
        connections: usize,
        handler_len: usize,
        handler: Handler,
    ) -> Result<ServerId, SbError> {
        let pid = k.threads[server_tid].process;
        self.register_process(k, pid)?;
        let id = self.servers.len();
        // Stacks and key tables live in the *server's own* address space,
        // so they are addressed per process (by the ordinal of this server
        // within the process), not by the global server id — a process may
        // host several registered services.
        let ordinal = self.servers.iter().filter(|s| s.process == pid).count() as u64;
        let asp = k.processes[pid].asp;
        // Per-connection stacks (the count bounds concurrency, §4.4).
        let stack_pages = layout::SB_STACK_SIZE / PAGE_SIZE as usize;
        for c in 0..connections {
            let at =
                Gva(layout::SB_STACK_BASE.0
                    + (ordinal * 64 + c as u64) * layout::SB_STACK_SIZE as u64);
            asp.alloc_and_map(&mut k.mem, at, stack_pages, PteFlags::USER_DATA);
        }
        // Calling-key table page.
        let key_table = Gva(layout::KEY_TABLE_BASE.0 + ordinal * PAGE_SIZE);
        asp.alloc_and_map(&mut k.mem, key_table, 1, PteFlags::USER_DATA);
        // The registered handler function lives in the server image; we
        // record its address (the function list maps it into clients).
        let handler_fn = layout::CODE_BASE;
        self.servers.push(ServerInfo {
            id,
            process: pid,
            thread: server_tid,
            handler_fn,
            handler_len: handler_len.max(64),
            max_connections: connections,
            next_connection: 0,
            free_connections: Vec::new(),
            key_table,
            dead: false,
        });
        self.handlers.push(Some(handler));
        Ok(id)
    }

    /// `register_client_to_server` (Fig. 4): binds the process of
    /// `client_tid` to `server`, creating the binding EPT (CR3 remap) and
    /// the connection resources, and installing the EPT in the client's
    /// EPTP list.
    pub fn register_client(
        &mut self,
        k: &mut Kernel,
        client_tid: ThreadId,
        server: ServerId,
    ) -> Result<(), SbError> {
        let client_pid = k.threads[client_tid].process;
        if server >= self.servers.len() {
            return Err(SbError::NoSuchServer);
        }
        self.register_process(k, client_pid)?;
        if self.bindings.contains_key(&(client_pid, server)) {
            // Idempotent rebind: if a connection-slot exhaustion was
            // outstanding, the caller just observed it resolve.
            self.faults.recovered(FaultPoint::BufferExhaust);
            return Ok(());
        }
        // Injected slot exhaustion (§4.4 resource bound): a rogue sibling
        // grabbed the connection first. The facility refuses cleanly; the
        // caller's retry finds the slot reclaimed.
        if self.faults.fire(FaultPoint::BufferExhaust) {
            self.faults.detected(FaultPoint::BufferExhaust);
            return Err(SbError::NoFreeConnection);
        }
        let (server_pid, key_table) = {
            let s = &self.servers[server];
            (s.process, s.key_table)
        };
        // Reuse a slot freed by `unbind_client` before growing; crash →
        // rebind cycles must not exhaust the connection space.
        let next_conn = match self.servers[server].free_connections.pop() {
            Some(c) => c,
            None => {
                let s = &mut self.servers[server];
                if s.next_connection >= s.max_connections {
                    return Err(SbError::NoFreeConnection);
                }
                s.next_connection += 1;
                s.next_connection - 1
            }
        };

        // The binding EPT: shallow base-EPT copy remapping the client's
        // CR3 GPA to the server's page-table root (§4.3).
        let client_cr3 = k.processes[client_pid].cr3();
        let server_cr3 = k.processes[server_pid].cr3();
        let ept_root = if let Some(mut rk) = k.rootkernel.take() {
            let core = k.threads[client_tid].core;
            let root = rk.bind(&mut k.machine, core, &mut k.mem, client_cr3, server_cr3);
            k.rootkernel = Some(rk);
            root
        } else {
            Hpa(0)
        };

        // Shared buffer for this connection: same frames mapped at the
        // same GVA in both spaces — and in every server already bound to
        // this client. A nested call (thread-migration chaining, Fig. 1)
        // marshals its arguments *before* the VMFUNC, i.e. from the
        // intermediate server's address space, so the chain's buffers must
        // be reachable there too.
        let shared_buf = Gva(layout::SB_SHARED_BUF_BASE.0
            + (server * 64 + next_conn) as u64 * layout::SB_SHARED_BUF_SIZE as u64);
        let buf_pages = layout::SB_SHARED_BUF_SIZE / PAGE_SIZE as usize;
        let server_asp = k.processes[server_pid].asp;
        let first =
            server_asp.alloc_and_map(&mut k.mem, shared_buf, buf_pages, PteFlags::USER_DATA);
        let map_into = |k: &mut Kernel, pid: ProcessId, at: Gva, gpa0: u64| {
            let asp = k.processes[pid].asp;
            for i in 0..buf_pages {
                asp.map(
                    &mut k.mem,
                    at.add(i as u64 * PAGE_SIZE),
                    sb_mem::Gpa(gpa0 + i as u64 * PAGE_SIZE),
                    PteFlags::USER_DATA,
                );
            }
        };
        map_into(k, client_pid, shared_buf, first.0);
        // Cross-map along the client's existing bindings (both directions
        // of the dependency chain).
        let peers: Vec<(ProcessId, Gva, u64)> = self
            .bindings
            .iter()
            .filter(|((c, _), _)| *c == client_pid)
            .map(|((_, s), b)| (self.servers[*s].process, b.shared_buf, b.buf_gpa))
            .collect();
        for (peer_pid, peer_buf, peer_gpa) in peers {
            if peer_pid != server_pid {
                map_into(k, peer_pid, shared_buf, first.0);
                map_into(k, server_pid, peer_buf, peer_gpa);
            }
        }

        // Generate the 8-byte calling key and record it in the server's
        // key table (a real write into server memory).
        let server_key = self.rng.next_u64();
        let slot_gva = key_table.add(8 * (next_conn as u64));
        write_setup_pid(k, server_pid, slot_gva, &server_key.to_le_bytes());

        // Server stack for this connection (ordinal-addressed in the
        // server's space).
        let ordinal = self
            .servers
            .iter()
            .take(server)
            .filter(|s| s.process == server_pid)
            .count() as u64;
        let server_stack = Gva(layout::SB_STACK_BASE.0
            + (ordinal * 64 + next_conn as u64) * layout::SB_STACK_SIZE as u64);

        // The server function list (§3.1): record the handler address at
        // the server's slot. The page is read-only for user mode; the
        // Subkernel writes through the physical frame.
        let frame = self.fn_list_gpa.expect("registered processes map it");
        let handler_gva = self.servers[server].handler_fn.0;
        k.mem
            .write_u64(Hpa(frame + (server as u64 % 512) * 8), handler_gva);

        // Install the binding EPT into the client's EPTP list; the
        // context-switch hook keeps the VMCS list in sync.
        if let Some(list) = k.processes[client_pid].eptp_list.as_mut() {
            let (_slot, _evicted) = list.ensure(ept_root);
        }
        self.reinstall_if_current(k, client_pid);

        self.bindings.insert(
            (client_pid, server),
            Binding {
                server,
                connection: next_conn,
                server_key,
                shared_buf,
                buf_gpa: first.0,
                server_stack,
                ept_root,
            },
        );
        // A fresh binding succeeded: any outstanding slot-exhaustion
        // refusal has been retried past — the recovery path completed.
        self.faults.recovered(FaultPoint::BufferExhaust);
        Ok(())
    }

    /// Re-installs a process's EPTP list on the core where it currently
    /// runs (bindings may change while scheduled).
    fn reinstall_if_current(&self, k: &mut Kernel, pid: ProcessId) {
        if k.rootkernel.is_none() {
            return;
        }
        for core in 0..k.machine.num_cores() {
            if let Some(tid) = k.current_thread(core) {
                if k.threads[tid].process == pid {
                    if let (Some(mut rk), Some(list)) =
                        (k.rootkernel.take(), k.processes[pid].eptp_list.clone())
                    {
                        rk.install_eptp_list(&mut k.machine, core, list);
                        // Re-enter the process's own EPT.
                        rk.vmfunc(&mut k.machine, core, 0, 0)
                            .expect("slot 0 pinned");
                        k.rootkernel = Some(rk);
                    }
                }
            }
        }
    }

    /// The number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The binding of `(client process, server)`, if registered.
    pub fn binding(&self, client: ProcessId, server: ServerId) -> Option<&Binding> {
        self.bindings.get(&(client, server))
    }

    /// Overwrites a binding's presented key (attack simulation only: the
    /// client "guesses" a key instead of using the granted one).
    pub fn corrupt_binding_key(&mut self, client: ProcessId, server: ServerId, key: u64) {
        if let Some(b) = self.bindings.get_mut(&(client, server)) {
            b.server_key = key;
        }
    }

    /// `direct_server_call` (Fig. 4): invokes `server`'s registered
    /// handler from `client_tid` without entering the kernel, and returns
    /// the reply bytes along with the Figure 7-style breakdown of the
    /// transit costs.
    ///
    /// Compatibility wrapper over [`SkyBridge::direct_server_call_raw`]
    /// that materialises an echo reply into a fresh `Vec`. Scenario
    /// drivers, examples and tests use it; the serving hot path
    /// (`sb-runtime`'s transports) calls the raw form and reads the reply
    /// in place.
    pub fn direct_server_call(
        &mut self,
        k: &mut Kernel,
        client_tid: ThreadId,
        server: ServerId,
        request: &[u8],
    ) -> Result<(Vec<u8>, Breakdown), SbError> {
        let (out, b) = self.direct_server_call_raw(k, client_tid, server, request)?;
        Ok((out.unwrap_or_else(|| request.to_vec()), b))
    }

    /// The zero-copy `direct_server_call`: the request slice is written
    /// once into the connection's shared buffer and served in place; the
    /// server-space read, the reply write into the caller-visible half,
    /// and the client's read-back are charge-only (identical simulated
    /// translation and cache traffic, no host copies). Returns `None` for
    /// an echo reply — the reply bytes are the request's, still in the
    /// caller's staging buffer — or `Some(bytes)` when the handler
    /// produced a real payload.
    pub fn direct_server_call_raw(
        &mut self,
        k: &mut Kernel,
        client_tid: ThreadId,
        server: ServerId,
        request: &[u8],
    ) -> Result<(Option<Vec<u8>>, Breakdown), SbError> {
        let client_pid = k.threads[client_tid].process;
        let core = k.threads[client_tid].core;
        debug_assert_eq!(k.current_thread(core), Some(client_tid));
        if !self.registered.contains_key(&client_pid) {
            return Err(SbError::NotRegistered);
        }
        let binding = self
            .bindings
            .get(&(client_pid, server))
            .ok_or(SbError::NotBound)?
            .clone();
        if request.len() > layout::SB_SHARED_BUF_SIZE {
            return Err(SbError::MessageTooLarge);
        }
        if self.servers[server].dead {
            // Crashed earlier and not yet revived: refuse before touching
            // the server's address space.
            return Err(SbError::ServerDead { server });
        }
        let server_pid = self.servers[server].process;
        let handler_len = self.servers[server].handler_len;
        let mut b = Breakdown::new();
        let cost = k.machine.cost.clone();
        // The request-scoped trace id for every span of this call —
        // including the nested calls a handler makes, which run on the
        // same facility and see the same stamp.
        let corr = self.trace_corr;
        // Nested calls (a server calling a further server on the migrated
        // thread) must return to the EPT and identity that were active at
        // entry — not unconditionally to the client's own EPT.
        let return_root = Hpa(k.machine.cpu(core).ept_root);
        let return_identity = k.identity_current(core).unwrap_or(client_pid);

        // --- client-side trampoline ---
        let t0 = k.machine.cpu(core).tsc;
        k.user_exec(
            client_tid,
            layout::TRAMPOLINE_BASE,
            trampoline::TRAMPOLINE_FETCH,
        )?;
        k.machine.cpu_mut(core).advance(cost.trampoline_logic);
        // Per-call client key (§4.4): generated fresh, returned by the
        // server, rechecked below.
        let client_key = self.rng.next_u64();
        // Look up the target in the mapped server function list (§3.1).
        let mut entry = [0u8; 8];
        sb_mem::walk::read_bytes(
            &mut k.machine,
            core,
            &k.mem,
            layout::SERVER_LIST_BASE.add((server as u64 % 512) * 8),
            &mut entry,
            true,
        )?;
        debug_assert_eq!(
            u64::from_le_bytes(entry),
            self.servers[server].handler_fn.0,
            "function list must name the registered handler"
        );
        // Large arguments go through the shared buffer. The copy is its
        // own Marshal span; the entry Trampoline span ends where the
        // copy starts (the spans are flat siblings, never nested, so the
        // phase fold charges each its own cycles exactly once).
        let t_marshal = k.machine.cpu(core).tsc;
        self.recorder
            .span(core, SpanKind::Trampoline, t0, t_marshal, corr);
        if request.len() > REGISTER_ARGS_MAX {
            k.user_write(client_tid, binding.shared_buf, request)?;
            self.recorder.span(
                core,
                SpanKind::Marshal,
                t_marshal,
                k.machine.cpu(core).tsc,
                corr,
            );
        }
        b.add(Component::Other, k.machine.cpu(core).tsc - t0);

        // --- VMFUNC to the server EPT ---
        self.vmfunc_to(k, core, client_pid, binding.ept_root)?;
        b.add(Component::Vmfunc, cost.vmfunc);

        // --- server side: identity, stack, key check, handler ---
        // Everything between the two VMFUNCs is the Handler span: key
        // check, handler body, and the reply write into the shared
        // buffer.
        let t_srv = k.machine.cpu(core).tsc;
        k.identity_record(core, server_pid);
        k.machine.cpu_mut(core).advance(cost.trampoline_logic / 2);
        // Key check against the server's table (a real read of server
        // memory under the server's address space).
        let table = self.servers[server].key_table;
        let mut stored = [0u8; 8];
        sb_mem::walk::read_bytes(
            &mut k.machine,
            core,
            &k.mem,
            table.add(8 * binding.connection as u64),
            &mut stored,
            true,
        )?;
        // Injected key corruption: the presented key is flipped on the
        // wire (a guessing attack); the table check below must refuse it.
        let presented_key = if self.faults.fire(FaultPoint::KeyCorrupt) {
            binding.server_key ^ (1 + self.faults.draw(u64::MAX - 1))
        } else {
            binding.server_key
        };
        if u64::from_le_bytes(stored) != presented_key {
            // Refuse and notify the Subkernel (§4.4).
            self.faults.detected(FaultPoint::KeyCorrupt);
            self.violations.push(Violation::BadServerKey {
                client: client_pid,
                server,
            });
            self.recorder.span(
                core,
                SpanKind::Handler,
                t_srv,
                k.machine.cpu(core).tsc,
                corr,
            );
            self.vmfunc_to(k, core, client_pid, return_root)?;
            k.identity_record(core, return_identity);
            return Err(SbError::BadServerKey);
        }
        // Handler entry: fetch its code like a real call would — through
        // the client's (unchanged) CR3, resolved by the server EPT's
        // remap into the *server's* page table.
        let handler_fn = self.servers[server].handler_fn;
        k.user_exec(client_tid, handler_fn, handler_len)?;
        b.add(Component::Other, k.machine.cpu(core).tsc - t_srv);

        // Read the request in the server space — served in place: the
        // payload already sits in the shared buffer (written once above),
        // so this is charge-only (same translation and cache traffic as a
        // real read) and the handler sees the caller's slice directly.
        if request.len() > REGISTER_ARGS_MAX {
            sb_mem::walk::touch_bytes(
                &mut k.machine,
                core,
                &k.mem,
                binding.shared_buf,
                request.len(),
                sb_mem::walk::Access::Read,
                true,
            )?;
        }

        // Injected handler panic: the server thread dies mid-request. The
        // Subkernel notices, marks the server dead, and bounces the caller
        // back to its own space; recovery is revive + rebind + retry.
        if self.faults.fire(FaultPoint::HandlerPanic) {
            self.servers[server].dead = true;
            k.kill_thread(self.servers[server].thread);
            self.violations.push(Violation::ServerCrash { server });
            self.faults.detected(FaultPoint::HandlerPanic);
            self.recorder.span(
                core,
                SpanKind::Handler,
                t_srv,
                k.machine.cpu(core).tsc,
                corr,
            );
            self.vmfunc_to(k, core, client_pid, return_root)?;
            k.identity_record(core, return_identity);
            return Err(SbError::ServerDead { server });
        }

        // Run the registered handler on the migrated thread.
        let ctx = HandlerCtx {
            server,
            server_process: server_pid,
            caller: client_tid,
            shared_buf: binding.shared_buf,
            connection: binding.connection,
        };
        let handler_t0 = k.machine.cpu(core).tsc;
        let mut handler = self.handlers[server].take().expect("handler re-entered");
        let result = handler(self, k, ctx, request);
        self.handlers[server] = Some(handler);
        // Injected handler hang: the handler spins past the DoS budget.
        // Only injectable when a timeout is configured — without one a
        // hang has no recovery path and would wedge the simulation.
        let hung = self.timeout.is_some() && self.faults.fire(FaultPoint::HandlerHang);
        if let (true, Some(limit)) = (hung, self.timeout) {
            k.machine.cpu_mut(core).advance(limit.saturating_add(1));
        }
        let handler_cycles = k.machine.cpu(core).tsc - handler_t0;
        // DoS timeout (§7): if the handler overran the budget, force the
        // control flow back to the client.
        let timed_out = self.timeout.is_some_and(|limit| handler_cycles > limit);
        if hung {
            debug_assert!(timed_out, "an injected hang always overruns the budget");
            // The forced return (§7) IS the recovery for a hang.
            self.faults.recovered(FaultPoint::HandlerHang);
        }
        let reply = match result {
            Ok(r) => r,
            Err(e) => {
                self.recorder.span(
                    core,
                    SpanKind::Handler,
                    t_srv,
                    k.machine.cpu(core).tsc,
                    corr,
                );
                self.vmfunc_to(k, core, client_pid, return_root)?;
                k.identity_record(core, return_identity);
                return Err(e);
            }
        };
        // The server echoes the client key (modeled as register return);
        // a malicious server returning a wrong key is simulated in the
        // attack module by corrupting it.
        let echoed_key = client_key;

        // --- return path ---
        let t0 = k.machine.cpu(core).tsc;
        let reply_bytes = match reply {
            HandlerReply::Echo => None,
            HandlerReply::Bytes(v) => Some(v),
        };
        let reply_len = reply_bytes.as_deref().map_or(request.len(), <[u8]>::len);
        if reply_len > REGISTER_ARGS_MAX {
            if reply_len > layout::SB_SHARED_BUF_SIZE {
                self.recorder.span(
                    core,
                    SpanKind::Handler,
                    t_srv,
                    k.machine.cpu(core).tsc,
                    corr,
                );
                self.vmfunc_to(k, core, client_pid, return_root)?;
                k.identity_record(core, return_identity);
                return Err(SbError::MessageTooLarge);
            }
            match &reply_bytes {
                // Echo: the reply bytes already occupy the caller-visible
                // half of the shared buffer; the server's reply write is
                // charge-only.
                None => sb_mem::walk::touch_bytes(
                    &mut k.machine,
                    core,
                    &k.mem,
                    binding.shared_buf,
                    reply_len,
                    sb_mem::walk::Access::Write,
                    true,
                )?,
                Some(v) => sb_mem::walk::write_bytes(
                    &mut k.machine,
                    core,
                    &mut k.mem,
                    binding.shared_buf,
                    v,
                    true,
                )?,
            }
        }
        k.machine.cpu_mut(core).advance(cost.trampoline_logic / 2);
        b.add(Component::Other, k.machine.cpu(core).tsc - t0);
        self.recorder.span(
            core,
            SpanKind::Handler,
            t_srv,
            k.machine.cpu(core).tsc,
            corr,
        );

        self.vmfunc_to(k, core, client_pid, return_root)?;
        b.add(Component::Vmfunc, cost.vmfunc);

        let t0 = k.machine.cpu(core).tsc;
        k.identity_record(core, return_identity);
        k.user_exec(
            client_tid,
            Gva(layout::TRAMPOLINE_BASE.0 + 64),
            trampoline::TRAMPOLINE_FETCH / 2,
        )?;
        // Client-side return-key recheck (§4.4).
        if echoed_key != client_key {
            self.violations.push(Violation::BadClientKey {
                client: client_pid,
                server,
            });
            self.recorder.span(
                core,
                SpanKind::Trampoline,
                t0,
                k.machine.cpu(core).tsc,
                corr,
            );
            return Err(SbError::BadClientKey);
        }
        // Large replies come back through the shared buffer; the read is
        // charge-only since the bytes are already host-side (the caller's
        // staged request for an echo, the handler's `Vec` otherwise). As
        // on entry, the read-back is a Marshal span flat after the return
        // Trampoline span.
        let t_read = k.machine.cpu(core).tsc;
        self.recorder
            .span(core, SpanKind::Trampoline, t0, t_read, corr);
        if reply_len > REGISTER_ARGS_MAX {
            k.user_touch(
                client_tid,
                binding.shared_buf,
                reply_len,
                sb_mem::walk::Access::Read,
            )?;
            self.recorder.span(
                core,
                SpanKind::Marshal,
                t_read,
                k.machine.cpu(core).tsc,
                corr,
            );
        }
        let out = reply_bytes;
        b.add(Component::Other, k.machine.cpu(core).tsc - t0);

        if timed_out {
            self.violations.push(Violation::Timeout { server });
            return Err(SbError::Timeout {
                server,
                elapsed: handler_cycles,
            });
        }
        self.call_count += 1;
        // A completed call is the retry that resolves an earlier injected
        // key corruption (the refused attempt re-issued with the granted
        // key). No-op when nothing is outstanding.
        self.faults.recovered(FaultPoint::KeyCorrupt);
        Ok((out, b))
    }

    /// Opens a batched crossing: the client-side trampoline, the VMFUNC
    /// into the server EPT, and the server-side key check run **once**,
    /// then [`SkyBridge::batch_serve`] handles any number of frames on
    /// the migrated thread before [`SkyBridge::batch_end`] pays the
    /// return crossing. This is the ring doorbell's native fast path:
    /// the migrating-thread model already serves each call to completion
    /// on the caller's schedulable entity, so serving consecutive frames
    /// of the same connection inside one crossing changes nothing about
    /// isolation — the key check guards the *binding*, which is
    /// identical for every frame in the batch.
    ///
    /// No `Trampoline`/`Switch` spans are emitted for the shared
    /// crossing; in ring mode that overhead is the doorbell span's
    /// self-time, keeping the per-phase identity closed.
    pub fn batch_begin(
        &mut self,
        k: &mut Kernel,
        client_tid: ThreadId,
        server: ServerId,
    ) -> Result<BatchSession, SbError> {
        let client_pid = k.threads[client_tid].process;
        let core = k.threads[client_tid].core;
        debug_assert_eq!(k.current_thread(core), Some(client_tid));
        if !self.registered.contains_key(&client_pid) {
            return Err(SbError::NotRegistered);
        }
        let binding = self
            .bindings
            .get(&(client_pid, server))
            .ok_or(SbError::NotBound)?
            .clone();
        if self.servers[server].dead {
            return Err(SbError::ServerDead { server });
        }
        let server_pid = self.servers[server].process;
        let handler_len = self.servers[server].handler_len;
        let cost = k.machine.cost.clone();
        let return_root = Hpa(k.machine.cpu(core).ept_root);
        let return_identity = k.identity_current(core).unwrap_or(client_pid);

        // Client-side trampoline, once per crossing.
        k.user_exec(
            client_tid,
            layout::TRAMPOLINE_BASE,
            trampoline::TRAMPOLINE_FETCH,
        )?;
        k.machine.cpu_mut(core).advance(cost.trampoline_logic);
        let client_key = self.rng.next_u64();
        let mut entry = [0u8; 8];
        sb_mem::walk::read_bytes(
            &mut k.machine,
            core,
            &k.mem,
            layout::SERVER_LIST_BASE.add((server as u64 % 512) * 8),
            &mut entry,
            true,
        )?;
        debug_assert_eq!(
            u64::from_le_bytes(entry),
            self.servers[server].handler_fn.0,
            "function list must name the registered handler"
        );

        // One VMFUNC into the server EPT for the whole batch.
        self.vmfunc_to_inner(k, core, client_pid, binding.ept_root)?;
        k.identity_record(core, server_pid);
        k.machine.cpu_mut(core).advance(cost.trampoline_logic / 2);

        // Key check, once — it authorises the connection, and every
        // frame in the batch rides the same connection.
        let table = self.servers[server].key_table;
        let mut stored = [0u8; 8];
        sb_mem::walk::read_bytes(
            &mut k.machine,
            core,
            &k.mem,
            table.add(8 * binding.connection as u64),
            &mut stored,
            true,
        )?;
        let presented_key = if self.faults.fire(FaultPoint::KeyCorrupt) {
            binding.server_key ^ (1 + self.faults.draw(u64::MAX - 1))
        } else {
            binding.server_key
        };
        if u64::from_le_bytes(stored) != presented_key {
            self.faults.detected(FaultPoint::KeyCorrupt);
            self.violations.push(Violation::BadServerKey {
                client: client_pid,
                server,
            });
            self.vmfunc_to_inner(k, core, client_pid, return_root)?;
            k.identity_record(core, return_identity);
            return Err(SbError::BadServerKey);
        }

        // Fetch the handler's code once; it stays I-cache-hot for the
        // rest of the batch.
        k.user_exec(client_tid, self.servers[server].handler_fn, handler_len)?;

        Ok(BatchSession {
            server,
            client_tid,
            client_pid,
            core,
            binding,
            server_pid,
            return_root,
            return_identity,
            client_key,
            open: true,
            served: 0,
        })
    }

    /// Serves one frame inside an open batched crossing: the per-entry
    /// marshal into the shared buffer, the handler run, the reply write
    /// and the client's read-back — everything direct mode charges per
    /// call *minus* the crossing. Emits the entry's `Call` span (with
    /// its nested `Marshal`/`Handler` spans) under `corr`.
    ///
    /// Any error forces the return crossing immediately (§7's forced
    /// return for timeouts, the Subkernel bounce for a crash) and closes
    /// the session — unserved frames stay queued for a later crossing.
    pub fn batch_serve(
        &mut self,
        k: &mut Kernel,
        s: &mut BatchSession,
        request: &[u8],
        corr: u64,
    ) -> Result<Option<Vec<u8>>, SbError> {
        debug_assert!(s.open, "batch_serve on a closed session");
        let core = s.core;
        let server = s.server;
        let cost = k.machine.cost.clone();
        self.trace_corr = corr;
        let t_entry = k.machine.cpu(core).tsc;
        self.recorder.begin(core, SpanKind::Call, t_entry, corr);
        if request.len() > layout::SB_SHARED_BUF_SIZE {
            self.recorder
                .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
            self.batch_close(k, s)?;
            return Err(SbError::MessageTooLarge);
        }
        // The server copies the frame from its ring slot into the
        // connection's working buffer — the batch-mode analogue of the
        // client's single marshal write.
        if request.len() > REGISTER_ARGS_MAX {
            let t_marshal = k.machine.cpu(core).tsc;
            sb_mem::walk::write_bytes(
                &mut k.machine,
                core,
                &mut k.mem,
                s.binding.shared_buf,
                request,
                true,
            )?;
            self.recorder.span(
                core,
                SpanKind::Marshal,
                t_marshal,
                k.machine.cpu(core).tsc,
                corr,
            );
        }
        let t_srv = k.machine.cpu(core).tsc;
        // The handler's in-place read of the request.
        if request.len() > REGISTER_ARGS_MAX {
            sb_mem::walk::touch_bytes(
                &mut k.machine,
                core,
                &k.mem,
                s.binding.shared_buf,
                request.len(),
                sb_mem::walk::Access::Read,
                true,
            )?;
        }
        if self.faults.fire(FaultPoint::HandlerPanic) {
            self.servers[server].dead = true;
            k.kill_thread(self.servers[server].thread);
            self.violations.push(Violation::ServerCrash { server });
            self.faults.detected(FaultPoint::HandlerPanic);
            self.recorder.span(
                core,
                SpanKind::Handler,
                t_srv,
                k.machine.cpu(core).tsc,
                corr,
            );
            self.recorder
                .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
            self.batch_close(k, s)?;
            return Err(SbError::ServerDead { server });
        }
        let ctx = HandlerCtx {
            server,
            server_process: s.server_pid,
            caller: s.client_tid,
            shared_buf: s.binding.shared_buf,
            connection: s.binding.connection,
        };
        let handler_t0 = k.machine.cpu(core).tsc;
        let mut handler = self.handlers[server].take().expect("handler re-entered");
        let result = handler(self, k, ctx, request);
        self.handlers[server] = Some(handler);
        let hung = self.timeout.is_some() && self.faults.fire(FaultPoint::HandlerHang);
        if let (true, Some(limit)) = (hung, self.timeout) {
            k.machine.cpu_mut(core).advance(limit.saturating_add(1));
        }
        let handler_cycles = k.machine.cpu(core).tsc - handler_t0;
        let timed_out = self.timeout.is_some_and(|limit| handler_cycles > limit);
        if hung {
            debug_assert!(timed_out, "an injected hang always overruns the budget");
            self.faults.recovered(FaultPoint::HandlerHang);
        }
        let reply = match result {
            Ok(r) => r,
            Err(e) => {
                self.recorder.span(
                    core,
                    SpanKind::Handler,
                    t_srv,
                    k.machine.cpu(core).tsc,
                    corr,
                );
                self.recorder
                    .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
                self.batch_close(k, s)?;
                return Err(e);
            }
        };
        let reply_bytes = match reply {
            HandlerReply::Echo => None,
            HandlerReply::Bytes(v) => Some(v),
        };
        let reply_len = reply_bytes.as_deref().map_or(request.len(), <[u8]>::len);
        if reply_len > layout::SB_SHARED_BUF_SIZE {
            self.recorder.span(
                core,
                SpanKind::Handler,
                t_srv,
                k.machine.cpu(core).tsc,
                corr,
            );
            self.recorder
                .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
            self.batch_close(k, s)?;
            return Err(SbError::MessageTooLarge);
        }
        if reply_len > REGISTER_ARGS_MAX {
            match &reply_bytes {
                None => sb_mem::walk::touch_bytes(
                    &mut k.machine,
                    core,
                    &k.mem,
                    s.binding.shared_buf,
                    reply_len,
                    sb_mem::walk::Access::Write,
                    true,
                )?,
                Some(v) => sb_mem::walk::write_bytes(
                    &mut k.machine,
                    core,
                    &mut k.mem,
                    s.binding.shared_buf,
                    v,
                    true,
                )?,
            }
        }
        k.machine.cpu_mut(core).advance(cost.trampoline_logic / 2);
        self.recorder.span(
            core,
            SpanKind::Handler,
            t_srv,
            k.machine.cpu(core).tsc,
            corr,
        );
        // The client's read-back of the completion — charged here, at
        // the point the reply bytes land in the completion ring.
        if reply_len > REGISTER_ARGS_MAX {
            let t_read = k.machine.cpu(core).tsc;
            sb_mem::walk::touch_bytes(
                &mut k.machine,
                core,
                &k.mem,
                s.binding.shared_buf,
                reply_len,
                sb_mem::walk::Access::Read,
                true,
            )?;
            self.recorder.span(
                core,
                SpanKind::Marshal,
                t_read,
                k.machine.cpu(core).tsc,
                corr,
            );
        }
        if timed_out {
            self.violations.push(Violation::Timeout { server });
            self.recorder
                .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
            self.batch_close(k, s)?;
            return Err(SbError::Timeout {
                server,
                elapsed: handler_cycles,
            });
        }
        self.recorder
            .end(core, SpanKind::Call, k.machine.cpu(core).tsc, corr);
        self.call_count += 1;
        self.faults.recovered(FaultPoint::KeyCorrupt);
        s.served += 1;
        Ok(reply_bytes)
    }

    /// Pays the return crossing of an open session (no-op when an error
    /// path already forced it): VMFUNC back, identity restore, the
    /// return half of the trampoline, and the client key recheck.
    pub fn batch_end(&mut self, k: &mut Kernel, mut s: BatchSession) -> Result<(), SbError> {
        self.batch_close(k, &mut s)
    }

    fn batch_close(&mut self, k: &mut Kernel, s: &mut BatchSession) -> Result<(), SbError> {
        if !s.open {
            return Ok(());
        }
        s.open = false;
        self.vmfunc_to_inner(k, s.core, s.client_pid, s.return_root)?;
        k.identity_record(s.core, s.return_identity);
        k.user_exec(
            s.client_tid,
            Gva(layout::TRAMPOLINE_BASE.0 + 64),
            trampoline::TRAMPOLINE_FETCH / 2,
        )?;
        // Client key recheck (§4.4): the register compare the return
        // trampoline performs. The server echoes the per-crossing key
        // (the attack module corrupts the echo on the direct path).
        let echoed_key = s.client_key;
        if echoed_key != s.client_key {
            self.violations.push(Violation::BadClientKey {
                client: s.client_pid,
                server: s.server,
            });
            return Err(SbError::BadClientKey);
        }
        Ok(())
    }

    /// Executes `VMFUNC` to the binding EPT, handling the LRU-evicted-slot
    /// fault path (§10 extension): a stale slot exits to the Rootkernel,
    /// which reinstalls the root and retries. Each switch — including the
    /// fault + reinstall path's extra cycles — is one `Switch` span.
    fn vmfunc_to(
        &mut self,
        k: &mut Kernel,
        core: usize,
        pid: ProcessId,
        root: Hpa,
    ) -> Result<(), SbError> {
        let t0 = k.machine.cpu(core).tsc;
        let out = self.vmfunc_to_inner(k, core, pid, root);
        let corr = self.trace_corr;
        self.recorder
            .span(core, SpanKind::Switch, t0, k.machine.cpu(core).tsc, corr);
        out
    }

    fn vmfunc_to_inner(
        &mut self,
        k: &mut Kernel,
        core: usize,
        pid: ProcessId,
        root: Hpa,
    ) -> Result<(), SbError> {
        let Some(mut rk) = k.rootkernel.take() else {
            // SkyBridge requires the Rootkernel underneath the Subkernel.
            return Err(SbError::Vmfunc(
                sb_rootkernel::VmfuncError::NotInNonRootMode,
            ));
        };
        // Injected EPTP eviction: a context switch elsewhere recycled this
        // root's VMCS slot, so the lookup below misses and the VMFUNC
        // takes the fault + reinstall path. Pinned slots can't be evicted;
        // a fire against one is rescinded (it never happened).
        if self.faults.fire(FaultPoint::EptpEvict) && !rk.vmcs[core].eptp_list.evict(root) {
            self.faults.rescind(FaultPoint::EptpEvict);
        }
        let slot = rk.vmcs[core].eptp_list.slot_of(root);
        let result = match slot {
            Some(slot) => rk.vmfunc(&mut k.machine, core, 0, slot),
            // Stale slot (LRU-evicted): the trampoline's VMFUNC really
            // executes with a dead index and takes the fault exit before
            // the Rootkernel repairs the list.
            None => rk.vmfunc(&mut k.machine, core, 0, usize::MAX),
        };
        let out = match result {
            Ok(()) => Ok(()),
            Err(_) => {
                // Slot fault: the Rootkernel validates the root against
                // the process's logical list, reinstalls, and retries.
                // This exit is where an evicted slot becomes *observed*.
                self.faults.detected(FaultPoint::EptpEvict);
                let Some(list) = k.processes[pid].eptp_list.as_mut() else {
                    k.rootkernel = Some(rk);
                    self.violations
                        .push(Violation::VmfuncFault { process: pid });
                    return Err(SbError::Vmfunc(sb_rootkernel::VmfuncError::InvalidIndex));
                };
                let (slot, _evicted) = list.ensure(root);
                let list = list.clone();
                rk.install_eptp_list(&mut k.machine, core, list);
                match rk.vmfunc(&mut k.machine, core, 0, slot) {
                    Ok(()) => {
                        // Reinstall + retry succeeded — the TLB-refill-
                        // style repair is the eviction's recovery.
                        self.faults.recovered(FaultPoint::EptpEvict);
                        Ok(())
                    }
                    Err(e) => {
                        self.violations
                            .push(Violation::VmfuncFault { process: pid });
                        Err(SbError::Vmfunc(e))
                    }
                }
            }
        };
        k.rootkernel = Some(rk);
        out
    }
}

impl Default for SkyBridge {
    fn default() -> Self {
        Self::new()
    }
}

/// Setup-time (uncharged) read of a process's memory.
pub(crate) fn read_setup(k: &Kernel, pid: ProcessId, gva: Gva, buf: &mut [u8]) {
    let asp = k.processes[pid].asp;
    let mut off = 0;
    while off < buf.len() {
        let at = gva.add(off as u64);
        let n = ((PAGE_SIZE - at.page_offset()) as usize).min(buf.len() - off);
        let (gpa, _) = asp.translate_setup(&k.mem, at).unwrap();
        k.mem.read_slice(Hpa(gpa.0), &mut buf[off..off + n]);
        off += n;
    }
}

/// Setup-time (uncharged) write of a process's memory.
pub(crate) fn write_setup(k: &mut Kernel, pid: ProcessId, gva: Gva, data: &[u8]) {
    let asp = k.processes[pid].asp;
    let mut off = 0;
    while off < data.len() {
        let at = gva.add(off as u64);
        let n = ((PAGE_SIZE - at.page_offset()) as usize).min(data.len() - off);
        let (gpa, _) = asp.translate_setup(&k.mem, at).unwrap();
        k.mem.write_slice(Hpa(gpa.0), &data[off..off + n]);
        off += n;
    }
}

/// Setup write addressed by process id (server-side tables).
fn write_setup_pid(k: &mut Kernel, pid: ProcessId, gva: Gva, data: &[u8]) {
    write_setup(k, pid, gva, data);
}
