//! Attack simulations for the §7 security analysis.
//!
//! Each function reproduces one of the paper's threat scenarios so the
//! security integration tests (and the `attacks` example) can demonstrate
//! both the attack *and* the defense.

use sb_microkernel::{layout, Kernel, ProcessId, ThreadId};
use sb_rewriter::scan::find_occurrences;
use sb_rootkernel::VmfuncError;

use crate::api::SkyBridge;

/// Outcome of an attempted attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack path no longer exists (e.g. the VMFUNC bytes were
    /// scrubbed from the attacker's code).
    Neutralized {
        /// Evidence, e.g. occurrences found in the attacker's image.
        occurrences_left: usize,
    },
    /// The attack was attempted and the hardware/Rootkernel faulted it.
    Faulted(VmfuncError),
    /// The attack *succeeded* (expected only when defenses are disabled —
    /// used to demonstrate why each defense is necessary).
    Succeeded,
}

/// Reads a process's code image back out of simulated memory.
pub fn dump_code(k: &Kernel, pid: ProcessId) -> Vec<u8> {
    let len = k.processes[pid].code_len;
    let asp = k.processes[pid].asp;
    let mut out = vec![0u8; len];
    let mut off = 0;
    while off < len {
        let at = layout::CODE_BASE.add(off as u64);
        let n = ((sb_mem::PAGE_SIZE - at.page_offset()) as usize).min(len - off);
        let (gpa, _) = asp.translate_setup(&k.mem, at).unwrap();
        k.mem.read_slice(sb_mem::Hpa(gpa.0), &mut out[off..off + n]);
        off += n;
    }
    out
}

/// The self-prepared `VMFUNC` attack (§4.4): a malicious process carries
/// its own `0F 01 D4` outside the trampoline and executes it to land in a
/// victim's address space at an attacker-chosen RIP.
///
/// After SkyBridge registration the attack is dead: the registration-time
/// rewrite removed every occurrence from the attacker's image. This
/// function scans the process's *current in-memory code* and, if any
/// occurrence survives, simulates executing it.
pub fn self_prepared_vmfunc(
    sb: &mut SkyBridge,
    k: &mut Kernel,
    attacker: ThreadId,
    eptp_index: usize,
) -> AttackOutcome {
    let pid = k.threads[attacker].process;
    let code = dump_code(k, pid);
    let occurrences = find_occurrences(&code);
    if occurrences.is_empty() {
        return AttackOutcome::Neutralized {
            occurrences_left: 0,
        };
    }
    // The bytes exist: the process executes them (no trampoline, no key
    // protocol). Whether this "works" is up to the Rootkernel state.
    raw_vmfunc(sb, k, attacker, eptp_index)
}

/// Executes a raw `VMFUNC(0, index)` outside the trampoline on the
/// attacker's core — the primitive behind both the self-prepared-VMFUNC
/// attack and the illegal-server-call attack.
pub fn raw_vmfunc(
    _sb: &mut SkyBridge,
    k: &mut Kernel,
    attacker: ThreadId,
    eptp_index: usize,
) -> AttackOutcome {
    let core = k.threads[attacker].core;
    let Some(mut rk) = k.rootkernel.take() else {
        return AttackOutcome::Faulted(VmfuncError::NotInNonRootMode);
    };
    let r = rk.vmfunc(&mut k.machine, core, 0, eptp_index);
    k.rootkernel = Some(rk);
    match r {
        Ok(()) => AttackOutcome::Succeeded,
        Err(e) => AttackOutcome::Faulted(e),
    }
}

/// Restores the attacker's own EPT after a demonstration (so later
/// operations see a consistent machine).
pub fn restore_own_ept(k: &mut Kernel, attacker: ThreadId) {
    let core = k.threads[attacker].core;
    if let Some(mut rk) = k.rootkernel.take() {
        let _ = rk.vmfunc(&mut k.machine, core, 0, 0);
        k.rootkernel = Some(rk);
    }
}

/// The illegal-server-call attack (§4.4): a client that *is* bound to some
/// server tries to call a *different* server it never registered with, by
/// presenting a forged calling key. [`SkyBridge::direct_server_call`]
/// refuses at binding lookup; this helper additionally demonstrates the
/// key check by injecting a corrupted key through a bound connection.
pub fn forged_key_call(
    sb: &mut SkyBridge,
    k: &mut Kernel,
    client: ThreadId,
    server: crate::registry::ServerId,
) -> AttackOutcome {
    let pid = k.threads[client].process;
    // Corrupt the stored binding key (attacker guesses wrong).
    let Some(b) = sb.binding(pid, server) else {
        return AttackOutcome::Neutralized {
            occurrences_left: 0,
        };
    };
    let real = b.server_key;
    sb.corrupt_binding_key(pid, server, real ^ 0xdead_beef);
    let result = sb.direct_server_call(k, client, server, b"attack");
    sb.corrupt_binding_key(pid, server, real);
    match result {
        Err(crate::error::SbError::BadServerKey) => AttackOutcome::Neutralized {
            occurrences_left: 0,
        },
        Ok(_) => AttackOutcome::Succeeded,
        Err(e) => panic!("unexpected error during forged-key call: {e}"),
    }
}
