//! SkyBridge errors.

use sb_mem::MemFault;
use sb_rewriter::rewrite::RewriteError;
use sb_rootkernel::VmfuncError;
use sb_sim::Cycles;

use crate::registry::ServerId;

/// Why a SkyBridge operation failed.
#[derive(Debug)]
pub enum SbError {
    /// The caller's process never registered with SkyBridge.
    NotRegistered,
    /// No such server ID.
    NoSuchServer,
    /// The client is not bound to this server (no
    /// `register_client_to_server`).
    NotBound,
    /// The server is out of connection slots.
    NoFreeConnection,
    /// The server's handler crashed (this call or an earlier one) and the
    /// server has not been revived. Recovery: revive + rebind, then retry.
    ServerDead {
        /// The dead server.
        server: ServerId,
    },
    /// The server-side calling-key check failed; the Subkernel was
    /// notified.
    BadServerKey,
    /// The client-side return-key check failed; the Subkernel was
    /// notified.
    BadClientKey,
    /// The handler exceeded the call timeout and control was forced back.
    /// Carries the offending server and the handler's elapsed simulated
    /// cycles so callers (the serving runtime's shed/timeout accounting)
    /// can distinguish causes.
    Timeout {
        /// The server whose handler overran the budget.
        server: ServerId,
        /// Simulated cycles the handler consumed before control was
        /// forced back.
        elapsed: Cycles,
    },
    /// Message exceeds the shared-buffer capacity.
    MessageTooLarge,
    /// `VMFUNC` faulted (bad slot) and recovery failed.
    Vmfunc(VmfuncError),
    /// The process's binary could not be scrubbed of inadvertent
    /// `VMFUNC`s.
    Rewrite(RewriteError),
    /// A translation fault during the call.
    Fault(MemFault),
}

impl std::fmt::Display for SbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbError::NotRegistered => write!(f, "process not registered"),
            SbError::NoSuchServer => write!(f, "no such server"),
            SbError::NotBound => write!(f, "client not bound to server"),
            SbError::NoFreeConnection => write!(f, "no free connection"),
            SbError::ServerDead { server } => write!(f, "server {server} is dead"),
            SbError::BadServerKey => write!(f, "server calling-key mismatch"),
            SbError::BadClientKey => write!(f, "client calling-key mismatch"),
            SbError::Timeout { server, elapsed } => {
                write!(
                    f,
                    "call to server {server} timed out after {elapsed} cycles"
                )
            }
            SbError::MessageTooLarge => write!(f, "message too large"),
            SbError::Vmfunc(e) => write!(f, "VMFUNC fault: {e}"),
            SbError::Rewrite(e) => write!(f, "binary rewrite failed: {e}"),
            SbError::Fault(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl std::error::Error for SbError {}

impl From<MemFault> for SbError {
    fn from(f: MemFault) -> Self {
        SbError::Fault(f)
    }
}

impl From<VmfuncError> for SbError {
    fn from(e: VmfuncError) -> Self {
        SbError::Vmfunc(e)
    }
}

impl From<RewriteError> for SbError {
    fn from(e: RewriteError) -> Self {
        SbError::Rewrite(e)
    }
}
