//! SkyBridge: kernel-less synchronous IPC via `VMFUNC`.
//!
//! This crate is the paper's primary contribution. It sits *beside* the
//! Subkernel ([`sb_microkernel`]) — the ~200 lines of per-kernel
//! integration — and *above* the Rootkernel ([`sb_rootkernel`]):
//!
//! 1. **Registration** (§3.1, Fig. 4): a server registers a handler
//!    function and a connection count; the kernel maps the trampoline code
//!    page, per-connection stacks and shared buffers into it, rewrites its
//!    binary to scrub inadvertent `VMFUNC`s ([`sb_rewriter`]), and hands
//!    back a server ID. A client registers against that ID; the Rootkernel
//!    builds the binding EPT (shallow base-EPT copy with the CR3 remap)
//!    and installs it in the client's EPTP list.
//! 2. **`direct_server_call`** (§4.4): the trampoline saves caller state,
//!    marshals small arguments in registers and large ones in the shared
//!    buffer, executes `VMFUNC(0, slot)` — 134 cycles, no kernel entry, no
//!    TLB flush — installs the server stack, checks the calling key, and
//!    invokes the registered handler; the mirror path returns. A roundtrip
//!    costs ~396 cycles against seL4's 986-cycle fastpath.
//! 3. **Security machinery** (§4.4, §7): calling-key tables against
//!    illegal server calls and client returns, the identity page against
//!    process misidentification, binary rewriting against self-prepared
//!    `VMFUNC`s, per-process page tables against Meltdown, and a timeout
//!    against servers that never return.

pub mod api;
pub mod attack;
pub mod error;
pub mod registry;
pub mod trampoline;
pub mod wx;

pub use crate::{
    api::{BatchSession, Handler, HandlerReply, SkyBridge},
    error::SbError,
    registry::{Binding, ServerId, ServerInfo, Violation},
};
