//! SkyBridge registration state.

use sb_mem::{Gva, Hpa};
use sb_microkernel::{ProcessId, ThreadId};

/// Identifier of a registered server.
pub type ServerId = usize;

/// A registered server.
#[derive(Debug)]
pub struct ServerInfo {
    /// Its ID (returned by `register_server`).
    pub id: ServerId,
    /// The serving process.
    pub process: ProcessId,
    /// The server's main thread (used for kernel bookkeeping only; calls
    /// migrate the *client's* thread into the server space).
    pub thread: ThreadId,
    /// GVA of the registered handler function (in the server's space).
    pub handler_fn: Gva,
    /// Approximate handler code size in bytes (fetched on every call).
    pub handler_len: usize,
    /// Maximum simultaneous connections (= number of stacks, §4.4).
    pub max_connections: usize,
    /// Connections handed out so far.
    pub next_connection: usize,
    /// Connection indices returned by `unbind_client`, reused before
    /// `next_connection` grows (so crash/rebind cycles don't exhaust the
    /// slot space).
    pub free_connections: Vec<usize>,
    /// GVA of the calling-key table page in the server's space.
    pub key_table: Gva,
    /// The handler crashed and the server awaits a supervisor revive;
    /// calls are refused with `SbError::ServerDead` meanwhile.
    pub dead: bool,
}

/// One client→server binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Target server.
    pub server: ServerId,
    /// Connection index (selects stack + shared buffer).
    pub connection: usize,
    /// The 8-byte calling key the Subkernel generated at registration
    /// (§4.4): the client presents it; the server checks it against its
    /// table.
    pub server_key: u64,
    /// GVA of the shared buffer (mapped in both client and server).
    pub shared_buf: Gva,
    /// GPA of the buffer's first frame (for chain cross-mapping).
    pub buf_gpa: u64,
    /// GVA of the server stack this connection uses.
    pub server_stack: Gva,
    /// Root of the binding EPT (client CR3 remapped to server CR3).
    pub ept_root: Hpa,
}

/// A recorded security violation (the "notify the kernel" of §4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A caller presented a key not in the server's table.
    BadServerKey {
        /// The client process.
        client: ProcessId,
        /// The called server.
        server: ServerId,
    },
    /// A server returned a key different from the client's per-call key.
    BadClientKey {
        /// The client process.
        client: ProcessId,
        /// The called server.
        server: ServerId,
    },
    /// A `VMFUNC` fault escalated to the Subkernel (self-prepared VMFUNC
    /// attempt by an unregistered process, or a corrupted slot).
    VmfuncFault {
        /// The offending process.
        process: ProcessId,
    },
    /// A handler exceeded the timeout and was forced to return.
    Timeout {
        /// The server that hung.
        server: ServerId,
    },
    /// A handler panicked mid-request and the server thread died.
    ServerCrash {
        /// The server that crashed.
        server: ServerId,
    },
}
