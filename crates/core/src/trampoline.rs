//! The trampoline code page.
//!
//! The trampoline is the one piece of code legally containing a `VMFUNC`
//! (§4.4). The Subkernel maps this page executable (never writable) into
//! every registered process at [`sb_microkernel::layout::TRAMPOLINE_BASE`];
//! the rewriter deliberately skips it. We carry real x86-64 bytes so that
//! (a) the simulated instruction fetches walk a real code footprint and
//! (b) scanning the page with [`sb_rewriter`] finds exactly the one legal
//! `VMFUNC` at [`VMFUNC_OFFSET`].

use sb_sim::Cycles;

/// Offset of the call-direction `VMFUNC` within the trampoline page.
pub const VMFUNC_OFFSET: usize = 38;

/// Offset of the return-direction `VMFUNC`.
pub const VMFUNC_RET_OFFSET: usize = 78;

/// Bytes of trampoline code fetched per one-way transit.
pub const TRAMPOLINE_FETCH: usize = 128;

/// Builds the 4 KiB trampoline page image.
///
/// Layout (hand-assembled, decodes under [`sb_rewriter::insn::decode`]):
/// save caller-saved registers, load the EPTP index, `VMFUNC`, install the
/// server stack from the per-connection slot, indirect-call the registered
/// handler; then the mirror return sequence with the second `VMFUNC`.
pub fn page_image() -> Vec<u8> {
    let mut p = Vec::with_capacity(4096);
    // --- direct_server_call entry ---
    // push rbx; push rbp; push r12..r15 (callee-saved save).
    p.extend_from_slice(&[0x53, 0x55]);
    p.extend_from_slice(&[0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57]);
    // mov rbp, rsp (remember the client stack).
    p.extend_from_slice(&[0x48, 0x89, 0xe5]);
    // mov rax, 0 ; mov rcx, <slot> (VMFUNC leaf in eax, index in ecx).
    p.extend_from_slice(&[0x48, 0xc7, 0xc0, 0x00, 0x00, 0x00, 0x00]);
    p.extend_from_slice(&[0x48, 0xc7, 0xc1, 0x01, 0x00, 0x00, 0x00]);
    // mov rdx, [rdi+8]; mov rsi, [rdi] (key + args from the descriptor).
    p.extend_from_slice(&[0x48, 0x8b, 0x57, 0x08]);
    p.extend_from_slice(&[0x48, 0x8b, 0x37]);
    // 7 bytes of NOP padding to place VMFUNC at VMFUNC_OFFSET.
    while p.len() < VMFUNC_OFFSET {
        p.push(0x90);
    }
    debug_assert_eq!(p.len(), VMFUNC_OFFSET);
    // vmfunc — the address-space switch.
    p.extend_from_slice(&[0x0f, 0x01, 0xd4]);
    // mov rsp, [rip+...] — install the server stack (slot-indexed).
    p.extend_from_slice(&[0x48, 0x8b, 0x25, 0x00, 0x10, 0x00, 0x00]);
    // call [rip+...] — invoke the registered handler via the function
    // list.
    p.extend_from_slice(&[0xff, 0x15, 0x00, 0x20, 0x00, 0x00]);
    // --- return path ---
    // mov rsp, rbp (restore client stack pointer placeholder).
    p.extend_from_slice(&[0x48, 0x89, 0xec]);
    // xor eax, eax; mov ecx, 0 (EPTP index 0 = caller's own EPT).
    p.extend_from_slice(&[0x31, 0xc0]);
    p.extend_from_slice(&[0xb9, 0x00, 0x00, 0x00, 0x00]);
    while p.len() < VMFUNC_RET_OFFSET {
        p.push(0x90);
    }
    debug_assert_eq!(p.len(), VMFUNC_RET_OFFSET);
    p.extend_from_slice(&[0x0f, 0x01, 0xd4]);
    // pop r15..r12; pop rbp; pop rbx; ret.
    p.extend_from_slice(&[0x41, 0x5f, 0x41, 0x5e, 0x41, 0x5d, 0x41, 0x5c]);
    p.extend_from_slice(&[0x5d, 0x5b, 0xc3]);
    p.resize(4096, 0x90);
    p
}

/// Cycles of trampoline work per one-way transit, *excluding* `VMFUNC`:
/// register save/restore and stack installation. The paper measures this
/// at 64 cycles (§6.3).
pub fn logic_cycles(cost: &sb_sim::CostModel) -> Cycles {
    cost.trampoline_logic
}

#[cfg(test)]
mod tests {
    use sb_rewriter::scan::{classify, OverlapKind};

    use super::*;

    #[test]
    fn page_is_one_page() {
        assert_eq!(page_image().len(), 4096);
    }

    #[test]
    fn contains_exactly_two_legal_vmfuncs() {
        let page = page_image();
        let occ = classify(&page);
        assert_eq!(occ.len(), 2, "call + return VMFUNC");
        assert!(occ.iter().all(|o| o.kind == OverlapKind::Vmfunc));
        assert_eq!(occ[0].offset, VMFUNC_OFFSET);
        assert_eq!(occ[1].offset, VMFUNC_RET_OFFSET);
    }

    #[test]
    fn every_byte_decodes() {
        // The trampoline must be walkable by the scanner: no opaque bytes.
        let page = page_image();
        for (off, insn) in sb_rewriter::scan::instruction_boundaries(&page[..96]) {
            assert!(insn.is_some(), "undecodable trampoline byte at {off}");
        }
    }
}
