//! The §9 W⊕X dynamic-code flow.
//!
//! Registration-time rewriting assumes code pages never change. For JIT
//! compilation, dynamic software updating, and live kernel updates the
//! paper prescribes: the generator must flip the target pages to
//! writable+non-executable, emit, then ask the Subkernel to remap them
//! executable — at which point SkyBridge **rescans** (and rewrites) just
//! those pages before granting execute permission. "The rescanning should
//! be carefully implemented to avoid the instructions that span the newly
//! mapped page and neighboring pages" — so the rescan window extends one
//! instruction-length (15 bytes) into both neighbors.

use sb_mem::{Gva, PteFlags, PAGE_SIZE};
use sb_microkernel::{layout, Kernel, ProcessId};
use sb_rewriter::rewrite::rewrite_code;

use crate::{api::SkyBridge, error::SbError};

/// Longest x86-64 instruction (the rescan overlap window).
const MAX_INSN: u64 = 15;

impl SkyBridge {
    /// Begins a JIT update: flips `[page, page + pages)` of `pid`'s code
    /// region writable and non-executable, returning a token the update
    /// must be completed with.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the process's loaded code image.
    pub fn jit_begin(
        &mut self,
        k: &mut Kernel,
        pid: ProcessId,
        page: Gva,
        pages: usize,
    ) -> JitUpdate {
        assert!(page.is_page_aligned());
        let code_end = layout::CODE_BASE.0 + k.processes[pid].code_len as u64;
        assert!(
            page.0 >= layout::CODE_BASE.0
                && page.0 + (pages as u64) * PAGE_SIZE <= code_end_align(code_end),
            "JIT range outside the code image"
        );
        let asp = k.processes[pid].asp;
        for i in 0..pages {
            asp.protect(
                &mut k.mem,
                page.add(i as u64 * PAGE_SIZE),
                PteFlags::USER_DATA,
            );
        }
        JitUpdate { pid, page, pages }
    }

    /// Completes a JIT update: writes `code` into the (writable) region,
    /// rescans the region *plus a 15-byte (max-instruction) overlap into each
    /// neighboring page*, rewrites any inadvertent `VMFUNC`s, and only
    /// then remaps the pages executable.
    ///
    /// Returns the number of occurrences scrubbed.
    pub fn jit_commit(
        &mut self,
        k: &mut Kernel,
        update: JitUpdate,
        code: &[u8],
    ) -> Result<usize, SbError> {
        let JitUpdate { pid, page, pages } = update;
        assert!(code.len() <= pages * PAGE_SIZE as usize);
        crate::api::write_setup(k, pid, page, code);

        // Rescan window: the updated pages plus the tail of the previous
        // page and the head of the next, so spanning patterns cannot hide
        // on the boundary.
        let code_base = layout::CODE_BASE.0;
        let code_len = k.processes[pid].code_len as u64;
        let win_start = (page.0 - code_base).saturating_sub(MAX_INSN);
        let win_end = ((page.0 - code_base) + pages as u64 * PAGE_SIZE + MAX_INSN)
            .min(code_len.max((page.0 - code_base) + pages as u64 * PAGE_SIZE));
        let mut window = vec![0u8; (win_end - win_start) as usize];
        crate::api::read_setup(k, pid, Gva(code_base + win_start), &mut window);
        let occurrences = sb_rewriter::scan::find_occurrences(&window).len();
        if occurrences > 0 {
            let out = rewrite_code(
                &window,
                code_base + win_start,
                layout::REWRITE_PAGE.0 + 2 * PAGE_SIZE, // JIT stub area.
            )?;
            // The window's neighbors are executable; flip them writable
            // for the patch, then back.
            let asp = k.processes[pid].asp;
            let first_page = (win_start / PAGE_SIZE) * PAGE_SIZE;
            let last_page = (win_end - 1) / PAGE_SIZE * PAGE_SIZE;
            let mut at = first_page;
            while at <= last_page {
                asp.protect(&mut k.mem, Gva(code_base + at), PteFlags::USER_DATA);
                at += PAGE_SIZE;
            }
            crate::api::write_setup(k, pid, Gva(code_base + win_start), &out.code);
            if !out.rewrite_page.is_empty() {
                Self::map_code_region(
                    k,
                    pid,
                    Gva(layout::REWRITE_PAGE.0 + 2 * PAGE_SIZE),
                    &out.rewrite_page,
                );
            }
            let mut at = first_page;
            while at <= last_page {
                if !(page.0 - code_base..page.0 - code_base + pages as u64 * PAGE_SIZE)
                    .contains(&at)
                {
                    asp.protect(&mut k.mem, Gva(code_base + at), PteFlags::USER_CODE);
                }
                at += PAGE_SIZE;
            }
        }
        // Grant execute on the updated pages last.
        let asp = k.processes[pid].asp;
        for i in 0..pages {
            asp.protect(
                &mut k.mem,
                page.add(i as u64 * PAGE_SIZE),
                PteFlags::USER_CODE,
            );
        }
        Ok(occurrences)
    }
}

fn code_end_align(end: u64) -> u64 {
    end.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Token for an in-flight JIT update (pages are writable, not
/// executable).
#[derive(Debug)]
pub struct JitUpdate {
    pid: ProcessId,
    page: Gva,
    pages: usize,
}
