//! End-to-end tests of the SkyBridge facility on the full stack:
//! Rootkernel + Subkernel + registration + `direct_server_call`.

use sb_microkernel::{ipc::Component, layout, Kernel, KernelConfig, Personality, ThreadId};
use sb_rewriter::scan::find_occurrences;
use skybridge::{api::HandlerCtx, attack, SbError, SkyBridge, Violation};

/// A clean synthetic code image.
fn clean_code() -> Vec<u8> {
    sb_rewriter::corpus::generate(11, 4096, 0)
}

/// A code image carrying inadvertent VMFUNC patterns.
fn dirty_code() -> Vec<u8> {
    sb_rewriter::corpus::generate(12, 4096, 40)
}

struct Rig {
    k: Kernel,
    sb: SkyBridge,
    client: ThreadId,
    server_tid: ThreadId,
    server: skybridge::ServerId,
}

/// Builds: one client and one echo server on core 0, registered and bound.
fn rig() -> Rig {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let cp = k.create_process(&clean_code());
    let sp = k.create_process(&clean_code());
    let client = k.create_thread(cp, 0);
    let server_tid = k.create_thread(sp, 0);
    // Server-private data the handler will read.
    k.run_thread(server_tid);
    k.user_write(server_tid, layout::HEAP_BASE, b"server-secret!")
        .unwrap();
    let server = sb
        .register_server(
            &mut k,
            server_tid,
            8,
            256,
            Box::new(|_sb, k, ctx: HandlerCtx, req| {
                // Echo the request, plus the first heap byte to prove the
                // handler runs in the *server's* address space.
                let mut heap = [0u8; 14];
                let core = k.core_of(ctx.caller);
                sb_mem::walk::read_bytes(
                    &mut k.machine,
                    core,
                    &k.mem,
                    layout::HEAP_BASE,
                    &mut heap,
                    true,
                )
                .map_err(SbError::from)?;
                let mut reply = req.to_vec();
                reply.extend_from_slice(&heap);
                Ok(reply.into())
            }),
        )
        .unwrap();
    sb.register_client(&mut k, client, server).unwrap();
    k.run_thread(client);
    Rig {
        k,
        sb,
        client,
        server_tid,
        server,
    }
}

#[test]
fn call_reaches_server_space_and_returns() {
    let mut r = rig();
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"ping")
            .unwrap();
    assert_eq!(&reply[..4], b"ping");
    assert_eq!(&reply[4..], b"server-secret!");
    assert_eq!(r.sb.call_count, 1);
}

#[test]
fn client_cannot_read_server_secret_directly() {
    let mut r = rig();
    let mut buf = [0u8; 14];
    // The client's own heap at the same GVA holds different (zero) data.
    r.k.user_read(r.client, layout::HEAP_BASE, &mut buf)
        .unwrap();
    assert_ne!(&buf, b"server-secret!");
}

#[test]
fn roundtrip_costs_about_396_cycles() {
    let mut r = rig();
    // Warm up caches/TLBs.
    for _ in 0..64 {
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x")
            .unwrap();
    }
    let (_, b) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x")
            .unwrap();
    assert_eq!(b.get(Component::Vmfunc), 268, "2 x 134-cycle VMFUNC");
    let total = b.total();
    assert!(
        (396..700).contains(&total),
        "steady-state SkyBridge roundtrip {total} should be near 396"
    );
    // No kernel involvement at all.
    assert_eq!(b.get(Component::SyscallSysret), 0);
    assert_eq!(b.get(Component::Ipi), 0);
    assert_eq!(b.get(Component::Schedule), 0);
}

#[test]
fn no_vm_exits_on_the_call_path() {
    let mut r = rig();
    for _ in 0..8 {
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x")
            .unwrap();
    }
    let exits_before = r.k.rootkernel.as_ref().unwrap().exits.total();
    for _ in 0..100 {
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x")
            .unwrap();
    }
    assert_eq!(
        r.k.rootkernel.as_ref().unwrap().exits.total(),
        exits_before,
        "steady-state direct server calls must not exit"
    );
}

#[test]
fn large_messages_go_through_the_shared_buffer() {
    let mut r = rig();
    let big: Vec<u8> = (0..4000).map(|i| (i % 251) as u8).collect();
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, &big)
            .unwrap();
    assert_eq!(&reply[..big.len()], &big[..]);
}

#[test]
fn unbound_client_is_refused() {
    let mut r = rig();
    // A third process never registered.
    let other = r.k.create_process(&clean_code());
    let other_tid = r.k.create_thread(other, 1);
    r.k.run_thread(other_tid);
    match r.sb.direct_server_call(&mut r.k, other_tid, r.server, b"x") {
        Err(SbError::NotRegistered) => {}
        other => panic!("expected NotRegistered, got {other:?}"),
    }
    // Registered but not bound.
    r.sb.register_process(&mut r.k, other).unwrap();
    r.k.run_thread(other_tid);
    match r.sb.direct_server_call(&mut r.k, other_tid, r.server, b"x") {
        Err(SbError::NotBound) => {}
        other => panic!("expected NotBound, got {other:?}"),
    }
}

#[test]
fn forged_calling_key_is_rejected_and_reported() {
    let mut r = rig();
    let outcome = attack::forged_key_call(&mut r.sb, &mut r.k, r.client, r.server);
    assert_eq!(
        outcome,
        attack::AttackOutcome::Neutralized {
            occurrences_left: 0
        }
    );
    assert!(r
        .sb
        .violations
        .iter()
        .any(|v| matches!(v, Violation::BadServerKey { .. })));
    // The facility still works with the real key afterwards.
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"ok")
            .unwrap();
    assert_eq!(&reply[..2], b"ok");
}

#[test]
fn registration_scrubs_inadvertent_vmfuncs() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let code = dirty_code();
    assert!(
        !find_occurrences(&code).is_empty(),
        "test premise: dirty image has occurrences"
    );
    let pid = k.create_process(&code);
    let tid = k.create_thread(pid, 0);
    k.run_thread(tid);
    sb.register_process(&mut k, pid).unwrap();
    let after = attack::dump_code(&k, pid);
    assert!(
        find_occurrences(&after).is_empty(),
        "registration must scrub every occurrence"
    );
}

#[test]
fn self_prepared_vmfunc_attack_is_neutralized() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let attacker_pid = k.create_process(&dirty_code());
    let attacker = k.create_thread(attacker_pid, 0);
    k.run_thread(attacker);
    // Before registration, the attacker has VMFUNC bytes and *could*
    // execute them (the raw primitive exists)…
    let code = attack::dump_code(&k, attacker_pid);
    assert!(!find_occurrences(&code).is_empty());
    // …after registration they are gone.
    sb.register_process(&mut k, attacker_pid).unwrap();
    let outcome = attack::self_prepared_vmfunc(&mut sb, &mut k, attacker, 1);
    assert_eq!(
        outcome,
        attack::AttackOutcome::Neutralized {
            occurrences_left: 0
        }
    );
}

#[test]
fn raw_vmfunc_without_eptp_list_faults() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let pid = k.create_process(&clean_code());
    let tid = k.create_thread(pid, 0);
    k.run_thread(tid);
    // Unregistered process: its core's EPTP list is empty — any VMFUNC
    // exits to the Rootkernel.
    let outcome = attack::raw_vmfunc(&mut sb, &mut k, tid, 3);
    assert!(matches!(outcome, attack::AttackOutcome::Faulted(_)));
    assert!(k.rootkernel.as_ref().unwrap().exits.vmfunc_fault > 0);
}

#[test]
fn timeout_forces_control_back() {
    let mut r = rig();
    r.sb.timeout = Some(10_000);
    // Register a hanging server in the same server process.
    let hang =
        r.sb.register_server(
            &mut r.k,
            r.server_tid,
            2,
            64,
            Box::new(|_, k, ctx: HandlerCtx, _req| {
                // Spin for far longer than the budget.
                k.compute(ctx.caller, 1_000_000);
                Ok(Vec::new().into())
            }),
        )
        .unwrap();
    r.sb.register_client(&mut r.k, r.client, hang).unwrap();
    r.k.run_thread(r.client);
    match r.sb.direct_server_call(&mut r.k, r.client, hang, b"x") {
        Err(SbError::Timeout { server, elapsed }) => {
            assert_eq!(server, hang);
            assert!(elapsed > 0, "elapsed cycles must be reported");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(r
        .sb
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Timeout { .. })));
    // The client is still functional.
    r.sb.direct_server_call(&mut r.k, r.client, r.server, b"y")
        .unwrap();
}

#[test]
fn nested_calls_follow_the_thread_migration_chain() {
    // Client -> encrypt -> kv (the Fig. 1 topology).
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let cp = k.create_process(&clean_code());
    let ep = k.create_process(&clean_code());
    let kvp = k.create_process(&clean_code());
    let client = k.create_thread(cp, 0);
    let enc_tid = k.create_thread(ep, 0);
    let kv_tid = k.create_thread(kvp, 0);

    let kv = sb
        .register_server(
            &mut k,
            kv_tid,
            4,
            128,
            Box::new(|_, _, _, req| {
                let mut r = req.to_vec();
                r.push(b'K');
                Ok(r.into())
            }),
        )
        .unwrap();
    let enc = sb
        .register_server(
            &mut k,
            enc_tid,
            4,
            128,
            Box::new(move |sb, k, ctx: HandlerCtx, req| {
                // "Encrypt" then forward to the KV server on the migrated
                // thread.
                let enc: Vec<u8> = req.iter().map(|b| b ^ 0x5a).collect();
                let (reply, _) = sb.direct_server_call(k, ctx.caller, kv, &enc)?;
                Ok(reply.into())
            }),
        )
        .unwrap();
    sb.register_client(&mut k, client, enc).unwrap();
    // The client's EPTP list must also hold the dependency (§4.2: "all
    // processes' EPTPs that the server depends on").
    sb.register_client(&mut k, client, kv).unwrap();
    k.run_thread(client);
    let (reply, _) = sb.direct_server_call(&mut k, client, enc, b"ab").unwrap();
    assert_eq!(reply, vec![b'a' ^ 0x5a, b'b' ^ 0x5a, b'K']);
    // After the chain unwinds, the client is back in its own space.
    assert_eq!(
        r#final(&mut k, client),
        cp,
        "identity must be restored to the client"
    );
}

fn r#final(k: &mut Kernel, tid: ThreadId) -> usize {
    let core = k.core_of(tid);
    k.identity_current(core).unwrap()
}

#[test]
fn identity_page_tracks_the_active_space_during_calls() {
    let mut r = rig();
    let client_pid = 0;
    let server_pid = 1;
    let core = r.k.core_of(r.client);
    assert_eq!(r.k.identity_current(core), Some(client_pid));
    // During the handler, identity must name the server (§4.2: the kernel
    // would serve an interrupt taken mid-call on behalf of the server).
    let seen = std::rc::Rc::new(std::cell::Cell::new(usize::MAX));
    let seen2 = seen.clone();
    let probe =
        r.sb.register_server(
            &mut r.k,
            r.server_tid,
            2,
            64,
            Box::new(move |_, k, ctx: HandlerCtx, _| {
                let core = k.core_of(ctx.caller);
                seen2.set(k.identity_current(core).unwrap());
                Ok(Vec::new().into())
            }),
        )
        .unwrap();
    r.sb.register_client(&mut r.k, r.client, probe).unwrap();
    r.k.run_thread(r.client);
    r.sb.direct_server_call(&mut r.k, r.client, probe, b"")
        .unwrap();
    assert_eq!(seen.get(), server_pid);
    assert_eq!(r.k.identity_current(core), Some(client_pid));
}

#[test]
fn connections_are_bounded_by_registration() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let sp = k.create_process(&clean_code());
    let stid = k.create_thread(sp, 0);
    let server = sb
        .register_server(
            &mut k,
            stid,
            2,
            64,
            Box::new(|_, _, _, _| Ok(vec![].into())),
        )
        .unwrap();
    for i in 0..3 {
        let cp = k.create_process(&clean_code());
        let ct = k.create_thread(cp, 0);
        let res = sb.register_client(&mut k, ct, server);
        if i < 2 {
            res.unwrap();
        } else {
            assert!(matches!(res, Err(SbError::NoFreeConnection)));
        }
    }
}
