//! Fault-injection integration tests: every injected fault has a
//! detection point and a recovery path, and the ledger closes (no leaks).

use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};
use sb_microkernel::{Kernel, KernelConfig, Personality, ThreadId};
use skybridge::{api::HandlerCtx, SbError, SkyBridge, Violation};

fn clean_code() -> Vec<u8> {
    sb_rewriter::corpus::generate(21, 4096, 0)
}

struct Rig {
    k: Kernel,
    sb: SkyBridge,
    client: ThreadId,
    server: skybridge::ServerId,
}

/// One client bound to one echo server, with `faults` attached *after*
/// setup so registration itself runs clean.
fn rig(faults: FaultHandle) -> Rig {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let cp = k.create_process(&clean_code());
    let sp = k.create_process(&clean_code());
    let client = k.create_thread(cp, 0);
    let server_tid = k.create_thread(sp, 0);
    let server = sb
        .register_server(
            &mut k,
            server_tid,
            8,
            128,
            Box::new(|_, _, _: HandlerCtx, _req| Ok(skybridge::HandlerReply::Echo)),
        )
        .unwrap();
    sb.register_client(&mut k, client, server).unwrap();
    k.run_thread(client);
    sb.attach_faults(faults);
    Rig {
        k,
        sb,
        client,
        server,
    }
}

#[test]
fn injected_panic_kills_server_and_rebind_recovers() {
    let h = FaultHandle::new(7, FaultMix::none().with(FaultPoint::HandlerPanic, 10_000));
    let mut r = rig(h.clone());
    match r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x") {
        Err(SbError::ServerDead { server }) => assert_eq!(server, r.server),
        other => panic!("expected ServerDead, got {other:?}"),
    }
    assert!(r.sb.server_dead(r.server));
    assert!(r
        .sb
        .violations
        .iter()
        .any(|v| matches!(v, Violation::ServerCrash { .. })));
    // While dead, calls keep refusing without opening new fault instances.
    assert!(matches!(
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x"),
        Err(SbError::ServerDead { .. })
    ));
    assert_eq!(h.injected_at(FaultPoint::HandlerPanic), 1);

    // Recovery: unbind, revive, rebind, retry (injection off so the retry
    // itself isn't re-killed).
    h.disarm();
    let client_pid = 0;
    assert!(r.sb.unbind_client(client_pid, r.server));
    r.sb.revive_server(&mut r.k, r.server);
    r.sb.register_client(&mut r.k, r.client, r.server).unwrap();
    r.k.run_thread(r.client);
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"back")
            .unwrap();
    assert_eq!(&reply, b"back");
    let report = h.report();
    assert_eq!(report.leaked(), 0, "{report}");
    assert_eq!(report.recovered(), 1);
}

#[test]
fn injected_key_corruption_is_refused_then_retried() {
    let h = FaultHandle::new(3, FaultMix::none().with(FaultPoint::KeyCorrupt, 10_000));
    let mut r = rig(h.clone());
    match r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x") {
        Err(SbError::BadServerKey) => {}
        other => panic!("expected BadServerKey, got {other:?}"),
    }
    assert!(r
        .sb
        .violations
        .iter()
        .any(|v| matches!(v, Violation::BadServerKey { .. })));
    // The retry presents the granted key again; with injection off it
    // completes and closes the ledger.
    h.disarm();
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"ok")
            .unwrap();
    assert_eq!(&reply, b"ok");
    let report = h.report();
    assert_eq!((report.injected(), report.leaked()), (1, 0), "{report}");
}

#[test]
fn injected_eptp_eviction_faults_and_repairs_in_call() {
    let h = FaultHandle::new(13, FaultMix::none().with(FaultPoint::EptpEvict, 10_000));
    let mut r = rig(h.clone());
    let exits_before = r.k.rootkernel.as_ref().unwrap().exits.total();
    // The call succeeds despite every VMFUNC losing its slot: each one
    // takes the fault + reinstall + retry path.
    let (reply, _) =
        r.sb.direct_server_call(&mut r.k, r.client, r.server, b"evict")
            .unwrap();
    assert_eq!(&reply, b"evict");
    assert!(
        r.k.rootkernel.as_ref().unwrap().exits.total() > exits_before,
        "the stale slot must really exit to the Rootkernel"
    );
    let report = h.report();
    assert!(report.injected() >= 1);
    assert_eq!(report.leaked(), 0, "{report}");
    assert_eq!(report.recovered(), report.injected());
}

#[test]
fn injected_hang_trips_the_timeout_budget() {
    let h = FaultHandle::new(5, FaultMix::none().with(FaultPoint::HandlerHang, 10_000));
    let mut r = rig(h.clone());
    r.sb.timeout = Some(10_000);
    match r.sb.direct_server_call(&mut r.k, r.client, r.server, b"x") {
        Err(SbError::Timeout { server, elapsed }) => {
            assert_eq!(server, r.server);
            assert!(elapsed > 10_000);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    let report = h.report();
    assert_eq!((report.injected(), report.leaked()), (1, 0), "{report}");

    // Without a timeout budget the hang is not injectable at all.
    let h2 = FaultHandle::new(5, FaultMix::none().with(FaultPoint::HandlerHang, 10_000));
    let mut r2 = rig(h2.clone());
    r2.sb.timeout = None;
    r2.sb
        .direct_server_call(&mut r2.k, r2.client, r2.server, b"x")
        .unwrap();
    assert_eq!(h2.report().injected(), 0);
}

#[test]
fn injected_slot_exhaustion_refuses_then_rebind_succeeds() {
    let h = FaultHandle::new(2, FaultMix::none().with(FaultPoint::BufferExhaust, 10_000));
    let mut r = rig(h.clone());
    let cp = r.k.create_process(&clean_code());
    let ct = r.k.create_thread(cp, 0);
    assert!(matches!(
        r.sb.register_client(&mut r.k, ct, r.server),
        Err(SbError::NoFreeConnection)
    ));
    h.disarm();
    r.sb.register_client(&mut r.k, ct, r.server).unwrap();
    let report = h.report();
    assert_eq!((report.injected(), report.leaked()), (1, 0), "{report}");
}

#[test]
fn unbind_returns_the_connection_slot() {
    let h = FaultHandle::new(1, FaultMix::none());
    let mut r = rig(h);
    // The rig's server allows 8 connections; cycle far more clients than
    // that through bind → unbind to prove slots are reclaimed.
    for i in 0..20 {
        let cp = r.k.create_process(&clean_code());
        let ct = r.k.create_thread(cp, 0);
        r.sb.register_client(&mut r.k, ct, r.server)
            .unwrap_or_else(|e| panic!("bind {i} refused: {e}"));
        let pid = r.k.threads[ct].process;
        assert!(r.sb.unbind_client(pid, r.server));
    }
}
