//! Multi-client SkyBridge behaviour: distinct connections, keys, shared
//! buffers, and cross-core concurrency of direct calls.

use sb_microkernel::{Kernel, KernelConfig, Personality, ThreadId};
use skybridge::{SbError, ServerId, SkyBridge};

fn boot() -> (Kernel, SkyBridge) {
    (
        Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4())),
        SkyBridge::new(),
    )
}

fn echo_server(k: &mut Kernel, sb: &mut SkyBridge, core: usize, connections: usize) -> ServerId {
    let pid = k.create_process(&sb_rewriter::corpus::generate(2, 2048, 0));
    let tid = k.create_thread(pid, core);
    sb.register_server(
        k,
        tid,
        connections,
        128,
        Box::new(|_, _, ctx, req| {
            let mut r = req.to_vec();
            r.push(ctx.connection as u8);
            Ok(r.into())
        }),
    )
    .unwrap()
}

fn client(k: &mut Kernel, sb: &mut SkyBridge, server: ServerId, core: usize) -> ThreadId {
    let pid = k.create_process(&sb_rewriter::corpus::generate(40 + core as u64, 2048, 0));
    let tid = k.create_thread(pid, core);
    sb.register_client(k, tid, server).unwrap();
    tid
}

#[test]
fn clients_get_distinct_connections_keys_and_buffers() {
    let (mut k, mut sb) = boot();
    let server = echo_server(&mut k, &mut sb, 0, 8);
    let c1 = client(&mut k, &mut sb, server, 0);
    let c2 = client(&mut k, &mut sb, server, 1);
    let p1 = k.threads[c1].process;
    let p2 = k.threads[c2].process;
    let b1 = sb.binding(p1, server).unwrap().clone();
    let b2 = sb.binding(p2, server).unwrap().clone();
    assert_ne!(b1.connection, b2.connection);
    assert_ne!(b1.server_key, b2.server_key, "keys are per binding");
    assert_ne!(b1.shared_buf, b2.shared_buf);
    assert_ne!(b1.server_stack, b2.server_stack);
    assert_ne!(b1.ept_root, b2.ept_root, "binding EPTs remap distinct CR3s");
}

#[test]
fn interleaved_calls_from_two_cores_stay_isolated() {
    let (mut k, mut sb) = boot();
    let server = echo_server(&mut k, &mut sb, 0, 4);
    let c1 = client(&mut k, &mut sb, server, 1);
    let c2 = client(&mut k, &mut sb, server, 2);
    k.run_thread(c1);
    k.run_thread(c2);
    // Interleave large (shared-buffer) calls; each must see its own data.
    for round in 0..20u8 {
        let m1 = vec![round; 300];
        let m2 = vec![round ^ 0xff; 300];
        let (r1, _) = sb.direct_server_call(&mut k, c1, server, &m1).unwrap();
        let (r2, _) = sb.direct_server_call(&mut k, c2, server, &m2).unwrap();
        assert_eq!(&r1[..300], &m1[..]);
        assert_eq!(&r2[..300], &m2[..]);
        assert_ne!(r1[300], r2[300], "distinct connections served");
    }
}

#[test]
fn one_client_many_servers_uses_distinct_slots() {
    let (mut k, mut sb) = boot();
    let servers: Vec<ServerId> = (0..6)
        .map(|i| echo_server(&mut k, &mut sb, 0, 2 + i % 3))
        .collect();
    let pid = k.create_process(&sb_rewriter::corpus::generate(77, 2048, 0));
    let tid = k.create_thread(pid, 0);
    for &s in &servers {
        sb.register_client(&mut k, tid, s).unwrap();
    }
    k.run_thread(tid);
    // The client's EPTP list holds slot 0 (own EPT) + one slot per server.
    let list = k.processes[pid].eptp_list.as_ref().unwrap();
    assert_eq!(list.len(), 1 + servers.len());
    for (i, &s) in servers.iter().enumerate() {
        let (reply, _) = sb.direct_server_call(&mut k, tid, s, &[i as u8]).unwrap();
        assert_eq!(reply[0], i as u8);
    }
}

#[test]
fn handler_errors_propagate_and_restore_the_caller() {
    let (mut k, mut sb) = boot();
    let pid = k.create_process(&sb_rewriter::corpus::generate(3, 2048, 0));
    let tid = k.create_thread(pid, 0);
    let flaky = sb
        .register_server(
            &mut k,
            tid,
            2,
            64,
            Box::new(|_, _, _, req| {
                if req.first() == Some(&0xEE) {
                    Err(SbError::NoSuchServer) // Arbitrary server-side error.
                } else {
                    Ok(vec![1].into())
                }
            }),
        )
        .unwrap();
    let c = client(&mut k, &mut sb, flaky, 1);
    k.run_thread(c);
    assert!(sb.direct_server_call(&mut k, c, flaky, &[0xEE]).is_err());
    // The caller is back in its own EPT and can call again.
    let own = k.processes[k.threads[c].process].own_ept.unwrap();
    assert_eq!(k.machine.cpu(1).ept_root, own.0);
    let (r, _) = sb.direct_server_call(&mut k, c, flaky, &[1]).unwrap();
    assert_eq!(r, vec![1]);
}
