//! §9 W⊕X dynamic code: JIT updates are rescanned before execute is
//! granted.

use sb_mem::{Gva, PteFlags, PAGE_SIZE};
use sb_microkernel::{layout, Kernel, KernelConfig, Personality};
use sb_rewriter::scan::find_occurrences;
use skybridge::{attack, SkyBridge};

fn setup() -> (Kernel, SkyBridge, usize) {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let mut sb = SkyBridge::new();
    let pid = k.create_process(&sb_rewriter::corpus::generate(1, 4 * 4096, 0));
    let tid = k.create_thread(pid, 0);
    k.run_thread(tid);
    sb.register_process(&mut k, pid).unwrap();
    (k, sb, pid)
}

fn page_flags(k: &Kernel, pid: usize, gva: Gva) -> PteFlags {
    let asp = k.processes[pid].asp;
    asp.translate_setup(&k.mem, gva).unwrap().1
}

#[test]
fn jit_begin_flips_writable_nonexecutable() {
    let (mut k, mut sb, pid) = setup();
    let page = Gva(layout::CODE_BASE.0 + PAGE_SIZE);
    assert!(page_flags(&k, pid, page).exec);
    let update = sb.jit_begin(&mut k, pid, page, 1);
    let f = page_flags(&k, pid, page);
    assert!(f.write && !f.exec, "in-flight JIT pages must be W, not X");
    // Commit restores W^X.
    sb.jit_commit(&mut k, update, &[0x90; 64]).unwrap();
    let f = page_flags(&k, pid, page);
    assert!(!f.write && f.exec);
}

#[test]
fn clean_jit_code_passes_through() {
    let (mut k, mut sb, pid) = setup();
    let page = Gva(layout::CODE_BASE.0 + PAGE_SIZE);
    let code = sb_rewriter::corpus::generate(9, 2048, 0);
    let update = sb.jit_begin(&mut k, pid, page, 1);
    let scrubbed = sb.jit_commit(&mut k, update, &code).unwrap();
    assert_eq!(scrubbed, 0);
    // The emitted bytes are in place.
    let image = attack::dump_code(&k, pid);
    assert_eq!(
        &image[PAGE_SIZE as usize..PAGE_SIZE as usize + code.len()],
        &code[..]
    );
}

#[test]
fn jit_emitted_vmfunc_is_scrubbed_before_execute() {
    let (mut k, mut sb, pid) = setup();
    let page = Gva(layout::CODE_BASE.0 + PAGE_SIZE);
    // A malicious (or unlucky) JIT emits a literal VMFUNC plus an
    // immediate-embedded pattern.
    let mut code = vec![0x90u8; 32];
    code.extend_from_slice(&[0x0f, 0x01, 0xd4]); // vmfunc.
    code.extend_from_slice(&[0x05, 0x0f, 0x01, 0xd4, 0x00]); // add eax, pat.
    code.push(0xc3);
    code.resize(256, 0x90);
    assert!(!find_occurrences(&code).is_empty());
    let update = sb.jit_begin(&mut k, pid, page, 1);
    let scrubbed = sb.jit_commit(&mut k, update, &code).unwrap();
    assert!(scrubbed >= 2, "both occurrences must be found");
    let image = attack::dump_code(&k, pid);
    assert!(
        find_occurrences(&image).is_empty(),
        "no pattern may survive into an executable page"
    );
    // The page is executable again.
    assert!(page_flags(&k, pid, page).exec);
}

#[test]
fn boundary_spanning_pattern_is_caught() {
    let (mut k, mut sb, pid) = setup();
    // First, place a benign instruction ending in 0x0F at the end of page
    // 1 via one JIT update…
    let p1 = Gva(layout::CODE_BASE.0 + PAGE_SIZE);
    let mut tail = vec![0x90u8; PAGE_SIZE as usize];
    // mov eax, 0x0F000000 ends the page: last byte 0x0F.
    tail.truncate(PAGE_SIZE as usize - 5);
    tail.extend_from_slice(&[0xb8, 0x00, 0x00, 0x00, 0x0f]);
    let u = sb.jit_begin(&mut k, pid, p1, 1);
    sb.jit_commit(&mut k, u, &tail).unwrap();
    // …then JIT page 2 beginning with 01 D4 (add esp, edx): the pattern
    // spans the page boundary and only the overlap window can see it.
    let p2 = Gva(layout::CODE_BASE.0 + 2 * PAGE_SIZE);
    let mut head = vec![0x01u8, 0xd4, 0xc3];
    head.resize(64, 0x90);
    let u = sb.jit_begin(&mut k, pid, p2, 1);
    let scrubbed = sb.jit_commit(&mut k, u, &head).unwrap();
    assert!(scrubbed >= 1, "the spanning occurrence must be detected");
    let image = attack::dump_code(&k, pid);
    assert!(find_occurrences(&image).is_empty());
}
