//! Page-based B-tree tables.
//!
//! Each table is a B-tree of `(i64 key → record bytes)` pairs over
//! [`crate::PAGE_SIZE`] pages, in the SQLite mold: leaves hold the
//! records, internal nodes hold separator keys, nodes split upward when a
//! page overflows. Deletion removes from the leaf without rebalancing
//! (pages may run underfull — the same simplification early SQLite used).

use sb_fs::FileApi;

use crate::{db::TxnCtx, PAGE_SIZE};

/// Maximum record size storable in a leaf.
pub const MAX_VALUE: usize = 1536;

/// A leaf's `(key, record)` entries.
pub type Items = Vec<(i64, Vec<u8>)>;

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;
const HDR: usize = 8;

/// Decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Sorted `(key, record)` pairs.
    Leaf(Vec<(i64, Vec<u8>)>),
    /// `children.len() == keys.len() + 1`; subtree `children[i]` holds
    /// keys `< keys[i]`, `children[i+1]` holds keys `>= keys[i]`.
    Internal {
        /// Separator keys.
        keys: Vec<i64>,
        /// Child page numbers.
        children: Vec<u32>,
    },
}

impl Node {
    /// Serialized size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf(items) => HDR + items.iter().map(|(_, v)| 10 + v.len()).sum::<usize>(),
            Node::Internal { keys, .. } => HDR + 4 + keys.len() * 12,
        }
    }

    /// Serializes into a page.
    ///
    /// # Panics
    ///
    /// Panics if the node exceeds the page (callers split first).
    pub fn encode(&self) -> [u8; PAGE_SIZE] {
        assert!(self.encoded_size() <= PAGE_SIZE, "node overflows page");
        let mut p = [0u8; PAGE_SIZE];
        match self {
            Node::Leaf(items) => {
                p[0] = LEAF;
                p[2..4].copy_from_slice(&(items.len() as u16).to_le_bytes());
                let mut at = HDR;
                for (k, v) in items {
                    p[at..at + 8].copy_from_slice(&k.to_le_bytes());
                    p[at + 8..at + 10].copy_from_slice(&(v.len() as u16).to_le_bytes());
                    p[at + 10..at + 10 + v.len()].copy_from_slice(v);
                    at += 10 + v.len();
                }
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                p[0] = INTERNAL;
                p[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                p[4..8].copy_from_slice(&children[0].to_le_bytes());
                let mut at = HDR;
                for (i, k) in keys.iter().enumerate() {
                    p[at..at + 8].copy_from_slice(&k.to_le_bytes());
                    p[at + 8..at + 12].copy_from_slice(&children[i + 1].to_le_bytes());
                    at += 12;
                }
            }
        }
        p
    }

    /// Deserializes a page (a zero page decodes as an empty leaf).
    pub fn decode(p: &[u8; PAGE_SIZE]) -> Node {
        let n = u16::from_le_bytes(p[2..4].try_into().unwrap()) as usize;
        match p[0] {
            INTERNAL => {
                let mut keys = Vec::with_capacity(n);
                let mut children = Vec::with_capacity(n + 1);
                children.push(u32::from_le_bytes(p[4..8].try_into().unwrap()));
                let mut at = HDR;
                for _ in 0..n {
                    keys.push(i64::from_le_bytes(p[at..at + 8].try_into().unwrap()));
                    children.push(u32::from_le_bytes(p[at + 8..at + 12].try_into().unwrap()));
                    at += 12;
                }
                Node::Internal { keys, children }
            }
            _ => {
                let mut items = Vec::with_capacity(n);
                let mut at = HDR;
                for _ in 0..n {
                    let k = i64::from_le_bytes(p[at..at + 8].try_into().unwrap());
                    let len = u16::from_le_bytes(p[at + 8..at + 10].try_into().unwrap()) as usize;
                    items.push((k, p[at + 10..at + 10 + len].to_vec()));
                    at += 10 + len;
                }
                Node::Leaf(items)
            }
        }
    }
}

/// Searches for `key` starting at `root`.
pub fn get<F: FileApi>(ctx: &mut TxnCtx<'_, F>, root: u32, key: i64) -> Option<Vec<u8>> {
    let mut at = root;
    loop {
        match Node::decode(&ctx.read(at)) {
            Node::Leaf(items) => {
                return items
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| v.clone());
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                at = children[idx];
            }
        }
    }
}

/// Inserts (or replaces, if `replace`) `key → value` under `root`.
///
/// Returns `(new_root, previously_present)`. The root page number changes
/// only when the root splits.
pub fn insert<F: FileApi>(
    ctx: &mut TxnCtx<'_, F>,
    root: u32,
    key: i64,
    value: &[u8],
) -> (u32, bool) {
    assert!(value.len() <= MAX_VALUE, "record exceeds MAX_VALUE");
    let (split, existed) = insert_rec(ctx, root, key, value);
    match split {
        None => (root, existed),
        Some((sep, right)) => {
            let new_root = ctx.allocate();
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![root, right],
            };
            ctx.write(new_root, &node.encode());
            (new_root, existed)
        }
    }
}

fn insert_rec<F: FileApi>(
    ctx: &mut TxnCtx<'_, F>,
    at: u32,
    key: i64,
    value: &[u8],
) -> (Option<(i64, u32)>, bool) {
    match Node::decode(&ctx.read(at)) {
        Node::Leaf(mut items) => {
            let existed = match items.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => {
                    items[i].1 = value.to_vec();
                    true
                }
                Err(i) => {
                    items.insert(i, (key, value.to_vec()));
                    false
                }
            };
            let node = Node::Leaf(items);
            if node.encoded_size() <= PAGE_SIZE {
                ctx.write(at, &node.encode());
                return (None, existed);
            }
            // Split the leaf at the byte midpoint.
            let Node::Leaf(items) = node else {
                unreachable!()
            };
            let (left, right) = split_items(items);
            let sep = right[0].0;
            let right_pno = ctx.allocate();
            ctx.write(at, &Node::Leaf(left).encode());
            ctx.write(right_pno, &Node::Leaf(right).encode());
            (Some((sep, right_pno)), existed)
        }
        Node::Internal {
            mut keys,
            mut children,
        } => {
            let idx = keys.partition_point(|k| *k <= key);
            let (split, existed) = insert_rec(ctx, children[idx], key, value);
            if let Some((sep, right)) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                let node = Node::Internal { keys, children };
                if node.encoded_size() <= PAGE_SIZE {
                    ctx.write(at, &node.encode());
                    return (None, existed);
                }
                // Split the internal node.
                let Node::Internal { keys, children } = node else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let sep_up = keys[mid];
                let right_node = Node::Internal {
                    keys: keys[mid + 1..].to_vec(),
                    children: children[mid + 1..].to_vec(),
                };
                let left_node = Node::Internal {
                    keys: keys[..mid].to_vec(),
                    children: children[..=mid].to_vec(),
                };
                let right_pno = ctx.allocate();
                ctx.write(at, &left_node.encode());
                ctx.write(right_pno, &right_node.encode());
                (Some((sep_up, right_pno)), existed)
            } else {
                (None, existed)
            }
        }
    }
}

fn split_items(items: Items) -> (Items, Items) {
    let total: usize = items.iter().map(|(_, v)| 10 + v.len()).sum();
    let mut acc = 0;
    let mut cut = items.len() / 2;
    for (i, (_, v)) in items.iter().enumerate() {
        acc += 10 + v.len();
        if acc >= total / 2 {
            cut = (i + 1).min(items.len() - 1).max(1);
            break;
        }
    }
    let mut left = items;
    let right = left.split_off(cut);
    (left, right)
}

/// Deletes `key` under `root`; returns true if it was present.
pub fn delete<F: FileApi>(ctx: &mut TxnCtx<'_, F>, root: u32, key: i64) -> bool {
    let mut at = root;
    loop {
        match Node::decode(&ctx.read(at)) {
            Node::Leaf(mut items) => {
                let Ok(i) = items.binary_search_by_key(&key, |(k, _)| *k) else {
                    return false;
                };
                items.remove(i);
                ctx.write(at, &Node::Leaf(items).encode());
                return true;
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                at = children[idx];
            }
        }
    }
}

/// In-order traversal of `(key, record)` pairs with `lo <= key <= hi`.
pub fn scan_range<F: FileApi>(
    ctx: &mut TxnCtx<'_, F>,
    root: u32,
    lo: i64,
    hi: i64,
) -> Vec<(i64, Vec<u8>)> {
    let mut out = Vec::new();
    scan_range_rec(ctx, root, lo, hi, &mut out);
    out
}

fn scan_range_rec<F: FileApi>(
    ctx: &mut TxnCtx<'_, F>,
    at: u32,
    lo: i64,
    hi: i64,
    out: &mut Vec<(i64, Vec<u8>)>,
) {
    match Node::decode(&ctx.read(at)) {
        Node::Leaf(items) => out.extend(items.into_iter().filter(|(k, _)| (lo..=hi).contains(k))),
        Node::Internal { keys, children } => {
            // Children overlapping [lo, hi]: from the child that may hold
            // lo through the child that may hold hi.
            let first = keys.partition_point(|k| *k <= lo);
            let last = keys.partition_point(|k| *k <= hi);
            for &c in &children[first..=last] {
                scan_range_rec(ctx, c, lo, hi, out);
            }
        }
    }
}

/// In-order traversal of every `(key, record)` pair.
pub fn scan<F: FileApi>(ctx: &mut TxnCtx<'_, F>, root: u32) -> Vec<(i64, Vec<u8>)> {
    let mut out = Vec::new();
    scan_rec(ctx, root, &mut out);
    out
}

fn scan_rec<F: FileApi>(ctx: &mut TxnCtx<'_, F>, at: u32, out: &mut Vec<(i64, Vec<u8>)>) {
    match Node::decode(&ctx.read(at)) {
        Node::Leaf(items) => out.extend(items),
        Node::Internal { children, .. } => {
            for c in children {
                scan_rec(ctx, c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roundtrip_leaf() {
        let n = Node::Leaf(vec![(1, vec![9; 30]), (5, vec![7; 100])]);
        assert_eq!(Node::decode(&n.encode()), n);
    }

    #[test]
    fn node_roundtrip_internal() {
        let n = Node::Internal {
            keys: vec![10, 20],
            children: vec![3, 4, 5],
        };
        assert_eq!(Node::decode(&n.encode()), n);
    }

    #[test]
    fn zero_page_is_empty_leaf() {
        assert_eq!(Node::decode(&[0u8; PAGE_SIZE]), Node::Leaf(vec![]));
    }

    #[test]
    fn split_items_balances_bytes() {
        let items: Vec<_> = (0..10i64).map(|k| (k, vec![0u8; 100])).collect();
        let (l, r) = split_items(items);
        assert!(!l.is_empty() && !r.is_empty());
        assert_eq!(l.len() + r.len(), 10);
        assert!(l.last().unwrap().0 < r[0].0);
    }
}
