//! The database facade: catalog, transactions, and the four Table 4
//! operations.

use std::collections::HashMap;

use sb_fs::{FileApi, FsError, Inum};

use crate::{
    btree,
    journal::Journal,
    pager::Pager,
    record::{decode_record, encode_record, Value},
    PAGE_SIZE,
};

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No such table.
    NoSuchTable,
    /// `CREATE TABLE` of an existing name.
    TableExists,
    /// `INSERT` of an existing key.
    DuplicateKey,
    /// `UPDATE`/`DELETE` of a missing key.
    KeyNotFound,
    /// Record larger than a leaf can hold.
    RecordTooLarge,
    /// Catalog full or malformed.
    Catalog,
    /// Underlying file-system failure.
    Fs(FsError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::NoSuchTable => write!(f, "no such table"),
            DbError::TableExists => write!(f, "table exists"),
            DbError::DuplicateKey => write!(f, "duplicate key"),
            DbError::KeyNotFound => write!(f, "key not found"),
            DbError::RecordTooLarge => write!(f, "record too large"),
            DbError::Catalog => write!(f, "catalog error"),
            DbError::Fs(e) => write!(f, "fs error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<FsError> for DbError {
    fn from(e: FsError) -> Self {
        DbError::Fs(e)
    }
}

/// Counters for the cost model and the Table 4 analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Pager cache hits.
    pub cache_hits: u64,
    /// Pager cache misses (reads that reached the FS).
    pub cache_misses: u64,
    /// Pages written back to the FS.
    pub writebacks: u64,
    /// Journal commits (transactions).
    pub commits: u64,
}

/// A transaction context: split borrows of the pager, journal, and file
/// system that the B-tree operates through. Writes journal the pre-image
/// of each page once per transaction.
pub struct TxnCtx<'a, F: FileApi> {
    /// The file system.
    pub fs: &'a mut F,
    pager: &'a mut Pager,
    journal: Option<&'a mut Journal>,
}

impl<'a, F: FileApi> TxnCtx<'a, F> {
    /// Reads a page.
    pub fn read(&mut self, pno: u32) -> [u8; PAGE_SIZE] {
        self.pager.read(self.fs, pno)
    }

    /// Writes a page, journaling its pre-image first (write transactions
    /// only).
    pub fn write(&mut self, pno: u32, data: &[u8; PAGE_SIZE]) {
        if let Some(j) = self.journal.as_deref_mut() {
            if !j.is_saved(pno) {
                let pre = self.pager.read(self.fs, pno);
                j.save(self.fs, pno, &pre).expect("journal write failed");
            }
        }
        self.pager.write(self.fs, pno, data);
    }

    /// Allocates a fresh page.
    pub fn allocate(&mut self) -> u32 {
        let mut unit = ();
        self.pager.allocate(self.fs, &mut unit)
    }
}

const CATALOG_PAGE: u32 = 0;
const CATALOG_MAGIC: u32 = 0x5bdb_ca7a;

/// An open database.
///
/// # Examples
///
/// ```
/// use sb_db::{Database, Value};
/// use sb_fs::{FileSystem, RamDisk};
///
/// let fs = FileSystem::mkfs(RamDisk::new(4096), 32);
/// let mut db = Database::open(fs, "/app.db", 32).unwrap();
/// db.create_table("users").unwrap();
/// db.insert("users", 7, &[Value::Text("ada".into())]).unwrap();
/// assert_eq!(
///     db.query("users", 7).unwrap(),
///     Some(vec![Value::Text("ada".into())])
/// );
/// ```
pub struct Database<F: FileApi> {
    fs: F,
    pager: Pager,
    journal: Journal,
    db_file: Inum,
    journal_file: Inum,
    tables: HashMap<String, u32>,
}

impl<F: FileApi> Database<F> {
    /// Opens (creating if needed) the database at `path`, replaying a hot
    /// journal left by a crash.
    pub fn open(mut fs: F, path: &str, cache_pages: usize) -> Result<Self, DbError> {
        let db_file = match fs.open(path) {
            Ok(i) => i,
            Err(FsError::NotFound) => fs.create(path)?,
            Err(e) => return Err(e.into()),
        };
        let jpath = format!("{path}.journal");
        let jfile = match fs.open(&jpath) {
            Ok(i) => i,
            Err(FsError::NotFound) => fs.create(&jpath)?,
            Err(e) => return Err(e.into()),
        };
        Journal::replay(&mut fs, jfile, db_file)?;
        let mut pager = Pager::new(&mut fs, db_file, cache_pages);
        // Load (or initialize) the catalog.
        let mut tables = HashMap::new();
        if pager.npages == 0 {
            let mut page = [0u8; PAGE_SIZE];
            page[..4].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
            pager.write(&mut fs, CATALOG_PAGE, &page);
            pager.flush(&mut fs)?;
        } else {
            let page = pager.read(&mut fs, CATALOG_PAGE);
            if u32::from_le_bytes(page[..4].try_into().unwrap()) != CATALOG_MAGIC {
                return Err(DbError::Catalog);
            }
            let n = page[4] as usize;
            let mut at = 5;
            for _ in 0..n {
                let len = page[at] as usize;
                let name = String::from_utf8_lossy(&page[at + 1..at + 1 + len]).into_owned();
                let root = u32::from_le_bytes(page[at + 1 + len..at + 5 + len].try_into().unwrap());
                tables.insert(name, root);
                at += 5 + len;
            }
        }
        Ok(Database {
            fs,
            pager,
            journal: Journal::new(jfile),
            db_file,
            journal_file: jfile,
            tables,
        })
    }

    /// Unmounts, returning the file system.
    pub fn close(mut self) -> Result<F, DbError> {
        self.pager.flush(&mut self.fs)?;
        Ok(self.fs)
    }

    fn write_catalog(&mut self) -> Result<(), DbError> {
        let mut page = [0u8; PAGE_SIZE];
        page[..4].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
        page[4] = self.tables.len() as u8;
        let mut at = 5;
        let mut entries: Vec<_> = self.tables.iter().collect();
        entries.sort();
        for (name, root) in entries {
            if at + 5 + name.len() > PAGE_SIZE || name.len() > 250 {
                return Err(DbError::Catalog);
            }
            page[at] = name.len() as u8;
            page[at + 1..at + 1 + name.len()].copy_from_slice(name.as_bytes());
            page[at + 1 + name.len()..at + 5 + name.len()].copy_from_slice(&root.to_le_bytes());
            at += 5 + name.len();
        }
        let mut ctx = TxnCtx {
            fs: &mut self.fs,
            pager: &mut self.pager,
            journal: Some(&mut self.journal),
        };
        ctx.write(CATALOG_PAGE, &page);
        Ok(())
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists);
        }
        let root = {
            let mut ctx = TxnCtx {
                fs: &mut self.fs,
                pager: &mut self.pager,
                journal: Some(&mut self.journal),
            };
            let root = ctx.allocate();
            ctx.write(root, &btree::Node::Leaf(vec![]).encode());
            root
        };
        self.tables.insert(name.to_string(), root);
        self.write_catalog()?;
        self.commit()
    }

    fn root_of(&self, table: &str) -> Result<u32, DbError> {
        self.tables.get(table).copied().ok_or(DbError::NoSuchTable)
    }

    fn commit(&mut self) -> Result<(), DbError> {
        self.pager.flush(&mut self.fs)?;
        self.journal.commit(&mut self.fs)?;
        Ok(())
    }

    /// `INSERT`: adds a new row; duplicate keys are refused (and the
    /// transaction rolled back).
    pub fn insert(&mut self, table: &str, key: i64, row: &[Value]) -> Result<(), DbError> {
        let root = self.root_of(table)?;
        let bytes = encode_record(row);
        if bytes.len() > btree::MAX_VALUE {
            return Err(DbError::RecordTooLarge);
        }
        let (new_root, existed) = {
            let mut ctx = TxnCtx {
                fs: &mut self.fs,
                pager: &mut self.pager,
                journal: Some(&mut self.journal),
            };
            if btree::get(&mut ctx, root, key).is_some() {
                (root, true)
            } else {
                btree::insert(&mut ctx, root, key, &bytes)
            }
        };
        if existed {
            self.rollback()?;
            return Err(DbError::DuplicateKey);
        }
        if new_root != root {
            self.tables.insert(table.to_string(), new_root);
            self.write_catalog()?;
        }
        self.commit()
    }

    /// `UPDATE`: replaces an existing row.
    pub fn update(&mut self, table: &str, key: i64, row: &[Value]) -> Result<(), DbError> {
        let root = self.root_of(table)?;
        let bytes = encode_record(row);
        if bytes.len() > btree::MAX_VALUE {
            return Err(DbError::RecordTooLarge);
        }
        let (new_root, existed) = {
            let mut ctx = TxnCtx {
                fs: &mut self.fs,
                pager: &mut self.pager,
                journal: Some(&mut self.journal),
            };
            if btree::get(&mut ctx, root, key).is_none() {
                (root, false)
            } else {
                let r = btree::insert(&mut ctx, root, key, &bytes);
                (r.0, true)
            }
        };
        if !existed {
            self.rollback()?;
            return Err(DbError::KeyNotFound);
        }
        if new_root != root {
            self.tables.insert(table.to_string(), new_root);
            self.write_catalog()?;
        }
        self.commit()
    }

    /// `SELECT … WHERE key =`: reads a row (served from the page cache
    /// when hot — the Table 4 query-speedup explanation).
    pub fn query(&mut self, table: &str, key: i64) -> Result<Option<Vec<Value>>, DbError> {
        let root = self.root_of(table)?;
        // SQLite checks for a hot journal at the start of every read
        // transaction — one real file read per query, which is why even
        // the read-mostly YCSB mixes serialize on the file-system path.
        let mut head = [0u8; 8];
        self.fs.read_at(self.journal_file, 0, &mut head);
        let mut ctx = TxnCtx {
            fs: &mut self.fs,
            pager: &mut self.pager,
            journal: None,
        };
        Ok(btree::get(&mut ctx, root, key).and_then(|b| decode_record(&b)))
    }

    /// `DELETE`: removes a row.
    pub fn delete(&mut self, table: &str, key: i64) -> Result<(), DbError> {
        let root = self.root_of(table)?;
        let found = {
            let mut ctx = TxnCtx {
                fs: &mut self.fs,
                pager: &mut self.pager,
                journal: Some(&mut self.journal),
            };
            btree::delete(&mut ctx, root, key)
        };
        if !found {
            self.rollback()?;
            return Err(DbError::KeyNotFound);
        }
        self.commit()
    }

    /// Range scan: rows with `lo <= key <= hi`, in key order (YCSB's
    /// SCAN operation / `SELECT … WHERE key BETWEEN`).
    pub fn scan_range(
        &mut self,
        table: &str,
        lo: i64,
        hi: i64,
    ) -> Result<Vec<(i64, Vec<Value>)>, DbError> {
        let root = self.root_of(table)?;
        let mut ctx = TxnCtx {
            fs: &mut self.fs,
            pager: &mut self.pager,
            journal: None,
        };
        Ok(btree::scan_range(&mut ctx, root, lo, hi)
            .into_iter()
            .filter_map(|(k, b)| decode_record(&b).map(|r| (k, r)))
            .collect())
    }

    /// Full scan of a table in key order.
    pub fn scan(&mut self, table: &str) -> Result<Vec<(i64, Vec<Value>)>, DbError> {
        let root = self.root_of(table)?;
        let mut ctx = TxnCtx {
            fs: &mut self.fs,
            pager: &mut self.pager,
            journal: None,
        };
        Ok(btree::scan(&mut ctx, root)
            .into_iter()
            .filter_map(|(k, b)| decode_record(&b).map(|r| (k, r)))
            .collect())
    }

    fn rollback(&mut self) -> Result<(), DbError> {
        self.journal.rollback(&mut self.fs, self.db_file)?;
        self.pager.invalidate();
        // Reload the catalog in case a root moved mid-transaction.
        let page = self.pager.read(&mut self.fs, CATALOG_PAGE);
        let n = page[4] as usize;
        let mut tables = HashMap::new();
        let mut at = 5;
        for _ in 0..n {
            let len = page[at] as usize;
            let name = String::from_utf8_lossy(&page[at + 1..at + 1 + len]).into_owned();
            let root = u32::from_le_bytes(page[at + 1 + len..at + 5 + len].try_into().unwrap());
            tables.insert(name, root);
            at += 5 + len;
        }
        self.tables = tables;
        self.pager.npages = self.fs.size_of(self.db_file).div_ceil(PAGE_SIZE) as u32;
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            cache_hits: self.pager.hits,
            cache_misses: self.pager.misses,
            writebacks: self.pager.writebacks,
            commits: self.journal.commits,
        }
    }

    /// The names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Borrow of the underlying file system (I/O statistics).
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// Mutable borrow of the underlying file system. A file-system
    /// *proxy* (the graph's charged FS adapter) carries configuration of
    /// its own — which transport to charge, whether charging is live —
    /// that the owner must be able to adjust after the database opened,
    /// e.g. to pre-load rows without billing IPC crossings for them.
    pub fn fs_mut(&mut self) -> &mut F {
        &mut self.fs
    }
}
