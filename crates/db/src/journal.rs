//! The rollback journal.
//!
//! Before a transaction first modifies a page, its pre-image is appended
//! to the journal file; committing truncates the journal (one header
//! write), and opening a database with a non-empty journal rolls the
//! pre-images back — SQLite's classic journal mode, giving multi-page
//! atomicity above the file system's single-transaction log.

use std::collections::HashSet;

use sb_fs::{FileApi, FsError, Inum};

use crate::PAGE_SIZE;

const ENTRY_SIZE: usize = 4 + PAGE_SIZE;

/// The journal for one database file.
#[derive(Debug)]
pub struct Journal {
    /// The journal file.
    file: Inum,
    /// Pages whose pre-image is already saved this transaction.
    saved: HashSet<u32>,
    /// Entries written this transaction.
    entries: u32,
    /// Completed commits.
    pub commits: u64,
    /// Rollbacks performed (explicit or recovery).
    pub rollbacks: u64,
}

impl Journal {
    /// Creates the journal state over `file`.
    pub fn new(file: Inum) -> Self {
        Journal {
            file,
            saved: HashSet::new(),
            entries: 0,
            commits: 0,
            rollbacks: 0,
        }
    }

    /// True if `pno`'s pre-image is already journaled this transaction.
    pub fn is_saved(&self, pno: u32) -> bool {
        self.saved.contains(&pno)
    }

    /// Saves the pre-image of `pno` (first modification this
    /// transaction).
    pub fn save<F: FileApi>(
        &mut self,
        fs: &mut F,
        pno: u32,
        preimage: &[u8; PAGE_SIZE],
    ) -> Result<(), FsError> {
        if !self.saved.insert(pno) {
            return Ok(());
        }
        let off = 8 + self.entries as usize * ENTRY_SIZE;
        let mut entry = Vec::with_capacity(ENTRY_SIZE);
        entry.extend_from_slice(&pno.to_le_bytes());
        entry.extend_from_slice(preimage);
        fs.write_at(self.file, off, &entry)?;
        self.entries += 1;
        // Header: entry count (made valid *before* the data pages are
        // overwritten, so a crash mid-transaction rolls back).
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&self.entries.to_le_bytes());
        head[4..8].copy_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        fs.write_at(self.file, 0, &head)?;
        Ok(())
    }

    /// Commits: truncates the journal (single header write).
    pub fn commit<F: FileApi>(&mut self, fs: &mut F) -> Result<(), FsError> {
        fs.write_at(self.file, 0, &[0u8; 8])?;
        self.saved.clear();
        self.entries = 0;
        self.commits += 1;
        Ok(())
    }

    /// Rolls back: copies every journaled pre-image over the database
    /// file, then truncates the journal. Returns pages restored.
    pub fn rollback<F: FileApi>(&mut self, fs: &mut F, db_file: Inum) -> Result<usize, FsError> {
        let n = Self::replay(fs, self.file, db_file)?;
        self.saved.clear();
        self.entries = 0;
        if n > 0 {
            self.rollbacks += 1;
        }
        Ok(n)
    }

    /// Recovery path (database open): if the journal is hot, restore the
    /// pre-images. Returns pages restored.
    pub fn replay<F: FileApi>(fs: &mut F, journal: Inum, db_file: Inum) -> Result<usize, FsError> {
        let mut head = [0u8; 8];
        if fs.read_at(journal, 0, &mut head) < 8 {
            return Ok(0);
        }
        let n = u32::from_le_bytes(head[..4].try_into().unwrap());
        let magic = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if n == 0 || magic != JOURNAL_MAGIC {
            return Ok(0);
        }
        for i in 0..n as usize {
            let off = 8 + i * ENTRY_SIZE;
            let mut entry = vec![0u8; ENTRY_SIZE];
            if fs.read_at(journal, off, &mut entry) < ENTRY_SIZE {
                break; // Torn tail: the header said more than persisted.
            }
            let pno = u32::from_le_bytes(entry[..4].try_into().unwrap());
            fs.write_at(db_file, pno as usize * PAGE_SIZE, &entry[4..])?;
        }
        fs.write_at(journal, 0, &[0u8; 8])?;
        Ok(n as usize)
    }
}

/// The "hot journal" marker.
const JOURNAL_MAGIC: u32 = 0x5bdb_1099;

#[cfg(test)]
mod tests {
    use sb_fs::{FileSystem, RamDisk};

    use super::*;

    fn setup() -> (FileSystem<RamDisk>, Inum, Inum, Journal) {
        let mut fs = FileSystem::mkfs(RamDisk::new(4096), 32);
        let db = fs.create("/db").unwrap();
        let j = fs.create("/db.journal").unwrap();
        fs.write_at(db, 0, &[0xAA; PAGE_SIZE]).unwrap();
        let journal = Journal::new(j);
        (fs, db, j, journal)
    }

    #[test]
    fn commit_truncates_journal() {
        let (mut fs, db, j, mut journal) = setup();
        journal.save(&mut fs, 0, &[0xAA; PAGE_SIZE]).unwrap();
        fs.write_at(db, 0, &[0xBB; PAGE_SIZE]).unwrap();
        journal.commit(&mut fs).unwrap();
        // A replay after commit restores nothing.
        assert_eq!(Journal::replay(&mut fs, j, db).unwrap(), 0);
        let mut buf = [0u8; 1];
        fs.read_at(db, 0, &mut buf);
        assert_eq!(buf[0], 0xBB);
    }

    #[test]
    fn rollback_restores_preimages() {
        let (mut fs, db, _j, mut journal) = setup();
        journal.save(&mut fs, 0, &[0xAA; PAGE_SIZE]).unwrap();
        fs.write_at(db, 0, &[0xBB; PAGE_SIZE]).unwrap();
        assert_eq!(journal.rollback(&mut fs, db).unwrap(), 1);
        let mut buf = [0u8; 1];
        fs.read_at(db, 0, &mut buf);
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn hot_journal_is_replayed_on_open() {
        let (mut fs, db, j, mut journal) = setup();
        journal.save(&mut fs, 0, &[0xAA; PAGE_SIZE]).unwrap();
        fs.write_at(db, 0, &[0xBB; PAGE_SIZE]).unwrap();
        // "Crash": no commit. A later open replays.
        assert_eq!(Journal::replay(&mut fs, j, db).unwrap(), 1);
        let mut buf = [0u8; 1];
        fs.read_at(db, 0, &mut buf);
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn save_is_once_per_page_per_transaction() {
        let (mut fs, _db, _j, mut journal) = setup();
        journal.save(&mut fs, 0, &[0xAA; PAGE_SIZE]).unwrap();
        journal.save(&mut fs, 0, &[0xCC; PAGE_SIZE]).unwrap();
        assert!(journal.is_saved(0));
        assert_eq!(journal.entries, 1, "second save must be a no-op");
    }
}
