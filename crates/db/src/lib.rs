//! minidb: an embedded relational database (the SQLite3 substitute).
//!
//! The paper's application benchmark (§6.5) is "a widely-used and
//! lightweight relational database" — SQLite3 — linked into the client
//! process, storing its database file on xv6fs, which in turn talks to a
//! RAM-disk block server. minidb reproduces the architectural
//! characteristics that matter to that experiment:
//!
//! * a **pager** ([`pager`]) with a page cache — the "internal cache to
//!   handle the recent read requests" that explains why the *query*
//!   operation sees the smallest SkyBridge speedup in Table 4 (it mostly
//!   doesn't reach the file system at all);
//! * a **rollback journal** ([`journal`]) giving multi-page transaction
//!   atomicity on top of the file system's block-atomic log;
//! * **B-tree tables** ([`btree`]) keyed by integer row keys, holding
//!   variable-length records ([`record`]);
//! * the four operations Table 4 measures — `INSERT`, `UPDATE`, `SELECT`
//!   (query), `DELETE` — plus a tiny SQL front end ([`sql`]) used by the
//!   examples.
//!
//! All I/O flows through [`sb_fs::FileSystem`], so every database
//! operation produces the same layered traffic as the paper's stack:
//! DB → FS (→ log) → block device.

pub mod btree;
pub mod db;
pub mod journal;
pub mod pager;
pub mod record;
pub mod sql;

pub use crate::{
    db::{Database, DbError, DbStats},
    record::Value,
};

/// Database page size in bytes (4 file-system blocks).
pub const PAGE_SIZE: usize = 4096;
