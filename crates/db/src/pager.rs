//! The pager: a page cache over one file-system file.
//!
//! SQLite's pager is the layer the paper's Table 4 analysis leans on: the
//! "internal cache" that absorbs most query traffic. Ours is an LRU cache
//! of [`crate::PAGE_SIZE`]-byte pages with explicit dirty tracking;
//! everything below it is real [`sb_fs`] file I/O.

use std::collections::HashMap;

use sb_fs::{FileApi, FsError, Inum};

use crate::PAGE_SIZE;

/// One cached page.
#[derive(Clone)]
struct Cached {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
}

/// The pager.
pub struct Pager {
    /// Backing file.
    file: Inum,
    cache: HashMap<u32, Cached>,
    /// LRU order (front = oldest).
    order: Vec<u32>,
    capacity: usize,
    /// Pages in the file (including not-yet-flushed extensions).
    pub npages: u32,
    /// Cache hits (reads served without file I/O).
    pub hits: u64,
    /// Cache misses (reads that reached the file system).
    pub misses: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

impl Pager {
    /// Creates a pager over `file` with an LRU capacity of `capacity`
    /// pages.
    pub fn new<F: FileApi>(fs: &mut F, file: Inum, capacity: usize) -> Self {
        let npages = fs.size_of(file).div_ceil(PAGE_SIZE) as u32;
        Pager {
            file,
            cache: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(2),
            npages,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn touch(&mut self, pno: u32) {
        self.order.retain(|&p| p != pno);
        self.order.push(pno);
    }

    /// Reads page `pno` (allocating a zero page beyond EOF is the caller's
    /// job via [`Pager::allocate`]).
    pub fn read<F: FileApi>(&mut self, fs: &mut F, pno: u32) -> [u8; PAGE_SIZE] {
        if let Some(c) = self.cache.get(&pno) {
            self.hits += 1;
            let data = *c.data.clone();
            self.touch(pno);
            return data;
        }
        self.misses += 1;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        fs.read_at(self.file, pno as usize * PAGE_SIZE, &mut data[..]);
        self.insert(
            fs,
            pno,
            Cached {
                data: data.clone(),
                dirty: false,
            },
        );
        *data
    }

    /// Writes page `pno` (cache-resident until flush/eviction).
    pub fn write<F: FileApi>(&mut self, fs: &mut F, pno: u32, data: &[u8; PAGE_SIZE]) {
        self.insert(
            fs,
            pno,
            Cached {
                data: Box::new(*data),
                dirty: true,
            },
        );
        if pno >= self.npages {
            self.npages = pno + 1;
        }
    }

    fn insert<F: FileApi>(&mut self, fs: &mut F, pno: u32, page: Cached) {
        if self.cache.insert(pno, page).is_none() {
            self.order.push(pno);
        } else {
            self.touch(pno);
        }
        while self.cache.len() > self.capacity {
            let victim = self.order.remove(0);
            if let Some(c) = self.cache.remove(&victim) {
                if c.dirty {
                    self.writebacks += 1;
                    fs.write_at(self.file, victim as usize * PAGE_SIZE, &c.data[..])
                        .expect("pager writeback failed");
                }
            }
        }
    }

    /// Appends a fresh zero page, returning its number.
    pub fn allocate<F: FileApi>(&mut self, fs: &mut F, _unused: &mut ()) -> u32 {
        let pno = self.npages;
        self.npages += 1;
        self.write(fs, pno, &[0u8; PAGE_SIZE]);
        pno
    }

    /// Flushes every dirty page to the file system.
    pub fn flush<F: FileApi>(&mut self, fs: &mut F) -> Result<(), FsError> {
        let mut dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        for pno in dirty {
            let c = self.cache.get_mut(&pno).unwrap();
            let data = c.data.clone();
            c.dirty = false;
            self.writebacks += 1;
            fs.write_at(self.file, pno as usize * PAGE_SIZE, &data[..])?;
        }
        Ok(())
    }

    /// Drops the whole cache (after a rollback restored the file).
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use sb_fs::{FileSystem, RamDisk};

    use super::*;

    fn setup() -> (FileSystem<RamDisk>, Pager) {
        let mut fs = FileSystem::mkfs(RamDisk::new(4096), 32);
        let file = fs.create("/db").unwrap();
        let pager = Pager::new(&mut fs, file, 4);
        (fs, pager)
    }

    #[test]
    fn write_read_through_cache() {
        let (mut fs, mut p) = setup();
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0x42;
        p.write(&mut fs, 0, &page);
        assert_eq!(p.read(&mut fs, 0)[0], 0x42);
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn flush_persists_and_survives_invalidate() {
        let (mut fs, mut p) = setup();
        let mut page = [0u8; PAGE_SIZE];
        page[7] = 9;
        p.write(&mut fs, 2, &page);
        p.flush(&mut fs).unwrap();
        p.invalidate();
        assert_eq!(p.read(&mut fs, 2)[7], 9);
        assert_eq!(p.misses, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (mut fs, mut p) = setup(); // Capacity 4.
        for i in 0..6u32 {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            p.write(&mut fs, i, &page);
        }
        assert!(p.writebacks >= 2, "evictions must write back");
        // Everything is still readable.
        for i in 0..6u32 {
            assert_eq!(p.read(&mut fs, i)[0], i as u8);
        }
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let (mut fs, mut p) = setup();
        p.write(&mut fs, 0, &[1u8; PAGE_SIZE]);
        p.flush(&mut fs).unwrap();
        p.invalidate();
        p.read(&mut fs, 0);
        let misses = p.misses;
        for _ in 0..10 {
            p.read(&mut fs, 0);
        }
        assert_eq!(p.misses, misses, "hot reads must not touch the FS");
        assert!(p.hits >= 10);
    }
}
