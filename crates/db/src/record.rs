//! Record (row) serialization.

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
}

impl Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Blob(b) => {
                out.push(3);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }

    fn decode_from(data: &[u8], at: &mut usize) -> Option<Value> {
        let tag = *data.get(*at)?;
        *at += 1;
        match tag {
            0 => Some(Value::Null),
            1 => {
                let v = i64::from_le_bytes(data.get(*at..*at + 8)?.try_into().ok()?);
                *at += 8;
                Some(Value::Int(v))
            }
            2 | 3 => {
                let len = u32::from_le_bytes(data.get(*at..*at + 4)?.try_into().ok()?) as usize;
                *at += 4;
                let bytes = data.get(*at..*at + len)?.to_vec();
                *at += len;
                Some(if tag == 2 {
                    Value::Text(String::from_utf8_lossy(&bytes).into_owned())
                } else {
                    Value::Blob(bytes)
                })
            }
            _ => None,
        }
    }
}

/// Serializes a row.
pub fn encode_record(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(values.len() as u8);
    for v in values {
        v.encode_into(&mut out);
    }
    out
}

/// Deserializes a row.
pub fn decode_record(data: &[u8]) -> Option<Vec<Value>> {
    let n = *data.first()? as usize;
    let mut at = 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Value::decode_from(data, &mut at)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Value::Int(-42),
            Value::Text("ycsb field".into()),
            Value::Blob(vec![1, 2, 3]),
            Value::Null,
        ];
        assert_eq!(decode_record(&encode_record(&row)).unwrap(), row);
    }

    #[test]
    fn empty_record() {
        assert_eq!(decode_record(&encode_record(&[])).unwrap(), vec![]);
    }

    #[test]
    fn truncated_input_is_none() {
        let enc = encode_record(&[Value::Text("hello".into())]);
        assert!(decode_record(&enc[..enc.len() - 1]).is_none());
    }
}
