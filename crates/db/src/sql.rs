//! A miniature SQL front end.
//!
//! Enough surface for the examples and the YCSB driver to speak SQL at
//! minidb the way the paper's client speaks SQL at SQLite3. Rows are
//! `(key INTEGER PRIMARY KEY, positional values…)`. Grammar:
//!
//! ```sql
//! CREATE TABLE t
//! INSERT INTO t VALUES (1, 'text', 42, X'0aff')
//! SELECT * FROM t WHERE key = 1
//! SELECT * FROM t
//! UPDATE t SET (…values…) WHERE key = 1
//! DELETE FROM t WHERE key = 1
//! ```

use sb_fs::FileApi;

use crate::{
    db::{Database, DbError},
    record::Value,
};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE t`.
    CreateTable(String),
    /// `INSERT INTO t VALUES (key, …)`.
    Insert {
        /// Target table.
        table: String,
        /// Primary key.
        key: i64,
        /// Remaining column values.
        row: Vec<Value>,
    },
    /// `SELECT * FROM t [WHERE key = k]`.
    Select {
        /// Source table.
        table: String,
        /// Point lookup key, or `None` for a full scan.
        key: Option<i64>,
    },
    /// `UPDATE t SET (…) WHERE key = k`.
    Update {
        /// Target table.
        table: String,
        /// Primary key.
        key: i64,
        /// Replacement values.
        row: Vec<Value>,
    },
    /// `DELETE FROM t WHERE key = k`.
    Delete {
        /// Target table.
        table: String,
        /// Primary key.
        key: i64,
    },
}

/// Parse or execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement did not parse.
    Parse(String),
    /// The statement failed to execute.
    Db(DbError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<DbError> for SqlError {
    fn from(e: DbError) -> Self {
        SqlError::Db(e)
    }
}

fn tokenize(input: &str) -> Result<Vec<String>, SqlError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | ',' | '*' | '=' => {
                out.push(c.to_string());
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::from("'");
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(SqlError::Parse("unterminated string".into())),
                    }
                }
                out.push(s);
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || matches!(c, '(' | ')' | ',' | '*' | '=') {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                out.push(s);
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<String>,
    at: usize,
}

impl P {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.at).map(|s| s.as_str())
    }

    fn next(&mut self) -> Result<&str, SqlError> {
        let t = self
            .toks
            .get(self.at)
            .ok_or_else(|| SqlError::Parse("unexpected end".into()))?;
        self.at += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        let t = self.next()?;
        if t.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {t}")))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        let t = self.next()?;
        if t.chars().all(|c| c.is_alphanumeric() || c == '_') && !t.is_empty() {
            Ok(t.to_string())
        } else {
            Err(SqlError::Parse(format!("bad identifier {t}")))
        }
    }

    fn int(&mut self) -> Result<i64, SqlError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| SqlError::Parse(format!("bad integer {t}")))
    }

    fn value(&mut self) -> Result<Value, SqlError> {
        let t = self.next()?.to_string();
        if let Some(text) = t.strip_prefix('\'') {
            return Ok(Value::Text(text.to_string()));
        }
        if t.eq_ignore_ascii_case("null") {
            return Ok(Value::Null);
        }
        if let Some(hex) = t.strip_prefix("X'").or_else(|| t.strip_prefix("x'")) {
            let hex = hex.trim_end_matches('\'');
            let bytes = (0..hex.len() / 2)
                .map(|i| u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| SqlError::Parse("bad hex blob".into()))?;
            return Ok(Value::Blob(bytes));
        }
        t.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| SqlError::Parse(format!("bad value {t}")))
    }

    fn value_list(&mut self) -> Result<Vec<Value>, SqlError> {
        self.expect_kw("(")?;
        let mut out = Vec::new();
        loop {
            out.push(self.value()?);
            match self.next()? {
                "," => continue,
                ")" => break,
                t => return Err(SqlError::Parse(format!("expected , or ), found {t}"))),
            }
        }
        Ok(out)
    }

    fn where_key(&mut self) -> Result<i64, SqlError> {
        self.expect_kw("where")?;
        self.expect_kw("key")?;
        self.expect_kw("=")?;
        self.int()
    }
}

/// Parses one statement.
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let toks = tokenize(input.trim().trim_end_matches(';'))?;
    let mut p = P { toks, at: 0 };
    let head = p.next()?.to_ascii_lowercase();
    match head.as_str() {
        "create" => {
            p.expect_kw("table")?;
            Ok(Statement::CreateTable(p.ident()?))
        }
        "insert" => {
            p.expect_kw("into")?;
            let table = p.ident()?;
            p.expect_kw("values")?;
            let mut vals = p.value_list()?;
            if vals.is_empty() {
                return Err(SqlError::Parse("empty VALUES".into()));
            }
            let Value::Int(key) = vals.remove(0) else {
                return Err(SqlError::Parse(
                    "first value must be the integer key".into(),
                ));
            };
            Ok(Statement::Insert {
                table,
                key,
                row: vals,
            })
        }
        "select" => {
            p.expect_kw("*")?;
            p.expect_kw("from")?;
            let table = p.ident()?;
            let key = if p.peek().is_some() {
                Some(p.where_key()?)
            } else {
                None
            };
            Ok(Statement::Select { table, key })
        }
        "update" => {
            let table = p.ident()?;
            p.expect_kw("set")?;
            let row = p.value_list()?;
            let key = p.where_key()?;
            Ok(Statement::Update { table, key, row })
        }
        "delete" => {
            p.expect_kw("from")?;
            let table = p.ident()?;
            let key = p.where_key()?;
            Ok(Statement::Delete { table, key })
        }
        other => Err(SqlError::Parse(format!("unknown statement {other}"))),
    }
}

/// Executes one SQL string; returns result rows (for `SELECT`).
pub fn execute<F: FileApi>(
    db: &mut Database<F>,
    input: &str,
) -> Result<Vec<(i64, Vec<Value>)>, SqlError> {
    match parse(input)? {
        Statement::CreateTable(t) => {
            db.create_table(&t)?;
            Ok(vec![])
        }
        Statement::Insert { table, key, row } => {
            db.insert(&table, key, &row)?;
            Ok(vec![])
        }
        Statement::Select {
            table,
            key: Some(k),
        } => Ok(match db.query(&table, k)? {
            Some(row) => vec![(k, row)],
            None => vec![],
        }),
        Statement::Select { table, key: None } => Ok(db.scan(&table)?),
        Statement::Update { table, key, row } => {
            db.update(&table, key, &row)?;
            Ok(vec![])
        }
        Statement::Delete { table, key } => {
            db.delete(&table, key)?;
            Ok(vec![])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_statements() {
        assert_eq!(
            parse("CREATE TABLE usertable").unwrap(),
            Statement::CreateTable("usertable".into())
        );
        assert_eq!(
            parse("INSERT INTO t VALUES (5, 'hi', 9)").unwrap(),
            Statement::Insert {
                table: "t".into(),
                key: 5,
                row: vec![Value::Text("hi".into()), Value::Int(9)],
            }
        );
        assert_eq!(
            parse("SELECT * FROM t WHERE key = 3;").unwrap(),
            Statement::Select {
                table: "t".into(),
                key: Some(3)
            }
        );
        assert_eq!(
            parse("select * from t").unwrap(),
            Statement::Select {
                table: "t".into(),
                key: None
            }
        );
        assert_eq!(
            parse("UPDATE t SET ('x') WHERE key = 2").unwrap(),
            Statement::Update {
                table: "t".into(),
                key: 2,
                row: vec![Value::Text("x".into())],
            }
        );
        assert_eq!(
            parse("DELETE FROM t WHERE key = 7").unwrap(),
            Statement::Delete {
                table: "t".into(),
                key: 7
            }
        );
    }

    #[test]
    fn parses_blobs_and_null() {
        let Statement::Insert { row, .. } =
            parse("INSERT INTO t VALUES (1, X'0aff', NULL)").unwrap()
        else {
            panic!()
        };
        assert_eq!(row, vec![Value::Blob(vec![0x0a, 0xff]), Value::Null]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT * FROM t WHERE key =").is_err());
        assert!(parse("INSERT INTO t VALUES ('no-key')").is_err());
        assert!(parse("INSERT INTO t VALUES (1, 'unterminated)").is_err());
    }
}
