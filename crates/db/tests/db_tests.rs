//! Whole-database tests: scale, persistence, crash recovery, SQL, and a
//! model-based property test.

use std::collections::HashMap;

use proptest::prelude::*;
use sb_db::{sql, Database, DbError, Value};
use sb_fs::{FileSystem, RamDisk};

fn open_db(blocks: u32) -> Database<FileSystem<RamDisk>> {
    let fs = FileSystem::mkfs(RamDisk::new(blocks), 64);
    Database::open(fs, "/t.db", 64).unwrap()
}

fn row(tag: &str, n: i64) -> Vec<Value> {
    vec![Value::Text(format!("{tag}-{n}")), Value::Int(n * 7)]
}

#[test]
fn insert_query_update_delete() {
    let mut db = open_db(8192);
    db.create_table("usertable").unwrap();
    db.insert("usertable", 1, &row("a", 1)).unwrap();
    assert_eq!(db.query("usertable", 1).unwrap().unwrap(), row("a", 1));
    db.update("usertable", 1, &row("b", 1)).unwrap();
    assert_eq!(db.query("usertable", 1).unwrap().unwrap(), row("b", 1));
    db.delete("usertable", 1).unwrap();
    assert_eq!(db.query("usertable", 1).unwrap(), None);
}

#[test]
fn constraint_errors() {
    let mut db = open_db(8192);
    db.create_table("t").unwrap();
    assert_eq!(db.create_table("t"), Err(DbError::TableExists));
    db.insert("t", 1, &row("x", 1)).unwrap();
    assert_eq!(db.insert("t", 1, &row("y", 1)), Err(DbError::DuplicateKey));
    assert_eq!(db.update("t", 9, &row("y", 9)), Err(DbError::KeyNotFound));
    assert_eq!(db.delete("t", 9), Err(DbError::KeyNotFound));
    assert_eq!(db.query("missing", 1), Err(DbError::NoSuchTable));
    // Failed inserts must not corrupt existing data.
    assert_eq!(db.query("t", 1).unwrap().unwrap(), row("x", 1));
}

#[test]
fn ten_thousand_records_splits_btree() {
    // The paper's YCSB table holds 10,000 records.
    let mut db = open_db(64 * 1024);
    db.create_table("usertable").unwrap();
    let payload = "f".repeat(100);
    for k in 0..10_000i64 {
        db.insert("usertable", k, &[Value::Text(payload.clone())])
            .unwrap();
    }
    // Spot checks.
    for k in [0i64, 1, 4999, 9998, 9999] {
        assert!(db.query("usertable", k).unwrap().is_some(), "key {k}");
    }
    assert_eq!(db.query("usertable", 10_000).unwrap(), None);
    // Scan returns all keys in order.
    let all = db.scan("usertable").unwrap();
    assert_eq!(all.len(), 10_000);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn database_persists_across_reopen() {
    let fs = FileSystem::mkfs(RamDisk::new(8192), 64);
    let mut db = Database::open(fs, "/p.db", 16).unwrap();
    db.create_table("t").unwrap();
    for k in 0..100 {
        db.insert("t", k, &row("persist", k)).unwrap();
    }
    let fs = db.close().unwrap();
    let mut db = Database::open(fs, "/p.db", 16).unwrap();
    assert_eq!(db.table_names(), vec!["t".to_string()]);
    for k in 0..100 {
        assert_eq!(db.query("t", k).unwrap().unwrap(), row("persist", k));
    }
}

#[test]
fn query_is_served_by_the_page_cache() {
    // Table 4's explanation: "the query operation does not cause many IPC
    // operations" because SQLite's cache absorbs reads.
    let mut db = open_db(8192);
    db.create_table("t").unwrap();
    for k in 0..50 {
        db.insert("t", k, &row("c", k)).unwrap();
    }
    // Warm the cache.
    for k in 0..50 {
        db.query("t", k).unwrap();
    }
    let before = db.stats();
    for _ in 0..10 {
        for k in 0..50 {
            db.query("t", k).unwrap();
        }
    }
    let after = db.stats();
    assert_eq!(
        after.cache_misses, before.cache_misses,
        "hot queries must not reach the file system"
    );
    assert!(after.cache_hits > before.cache_hits);
}

#[test]
fn hot_journal_rolls_back_on_open() {
    // Simulate a crash: write the journal pre-image + dirty page flush of
    // *half* a transaction by driving the internals via a failed insert.
    // Easiest equivalent with public API: close the FS mid-state by
    // cloning the device after a completed op, then hand-corrupting is
    // not possible — instead verify that failed ops roll back cleanly.
    let mut db = open_db(8192);
    db.create_table("t").unwrap();
    for k in 0..200 {
        db.insert("t", k, &row("j", k)).unwrap();
    }
    // A duplicate insert triggers the rollback path internally.
    assert_eq!(
        db.insert("t", 100, &row("evil", 0)),
        Err(DbError::DuplicateKey)
    );
    for k in 0..200 {
        assert_eq!(db.query("t", k).unwrap().unwrap(), row("j", k));
    }
}

#[test]
fn large_records_near_page_size() {
    let mut db = open_db(16 * 1024);
    db.create_table("blobs").unwrap();
    let blob = vec![0xabu8; 1400];
    for k in 0..40 {
        db.insert("blobs", k, &[Value::Blob(blob.clone())]).unwrap();
    }
    for k in 0..40 {
        let r = db.query("blobs", k).unwrap().unwrap();
        assert_eq!(r, vec![Value::Blob(blob.clone())]);
    }
    let too_big = vec![0u8; 2000];
    assert_eq!(
        db.insert("blobs", 99, &[Value::Blob(too_big)]),
        Err(DbError::RecordTooLarge)
    );
}

#[test]
fn multiple_tables_are_independent() {
    let mut db = open_db(16 * 1024);
    db.create_table("a").unwrap();
    db.create_table("b").unwrap();
    for k in 0..100 {
        db.insert("a", k, &row("a", k)).unwrap();
        db.insert("b", k, &row("b", k)).unwrap();
    }
    db.delete("a", 50).unwrap();
    assert_eq!(db.query("a", 50).unwrap(), None);
    assert_eq!(db.query("b", 50).unwrap().unwrap(), row("b", 50));
}

#[test]
fn sql_round_trip() {
    let mut db = open_db(8192);
    sql::execute(&mut db, "CREATE TABLE kv").unwrap();
    sql::execute(&mut db, "INSERT INTO kv VALUES (1, 'one', 11)").unwrap();
    sql::execute(&mut db, "INSERT INTO kv VALUES (2, 'two', 22)").unwrap();
    let rows = sql::execute(&mut db, "SELECT * FROM kv WHERE key = 2").unwrap();
    assert_eq!(
        rows,
        vec![(2, vec![Value::Text("two".into()), Value::Int(22)])]
    );
    sql::execute(&mut db, "UPDATE kv SET ('TWO') WHERE key = 2").unwrap();
    let rows = sql::execute(&mut db, "SELECT * FROM kv").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1].1, vec![Value::Text("TWO".into())]);
    sql::execute(&mut db, "DELETE FROM kv WHERE key = 1").unwrap();
    assert_eq!(sql::execute(&mut db, "SELECT * FROM kv").unwrap().len(), 1);
}

#[test]
fn range_scan_respects_bounds_and_order() {
    let mut db = open_db(32 * 1024);
    db.create_table("t").unwrap();
    for k in (0..200i64).step_by(2) {
        db.insert("t", k, &[Value::Int(k)]).unwrap();
    }
    let r = db.scan_range("t", 31, 77).unwrap();
    let keys: Vec<i64> = r.iter().map(|(k, _)| *k).collect();
    let expected: Vec<i64> = (32..=76).step_by(2).collect();
    assert_eq!(keys, expected);
    assert!(db.scan_range("t", 500, 600).unwrap().is_empty());
    assert_eq!(db.scan_range("t", 0, 0).unwrap().len(), 1);
    // Whole range equals the full scan.
    assert_eq!(
        db.scan_range("t", i64::MIN, i64::MAX).unwrap(),
        db.scan("t").unwrap()
    );
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i16, u8),
    Update(i16, u8),
    Delete(i16),
    Query(i16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<i16>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
        any::<i16>().prop_map(Op::Delete),
        any::<i16>().prop_map(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// minidb agrees with a `HashMap` model under arbitrary operation
    /// sequences.
    #[test]
    fn matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut db = open_db(32 * 1024);
        db.create_table("t").unwrap();
        let mut model: HashMap<i64, Vec<Value>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let k = k as i64;
                    let r = db.insert("t", k, &[Value::Int(v as i64)]);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(r.is_ok());
                        e.insert(vec![Value::Int(v as i64)]);
                    } else {
                        prop_assert_eq!(r, Err(DbError::DuplicateKey));
                    }
                }
                Op::Update(k, v) => {
                    let k = k as i64;
                    let r = db.update("t", k, &[Value::Int(v as i64)]);
                    if let std::collections::hash_map::Entry::Occupied(mut e)
                        = model.entry(k)
                    {
                        prop_assert!(r.is_ok());
                        e.insert(vec![Value::Int(v as i64)]);
                    } else {
                        prop_assert_eq!(r, Err(DbError::KeyNotFound));
                    }
                }
                Op::Delete(k) => {
                    let k = k as i64;
                    let r = db.delete("t", k);
                    if model.remove(&k).is_some() {
                        prop_assert!(r.is_ok());
                    } else {
                        prop_assert_eq!(r, Err(DbError::KeyNotFound));
                    }
                }
                Op::Query(k) => {
                    let k = k as i64;
                    prop_assert_eq!(
                        db.query("t", k).unwrap(),
                        model.get(&k).cloned()
                    );
                }
            }
        }
        let all = db.scan("t").unwrap();
        prop_assert_eq!(all.len(), model.len());
        for (k, v) in all {
            prop_assert_eq!(Some(&v), model.get(&k));
        }
    }
}
