//! `sb-faultplane`: seeded, deterministic fault injection for the whole
//! SkyBridge stack.
//!
//! A production-scale serving system must *recover* when servers crash
//! mid-handler, block devices tear writes, or EPTP-list entries vanish at
//! context switch. This crate is the control plane for exercising those
//! paths on purpose:
//!
//! * every layer that can fail holds a cloneable [`FaultHandle`] and asks
//!   [`FaultHandle::fire`] at its injectable *fault points* — the answer
//!   is a deterministic function of the seed and the [`FaultMix`] rates,
//!   so a chaos run is exactly reproducible from `(seed, mix)`;
//! * every injected fault becomes a tracked instance that the detection
//!   and recovery paths later mark via [`FaultHandle::detected`] and
//!   [`FaultHandle::recovered`];
//! * a per-run [`FaultReport`] rolls the instances up into
//!   injected / detected / recovered / **leaked** counts. A leaked fault
//!   — injected but neither detected nor recovered — is the chaos
//!   suite's failure condition: it means the stack silently lost a
//!   request or corrupted state.
//!
//! The crate deliberately depends on nothing else in the workspace so the
//! file system, the microkernel, the SkyBridge core, and the serving
//! runtime can all hook into it without dependency cycles.

use std::cell::RefCell;
use std::rc::Rc;

/// Where in the stack a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// `fs::blockdev`: a transient block-read I/O error.
    BlockReadError,
    /// `fs::blockdev`: a transient block-write I/O error (succeeds on
    /// retry).
    BlockWriteError,
    /// `fs::blockdev`: a torn write — only a prefix of the block reaches
    /// the medium before power is lost.
    TornWrite,
    /// `fs::blockdev`: power loss — every subsequent write is dropped.
    PowerLoss,
    /// `microkernel`/server: the handler panics mid-request and the
    /// server thread dies.
    HandlerPanic,
    /// `microkernel`/server: the handler hangs; only the DoS-timeout
    /// budget (§7) can force control back.
    HandlerHang,
    /// `microkernel`: an EPTP-list entry is evicted at context switch, so
    /// the next `VMFUNC` indexes a stale slot.
    EptpEvict,
    /// `core`: a rogue client tries to exhaust the server's connection
    /// slots (shared buffers + stacks, §4.4).
    BufferExhaust,
    /// `core`: the presented calling key is corrupted (a guessing
    /// attack); the server-side key check must refuse it.
    KeyCorrupt,
    /// `runtime`: a queue-deadline storm — for a window of arrivals the
    /// effective queue deadline collapses and everything queued goes
    /// stale.
    DeadlineStorm,
    /// `transport`/mpk: the armed PKRU value for a lane goes stale (a
    /// "forgot to restore PKRU" bug), so the next domain switch leaves
    /// the handler without rights to its own records — the MPK analogue
    /// of [`FaultPoint::EptpEvict`]. Only the MPK personality can
    /// misbehave here; the others rescind.
    PkruStale,
}

impl FaultPoint {
    /// Every injectable point, in a fixed order (report rows).
    pub const ALL: [FaultPoint; 11] = [
        FaultPoint::BlockReadError,
        FaultPoint::BlockWriteError,
        FaultPoint::TornWrite,
        FaultPoint::PowerLoss,
        FaultPoint::HandlerPanic,
        FaultPoint::HandlerHang,
        FaultPoint::EptpEvict,
        FaultPoint::BufferExhaust,
        FaultPoint::KeyCorrupt,
        FaultPoint::DeadlineStorm,
        FaultPoint::PkruStale,
    ];

    /// Stable display name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::BlockReadError => "block_read_error",
            FaultPoint::BlockWriteError => "block_write_error",
            FaultPoint::TornWrite => "torn_write",
            FaultPoint::PowerLoss => "power_loss",
            FaultPoint::HandlerPanic => "handler_panic",
            FaultPoint::HandlerHang => "handler_hang",
            FaultPoint::EptpEvict => "eptp_evict",
            FaultPoint::BufferExhaust => "buffer_exhaust",
            FaultPoint::KeyCorrupt => "key_corrupt",
            FaultPoint::DeadlineStorm => "deadline_storm",
            FaultPoint::PkruStale => "pkru_stale",
        }
    }

    fn index(self) -> usize {
        FaultPoint::ALL.iter().position(|p| *p == self).unwrap()
    }
}

/// Injection rates per fault point, in events per 10,000 opportunities.
///
/// A *mix* names a chaos flavour; the presets below are the columns of
/// the chaos suite's seed × mix matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMix {
    /// Human-readable mix name (report rows).
    pub name: &'static str,
    rates: [u32; FaultPoint::ALL.len()],
}

impl FaultMix {
    /// A mix with every rate zero.
    pub fn none() -> Self {
        FaultMix {
            name: "none",
            rates: [0; FaultPoint::ALL.len()],
        }
    }

    /// Sets `point`'s rate (events per 10,000 opportunities).
    pub fn with(mut self, point: FaultPoint, per_10k: u32) -> Self {
        self.rates[point.index()] = per_10k.min(10_000);
        self
    }

    /// Renames the mix.
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The rate configured for `point`.
    pub fn rate(&self, point: FaultPoint) -> u32 {
        self.rates[point.index()]
    }

    /// Server-side crashes and hangs.
    pub fn crashes() -> Self {
        FaultMix::none()
            .named("crashes")
            .with(FaultPoint::HandlerPanic, 300)
            .with(FaultPoint::HandlerHang, 200)
    }

    /// Storage-layer trouble: transient I/O errors and torn writes.
    pub fn storage() -> Self {
        FaultMix::none()
            .named("storage")
            .with(FaultPoint::BlockReadError, 250)
            .with(FaultPoint::BlockWriteError, 400)
            .with(FaultPoint::TornWrite, 150)
    }

    /// Security-machinery stress: key corruption, buffer exhaustion,
    /// EPTP-slot eviction.
    pub fn security() -> Self {
        FaultMix::none()
            .named("security")
            .with(FaultPoint::KeyCorrupt, 300)
            .with(FaultPoint::EptpEvict, 400)
            .with(FaultPoint::BufferExhaust, 100)
            .with(FaultPoint::PkruStale, 400)
    }

    /// Power-loss drills: mid-request power cuts (with the occasional
    /// torn final write) over a background of transient write errors —
    /// the crash matrix the WAL + commit-log replay path must absorb.
    /// Unlike [`FaultMix::storage`], this mix fires
    /// [`FaultPoint::PowerLoss`], so a run *will* eventually lose the
    /// device mid-sequence.
    pub fn power() -> Self {
        FaultMix::none()
            .named("power")
            .with(FaultPoint::PowerLoss, 40)
            .with(FaultPoint::TornWrite, 20)
            .with(FaultPoint::BlockWriteError, 120)
    }

    /// Queue-deadline storms.
    pub fn storms() -> Self {
        FaultMix::none()
            .named("storms")
            .with(FaultPoint::DeadlineStorm, 150)
    }

    /// Everything at once, at moderate rates.
    pub fn everything() -> Self {
        FaultMix::none()
            .named("everything")
            .with(FaultPoint::BlockReadError, 100)
            .with(FaultPoint::BlockWriteError, 150)
            .with(FaultPoint::TornWrite, 80)
            .with(FaultPoint::HandlerPanic, 150)
            .with(FaultPoint::HandlerHang, 100)
            .with(FaultPoint::EptpEvict, 250)
            .with(FaultPoint::BufferExhaust, 60)
            .with(FaultPoint::KeyCorrupt, 150)
            .with(FaultPoint::DeadlineStorm, 80)
            .with(FaultPoint::PkruStale, 150)
    }
}

/// One injected fault, from firing to resolution.
#[derive(Debug, Clone, Copy)]
struct FaultInstance {
    point: FaultPoint,
    detected: bool,
    recovered: bool,
}

/// A ledger transition an observer is notified of. Each instance passes
/// `Fired` exactly once, then either `Rescinded` (erased — it never
/// misbehaved) or `Detected`/`Recovered` at most once each, exactly when
/// the corresponding ledger flag flips — so an observer's per-stage
/// counts always equal the ledger roll-up's totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// An instance was opened.
    Fired,
    /// The newest unresolved instance was erased.
    Rescinded,
    /// An instance's detected flag flipped.
    Detected,
    /// An instance's recovered flag flipped.
    Recovered,
}

/// A callback observing ledger transitions (the tracing bridge: the
/// chaos harness points this at `sb-observe`'s recorder without this
/// crate depending on it).
pub struct FaultObserver(Box<dyn FnMut(FaultPoint, FaultStage)>);

impl FaultObserver {
    /// Wraps `f` as an observer.
    pub fn new(f: impl FnMut(FaultPoint, FaultStage) + 'static) -> Self {
        FaultObserver(Box::new(f))
    }
}

impl std::fmt::Debug for FaultObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultObserver(..)")
    }
}

/// The injector: a seeded RNG, a mix of rates, and the instance ledger.
#[derive(Debug)]
pub struct FaultPlane {
    mix: FaultMix,
    /// xorshift64* state; self-contained so the crate has no deps.
    rng: u64,
    instances: Vec<FaultInstance>,
    /// When false, `fire` never injects (a run's warm-up window).
    armed: bool,
    /// Notified on every ledger transition.
    observer: Option<FaultObserver>,
}

impl FaultPlane {
    /// A plane seeded with `seed`, injecting per `mix`. Armed by default.
    pub fn new(seed: u64, mix: FaultMix) -> Self {
        FaultPlane {
            mix,
            rng: seed | 1,
            instances: Vec::new(),
            armed: true,
            observer: None,
        }
    }

    /// Installs `observer` (replacing any previous one). Observation
    /// never affects the injection schedule — the RNG stream and the
    /// ledger are byte-identical with or without one.
    pub fn set_observer(&mut self, observer: FaultObserver) {
        self.observer = Some(observer);
    }

    fn notify(&mut self, point: FaultPoint, stage: FaultStage) {
        if let Some(obs) = self.observer.as_mut() {
            (obs.0)(point, stage);
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — deterministic, seed-stable across platforms.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Asks whether `point` fires at this opportunity. When it does, a
    /// tracked instance is opened and `true` returned; the caller must
    /// then actually misbehave.
    pub fn fire(&mut self, point: FaultPoint) -> bool {
        let rate = self.mix.rate(point);
        if !self.armed || rate == 0 {
            return false;
        }
        // Draw even when the rate is zero-adjacent so seed streams stay
        // aligned across mixes of the same shape.
        let draw = self.next_u64() % 10_000;
        if draw < rate as u64 {
            self.instances.push(FaultInstance {
                point,
                detected: false,
                recovered: false,
            });
            self.notify(point, FaultStage::Fired);
            true
        } else {
            false
        }
    }

    /// A deterministic draw for fault *parameters* (corrupt key value,
    /// torn-write cut point, storm length).
    pub fn draw(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Disarms injection (no new faults fire); the ledger stays.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Re-arms injection.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Marks the oldest undetected instance of `point` detected: the
    /// system *observed* the fault (an error surfaced, a violation was
    /// recorded, a timeout tripped).
    pub fn detected(&mut self, point: FaultPoint) {
        if let Some(idx) = self
            .instances
            .iter()
            .position(|i| i.point == point && !i.detected)
        {
            self.instances[idx].detected = true;
            self.notify(point, FaultStage::Detected);
        }
    }

    /// Marks the oldest unrecovered instance of `point` recovered: a
    /// recovery path completed (retry succeeded, connection rebound,
    /// log replayed). Implies detection.
    pub fn recovered(&mut self, point: FaultPoint) {
        if let Some(idx) = self
            .instances
            .iter()
            .position(|i| i.point == point && !i.recovered)
        {
            let newly_detected = !self.instances[idx].detected;
            self.instances[idx].recovered = true;
            self.instances[idx].detected = true;
            if newly_detected {
                self.notify(point, FaultStage::Detected);
            }
            self.notify(point, FaultStage::Recovered);
        }
    }

    /// Rescinds the *newest* unresolved instance of `point`: the injection
    /// site fired but could not actually misbehave (e.g. the targeted EPTP
    /// slot was pinned). The instance is erased — it never happened.
    pub fn rescind(&mut self, point: FaultPoint) {
        if let Some(idx) = self
            .instances
            .iter()
            .rposition(|i| i.point == point && !i.detected && !i.recovered)
        {
            self.instances.remove(idx);
            self.notify(point, FaultStage::Rescinded);
        }
    }

    /// Marks *every* unrecovered instance of `point` recovered — for
    /// recovery mechanisms that are inherently batched (a full EPTP-list
    /// reinstall at context switch, a log replay at remount) and heal all
    /// outstanding damage of that kind at once.
    pub fn recover_all(&mut self, point: FaultPoint) {
        let mut newly_detected = 0u64;
        let mut newly_recovered = 0u64;
        for i in self
            .instances
            .iter_mut()
            .filter(|i| i.point == point && !i.recovered)
        {
            if !i.detected {
                newly_detected += 1;
            }
            i.recovered = true;
            i.detected = true;
            newly_recovered += 1;
        }
        for _ in 0..newly_detected {
            self.notify(point, FaultStage::Detected);
        }
        for _ in 0..newly_recovered {
            self.notify(point, FaultStage::Recovered);
        }
    }

    /// Instances of `point` injected but not yet recovered.
    pub fn outstanding(&self, point: FaultPoint) -> u64 {
        self.instances
            .iter()
            .filter(|i| i.point == point && !i.recovered)
            .count() as u64
    }

    /// Faults injected at `point` so far.
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.instances.iter().filter(|i| i.point == point).count() as u64
    }

    /// Rolls the ledger up into a report.
    pub fn report(&self) -> FaultReport {
        let mut rows = Vec::new();
        for point in FaultPoint::ALL {
            let of_point: Vec<&FaultInstance> =
                self.instances.iter().filter(|i| i.point == point).collect();
            if of_point.is_empty() {
                continue;
            }
            rows.push(FaultRow {
                point,
                injected: of_point.len() as u64,
                detected: of_point.iter().filter(|i| i.detected).count() as u64,
                recovered: of_point.iter().filter(|i| i.recovered).count() as u64,
                leaked: of_point
                    .iter()
                    .filter(|i| !i.detected && !i.recovered)
                    .count() as u64,
            });
        }
        FaultReport { rows }
    }
}

/// Per-point totals in a [`FaultReport`].
#[derive(Debug, Clone, Copy)]
pub struct FaultRow {
    /// The fault point.
    pub point: FaultPoint,
    /// Instances injected.
    pub injected: u64,
    /// Instances the system observed (error surfaced / violation
    /// recorded / timeout tripped).
    pub detected: u64,
    /// Instances a recovery path resolved.
    pub recovered: u64,
    /// Instances neither detected nor recovered — silent damage.
    pub leaked: u64,
}

/// The per-run roll-up of every injected fault.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// One row per fault point that fired at least once.
    pub rows: Vec<FaultRow>,
}

impl FaultReport {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.rows.iter().map(|r| r.injected).sum()
    }

    /// Total faults detected.
    pub fn detected(&self) -> u64 {
        self.rows.iter().map(|r| r.detected).sum()
    }

    /// Total faults recovered.
    pub fn recovered(&self) -> u64 {
        self.rows.iter().map(|r| r.recovered).sum()
    }

    /// Total faults leaked — the chaos suite asserts this is zero.
    pub fn leaked(&self) -> u64 {
        self.rows.iter().map(|r| r.leaked).sum()
    }

    /// Total faults injected but never recovered: detected-but-stuck
    /// instances plus silent leaks. The flight recorder triggers on
    /// this — a fault somebody noticed but nobody repaired is still an
    /// incident worth a postmortem.
    pub fn unrecovered(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.injected.saturating_sub(r.recovered))
            .sum()
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected={} detected={} recovered={} leaked={}",
            self.injected(),
            self.detected(),
            self.recovered(),
            self.leaked()
        )
    }
}

/// A cloneable handle onto a shared [`FaultPlane`]. Every layer of the
/// stack holds one; the whole simulation is single-threaded, so `Rc` is
/// the right tool.
#[derive(Clone)]
pub struct FaultHandle(Rc<RefCell<FaultPlane>>);

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FaultHandle")
            .field(&self.0.borrow())
            .finish()
    }
}

impl FaultHandle {
    /// A fresh plane behind a handle.
    pub fn new(seed: u64, mix: FaultMix) -> Self {
        FaultHandle(Rc::new(RefCell::new(FaultPlane::new(seed, mix))))
    }

    /// See [`FaultPlane::fire`].
    pub fn fire(&self, point: FaultPoint) -> bool {
        self.0.borrow_mut().fire(point)
    }

    /// See [`FaultPlane::draw`].
    pub fn draw(&self, bound: u64) -> u64 {
        self.0.borrow_mut().draw(bound)
    }

    /// See [`FaultPlane::detected`].
    pub fn detected(&self, point: FaultPoint) {
        self.0.borrow_mut().detected(point);
    }

    /// See [`FaultPlane::recovered`].
    pub fn recovered(&self, point: FaultPoint) {
        self.0.borrow_mut().recovered(point);
    }

    /// See [`FaultPlane::rescind`].
    pub fn rescind(&self, point: FaultPoint) {
        self.0.borrow_mut().rescind(point);
    }

    /// See [`FaultPlane::recover_all`].
    pub fn recover_all(&self, point: FaultPoint) {
        self.0.borrow_mut().recover_all(point);
    }

    /// See [`FaultPlane::outstanding`].
    pub fn outstanding(&self, point: FaultPoint) -> u64 {
        self.0.borrow().outstanding(point)
    }

    /// See [`FaultPlane::injected_at`].
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.0.borrow().injected_at(point)
    }

    /// See [`FaultPlane::disarm`].
    pub fn disarm(&self) {
        self.0.borrow_mut().disarm();
    }

    /// See [`FaultPlane::arm`].
    pub fn arm(&self) {
        self.0.borrow_mut().arm();
    }

    /// See [`FaultPlane::report`].
    pub fn report(&self) -> FaultReport {
        self.0.borrow().report()
    }

    /// See [`FaultPlane::set_observer`].
    pub fn set_observer(&self, observer: FaultObserver) {
        self.0.borrow_mut().set_observer(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mix = FaultMix::everything();
        let mut a = FaultPlane::new(42, mix.clone());
        let mut b = FaultPlane::new(42, mix);
        let fire_a: Vec<bool> = (0..500).map(|_| a.fire(FaultPoint::HandlerPanic)).collect();
        let fire_b: Vec<bool> = (0..500).map(|_| b.fire(FaultPoint::HandlerPanic)).collect();
        assert_eq!(fire_a, fire_b, "fault schedules must be seed-determined");
        assert!(fire_a.iter().any(|&f| f), "a 1.5% rate fires in 500 draws");
    }

    #[test]
    fn different_seeds_differ() {
        let mix = FaultMix::everything();
        let mut a = FaultPlane::new(1, mix.clone());
        let mut b = FaultPlane::new(2, mix);
        let fire_a: Vec<bool> = (0..500).map(|_| a.fire(FaultPoint::EptpEvict)).collect();
        let fire_b: Vec<bool> = (0..500).map(|_| b.fire(FaultPoint::EptpEvict)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = FaultPlane::new(7, FaultMix::none());
        assert!((0..1000).all(|_| !p.fire(FaultPoint::TornWrite)));
        assert_eq!(p.report().injected(), 0);
    }

    #[test]
    fn ledger_tracks_detection_and_recovery() {
        let mix = FaultMix::none().with(FaultPoint::HandlerPanic, 10_000);
        let mut p = FaultPlane::new(9, mix);
        assert!(p.fire(FaultPoint::HandlerPanic));
        assert!(p.fire(FaultPoint::HandlerPanic));
        assert!(p.fire(FaultPoint::HandlerPanic));
        p.detected(FaultPoint::HandlerPanic);
        p.recovered(FaultPoint::HandlerPanic); // Pairs with the detected one.
        p.recovered(FaultPoint::HandlerPanic); // Standalone: implies detection.
        let r = p.report();
        assert_eq!(r.injected(), 3);
        assert_eq!(r.detected(), 2);
        assert_eq!(r.recovered(), 2);
        assert_eq!(r.leaked(), 1, "the third instance is silent damage");
    }

    #[test]
    fn disarm_stops_injection() {
        let mix = FaultMix::none().with(FaultPoint::PowerLoss, 10_000);
        let mut p = FaultPlane::new(3, mix);
        p.disarm();
        assert!(!p.fire(FaultPoint::PowerLoss));
        p.arm();
        assert!(p.fire(FaultPoint::PowerLoss));
    }

    #[test]
    fn handle_shares_one_plane() {
        let h = FaultHandle::new(5, FaultMix::none().with(FaultPoint::KeyCorrupt, 10_000));
        let h2 = h.clone();
        assert!(h.fire(FaultPoint::KeyCorrupt));
        h2.recovered(FaultPoint::KeyCorrupt);
        assert_eq!(h.report().recovered(), 1);
        assert_eq!(h.report().leaked(), 0);
    }

    #[test]
    fn observer_counts_match_the_ledger() {
        use std::cell::RefCell;
        use std::collections::BTreeMap;
        use std::rc::Rc;

        let counts: Rc<RefCell<BTreeMap<(&'static str, u8), u64>>> =
            Rc::new(RefCell::new(BTreeMap::new()));
        let sink = counts.clone();
        let mix = FaultMix::none()
            .with(FaultPoint::EptpEvict, 10_000)
            .with(FaultPoint::HandlerPanic, 10_000);
        let mut p = FaultPlane::new(11, mix);
        p.set_observer(FaultObserver::new(move |point, stage| {
            let key = (
                point.name(),
                match stage {
                    FaultStage::Fired => 0,
                    FaultStage::Rescinded => 1,
                    FaultStage::Detected => 2,
                    FaultStage::Recovered => 3,
                },
            );
            *sink.borrow_mut().entry(key).or_insert(0) += 1;
        }));

        for _ in 0..4 {
            assert!(p.fire(FaultPoint::EptpEvict));
        }
        assert!(p.fire(FaultPoint::HandlerPanic));
        p.rescind(FaultPoint::EptpEvict); // One never misbehaved.
        p.detected(FaultPoint::EptpEvict);
        p.recover_all(FaultPoint::EptpEvict); // Recovers 3, detects 2 more.
        p.recovered(FaultPoint::HandlerPanic); // Standalone: implies detection.

        let c = counts.borrow();
        let get = |name, stage| c.get(&(name, stage)).copied().unwrap_or(0);
        let r = p.report();
        // Fired minus rescinded equals what the ledger kept.
        assert_eq!(
            get("eptp_evict", 0) + get("handler_panic", 0)
                - get("eptp_evict", 1)
                - get("handler_panic", 1),
            r.injected()
        );
        assert_eq!(get("eptp_evict", 2) + get("handler_panic", 2), r.detected());
        assert_eq!(
            get("eptp_evict", 3) + get("handler_panic", 3),
            r.recovered()
        );
        assert_eq!(get("eptp_evict", 1), 1);
        assert_eq!(r.leaked(), 0);
    }

    #[test]
    fn observer_does_not_perturb_the_schedule() {
        let mix = FaultMix::everything();
        let mut plain = FaultPlane::new(21, mix.clone());
        let mut observed = FaultPlane::new(21, mix);
        observed.set_observer(FaultObserver::new(|_, _| {}));
        let a: Vec<bool> = (0..300)
            .map(|_| plain.fire(FaultPoint::TornWrite))
            .collect();
        let b: Vec<bool> = (0..300)
            .map(|_| observed.fire(FaultPoint::TornWrite))
            .collect();
        assert_eq!(a, b, "observation must not shift the RNG stream");
    }

    #[test]
    fn report_display_and_rows() {
        let h = FaultHandle::new(5, FaultMix::none().with(FaultPoint::TornWrite, 10_000));
        h.fire(FaultPoint::TornWrite);
        let r = h.report();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].point.name(), "torn_write");
        assert_eq!(format!("{r}"), "injected=1 detected=0 recovered=0 leaked=1");
    }
}
