//! The file API boundary.
//!
//! In the paper's SQLite stack, the database does **not** own the file
//! system — it sends file operations to the xv6fs *server* over IPC, which
//! in turn reaches the block-device server. [`FileApi`] is that boundary:
//! [`crate::FileSystem`] implements it directly (the in-process layout of
//! the Baseline configuration), and the simulation's scenario layer
//! implements it with IPC / SkyBridge proxies that charge real transfer
//! costs per call.

use crate::{
    blockdev::BlockDevice,
    fs::{FileSystem, FsError, Inum},
};

/// The file operations minidb needs from its file-system server.
pub trait FileApi {
    /// Opens an existing file.
    fn open(&mut self, path: &str) -> Result<Inum, FsError>;

    /// Creates a regular file.
    fn create(&mut self, path: &str) -> Result<Inum, FsError>;

    /// Reads at `off`; returns bytes read.
    fn read_at(&mut self, inum: Inum, off: usize, buf: &mut [u8]) -> usize;

    /// Writes at `off`, extending the file.
    fn write_at(&mut self, inum: Inum, off: usize, data: &[u8]) -> Result<(), FsError>;

    /// Size in bytes.
    fn size_of(&mut self, inum: Inum) -> usize;
}

impl<D: BlockDevice> FileApi for FileSystem<D> {
    fn open(&mut self, path: &str) -> Result<Inum, FsError> {
        FileSystem::open(self, path)
    }

    fn create(&mut self, path: &str) -> Result<Inum, FsError> {
        FileSystem::create(self, path)
    }

    fn read_at(&mut self, inum: Inum, off: usize, buf: &mut [u8]) -> usize {
        FileSystem::read_at(self, inum, off, buf)
    }

    fn write_at(&mut self, inum: Inum, off: usize, data: &[u8]) -> Result<(), FsError> {
        FileSystem::write_at(self, inum, off, data)
    }

    fn size_of(&mut self, inum: Inum) -> usize {
        FileSystem::size_of(self, inum)
    }
}
