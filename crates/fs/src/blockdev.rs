//! Block devices: the trait, the RAM disk, and crash/fault injection.

use sb_faultplane::{FaultHandle, FaultPoint};

/// Bytes per block (xv6's BSIZE).
pub const BSIZE: usize = 1024;

/// A transient device-level I/O error. The device refused this attempt;
/// a bounded retry is the expected recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevError;

impl std::fmt::Display for DevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transient block I/O error")
    }
}

impl std::error::Error for DevError {}

/// A block device.
///
/// In the simulated system the device is served by a separate process (the
/// second server of the SQLite stack); the scenario layer wraps an
/// implementor in an IPC or SkyBridge proxy and charges transfer costs.
pub trait BlockDevice {
    /// Number of blocks.
    fn nblocks(&self) -> u32;

    /// Reads block `bno` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `bno` is out of range.
    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]);

    /// Writes `buf` to block `bno`.
    ///
    /// # Panics
    ///
    /// Panics if `bno` is out of range.
    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]);

    /// Fallible read: devices that can fail transiently (see
    /// [`FaultyDisk`]) surface the error here; plain devices never do.
    fn try_read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) -> Result<(), DevError> {
        self.read_block(bno, buf);
        Ok(())
    }

    /// Fallible write; see [`BlockDevice::try_read_block`].
    fn try_write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) -> Result<(), DevError> {
        self.write_block(bno, buf);
        Ok(())
    }
}

/// An in-memory disk, with I/O counters.
#[derive(Debug, Clone)]
pub struct RamDisk {
    blocks: Vec<[u8; BSIZE]>,
    /// Total block reads served.
    pub reads: u64,
    /// Total block writes served.
    pub writes: u64,
}

impl RamDisk {
    /// A zeroed disk of `nblocks` blocks.
    pub fn new(nblocks: u32) -> Self {
        RamDisk {
            blocks: vec![[0; BSIZE]; nblocks as usize],
            reads: 0,
            writes: 0,
        }
    }
}

impl BlockDevice for RamDisk {
    fn nblocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        self.reads += 1;
        *buf = self.blocks[bno as usize];
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        self.writes += 1;
        self.blocks[bno as usize] = *buf;
    }
}

/// A crash-injecting wrapper: after `fuse` successful writes, every
/// subsequent write is silently dropped — the moral equivalent of power
/// loss mid-sequence. Reads always see the persisted state.
#[derive(Debug, Clone)]
pub struct CrashDisk {
    inner: RamDisk,
    /// Writes remaining before the "power loss".
    pub fuse: u64,
    /// Writes dropped after the crash point.
    pub dropped: u64,
}

impl CrashDisk {
    /// Wraps `disk`, allowing `fuse` more writes.
    pub fn new(inner: RamDisk, fuse: u64) -> Self {
        CrashDisk {
            inner,
            fuse,
            dropped: 0,
        }
    }

    /// Consumes the wrapper, returning the surviving disk state.
    pub fn into_survivor(self) -> RamDisk {
        self.inner
    }
}

impl BlockDevice for CrashDisk {
    fn nblocks(&self) -> u32 {
        self.inner.nblocks()
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        self.inner.read_block(bno, buf);
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        if self.fuse == 0 {
            self.dropped += 1;
            return;
        }
        self.fuse -= 1;
        self.inner.write_block(bno, buf);
    }
}

/// A fault-injecting block device driven by a shared
/// [`sb_faultplane::FaultPlane`].
///
/// Injected behaviours, all deterministic in `(seed, mix)`:
///
/// * [`FaultPoint::BlockReadError`] / [`FaultPoint::BlockWriteError`] —
///   the attempt returns [`DevError`] once; the immediately following
///   retry of the same block is guaranteed to succeed and is counted as
///   the recovery.
/// * [`FaultPoint::TornWrite`] — only a prefix of the block reaches the
///   medium and the device loses power: the torn block is the visible
///   edge of the crash, exactly the state the write-ahead log's
///   header checksum must reject at the next mount.
/// * [`FaultPoint::PowerLoss`] — this and every subsequent write is
///   silently dropped ([`CrashDisk`] semantics); reads keep serving the
///   persisted state so a remount can recover.
#[derive(Debug, Clone)]
pub struct FaultyDisk {
    inner: RamDisk,
    faults: FaultHandle,
    /// Block with an outstanding transient error: the next access to it
    /// succeeds (and counts as the recovery).
    retry_read: Option<u32>,
    retry_write: Option<u32>,
    /// Power lost: all further writes are dropped.
    pub dead: bool,
    /// Writes dropped after the power loss.
    pub dropped: u64,
}

impl FaultyDisk {
    /// Wraps `inner`, injecting per `faults`.
    pub fn new(inner: RamDisk, faults: FaultHandle) -> Self {
        FaultyDisk {
            inner,
            faults,
            retry_read: None,
            retry_write: None,
            dead: false,
            dropped: 0,
        }
    }

    /// Consumes the wrapper, returning the surviving disk state (what a
    /// remount after the crash would see).
    pub fn into_survivor(self) -> RamDisk {
        self.inner
    }

    /// The surviving medium, without consuming the wrapper — what a
    /// remount after the crash would see. Snapshot/replay drills clone
    /// this while the cell that owns the disk keeps running.
    pub fn medium(&self) -> &RamDisk {
        &self.inner
    }

    /// The fault handle this disk injects from.
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }
}

impl BlockDevice for FaultyDisk {
    fn nblocks(&self) -> u32 {
        self.inner.nblocks()
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        // The infallible path retries internally; the injected error
        // still lands in the ledger and is recovered by the retry.
        while self.try_read_block(bno, buf).is_err() {}
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        while self.try_write_block(bno, buf).is_err() {}
    }

    fn try_read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) -> Result<(), DevError> {
        if self.retry_read.take() == Some(bno) {
            // The retry after a transient error: guaranteed to succeed.
            self.inner.read_block(bno, buf);
            self.faults.recovered(FaultPoint::BlockReadError);
            return Ok(());
        }
        if self.faults.fire(FaultPoint::BlockReadError) {
            self.retry_read = Some(bno);
            self.faults.detected(FaultPoint::BlockReadError);
            return Err(DevError);
        }
        self.inner.read_block(bno, buf);
        Ok(())
    }

    fn try_write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) -> Result<(), DevError> {
        if self.dead {
            self.dropped += 1;
            return Ok(());
        }
        if self.retry_write.take() == Some(bno) {
            self.inner.write_block(bno, buf);
            self.faults.recovered(FaultPoint::BlockWriteError);
            return Ok(());
        }
        if self.faults.fire(FaultPoint::PowerLoss) {
            self.dead = true;
            self.dropped += 1;
            return Ok(());
        }
        if self.faults.fire(FaultPoint::TornWrite) {
            // A prefix (at least 4 bytes so a torn log header shows a
            // plausible count) lands; then the power goes.
            let cut = 4 + self.faults.draw((BSIZE - 4) as u64) as usize;
            let mut torn = [0u8; BSIZE];
            self.inner.read_block(bno, &mut torn);
            self.inner.reads -= 1; // Internal read, not device traffic.
            torn[..cut].copy_from_slice(&buf[..cut]);
            self.inner.write_block(bno, &torn);
            self.dead = true;
            return Ok(());
        }
        if self.faults.fire(FaultPoint::BlockWriteError) {
            self.retry_write = Some(bno);
            self.faults.detected(FaultPoint::BlockWriteError);
            return Err(DevError);
        }
        self.inner.write_block(bno, buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use sb_faultplane::FaultMix;

    use super::*;

    #[test]
    fn ramdisk_roundtrip_and_counters() {
        let mut d = RamDisk::new(8);
        let mut buf = [0u8; BSIZE];
        buf[0] = 0xaa;
        d.write_block(3, &buf);
        let mut out = [0u8; BSIZE];
        d.read_block(3, &mut out);
        assert_eq!(out[0], 0xaa);
        assert_eq!((d.reads, d.writes), (1, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut d = RamDisk::new(2);
        let buf = [0u8; BSIZE];
        d.write_block(2, &buf);
    }

    #[test]
    fn crash_disk_drops_writes_after_fuse() {
        let mut d = CrashDisk::new(RamDisk::new(4), 1);
        let mut one = [0u8; BSIZE];
        one[0] = 1;
        let mut two = [0u8; BSIZE];
        two[0] = 2;
        d.write_block(0, &one); // Persisted.
        d.write_block(1, &two); // Dropped.
        assert_eq!(d.dropped, 1);
        let mut buf = [0u8; BSIZE];
        d.read_block(0, &mut buf);
        assert_eq!(buf[0], 1);
        d.read_block(1, &mut buf);
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn faulty_disk_transient_write_error_recovers_on_retry() {
        let h = FaultHandle::new(
            11,
            FaultMix::none().with(FaultPoint::BlockWriteError, 10_000),
        );
        let mut d = FaultyDisk::new(RamDisk::new(8), h.clone());
        let mut one = [0u8; BSIZE];
        one[0] = 1;
        assert!(d.try_write_block(3, &one).is_err(), "first attempt fails");
        assert!(d.try_write_block(3, &one).is_ok(), "retry succeeds");
        let mut buf = [0u8; BSIZE];
        h.disarm();
        d.read_block(3, &mut buf);
        assert_eq!(buf[0], 1);
        let r = h.report();
        assert_eq!((r.detected(), r.recovered(), r.leaked()), (1, 1, 0));
    }

    #[test]
    fn faulty_disk_torn_write_cuts_and_kills_power() {
        let h = FaultHandle::new(5, FaultMix::none().with(FaultPoint::TornWrite, 10_000));
        let mut d = FaultyDisk::new(RamDisk::new(8), h.clone());
        let full = [0xff; BSIZE];
        d.write_block(2, &full);
        assert!(d.dead, "a torn write takes the power with it");
        let mut buf = [0u8; BSIZE];
        d.read_block(2, &mut buf);
        assert!(buf[..4] == [0xff; 4], "at least the prefix landed");
        assert!(buf.contains(&0), "the tail of the block must be torn off");
        // Writes after death are silently dropped.
        d.write_block(3, &full);
        assert!(d.dropped >= 1);
        d.read_block(3, &mut buf);
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn faulty_disk_with_no_faults_is_transparent() {
        let h = FaultHandle::new(1, FaultMix::none());
        let mut d = FaultyDisk::new(RamDisk::new(4), h.clone());
        let mut b = [0u8; BSIZE];
        b[9] = 9;
        d.write_block(1, &b);
        let mut out = [0u8; BSIZE];
        d.read_block(1, &mut out);
        assert_eq!(out[9], 9);
        assert_eq!(h.report().injected(), 0);
    }
}
