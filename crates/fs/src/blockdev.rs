//! Block devices: the trait, the RAM disk, and crash injection.

/// Bytes per block (xv6's BSIZE).
pub const BSIZE: usize = 1024;

/// A block device.
///
/// In the simulated system the device is served by a separate process (the
/// second server of the SQLite stack); the scenario layer wraps an
/// implementor in an IPC or SkyBridge proxy and charges transfer costs.
pub trait BlockDevice {
    /// Number of blocks.
    fn nblocks(&self) -> u32;

    /// Reads block `bno` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `bno` is out of range.
    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]);

    /// Writes `buf` to block `bno`.
    ///
    /// # Panics
    ///
    /// Panics if `bno` is out of range.
    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]);
}

/// An in-memory disk, with I/O counters.
#[derive(Debug, Clone)]
pub struct RamDisk {
    blocks: Vec<[u8; BSIZE]>,
    /// Total block reads served.
    pub reads: u64,
    /// Total block writes served.
    pub writes: u64,
}

impl RamDisk {
    /// A zeroed disk of `nblocks` blocks.
    pub fn new(nblocks: u32) -> Self {
        RamDisk {
            blocks: vec![[0; BSIZE]; nblocks as usize],
            reads: 0,
            writes: 0,
        }
    }
}

impl BlockDevice for RamDisk {
    fn nblocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        self.reads += 1;
        *buf = self.blocks[bno as usize];
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        self.writes += 1;
        self.blocks[bno as usize] = *buf;
    }
}

/// A crash-injecting wrapper: after `fuse` successful writes, every
/// subsequent write is silently dropped — the moral equivalent of power
/// loss mid-sequence. Reads always see the persisted state.
#[derive(Debug, Clone)]
pub struct CrashDisk {
    inner: RamDisk,
    /// Writes remaining before the "power loss".
    pub fuse: u64,
    /// Writes dropped after the crash point.
    pub dropped: u64,
}

impl CrashDisk {
    /// Wraps `disk`, allowing `fuse` more writes.
    pub fn new(inner: RamDisk, fuse: u64) -> Self {
        CrashDisk {
            inner,
            fuse,
            dropped: 0,
        }
    }

    /// Consumes the wrapper, returning the surviving disk state.
    pub fn into_survivor(self) -> RamDisk {
        self.inner
    }
}

impl BlockDevice for CrashDisk {
    fn nblocks(&self) -> u32 {
        self.inner.nblocks()
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        self.inner.read_block(bno, buf);
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        if self.fuse == 0 {
            self.dropped += 1;
            return;
        }
        self.fuse -= 1;
        self.inner.write_block(bno, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramdisk_roundtrip_and_counters() {
        let mut d = RamDisk::new(8);
        let mut buf = [0u8; BSIZE];
        buf[0] = 0xaa;
        d.write_block(3, &buf);
        let mut out = [0u8; BSIZE];
        d.read_block(3, &mut out);
        assert_eq!(out[0], 0xaa);
        assert_eq!((d.reads, d.writes), (1, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut d = RamDisk::new(2);
        let buf = [0u8; BSIZE];
        d.write_block(2, &buf);
    }

    #[test]
    fn crash_disk_drops_writes_after_fuse() {
        let mut d = CrashDisk::new(RamDisk::new(4), 1);
        let mut one = [0u8; BSIZE];
        one[0] = 1;
        let mut two = [0u8; BSIZE];
        two[0] = 2;
        d.write_block(0, &one); // Persisted.
        d.write_block(1, &two); // Dropped.
        assert_eq!(d.dropped, 1);
        let mut buf = [0u8; BSIZE];
        d.read_block(0, &mut buf);
        assert_eq!(buf[0], 1);
        d.read_block(1, &mut buf);
        assert_eq!(buf[0], 0);
    }
}
