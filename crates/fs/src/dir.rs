//! Directory entries.

/// Maximum file-name length (xv6's DIRSIZ).
pub const DIRSIZ: usize = 14;

/// Bytes per directory entry: 2-byte inum + name.
pub const DIRENT_SIZE: usize = 16;

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Inode number (0 = free slot).
    pub inum: u16,
    /// File name (≤ [`DIRSIZ`] bytes).
    pub name: String,
}

impl Dirent {
    /// Serializes into a 16-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if the name exceeds [`DIRSIZ`] bytes.
    pub fn encode(&self) -> [u8; DIRENT_SIZE] {
        assert!(self.name.len() <= DIRSIZ, "name too long");
        let mut b = [0u8; DIRENT_SIZE];
        b[0..2].copy_from_slice(&self.inum.to_le_bytes());
        b[2..2 + self.name.len()].copy_from_slice(self.name.as_bytes());
        b
    }

    /// Deserializes a 16-byte slot.
    pub fn decode(b: &[u8]) -> Self {
        let inum = u16::from_le_bytes(b[0..2].try_into().unwrap());
        let end = b[2..2 + DIRSIZ]
            .iter()
            .position(|&c| c == 0)
            .map_or(DIRSIZ, |p| p);
        Dirent {
            inum,
            name: String::from_utf8_lossy(&b[2..2 + end]).into_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Dirent {
            inum: 7,
            name: "wal.journal".into(),
        };
        assert_eq!(Dirent::decode(&d.encode()), d);
    }

    #[test]
    fn max_length_name() {
        let d = Dirent {
            inum: 1,
            name: "a".repeat(DIRSIZ),
        };
        assert_eq!(Dirent::decode(&d.encode()), d);
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn too_long_panics() {
        Dirent {
            inum: 1,
            name: "a".repeat(DIRSIZ + 1),
        }
        .encode();
    }
}
