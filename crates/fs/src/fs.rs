//! The file-system facade: superblock, allocation, files, directories.

use crate::{
    blockdev::{BlockDevice, BSIZE},
    dir::{Dirent, DIRENT_SIZE, DIRSIZ},
    inode::{Dinode, InodeType, INODE_SIZE, IPB, MAXFILE, NDIRECT, NINDIRECT},
    log::{Log, LOG_CAPACITY},
};

/// Inode number (0 is invalid; 1 is the root directory).
pub type Inum = u16;

/// The root directory's inode number.
pub const ROOT_INUM: Inum = 1;

const MAGIC: u32 = 0x5bf5_2019;

/// File-system errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// Create target already exists.
    Exists,
    /// A non-directory appeared mid-path.
    NotADir,
    /// Expected a file, found a directory.
    IsADir,
    /// Out of data blocks or inodes.
    NoSpace,
    /// Write beyond the maximum file size.
    FileTooLarge,
    /// Name longer than [`DIRSIZ`].
    NameTooLong,
    /// Directory not empty on unlink.
    DirNotEmpty,
    /// Not a valid file system (bad magic).
    BadSuperblock,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NotFound => "not found",
            FsError::Exists => "already exists",
            FsError::NotADir => "not a directory",
            FsError::IsADir => "is a directory",
            FsError::NoSpace => "no space",
            FsError::FileTooLarge => "file too large",
            FsError::NameTooLong => "name too long",
            FsError::DirNotEmpty => "directory not empty",
            FsError::BadSuperblock => "bad superblock",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for FsError {}

/// On-disk layout descriptor (block 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Total blocks.
    pub size: u32,
    /// Log region blocks (header + slots).
    pub nlog: u32,
    /// First log block.
    pub logstart: u32,
    /// Inode count.
    pub ninodes: u32,
    /// First inode block.
    pub inodestart: u32,
    /// First bitmap block.
    pub bmapstart: u32,
    /// First data block.
    pub datastart: u32,
}

impl Superblock {
    fn encode(&self) -> [u8; BSIZE] {
        let mut b = [0u8; BSIZE];
        let words = [
            MAGIC,
            self.size,
            self.nlog,
            self.logstart,
            self.ninodes,
            self.inodestart,
            self.bmapstart,
            self.datastart,
        ];
        for (i, w) in words.iter().enumerate() {
            b[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        b
    }

    fn decode(b: &[u8; BSIZE]) -> Result<Self, FsError> {
        let w = |i: usize| u32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
        if w(0) != MAGIC {
            return Err(FsError::BadSuperblock);
        }
        Ok(Superblock {
            size: w(1),
            nlog: w(2),
            logstart: w(3),
            ninodes: w(4),
            inodestart: w(5),
            bmapstart: w(6),
            datastart: w(7),
        })
    }
}

/// A mounted file system.
///
/// # Examples
///
/// ```
/// use sb_fs::{FileSystem, RamDisk};
///
/// let mut fs = FileSystem::mkfs(RamDisk::new(1024), 32);
/// let f = fs.create("/hello").unwrap();
/// fs.write_at(f, 0, b"xv6fs says hi").unwrap();
/// let mut buf = [0u8; 13];
/// fs.read_at(f, 0, &mut buf);
/// assert_eq!(&buf, b"xv6fs says hi");
/// ```
#[derive(Debug)]
pub struct FileSystem<D: BlockDevice> {
    dev: D,
    sb: Superblock,
    log: Log,
}

impl<D: BlockDevice> FileSystem<D> {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(mut dev: D, ninodes: u32) -> Self {
        let size = dev.nblocks();
        let nlog = (LOG_CAPACITY + 1) as u32;
        let logstart = 2;
        let inodestart = logstart + nlog;
        let ninodeblocks = ninodes.div_ceil(IPB as u32);
        let bmapstart = inodestart + ninodeblocks;
        let nbitmap = size.div_ceil((BSIZE * 8) as u32);
        let datastart = bmapstart + nbitmap;
        assert!(datastart < size, "device too small");
        let sb = Superblock {
            size,
            nlog,
            logstart,
            ninodes,
            inodestart,
            bmapstart,
            datastart,
        };
        let zero = [0u8; BSIZE];
        for b in 0..datastart {
            dev.write_block(b, &zero);
        }
        dev.write_block(1, &sb.encode());
        let mut fs = FileSystem {
            dev,
            sb,
            log: Log::new(logstart, nlog),
        };
        // Mark the metadata blocks used in the bitmap and create "/".
        fs.log.begin_op();
        for b in 0..datastart {
            fs.bitmap_set(b, true);
        }
        let root = Dinode {
            typ: InodeType::Dir,
            nlink: 1,
            size: 0,
            addrs: [0; NDIRECT + 2],
        };
        fs.write_inode(ROOT_INUM, &root);
        fs.log.end_op(&mut fs.dev);
        fs
    }

    /// Mounts an existing file system, replaying any committed log.
    pub fn mount(mut dev: D) -> Result<Self, FsError> {
        let mut sb_block = [0u8; BSIZE];
        dev.read_block(1, &mut sb_block);
        let sb = Superblock::decode(&sb_block)?;
        Log::recover(sb.logstart, &mut dev);
        Ok(FileSystem {
            dev,
            sb,
            log: Log::new(sb.logstart, sb.nlog),
        })
    }

    /// Unmounts, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// The superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.log.commits
    }

    /// Direct access to the device (for I/O statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    // ----- block I/O through the log -----

    fn bread(&mut self, bno: u32) -> [u8; BSIZE] {
        let mut buf = [0u8; BSIZE];
        self.log.read(&mut self.dev, bno, &mut buf);
        buf
    }

    fn bwrite(&mut self, bno: u32, data: &[u8; BSIZE]) {
        self.log.write(bno, data);
    }

    // ----- bitmap allocation -----

    fn bitmap_set(&mut self, bno: u32, used: bool) {
        let bblock = self.sb.bmapstart + bno / (BSIZE as u32 * 8);
        let mut buf = self.bread(bblock);
        let bit = (bno % (BSIZE as u32 * 8)) as usize;
        if used {
            buf[bit / 8] |= 1 << (bit % 8);
        } else {
            buf[bit / 8] &= !(1 << (bit % 8));
        }
        self.bwrite(bblock, &buf);
    }

    fn balloc(&mut self) -> Result<u32, FsError> {
        for bblock_i in 0..self.sb.size.div_ceil(BSIZE as u32 * 8) {
            let bblock = self.sb.bmapstart + bblock_i;
            let buf = self.bread(bblock);
            for (byte, &v) in buf.iter().enumerate() {
                if v != 0xff {
                    let bit = v.trailing_ones() as usize;
                    let bno = bblock_i * (BSIZE as u32 * 8) + (byte * 8 + bit) as u32;
                    if bno >= self.sb.size {
                        return Err(FsError::NoSpace);
                    }
                    self.bitmap_set(bno, true);
                    self.bwrite(bno, &[0u8; BSIZE]);
                    return Ok(bno);
                }
            }
        }
        Err(FsError::NoSpace)
    }

    fn bfree(&mut self, bno: u32) {
        self.bitmap_set(bno, false);
    }

    // ----- inodes -----

    fn inode_block(&self, inum: Inum) -> (u32, usize) {
        let b = self.sb.inodestart + inum as u32 / IPB as u32;
        let off = (inum as usize % IPB) * INODE_SIZE;
        (b, off)
    }

    /// Reads an inode.
    pub fn read_inode(&mut self, inum: Inum) -> Dinode {
        let (b, off) = self.inode_block(inum);
        let buf = self.bread(b);
        Dinode::decode(&buf[off..off + INODE_SIZE])
    }

    fn write_inode(&mut self, inum: Inum, d: &Dinode) {
        let (b, off) = self.inode_block(inum);
        let mut buf = self.bread(b);
        buf[off..off + INODE_SIZE].copy_from_slice(&d.encode());
        self.bwrite(b, &buf);
    }

    fn ialloc(&mut self, typ: InodeType) -> Result<Inum, FsError> {
        for inum in 1..self.sb.ninodes as Inum {
            if self.read_inode(inum).typ == InodeType::Free {
                let d = Dinode {
                    typ,
                    nlink: 1,
                    size: 0,
                    addrs: [0; NDIRECT + 2],
                };
                self.write_inode(inum, &d);
                return Ok(inum);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Maps file block `fbn` of `inum` to a disk block, allocating if
    /// requested.
    fn bmap(&mut self, inum: Inum, fbn: usize, alloc: bool) -> Result<u32, FsError> {
        if fbn >= MAXFILE {
            return Err(FsError::FileTooLarge);
        }
        let mut d = self.read_inode(inum);
        if fbn < NDIRECT {
            if d.addrs[fbn] == 0 {
                if !alloc {
                    return Ok(0);
                }
                d.addrs[fbn] = self.balloc()?;
                self.write_inode(inum, &d);
            }
            return Ok(d.addrs[fbn]);
        }
        if fbn < NDIRECT + NINDIRECT {
            // Single indirect.
            if d.addrs[NDIRECT] == 0 {
                if !alloc {
                    return Ok(0);
                }
                d.addrs[NDIRECT] = self.balloc()?;
                self.write_inode(inum, &d);
            }
            return self.indirect_slot(d.addrs[NDIRECT], fbn - NDIRECT, alloc);
        }
        // Double indirect.
        if d.addrs[NDIRECT + 1] == 0 {
            if !alloc {
                return Ok(0);
            }
            d.addrs[NDIRECT + 1] = self.balloc()?;
            self.write_inode(inum, &d);
        }
        let rest = fbn - NDIRECT - NINDIRECT;
        let mid = self.indirect_slot(d.addrs[NDIRECT + 1], rest / NINDIRECT, alloc)?;
        if mid == 0 {
            return Ok(0);
        }
        self.indirect_slot(mid, rest % NINDIRECT, alloc)
    }

    /// Reads (allocating if asked) slot `slot` of the indirect block `ib`.
    fn indirect_slot(&mut self, ib: u32, slot: usize, alloc: bool) -> Result<u32, FsError> {
        let mut ind = self.bread(ib);
        let mut bno = u32::from_le_bytes(ind[slot * 4..slot * 4 + 4].try_into().unwrap());
        if bno == 0 && alloc {
            bno = self.balloc()?;
            ind[slot * 4..slot * 4 + 4].copy_from_slice(&bno.to_le_bytes());
            self.bwrite(ib, &ind);
        }
        Ok(bno)
    }

    /// Reads up to `buf.len()` bytes at `off`; returns bytes read.
    fn readi(&mut self, inum: Inum, off: usize, buf: &mut [u8]) -> usize {
        let d = self.read_inode(inum);
        let size = d.size as usize;
        if off >= size {
            return 0;
        }
        let n = buf.len().min(size - off);
        let mut done = 0;
        while done < n {
            let fbn = (off + done) / BSIZE;
            let boff = (off + done) % BSIZE;
            let chunk = (BSIZE - boff).min(n - done);
            let bno = self.bmap(inum, fbn, false).unwrap_or(0);
            if bno == 0 {
                // Hole: zeros.
                buf[done..done + chunk].fill(0);
            } else {
                let data = self.bread(bno);
                buf[done..done + chunk].copy_from_slice(&data[boff..boff + chunk]);
            }
            done += chunk;
        }
        n
    }

    /// Writes `data` at `off`, extending the file. Must run inside a
    /// transaction; callers chunk to respect the log capacity.
    fn writei(&mut self, inum: Inum, off: usize, data: &[u8]) -> Result<(), FsError> {
        let mut done = 0;
        while done < data.len() {
            let fbn = (off + done) / BSIZE;
            let boff = (off + done) % BSIZE;
            let chunk = (BSIZE - boff).min(data.len() - done);
            let bno = self.bmap(inum, fbn, true)?;
            let mut buf = self.bread(bno);
            buf[boff..boff + chunk].copy_from_slice(&data[done..done + chunk]);
            self.bwrite(bno, &buf);
            done += chunk;
        }
        let mut d = self.read_inode(inum);
        if (off + data.len()) as u32 > d.size {
            d.size = (off + data.len()) as u32;
            self.write_inode(inum, &d);
        }
        Ok(())
    }

    // ----- directories -----

    fn dir_lookup(&mut self, dir: Inum, name: &str) -> Option<Inum> {
        let d = self.read_inode(dir);
        let mut off = 0;
        while off < d.size as usize {
            let mut slot = [0u8; DIRENT_SIZE];
            self.readi(dir, off, &mut slot);
            let e = Dirent::decode(&slot);
            if e.inum != 0 && e.name == name {
                return Some(e.inum);
            }
            off += DIRENT_SIZE;
        }
        None
    }

    fn dir_link(&mut self, dir: Inum, name: &str, inum: Inum) -> Result<(), FsError> {
        if name.len() > DIRSIZ {
            return Err(FsError::NameTooLong);
        }
        let d = self.read_inode(dir);
        // Reuse a free slot if any.
        let mut off = 0;
        while off < d.size as usize {
            let mut slot = [0u8; DIRENT_SIZE];
            self.readi(dir, off, &mut slot);
            if Dirent::decode(&slot).inum == 0 {
                break;
            }
            off += DIRENT_SIZE;
        }
        let e = Dirent {
            inum,
            name: name.to_string(),
        };
        self.writei(dir, off, &e.encode())
    }

    fn path_parts(path: &str) -> Vec<&str> {
        path.split('/').filter(|p| !p.is_empty()).collect()
    }

    /// Resolves `path` to an inode number.
    pub fn namei(&mut self, path: &str) -> Result<Inum, FsError> {
        let mut at = ROOT_INUM;
        for part in Self::path_parts(path) {
            if self.read_inode(at).typ != InodeType::Dir {
                return Err(FsError::NotADir);
            }
            at = self.dir_lookup(at, part).ok_or(FsError::NotFound)?;
        }
        Ok(at)
    }

    fn namei_parent<'a>(&mut self, path: &'a str) -> Result<(Inum, &'a str), FsError> {
        let parts = Self::path_parts(path);
        let Some((&last, dirs)) = parts.split_last() else {
            return Err(FsError::Exists); // "/" itself.
        };
        let mut at = ROOT_INUM;
        for part in dirs {
            if self.read_inode(at).typ != InodeType::Dir {
                return Err(FsError::NotADir);
            }
            at = self.dir_lookup(at, part).ok_or(FsError::NotFound)?;
        }
        Ok((at, last))
    }

    // ----- public operations (each is one transaction) -----

    /// Creates a regular file, returning its inode number.
    pub fn create(&mut self, path: &str) -> Result<Inum, FsError> {
        self.create_typed(path, InodeType::File)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<Inum, FsError> {
        self.create_typed(path, InodeType::Dir)
    }

    fn create_typed(&mut self, path: &str, typ: InodeType) -> Result<Inum, FsError> {
        self.log.begin_op();
        let r = (|| {
            let (dir, name) = self.namei_parent(path)?;
            if self.dir_lookup(dir, name).is_some() {
                return Err(FsError::Exists);
            }
            let inum = self.ialloc(typ)?;
            self.dir_link(dir, name, inum)?;
            Ok(inum)
        })();
        self.log.end_op(&mut self.dev);
        r
    }

    /// Opens an existing file.
    pub fn open(&mut self, path: &str) -> Result<Inum, FsError> {
        let inum = self.namei(path)?;
        if self.read_inode(inum).typ == InodeType::Dir {
            return Err(FsError::IsADir);
        }
        Ok(inum)
    }

    /// The size of a file in bytes.
    pub fn size_of(&mut self, inum: Inum) -> usize {
        self.read_inode(inum).size as usize
    }

    /// Reads at `off`; returns bytes read.
    pub fn read_at(&mut self, inum: Inum, off: usize, buf: &mut [u8]) -> usize {
        self.readi(inum, off, buf)
    }

    /// Writes at `off` (extending the file), chunking into transactions
    /// that respect the log capacity.
    pub fn write_at(&mut self, inum: Inum, off: usize, data: &[u8]) -> Result<(), FsError> {
        // Budget: ≤ 8 data blocks per transaction leaves room for the
        // inode, bitmap and indirect blocks.
        const CHUNK: usize = 8 * BSIZE;
        let mut done = 0;
        while done < data.len() || data.is_empty() {
            let n = CHUNK.min(data.len() - done);
            self.log.begin_op();
            let r = self.writei(inum, off + done, &data[done..done + n]);
            self.log.end_op(&mut self.dev);
            r?;
            done += n;
            if data.is_empty() {
                break;
            }
        }
        Ok(())
    }

    /// Creates a hard link `new` to the existing file `old`.
    pub fn link(&mut self, old: &str, new: &str) -> Result<(), FsError> {
        self.log.begin_op();
        let r = (|| {
            let inum = self.namei(old)?;
            let mut d = self.read_inode(inum);
            if d.typ == InodeType::Dir {
                return Err(FsError::IsADir);
            }
            let (dir, name) = self.namei_parent(new)?;
            if self.dir_lookup(dir, name).is_some() {
                return Err(FsError::Exists);
            }
            self.dir_link(dir, name, inum)?;
            d.nlink += 1;
            self.write_inode(inum, &d);
            Ok(())
        })();
        self.log.end_op(&mut self.dev);
        r
    }

    /// Removes a file (or an empty directory).
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        self.log.begin_op();
        let r = (|| {
            let (dir, name) = self.namei_parent(path)?;
            let inum = self.dir_lookup(dir, name).ok_or(FsError::NotFound)?;
            let mut d = self.read_inode(inum);
            if d.typ == InodeType::Dir && self.dir_entries(inum) > 0 {
                return Err(FsError::DirNotEmpty);
            }
            if d.nlink > 1 {
                // Other links remain: drop the entry, keep the data.
                d.nlink -= 1;
                self.write_inode(inum, &d);
                let dd = self.read_inode(dir);
                let mut off = 0;
                while off < dd.size as usize {
                    let mut slot = [0u8; DIRENT_SIZE];
                    self.readi(dir, off, &mut slot);
                    let e = Dirent::decode(&slot);
                    if e.inum == inum && e.name == name {
                        self.writei(dir, off, &[0u8; DIRENT_SIZE])?;
                        break;
                    }
                    off += DIRENT_SIZE;
                }
                return Ok(());
            }
            // Free data blocks.
            for a in d.addrs.iter().take(NDIRECT) {
                if *a != 0 {
                    self.bfree(*a);
                }
            }
            if d.addrs[NDIRECT] != 0 {
                self.free_indirect(d.addrs[NDIRECT]);
            }
            if d.addrs[NDIRECT + 1] != 0 {
                let dbl = self.bread(d.addrs[NDIRECT + 1]);
                for slot in 0..NINDIRECT {
                    let mid = u32::from_le_bytes(dbl[slot * 4..slot * 4 + 4].try_into().unwrap());
                    if mid != 0 {
                        self.free_indirect(mid);
                    }
                }
                self.bfree(d.addrs[NDIRECT + 1]);
            }
            self.write_inode(inum, &Dinode::empty());
            // Clear the directory entry.
            let dd = self.read_inode(dir);
            let mut off = 0;
            while off < dd.size as usize {
                let mut slot = [0u8; DIRENT_SIZE];
                self.readi(dir, off, &mut slot);
                let e = Dirent::decode(&slot);
                if e.inum == inum && e.name == name {
                    self.writei(dir, off, &[0u8; DIRENT_SIZE])?;
                    break;
                }
                off += DIRENT_SIZE;
            }
            Ok(())
        })();
        self.log.end_op(&mut self.dev);
        r
    }

    /// Frees an indirect block and everything it references.
    fn free_indirect(&mut self, ib: u32) {
        let ind = self.bread(ib);
        for slot in 0..NINDIRECT {
            let bno = u32::from_le_bytes(ind[slot * 4..slot * 4 + 4].try_into().unwrap());
            if bno != 0 {
                self.bfree(bno);
            }
        }
        self.bfree(ib);
    }

    fn dir_entries(&mut self, dir: Inum) -> usize {
        let d = self.read_inode(dir);
        let mut n = 0;
        let mut off = 0;
        while off < d.size as usize {
            let mut slot = [0u8; DIRENT_SIZE];
            self.readi(dir, off, &mut slot);
            if Dirent::decode(&slot).inum != 0 {
                n += 1;
            }
            off += DIRENT_SIZE;
        }
        n
    }

    /// Lists the names in a directory.
    pub fn list_dir(&mut self, path: &str) -> Result<Vec<String>, FsError> {
        let dir = self.namei(path)?;
        let d = self.read_inode(dir);
        if d.typ != InodeType::Dir {
            return Err(FsError::NotADir);
        }
        let mut out = Vec::new();
        let mut off = 0;
        while off < d.size as usize {
            let mut slot = [0u8; DIRENT_SIZE];
            self.readi(dir, off, &mut slot);
            let e = Dirent::decode(&slot);
            if e.inum != 0 {
                out.push(e.name);
            }
            off += DIRENT_SIZE;
        }
        Ok(out)
    }
}
