//! On-disk inodes.

use crate::blockdev::BSIZE;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// Block numbers per indirect block.
pub const NINDIRECT: usize = BSIZE / 4;

/// Maximum file size in blocks (direct + single + double indirect — the
/// double-indirect extension xv6fs needs to hold a multi-megabyte SQLite
/// database file).
pub const MAXFILE: usize = NDIRECT + NINDIRECT + NINDIRECT * NINDIRECT;

/// Bytes per on-disk inode (padded).
pub const INODE_SIZE: usize = 64;

/// Inodes per block.
pub const IPB: usize = BSIZE / INODE_SIZE;

/// Inode type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeType {
    /// Unallocated.
    Free,
    /// Directory.
    Dir,
    /// Regular file.
    File,
}

impl InodeType {
    fn to_u16(self) -> u16 {
        match self {
            InodeType::Free => 0,
            InodeType::Dir => 1,
            InodeType::File => 2,
        }
    }

    fn from_u16(v: u16) -> InodeType {
        match v {
            1 => InodeType::Dir,
            2 => InodeType::File,
            _ => InodeType::Free,
        }
    }
}

/// One on-disk inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dinode {
    /// Type tag.
    pub typ: InodeType,
    /// Hard-link count.
    pub nlink: u16,
    /// File size in bytes.
    pub size: u32,
    /// Direct blocks, one single-indirect, one double-indirect.
    pub addrs: [u32; NDIRECT + 2],
}

impl Dinode {
    /// A free inode.
    pub fn empty() -> Self {
        Dinode {
            typ: InodeType::Free,
            nlink: 0,
            size: 0,
            addrs: [0; NDIRECT + 2],
        }
    }

    /// Serializes into its 64-byte slot.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0..2].copy_from_slice(&self.typ.to_u16().to_le_bytes());
        b[2..4].copy_from_slice(&self.nlink.to_le_bytes());
        b[4..8].copy_from_slice(&self.size.to_le_bytes());
        for (i, a) in self.addrs.iter().enumerate() {
            b[8 + i * 4..12 + i * 4].copy_from_slice(&a.to_le_bytes());
        }
        b
    }

    /// Deserializes from a 64-byte slot.
    pub fn decode(b: &[u8]) -> Self {
        let mut addrs = [0u32; NDIRECT + 2];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = u32::from_le_bytes(b[8 + i * 4..12 + i * 4].try_into().unwrap());
        }
        Dinode {
            typ: InodeType::from_u16(u16::from_le_bytes(b[0..2].try_into().unwrap())),
            nlink: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            size: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            addrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dinode::empty();
        d.typ = InodeType::File;
        d.nlink = 3;
        d.size = 123456;
        d.addrs[0] = 77;
        d.addrs[NDIRECT + 1] = 99;
        assert_eq!(Dinode::decode(&d.encode()), d);
    }

    #[test]
    fn geometry() {
        assert_eq!(IPB, 16);
        assert_eq!(NINDIRECT, 256);
        assert_eq!(MAXFILE, 268 + 256 * 256);
    }
}
