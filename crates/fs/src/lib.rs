//! An xv6fs-like journaling file system over a RAM block device.
//!
//! The paper's SQLite3 evaluation (§6.5) runs the database over a port of
//! **xv6fs** — "a formally verified crash-safe file system" — which talks
//! to a RAM-disk block-device server over IPC. This crate reproduces that
//! substrate:
//!
//! * [`blockdev`] — the block-device abstraction and the RAM disk (plus a
//!   crash-injecting wrapper for recovery tests);
//! * [`log`] — xv6's write-ahead log: transactions are staged in a log
//!   region and committed atomically by a single header write, then
//!   installed to their home locations; mounting replays any committed
//!   log, so a crash at *any* block-write boundary preserves consistency;
//! * [`inode`], [`dir`] — on-disk inodes (12 direct + 1 indirect block)
//!   and directories;
//! * [`fs`] — the `FileSystem` facade: `mkfs`, `mount`, create/open/
//!   read/write/unlink/mkdir with full path resolution.
//!
//! Like the paper's port, the file system is single-threaded and the
//! multi-thread experiments serialize on "one big lock" (§6.5) — modeled
//! in the scenarios with [`sb_sim::SimLock`], which is exactly what caps
//! scalability in Figures 9–11.

pub mod api;
pub mod blockdev;
pub mod dir;
pub mod fs;
pub mod inode;
pub mod log;

pub use crate::{
    api::FileApi,
    blockdev::{BlockDevice, CrashDisk, DevError, FaultyDisk, RamDisk, BSIZE},
    fs::{FileSystem, FsError, Inum},
    log::RecoverOutcome,
};
