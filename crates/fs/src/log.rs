//! The write-ahead log (xv6-style), hardened against torn headers.
//!
//! Every mutating file-system operation is bracketed by
//! [`Log::begin_op`]/[`Log::end_op`]. Writes are staged (and absorbed) in
//! memory; at the outermost `end_op` the staged blocks are written to the
//! on-disk log region, the header block is written **last** (the atomic
//! commit point), the blocks are installed to their home locations, and
//! the header is cleared. [`Log::recover`] replays a committed-but-not-
//! installed log at mount time, which is what makes a crash at any block
//! boundary safe.
//!
//! Two fault-plane hardenings over plain xv6:
//!
//! * the header carries an FNV-1a checksum over the block list *and the
//!   logged contents*, so a **torn** header or log-slot write (power lost
//!   mid-block, not mid-sequence) is detected at recovery and discarded
//!   instead of replaying garbage block numbers — without the checksum a
//!   torn header whose count field landed would replay uninitialized log
//!   slots over live data;
//! * commit-path device writes go through [`BlockDevice::try_write_block`]
//!   with a bounded retry, so a transient device error is absorbed by the
//!   log instead of panicking the file system.

use std::collections::HashMap;

use crate::blockdev::{BlockDevice, BSIZE};

/// Maximum blocks per transaction (xv6's LOGSIZE guard).
pub const LOG_CAPACITY: usize = 30;

/// Transient-error retry bound on commit-path writes.
const WRITE_RETRIES: usize = 8;

/// What mount-time recovery found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverOutcome {
    /// Blocks of a committed log installed to their home locations.
    pub replayed: usize,
    /// A torn (checksum-mismatched) header was found and discarded: the
    /// crash interrupted the commit point itself, so the transaction is
    /// correctly treated as never-committed.
    pub torn_discarded: bool,
}

/// The in-memory log state.
#[derive(Debug)]
pub struct Log {
    /// First block of the on-disk log region (the header).
    start: u32,
    /// Blocks in the region (header + data slots).
    size: u32,
    /// Transaction nesting depth.
    depth: usize,
    /// Staged home-block numbers, in first-write order.
    pending: Vec<u32>,
    /// Staged contents, by home block number (absorption).
    staged: HashMap<u32, [u8; BSIZE]>,
    /// Committed transactions.
    pub commits: u64,
    /// Writes absorbed into an already-staged block.
    pub absorbed: u64,
}

impl Log {
    /// Creates the log for the region `[start, start + size)`.
    pub fn new(start: u32, size: u32) -> Self {
        assert!(size as usize > LOG_CAPACITY, "log region too small");
        Log {
            start,
            size,
            depth: 0,
            pending: Vec::new(),
            staged: HashMap::new(),
            commits: 0,
            absorbed: 0,
        }
    }

    /// Begins (or nests into) a transaction.
    pub fn begin_op(&mut self) {
        self.depth += 1;
    }

    /// Stages a write of `data` to home block `bno`.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or if the transaction exceeds
    /// [`LOG_CAPACITY`].
    pub fn write(&mut self, bno: u32, data: &[u8; BSIZE]) {
        assert!(self.depth > 0, "log write outside a transaction");
        if self.staged.insert(bno, *data).is_none() {
            self.pending.push(bno);
            assert!(
                self.pending.len() <= LOG_CAPACITY,
                "transaction exceeds log capacity"
            );
        } else {
            self.absorbed += 1;
        }
    }

    /// Reads `bno` through the log (staged content wins).
    pub fn read(&mut self, dev: &mut dyn BlockDevice, bno: u32, buf: &mut [u8; BSIZE]) {
        if let Some(data) = self.staged.get(&bno) {
            *buf = *data;
        } else {
            dev.read_block(bno, buf);
        }
    }

    /// Ends a transaction; the outermost end commits.
    pub fn end_op(&mut self, dev: &mut dyn BlockDevice) {
        assert!(self.depth > 0);
        self.depth -= 1;
        if self.depth == 0 {
            self.commit(dev);
        }
    }

    fn commit(&mut self, dev: &mut dyn BlockDevice) {
        if self.pending.is_empty() {
            return;
        }
        // 1. Write staged blocks into the log region.
        for (i, &bno) in self.pending.iter().enumerate() {
            assert!((i as u32) < self.size - 1);
            write_retry(dev, self.start + 1 + i as u32, &self.staged[&bno]);
        }
        // 2. Write the header — the single atomic commit point.
        write_retry(dev, self.start, &self.encode_header());
        // 3. Install to home locations.
        for &bno in &self.pending {
            write_retry(dev, bno, &self.staged[&bno]);
        }
        // 4. Clear the header.
        let empty = [0u8; BSIZE];
        write_retry(dev, self.start, &empty);
        self.pending.clear();
        self.staged.clear();
        self.commits += 1;
    }

    fn encode_header(&self) -> [u8; BSIZE] {
        let mut h = [0u8; BSIZE];
        h[..4].copy_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for (i, &bno) in self.pending.iter().enumerate() {
            h[4 + i * 4..8 + i * 4].copy_from_slice(&bno.to_le_bytes());
        }
        let sum = header_checksum(&h, self.pending.iter().map(|bno| &self.staged[bno]));
        h[BSIZE - 8..].copy_from_slice(&sum.to_le_bytes());
        h
    }

    /// Replays a committed log found on `dev` (mount-time recovery).
    /// Returns the number of blocks installed; see [`Log::recover_scan`]
    /// for the torn-header outcome.
    pub fn recover(start: u32, dev: &mut dyn BlockDevice) -> usize {
        Self::recover_scan(start, dev).replayed
    }

    /// Mount-time recovery with a full outcome: a committed log is
    /// installed to its home locations; a **torn** header (or torn log
    /// slot) fails the checksum and is discarded — the interrupted
    /// transaction never committed, so the pre-transaction state is the
    /// correct surviving prefix.
    pub fn recover_scan(start: u32, dev: &mut dyn BlockDevice) -> RecoverOutcome {
        let mut head = [0u8; BSIZE];
        dev.read_block(start, &mut head);
        let n = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
        let empty = [0u8; BSIZE];
        if n == 0 {
            return RecoverOutcome::default();
        }
        if n > LOG_CAPACITY {
            // Count field itself is garbage: a torn header.
            write_retry(dev, start, &empty);
            return RecoverOutcome {
                replayed: 0,
                torn_discarded: true,
            };
        }
        let mut slots = Vec::with_capacity(n);
        for i in 0..n {
            let mut data = [0u8; BSIZE];
            dev.read_block(start + 1 + i as u32, &mut data);
            slots.push(data);
        }
        let stored = u64::from_le_bytes(head[BSIZE - 8..].try_into().unwrap());
        if header_checksum(&head, slots.iter()) != stored {
            write_retry(dev, start, &empty);
            return RecoverOutcome {
                replayed: 0,
                torn_discarded: true,
            };
        }
        for (i, data) in slots.iter().enumerate() {
            let bno = u32::from_le_bytes(head[4 + i * 4..8 + i * 4].try_into().unwrap());
            write_retry(dev, bno, data);
        }
        write_retry(dev, start, &empty);
        RecoverOutcome {
            replayed: n,
            torn_discarded: false,
        }
    }

    /// Blocks staged in the current transaction.
    pub fn staged_len(&self) -> usize {
        self.pending.len()
    }
}

/// FNV-1a over the header's count + block list and the logged contents.
/// The checksum field itself (last 8 bytes of the header) is excluded.
fn header_checksum<'a>(head: &[u8; BSIZE], slots: impl Iterator<Item = &'a [u8; BSIZE]>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    let n = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    eat(&head[..4 + 4 * n.min(LOG_CAPACITY)]);
    for s in slots {
        eat(&s[..]);
    }
    h
}

/// Writes with a bounded retry over transient device errors. If the
/// device still refuses after [`WRITE_RETRIES`] attempts the write is
/// abandoned — indistinguishable from power loss, and exactly what the
/// recovery path is for.
fn write_retry(dev: &mut dyn BlockDevice, bno: u32, data: &[u8; BSIZE]) {
    for _ in 0..WRITE_RETRIES {
        if dev.try_write_block(bno, data).is_ok() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::blockdev::{CrashDisk, RamDisk};

    use super::*;

    const LOG_START: u32 = 2;
    const LOG_SIZE: u32 = 32;

    fn block(v: u8) -> [u8; BSIZE] {
        let mut b = [0u8; BSIZE];
        b[0] = v;
        b
    }

    #[test]
    fn commit_installs_to_home() {
        let mut dev = RamDisk::new(64);
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.begin_op();
        log.write(40, &block(7));
        log.write(41, &block(8));
        log.end_op(&mut dev);
        let mut buf = [0u8; BSIZE];
        dev.read_block(40, &mut buf);
        assert_eq!(buf[0], 7);
        dev.read_block(41, &mut buf);
        assert_eq!(buf[0], 8);
        assert_eq!(log.commits, 1);
    }

    #[test]
    fn reads_see_staged_writes() {
        let mut dev = RamDisk::new(64);
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.begin_op();
        log.write(40, &block(9));
        let mut buf = [0u8; BSIZE];
        log.read(&mut dev, 40, &mut buf);
        assert_eq!(buf[0], 9, "read-your-writes inside a transaction");
        log.end_op(&mut dev);
    }

    #[test]
    fn absorption_coalesces_rewrites() {
        let mut dev = RamDisk::new(64);
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.begin_op();
        log.write(40, &block(1));
        log.write(40, &block(2));
        log.end_op(&mut dev);
        assert_eq!(log.absorbed, 1);
        let mut buf = [0u8; BSIZE];
        dev.read_block(40, &mut buf);
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn nested_ops_commit_once_at_outermost() {
        let mut dev = RamDisk::new(64);
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.begin_op();
        log.write(40, &block(1));
        log.begin_op();
        log.write(41, &block(2));
        log.end_op(&mut dev);
        assert_eq!(log.commits, 0, "inner end must not commit");
        log.end_op(&mut dev);
        assert_eq!(log.commits, 1);
    }

    /// The crash-safety sweep: crash after every possible number of device
    /// writes during a commit; after recovery, the home blocks hold either
    /// *all* old values or *all* new values.
    #[test]
    fn crash_anywhere_is_atomic() {
        // A committed transaction writes: 2 log blocks + header + 2 home +
        // header clear = 6 device writes.
        for fuse in 0..=6u64 {
            let mut base = RamDisk::new(64);
            // Old values.
            base.write_block(40, &block(0xa0));
            base.write_block(41, &block(0xa1));
            let mut dev = CrashDisk::new(base, fuse);
            let mut log = Log::new(LOG_START, LOG_SIZE);
            log.begin_op();
            log.write(40, &block(0xb0));
            log.write(41, &block(0xb1));
            log.end_op(&mut dev);
            // Power returns: recover on the surviving state.
            let mut disk = dev.into_survivor();
            Log::recover(LOG_START, &mut disk);
            let mut b40 = [0u8; BSIZE];
            let mut b41 = [0u8; BSIZE];
            disk.read_block(40, &mut b40);
            disk.read_block(41, &mut b41);
            let state = (b40[0], b41[0]);
            assert!(
                state == (0xa0, 0xa1) || state == (0xb0, 0xb1),
                "crash at write #{fuse} left a torn state {state:?}"
            );
        }
    }

    #[test]
    fn recover_is_idempotent() {
        let mut dev = RamDisk::new(64);
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.begin_op();
        log.write(40, &block(5));
        log.end_op(&mut dev);
        assert_eq!(Log::recover(LOG_START, &mut dev), 0);
        assert_eq!(Log::recover(LOG_START, &mut dev), 0);
    }

    #[test]
    #[should_panic(expected = "outside a transaction")]
    fn write_outside_op_panics() {
        let mut log = Log::new(LOG_START, LOG_SIZE);
        log.write(40, &block(1));
    }
}
