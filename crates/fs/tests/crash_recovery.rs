//! Crash-recovery property tests: power cut at an arbitrary point during
//! commit, remount, and the surviving state is exactly a committed
//! prefix of the transaction history.
//!
//! The workload appends fixed-size records to one file, one transaction
//! per record, record `g` filled with the byte `g`. Whatever the crash
//! point — mid log write, mid header write (torn), mid install, mid
//! header clear — the remounted file must hold records `1..=k` intact
//! for some `k` no larger than what was attempted: transactions apply
//! atomically, in order, and never splice.

use proptest::prelude::*;
use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};
use sb_fs::{CrashDisk, FaultyDisk, FileSystem, RamDisk};

/// Bytes per appended record.
const REC: usize = 64;

fn rec(g: u8) -> [u8; REC] {
    [g; REC]
}

/// Formats a disk with `/f` created (in calm weather) and returns the
/// raw image the crashy phase starts from.
fn base_image() -> RamDisk {
    let mut fs = FileSystem::mkfs(RamDisk::new(256), 16);
    fs.create("/f").unwrap();
    fs.into_device()
}

/// Remounts `disk` and asserts the committed-prefix property; returns
/// the number of surviving records.
fn surviving_prefix(disk: RamDisk, attempted: u8) -> u8 {
    let mut fs = FileSystem::mount(disk).expect("remount after crash");
    let f = fs
        .open("/f")
        .expect("the file was created before the crash");
    let size = fs.size_of(f);
    assert_eq!(size % REC, 0, "append atomicity broken: size {size}");
    let k = size / REC;
    assert!(k <= attempted as usize, "phantom records appeared");
    let mut buf = vec![0u8; size];
    fs.read_at(f, 0, &mut buf);
    for (i, chunk) in buf.chunks(REC).enumerate() {
        assert!(
            chunk.iter().all(|&b| b == (i + 1) as u8),
            "record {i} corrupted after recovery"
        );
    }
    k as u8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Power lost after an arbitrary number of device writes: the
    /// remount recovers exactly a committed prefix.
    #[test]
    fn power_cut_leaves_committed_prefix(fuse in 0u64..160, ops in 1u8..10) {
        let mut fs = FileSystem::mount(CrashDisk::new(base_image(), fuse)).unwrap();
        let f = fs.open("/f").unwrap();
        for g in 1..=ops {
            fs.write_at(f, (g as usize - 1) * REC, &rec(g)).unwrap();
        }
        let survivor = fs.into_device().into_survivor();
        let k = surviving_prefix(survivor, ops);
        // A fuse generous enough to cover every write commits everything.
        if fuse >= 160 {
            prop_assert_eq!(k, ops);
        }
    }

    /// The fault-plane disk — transient I/O errors, torn writes, power
    /// loss — under arbitrary seeds: the remount still recovers exactly
    /// a committed prefix, and the fault ledger closes with zero leaks
    /// (the replay/discard at mount is the batched recovery for torn
    /// and power-loss instances; bounded retries recover the rest).
    #[test]
    fn faulty_disk_recovers_committed_prefix(seed in 1u64..10_000, ops in 1u8..10) {
        let mix = FaultMix::storage().with(FaultPoint::PowerLoss, 120);
        let faults = FaultHandle::new(seed, mix);
        let mut fs =
            FileSystem::mount(FaultyDisk::new(base_image(), faults.clone())).unwrap();
        let f = fs.open("/f").unwrap();
        for g in 1..=ops {
            fs.write_at(f, (g as usize - 1) * REC, &rec(g)).unwrap();
        }
        faults.disarm();
        let survivor = fs.into_device().into_survivor();
        surviving_prefix(survivor, ops);
        faults.recover_all(FaultPoint::TornWrite);
        faults.recover_all(FaultPoint::PowerLoss);
        let r = faults.report();
        prop_assert_eq!(r.leaked(), 0, "{}", r);
    }
}
