//! File-system behaviour, model-based property tests, and crash recovery.

use std::collections::HashMap;

use proptest::prelude::*;
use sb_fs::{
    blockdev::{CrashDisk, RamDisk},
    fs::ROOT_INUM,
    FileSystem, FsError, BSIZE,
};

fn fresh() -> FileSystem<RamDisk> {
    FileSystem::mkfs(RamDisk::new(2048), 128)
}

#[test]
fn create_write_read_roundtrip() {
    let mut fs = fresh();
    let f = fs.create("/db.sqlite").unwrap();
    let data: Vec<u8> = (0..5000).map(|i| (i % 253) as u8).collect();
    fs.write_at(f, 0, &data).unwrap();
    assert_eq!(fs.size_of(f), data.len());
    let mut out = vec![0u8; data.len()];
    assert_eq!(fs.read_at(f, 0, &mut out), data.len());
    assert_eq!(out, data);
}

#[test]
fn read_beyond_eof_is_short() {
    let mut fs = fresh();
    let f = fs.create("/x").unwrap();
    fs.write_at(f, 0, b"hello").unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(fs.read_at(f, 0, &mut buf), 5);
    assert_eq!(fs.read_at(f, 5, &mut buf), 0);
    assert_eq!(fs.read_at(f, 100, &mut buf), 0);
}

#[test]
fn overwrite_in_place() {
    let mut fs = fresh();
    let f = fs.create("/x").unwrap();
    fs.write_at(f, 0, b"aaaaaaaaaa").unwrap();
    fs.write_at(f, 3, b"BBB").unwrap();
    let mut buf = [0u8; 10];
    fs.read_at(f, 0, &mut buf);
    assert_eq!(&buf, b"aaaBBBaaaa");
    assert_eq!(fs.size_of(f), 10);
}

#[test]
fn sparse_write_reads_zero_holes() {
    let mut fs = fresh();
    let f = fs.create("/sparse").unwrap();
    fs.write_at(f, 3 * BSIZE, b"tail").unwrap();
    let mut buf = vec![0xffu8; BSIZE];
    fs.read_at(f, 0, &mut buf);
    assert!(buf.iter().all(|&b| b == 0), "holes must read as zeros");
}

#[test]
fn large_file_uses_indirect_blocks() {
    let mut fs = FileSystem::mkfs(RamDisk::new(4096), 64);
    let f = fs.create("/big").unwrap();
    // 40 blocks: well past the 12 direct pointers.
    let data: Vec<u8> = (0..40 * BSIZE).map(|i| (i % 241) as u8).collect();
    fs.write_at(f, 0, &data).unwrap();
    let mut out = vec![0u8; data.len()];
    fs.read_at(f, 0, &mut out);
    assert_eq!(out, data);
}

#[test]
fn file_too_large_is_refused() {
    let mut fs = FileSystem::mkfs(RamDisk::new(8192), 64);
    let f = fs.create("/huge").unwrap();
    let nindirect = BSIZE / 4;
    let max = (12 + nindirect + nindirect * nindirect) * BSIZE;
    assert_eq!(fs.write_at(f, max, b"x"), Err(FsError::FileTooLarge));
    // And a write through the double-indirect region works.
    let off = (12 + nindirect + 5) * BSIZE;
    fs.write_at(f, off, b"deep").unwrap();
    let mut buf = [0u8; 4];
    fs.read_at(f, off, &mut buf);
    assert_eq!(&buf, b"deep");
}

#[test]
fn directories_and_paths() {
    let mut fs = fresh();
    fs.mkdir("/data").unwrap();
    fs.mkdir("/data/journal").unwrap();
    let f = fs.create("/data/journal/wal").unwrap();
    fs.write_at(f, 0, b"j").unwrap();
    assert_eq!(fs.namei("/data/journal/wal").unwrap(), f);
    assert_eq!(fs.list_dir("/data").unwrap(), vec!["journal".to_string()]);
    assert_eq!(fs.namei("/nope"), Err(FsError::NotFound));
    assert_eq!(fs.namei("/data/journal/wal/x"), Err(FsError::NotADir));
}

#[test]
fn create_duplicate_fails() {
    let mut fs = fresh();
    fs.create("/x").unwrap();
    assert_eq!(fs.create("/x"), Err(FsError::Exists));
}

#[test]
fn unlink_frees_space_for_reuse() {
    let mut fs = FileSystem::mkfs(RamDisk::new(512), 32);
    // Fill a good chunk, delete, refill — must not run out of space.
    for round in 0..5 {
        let name = "/blob".to_string();
        let f = fs.create(&name).unwrap();
        let data = vec![round as u8; 100 * 1024];
        fs.write_at(f, 0, &data).unwrap();
        fs.unlink(&name).unwrap();
    }
    // And unlinked names are gone.
    assert_eq!(fs.open("/blob"), Err(FsError::NotFound));
}

#[test]
fn unlink_nonempty_dir_refused() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    fs.create("/d/f").unwrap();
    assert_eq!(fs.unlink("/d"), Err(FsError::DirNotEmpty));
    fs.unlink("/d/f").unwrap();
    fs.unlink("/d").unwrap();
    assert_eq!(fs.namei("/d"), Err(FsError::NotFound));
}

#[test]
fn remount_preserves_contents() {
    let mut fs = fresh();
    let f = fs.create("/persist").unwrap();
    fs.write_at(f, 0, b"still here").unwrap();
    let disk = fs.into_device();
    let mut fs2 = FileSystem::mount(disk).unwrap();
    let f2 = fs2.open("/persist").unwrap();
    let mut buf = [0u8; 10];
    fs2.read_at(f2, 0, &mut buf);
    assert_eq!(&buf, b"still here");
}

#[test]
fn mount_garbage_fails() {
    assert!(matches!(
        FileSystem::mount(RamDisk::new(64)),
        Err(FsError::BadSuperblock)
    ));
}

#[test]
fn root_inode_is_a_directory() {
    let mut fs = fresh();
    assert_eq!(fs.read_inode(ROOT_INUM).typ, sb_fs::inode::InodeType::Dir);
}

/// Crash-recovery sweep at the file-system level: set up a base image,
/// crash after each possible number of device writes during an update of
/// two files, recover, and check that every file is either fully old or
/// fully new — and the file system is still usable.
#[test]
fn crash_during_update_preserves_consistency() {
    // Count writes needed by the whole update when it succeeds.
    let probe = {
        let mut fs = FileSystem::mkfs(RamDisk::new(1024), 32);
        let a = fs.create("/a").unwrap();
        fs.write_at(a, 0, &[0xAA; 2 * BSIZE]).unwrap();
        let before = fs.device().writes;
        fs.write_at(a, 0, &[0xBB; 2 * BSIZE]).unwrap();
        fs.device().writes - before
    };
    for fuse in 0..=probe {
        // Base image.
        let mut fs = FileSystem::mkfs(RamDisk::new(1024), 32);
        let a = fs.create("/a").unwrap();
        fs.write_at(a, 0, &[0xAA; 2 * BSIZE]).unwrap();
        let base = fs.into_device();
        // Crashy update.
        let mut fs = FileSystem::mount(CrashDisk::new(base, fuse)).unwrap();
        let a = fs.open("/a").unwrap();
        let _ = fs.write_at(a, 0, &[0xBB; 2 * BSIZE]);
        let survivor = fs.into_device().into_survivor();
        // Recover and check.
        let mut fs = FileSystem::mount(survivor).unwrap();
        let a = fs.open("/a").unwrap();
        let mut buf = vec![0u8; 2 * BSIZE];
        fs.read_at(a, 0, &mut buf);
        let first = buf[0];
        assert!(
            first == 0xAA || first == 0xBB,
            "crash at write #{fuse}: torn first byte {first:#x}"
        );
        // write_at chunks transactions at 8 blocks; a 2-block write is one
        // transaction and must be atomic.
        assert!(
            buf.iter().all(|&b| b == first),
            "crash at write #{fuse} tore the file"
        );
        // The file system remains usable after recovery.
        let f = fs.create("/post-crash").unwrap();
        fs.write_at(f, 0, b"alive").unwrap();
    }
}

#[test]
fn hard_links_share_data_until_last_unlink() {
    let mut fs = fresh();
    let f = fs.create("/orig").unwrap();
    fs.write_at(f, 0, b"shared-bytes").unwrap();
    fs.link("/orig", "/alias").unwrap();
    // Both names reach the same inode and data.
    assert_eq!(fs.namei("/orig").unwrap(), fs.namei("/alias").unwrap());
    // Unlink one name: the data survives through the other.
    fs.unlink("/orig").unwrap();
    let a = fs.open("/alias").unwrap();
    let mut buf = [0u8; 12];
    fs.read_at(a, 0, &mut buf);
    assert_eq!(&buf, b"shared-bytes");
    // Unlink the last name: the inode is freed and reusable.
    fs.unlink("/alias").unwrap();
    assert_eq!(fs.open("/alias"), Err(FsError::NotFound));
    let g = fs.create("/fresh").unwrap();
    fs.write_at(g, 0, b"new").unwrap();
}

#[test]
fn link_errors() {
    let mut fs = fresh();
    fs.create("/a").unwrap();
    fs.mkdir("/d").unwrap();
    assert_eq!(fs.link("/missing", "/b"), Err(FsError::NotFound));
    assert_eq!(fs.link("/d", "/b"), Err(FsError::IsADir));
    assert_eq!(fs.link("/a", "/a"), Err(FsError::Exists));
}

// ----- model-based property test -----

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write {
        file: u8,
        off: u16,
        len: u16,
        val: u8,
    },
    Unlink(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Create),
        (0u8..6, 0u16..5000, 1u16..3000, any::<u8>()).prop_map(|(file, off, len, val)| Op::Write {
            file,
            off,
            len,
            val
        }),
        (0u8..6).prop_map(Op::Unlink),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The file system agrees with an in-memory model under arbitrary
    /// create/write/unlink sequences.
    #[test]
    fn matches_in_memory_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut fs = FileSystem::mkfs(RamDisk::new(4096), 64);
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        let path = |f: u8| format!("/f{f}");
        for op in ops {
            match op {
                Op::Create(f) => {
                    let r = fs.create(&path(f));
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(f) {
                        prop_assert!(r.is_ok());
                        e.insert(Vec::new());
                    } else {
                        prop_assert_eq!(r, Err(FsError::Exists));
                    }
                }
                Op::Write { file, off, len, val } => {
                    let data = vec![val; len as usize];
                    match fs.open(&path(file)) {
                        Ok(inum) => {
                            prop_assert!(model.contains_key(&file));
                            fs.write_at(inum, off as usize, &data).unwrap();
                            let m = model.get_mut(&file).unwrap();
                            let end = off as usize + data.len();
                            if m.len() < end {
                                m.resize(end, 0);
                            }
                            m[off as usize..end].copy_from_slice(&data);
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.contains_key(&file));
                        }
                        Err(e) => prop_assert!(false, "open failed: {e}"),
                    }
                }
                Op::Unlink(f) => {
                    let r = fs.unlink(&path(f));
                    if model.remove(&f).is_some() {
                        prop_assert!(r.is_ok());
                    } else {
                        prop_assert_eq!(r, Err(FsError::NotFound));
                    }
                }
            }
        }
        // Final check: every modeled file matches byte for byte.
        for (f, contents) in &model {
            let inum = fs.open(&path(*f)).unwrap();
            prop_assert_eq!(fs.size_of(inum), contents.len());
            let mut out = vec![0u8; contents.len()];
            fs.read_at(inum, 0, &mut out);
            prop_assert_eq!(&out, contents);
        }
    }
}
