//! The serving cell: cache tier + database + file system, mediated by
//! the commit log, with snapshot/restore/replay.
//!
//! A [`GraphCell`] owns the *state* behind the graph: a cache-aside
//! `BTreeMap` (the kv tier), an `sb-db` database, and the `sb-fs` file
//! system it stores pages on. Every operation enters through
//! [`GraphCell::serve`] — the **same** function on the live path and on
//! replay, which is what makes replay byte-identical: there is no
//! second implementation to drift.
//!
//! The file system is wrapped in [`ChargedFs`], a [`FileApi`] proxy
//! that bills each file operation as one real transport call on the fs
//! node — the same layering as the paper's SQLite stack, where the
//! database reaches its file server over IPC. Replay and restore run
//! uncharged: recovery work is host work, not serving traffic.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use sb_db::{Database, DbError, Value};
use sb_fs::{BlockDevice, FaultyDisk, FileApi, FileSystem, FsError, Inum, RamDisk, BSIZE};
use sb_sim::Cycles;
use sb_transport::{Request, Transport};

use crate::commit::{value_bytes, CommitEntry, CommitLog, CommitOp, Snapshot};

/// Blocks in a cell's disk (4 MiB at the xv6 block size).
pub const CELL_DISK_BLOCKS: u32 = 4096;

/// Inodes in a cell's file system (db file + journal + slack).
pub const CELL_NINODES: u32 = 16;

/// Pager cache pages per cell database.
pub const CELL_CACHE_PAGES: usize = 32;

/// The cell's single table.
pub const CELL_TABLE: &str = "records";

/// The cell's database file path (short: the derived `<path>.journal`
/// name must fit xv6's 14-byte directory-entry limit).
pub const CELL_DB_PATH: &str = "/cell";

/// The block device under a cell: pristine RAM, or the fault-injecting
/// wrapper for power-loss drills.
#[derive(Debug)]
pub enum CellDisk {
    /// A plain RAM disk.
    Ram(RamDisk),
    /// A [`FaultyDisk`] wired to a fault plane (chaos runs).
    Faulty(FaultyDisk),
}

impl CellDisk {
    /// A content clone of the persisted medium — for a [`FaultyDisk`],
    /// exactly what a remount after the crash would see.
    pub fn image(&self) -> RamDisk {
        match self {
            CellDisk::Ram(d) => d.clone(),
            CellDisk::Faulty(d) => d.medium().clone(),
        }
    }
}

impl BlockDevice for CellDisk {
    fn nblocks(&self) -> u32 {
        match self {
            CellDisk::Ram(d) => d.nblocks(),
            CellDisk::Faulty(d) => d.nblocks(),
        }
    }

    fn read_block(&mut self, bno: u32, buf: &mut [u8; BSIZE]) {
        match self {
            CellDisk::Ram(d) => d.read_block(bno, buf),
            CellDisk::Faulty(d) => d.read_block(bno, buf),
        }
    }

    fn write_block(&mut self, bno: u32, buf: &[u8; BSIZE]) {
        match self {
            CellDisk::Ram(d) => d.write_block(bno, buf),
            CellDisk::Faulty(d) => d.write_block(bno, buf),
        }
    }
}

/// Per-request routing state shared between the graph transport and the
/// charged FS adapter buried inside the database: which lane the
/// current request runs on, its correlation id, the current simulated
/// time, and whether crossings are billed at all.
#[derive(Debug)]
pub struct HopCtx {
    /// The lane of the in-flight request.
    pub lane: Cell<usize>,
    /// The correlation id of the in-flight request.
    pub corr: Cell<u64>,
    /// The running simulated clock of the in-flight request.
    pub now: Cell<Cycles>,
    /// Whether inner-transport crossings are billed (off during
    /// preload, restore and replay).
    pub charging: Cell<bool>,
}

impl HopCtx {
    /// A fresh context with charging enabled.
    pub fn new() -> Rc<Self> {
        Rc::new(HopCtx {
            lane: Cell::new(0),
            corr: Cell::new(0),
            now: Cell::new(0),
            charging: Cell::new(true),
        })
    }
}

/// A shared handle on one node's inner transport.
pub type SharedTransport = Rc<RefCell<Box<dyn Transport>>>;

/// The fs node's side of the graph: enough shared state to turn a file
/// operation into one billed transport call on the right lane at the
/// right simulated time.
#[derive(Clone)]
pub struct HopLink {
    /// The fs node's transport.
    pub transport: SharedTransport,
    /// The per-request routing state.
    pub ctx: Rc<HopCtx>,
    /// Wire payload bytes per fs crossing.
    pub payload: usize,
}

impl HopLink {
    /// Bills one crossing for a file operation on `key` (an inode
    /// number — the "record" the fs server touches), advancing the
    /// request's clock past the call.
    fn charge(&self, key: u64, write: bool) {
        if !self.ctx.charging.get() {
            return;
        }
        let lane = self.ctx.lane.get();
        let mut t = self.transport.borrow_mut();
        t.wait_until(lane, self.ctx.now.get());
        let req = Request {
            id: self.ctx.corr.get(),
            arrival: self.ctx.now.get(),
            key,
            write,
            payload: self.payload,
            client: None,
            tenant: 0,
        };
        t.call(lane, &req).expect("fs hop crossing failed");
        self.ctx.now.set(t.now(lane));
    }
}

/// A [`FileApi`] proxy that charges each file operation as one IPC
/// crossing into the fs node before performing it host-side — the
/// paper's DB → FS-server layering, behind the graph's fs opcodes.
pub struct ChargedFs {
    /// The real file system.
    pub fs: FileSystem<CellDisk>,
    /// The transport to bill, if any (`None` = in-process, free).
    pub link: Option<HopLink>,
}

impl ChargedFs {
    fn bill(&self, inum: Inum, write: bool) {
        if let Some(link) = &self.link {
            link.charge(inum as u64, write);
        }
    }
}

impl FileApi for ChargedFs {
    fn open(&mut self, path: &str) -> Result<Inum, FsError> {
        if let Some(link) = &self.link {
            link.charge(0, false);
        }
        self.fs.open(path)
    }

    fn create(&mut self, path: &str) -> Result<Inum, FsError> {
        if let Some(link) = &self.link {
            link.charge(0, true);
        }
        self.fs.create(path)
    }

    fn read_at(&mut self, inum: Inum, off: usize, buf: &mut [u8]) -> usize {
        self.bill(inum, false);
        self.fs.read_at(inum, off, buf)
    }

    fn write_at(&mut self, inum: Inum, off: usize, data: &[u8]) -> Result<(), FsError> {
        self.bill(inum, true);
        self.fs.write_at(inum, off, data)
    }

    fn size_of(&mut self, inum: Inum) -> usize {
        self.bill(inum, false);
        self.fs.size_of(inum)
    }
}

/// Cache and traffic counters of one cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Reads served.
    pub reads: u64,
    /// Writes applied.
    pub writes: u64,
    /// Cache-tier hits (reads that never reached the db).
    pub hits: u64,
    /// Cache-tier misses (reads that went to the db).
    pub misses: u64,
    /// Cache entries evicted by capacity.
    pub evictions: u64,
}

/// The stateful core of a serving graph.
pub struct GraphCell {
    db: Option<Database<ChargedFs>>,
    cache: BTreeMap<u64, Vec<u8>>,
    cache_capacity: usize,
    value_len: usize,
    /// The mediation log: every admitted operation, in order.
    pub log: CommitLog,
    /// Cache/traffic counters.
    pub stats: CellStats,
}

impl GraphCell {
    /// Builds a cell on a fresh RAM disk, pre-loading `records` rows.
    pub fn build(
        records: u64,
        value_len: usize,
        cache_capacity: usize,
        link: Option<HopLink>,
    ) -> Self {
        GraphCell::build_on(
            CellDisk::Ram(RamDisk::new(CELL_DISK_BLOCKS)),
            records,
            value_len,
            cache_capacity,
            link,
        )
    }

    /// Builds a cell on `disk`. The preload runs *uncharged* (the link
    /// is attached only after the rows are in), so chaos callers must
    /// keep their fault plane disarmed until this returns.
    pub fn build_on(
        disk: CellDisk,
        records: u64,
        value_len: usize,
        cache_capacity: usize,
        link: Option<HopLink>,
    ) -> Self {
        let fs = FileSystem::mkfs(disk, CELL_NINODES);
        let charged = ChargedFs { fs, link: None };
        let mut db = Database::open(charged, CELL_DB_PATH, CELL_CACHE_PAGES).expect("open cell db");
        db.create_table(CELL_TABLE).expect("create cell table");
        for key in 0..records {
            let value = value_bytes(key, 0, value_len);
            db.insert(CELL_TABLE, key as i64, &[Value::Blob(value)])
                .expect("preload row");
        }
        db.fs_mut().link = link;
        GraphCell {
            db: Some(db),
            cache: BTreeMap::new(),
            cache_capacity,
            value_len,
            log: CommitLog::new(),
            stats: CellStats::default(),
        }
    }

    /// Restores a cell from a snapshot: mount (replaying any committed
    /// WAL), reopen the database (rolling back any hot journal), adopt
    /// the cache image. The restored cell's log is empty — it continues
    /// from `snapshot.seq` by serving `log.since(snapshot.seq)`.
    pub fn restore(snapshot: &Snapshot, cache_capacity: usize, link: Option<HopLink>) -> Self {
        let mut cell = GraphCell::from_disk(snapshot.disk.clone(), cache_capacity, link);
        cell.cache = snapshot.cache.clone();
        cell
    }

    /// Mounts a cell over an existing disk image (crash recovery: the
    /// WAL replay happens in `mount`, the db journal rollback in
    /// `open`). The cache tier starts empty — it was volatile.
    pub fn from_disk(disk: RamDisk, cache_capacity: usize, link: Option<HopLink>) -> Self {
        let value_len = 0; // discovered per-Put; Gets never synthesize values
        let fs = FileSystem::mount(CellDisk::Ram(disk)).expect("mount surviving disk");
        let charged = ChargedFs { fs, link };
        let db = Database::open(charged, CELL_DB_PATH, CELL_CACHE_PAGES).expect("reopen cell db");
        GraphCell {
            db: Some(db),
            cache: BTreeMap::new(),
            cache_capacity,
            value_len,
            log: CommitLog::new(),
            stats: CellStats::default(),
        }
    }

    /// Restores from `snapshot` and replays `entries` through the live
    /// serve path. With `entries = log.since(snapshot.seq)` from the
    /// original cell, the result is byte-identical to it.
    pub fn replay(snapshot: &Snapshot, entries: &[CommitEntry], cache_capacity: usize) -> Self {
        let mut cell = GraphCell::restore(snapshot, cache_capacity, None);
        for e in entries {
            cell.serve(&e.op);
        }
        cell
    }

    fn db_mut(&mut self) -> &mut Database<ChargedFs> {
        self.db.as_mut().expect("cell database is open")
    }

    /// Admits one request into the mediation log, materialising the
    /// operation it commits to (writes get their deterministic value,
    /// stamped with the entry's sequence number).
    pub fn admit(&mut self, corr: u64, key: u64, write: bool) -> CommitOp {
        let op = if write {
            CommitOp::Put {
                key,
                value: value_bytes(key, self.log.next_seq(), self.value_len),
            }
        } else {
            CommitOp::Get { key }
        };
        self.log.append(corr, op.clone());
        op
    }

    /// Whether the cache tier holds `key` (routing: a read that hits
    /// never crosses into the db node).
    pub fn cache_contains(&self, key: u64) -> bool {
        self.cache.contains_key(&key)
    }

    /// Applies one operation — the single serve path shared by live
    /// traffic and replay. Returns the reply value.
    pub fn serve(&mut self, op: &CommitOp) -> Vec<u8> {
        match op {
            CommitOp::Get { key } => {
                self.stats.reads += 1;
                if let Some(v) = self.cache.get(key) {
                    self.stats.hits += 1;
                    return v.clone();
                }
                self.stats.misses += 1;
                let row = self
                    .db_mut()
                    .query(CELL_TABLE, *key as i64)
                    .expect("cell query");
                let value = match row {
                    Some(values) => blob_of(&values),
                    None => Vec::new(),
                };
                if !value.is_empty() {
                    self.cache_insert(*key, value.clone());
                }
                value
            }
            CommitOp::Put { key, value } => {
                self.stats.writes += 1;
                self.cache.remove(key); // invalidate-on-write
                let row = [Value::Blob(value.clone())];
                match self.db_mut().update(CELL_TABLE, *key as i64, &row) {
                    Err(DbError::KeyNotFound) => self
                        .db_mut()
                        .insert(CELL_TABLE, *key as i64, &row)
                        .expect("cell upsert insert"),
                    r => r.expect("cell upsert update"),
                }
                value.clone()
            }
        }
    }

    fn cache_insert(&mut self, key: u64, value: Vec<u8>) {
        self.cache.insert(key, value);
        while self.cache.len() > self.cache_capacity {
            // Deterministic eviction: smallest key first. Not LRU — the
            // point is that every replica evicts identically.
            self.cache.pop_first();
            self.stats.evictions += 1;
        }
    }

    /// Checkpoints the cell (pager flush + close), captures the disk
    /// image and cache, then **rebuilds itself through the restore
    /// path** — so the live cell after a snapshot and a replica
    /// restored from it proceed from byte-identical state.
    pub fn snapshot(&mut self) -> Snapshot {
        let (disk, link) = self.checkpoint();
        let snapshot = Snapshot {
            seq: self.log.last_seq(),
            disk: disk.clone(),
            cache: self.cache.clone(),
        };
        let fs = FileSystem::mount(CellDisk::Ram(disk)).expect("remount after snapshot");
        self.db = Some(
            Database::open(ChargedFs { fs, link }, CELL_DB_PATH, CELL_CACHE_PAGES)
                .expect("reopen after snapshot"),
        );
        snapshot
    }

    fn checkpoint(&mut self) -> (RamDisk, Option<HopLink>) {
        let db = self.db.take().expect("cell database is open");
        let mut charged = db.close().expect("close cell db");
        let link = charged.link.take();
        (charged.fs.into_device().image(), link)
    }

    /// Consumes the cell, checkpointing and returning the final disk
    /// image — the byte string replay correctness is judged on.
    pub fn into_disk(mut self) -> RamDisk {
        self.checkpoint().0
    }

    /// The cache tier's contents (replay comparisons).
    pub fn cache(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.cache
    }

    /// The database's pager/journal counters.
    pub fn db_stats(&self) -> sb_db::DbStats {
        self.db.as_ref().expect("cell database is open").stats()
    }

    /// The highest write sequence number the *persistent* state holds —
    /// read from the `seq` stamp in the surviving rows. After a crash,
    /// this is exactly the prefix of the commit log that reached the
    /// disk; rolling forward `log.since(recovered_seq())` catches the
    /// cell up to every acknowledged write.
    pub fn recovered_seq(&mut self) -> u64 {
        self.rows()
            .iter()
            .filter_map(|(_, v)| {
                v.get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            })
            .max()
            .unwrap_or(0)
    }

    /// All rows, as `(key, value-bytes)` pairs — logical-state
    /// comparisons for the chaos matrix.
    pub fn rows(&mut self) -> Vec<(i64, Vec<u8>)> {
        self.db_mut()
            .scan(CELL_TABLE)
            .expect("cell scan")
            .into_iter()
            .map(|(k, values)| (k, blob_of(&values)))
            .collect()
    }
}

fn blob_of(values: &[Value]) -> Vec<u8> {
    match values {
        [Value::Blob(b)] => b.clone(),
        other => panic!("cell rows are single blobs, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_reads_through_cache_and_invalidates_on_write() {
        let mut cell = GraphCell::build(16, 32, 8, None);
        let miss = cell.serve(&CommitOp::Get { key: 3 });
        assert_eq!(miss, value_bytes(3, 0, 32));
        assert_eq!((cell.stats.hits, cell.stats.misses), (0, 1));

        let hit = cell.serve(&CommitOp::Get { key: 3 });
        assert_eq!(hit, miss);
        assert_eq!(cell.stats.hits, 1);

        let newv = value_bytes(3, 9, 32);
        cell.serve(&CommitOp::Put {
            key: 3,
            value: newv.clone(),
        });
        assert!(!cell.cache_contains(3), "write must invalidate");
        assert_eq!(cell.serve(&CommitOp::Get { key: 3 }), newv);
    }

    #[test]
    fn cache_eviction_is_bounded_and_deterministic() {
        let mut cell = GraphCell::build(32, 16, 4, None);
        for key in 0..12 {
            cell.serve(&CommitOp::Get { key });
        }
        assert_eq!(cell.cache().len(), 4);
        assert_eq!(cell.stats.evictions, 8);
        // Smallest-key eviction leaves the 4 largest keys.
        let keys: Vec<u64> = cell.cache().keys().copied().collect();
        assert_eq!(keys, vec![8, 9, 10, 11]);
    }

    #[test]
    fn upsert_extends_past_the_preloaded_range() {
        let mut cell = GraphCell::build(4, 16, 4, None);
        let v = value_bytes(100, 1, 16);
        cell.serve(&CommitOp::Put {
            key: 100,
            value: v.clone(),
        });
        assert_eq!(cell.serve(&CommitOp::Get { key: 100 }), v);
    }

    #[test]
    fn snapshot_then_replay_is_byte_identical() {
        use crate::commit::disk_digest;

        let mut live = GraphCell::build(24, 32, 6, None);
        // Warm phase before the snapshot.
        for i in 0..20u64 {
            let op = live.admit(i + 1, i % 24, i % 3 == 0);
            live.serve(&op);
        }
        let snap = live.snapshot();
        assert_eq!(snap.seq, 20);
        // Diverging phase after it.
        for i in 20..48u64 {
            let op = live.admit(i + 1, (i * 5) % 24, i % 2 == 0);
            live.serve(&op);
        }
        let log = live.log.clone();
        let replayed = GraphCell::replay(&snap, log.since(snap.seq), 6);
        assert_eq!(replayed.cache(), live.cache(), "cache tiers must agree");
        assert_eq!(
            disk_digest(live.into_disk()),
            disk_digest(replayed.into_disk()),
            "replay must reproduce the disk byte-for-byte"
        );
    }

    #[test]
    fn recovered_seq_reads_the_last_persisted_write() {
        let mut cell = GraphCell::build(8, 32, 4, None);
        for i in 0..6u64 {
            let op = cell.admit(i + 1, i % 8, true);
            cell.serve(&op);
        }
        assert_eq!(cell.recovered_seq(), 6);
    }
}
