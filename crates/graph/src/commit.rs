//! The per-cell commit log: append-only mediation, deterministic replay.
//!
//! Every operation a serving cell admits is recorded here **before** it
//! is applied — the zero-os discipline: all authority flows through one
//! mediation point, and every mutation is an auditable log entry. The
//! log records *reads too*: a read warms the cache and the database's
//! page cache, and cache state decides whether later requests reach the
//! db at all, so byte-identical replay needs the exact operation
//! sequence, not just the writes. Only [`CommitOp::Put`] entries carry
//! state; replaying `Get`s merely reproduces the caching side effects.
//!
//! [`Snapshot`] pairs a log position with the cell's persistent state
//! (the flushed disk image) and its volatile cache; restoring the
//! snapshot and serving `log.since(snapshot.seq)` reproduces the live
//! cell byte-for-byte — the replay drill in `serve`'s tests and the CI
//! graph job assert exactly that.

use std::collections::BTreeMap;

use sb_fs::{BlockDevice, RamDisk, BSIZE};
use sb_transport::opcode;

/// One mediated cell operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOp {
    /// Point read of `key` (cache-aside: may stop at the cache tier).
    Get {
        /// The record key.
        key: u64,
    },
    /// Upsert of `key` to `value` (invalidates the cache entry).
    Put {
        /// The record key.
        key: u64,
        /// The full value written.
        value: Vec<u8>,
    },
}

impl CommitOp {
    /// The record key the operation targets.
    pub fn key(&self) -> u64 {
        match self {
            CommitOp::Get { key } | CommitOp::Put { key, .. } => *key,
        }
    }

    /// Whether the operation mutates the cell.
    pub fn is_write(&self) -> bool {
        matches!(self, CommitOp::Put { .. })
    }

    /// The client-facing wire opcode of this operation.
    pub fn opcode(&self) -> u8 {
        if self.is_write() {
            opcode::WRITE
        } else {
            opcode::READ
        }
    }
}

/// One append-only log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEntry {
    /// 1-based position in the log (dense: entry `i` has seq `i`).
    pub seq: u64,
    /// The wire correlation id of the request that admitted it.
    pub corr: u64,
    /// The mediated operation.
    pub op: CommitOp,
}

/// The append-only commit log of one serving cell.
#[derive(Debug, Clone, Default)]
pub struct CommitLog {
    entries: Vec<CommitEntry>,
}

impl CommitLog {
    /// An empty log.
    pub fn new() -> Self {
        CommitLog::default()
    }

    /// Appends `op`, returning its sequence number.
    pub fn append(&mut self, corr: u64, op: CommitOp) -> u64 {
        let seq = self.entries.len() as u64 + 1;
        self.entries.push(CommitEntry { seq, corr, op });
        seq
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.entries.len() as u64 + 1
    }

    /// The sequence number of the last entry (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in order.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }

    /// Entries *after* position `seq` — what a cell restored from a
    /// snapshot at `seq` must replay to catch up.
    pub fn since(&self, seq: u64) -> &[CommitEntry] {
        let from = (seq as usize).min(self.entries.len());
        &self.entries[from..]
    }

    /// Number of mutating entries.
    pub fn writes(&self) -> u64 {
        self.entries.iter().filter(|e| e.op.is_write()).count() as u64
    }

    /// An order-sensitive FNV-1a fingerprint over every entry — the
    /// audit check two replicas of the same history must agree on.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.entries {
            h.write_u64(e.seq);
            h.write_u64(e.corr);
            h.write_u64(e.op.key());
            match &e.op {
                CommitOp::Get { .. } => h.write_u64(0),
                CommitOp::Put { value, .. } => {
                    h.write_u64(1);
                    h.write(value);
                }
            }
        }
        h.finish()
    }
}

/// A restorable point-in-time image of a serving cell: the commit-log
/// position, the flushed persistent disk, and the volatile cache tier.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The log position the image reflects (every entry `<= seq`
    /// applied, nothing after).
    pub seq: u64,
    /// The flushed disk image (db file, WAL, journal — everything).
    pub disk: RamDisk,
    /// The cache tier's contents at the snapshot point.
    pub cache: BTreeMap<u64, Vec<u8>>,
}

/// The deterministic value a write with sequence number `seq` stores
/// under `key`: the sequence number in the first 8 bytes (little
/// endian) — so crash recovery can read the last *persisted* write's
/// position straight out of the surviving rows — followed by an
/// FNV-keyed byte stream. At least 8 bytes regardless of `len`.
pub fn value_bytes(key: u64, seq: u64, len: usize) -> Vec<u8> {
    let len = len.max(8);
    let mut v = vec![0u8; len];
    v[..8].copy_from_slice(&seq.to_le_bytes());
    let mut x = fnv1a_u64(key ^ seq.rotate_left(17));
    for chunk in v[8..].chunks_mut(8) {
        x = fnv1a_u64(x);
        let bytes = x.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    v
}

/// Content fingerprint of a whole disk image (FNV-1a over every block).
/// Takes the disk by value: [`RamDisk`] is cheap to clone and its I/O
/// counters must not be disturbed on — or folded into — the digest.
pub fn disk_digest(mut disk: RamDisk) -> u64 {
    let mut h = Fnv::new();
    let mut buf = [0u8; BSIZE];
    for bno in 0..disk.nblocks() {
        disk.read_block(bno, &mut buf);
        h.write(&buf);
    }
    h.finish()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a_u64(x: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_numbers_are_dense_and_one_based() {
        let mut log = CommitLog::new();
        assert_eq!(log.next_seq(), 1);
        assert_eq!(log.append(9, CommitOp::Get { key: 1 }), 1);
        assert_eq!(
            log.append(
                10,
                CommitOp::Put {
                    key: 2,
                    value: vec![1]
                }
            ),
            2
        );
        assert_eq!(log.last_seq(), 2);
        assert_eq!(log.writes(), 1);
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(1).len(), 1);
        assert_eq!(log.since(1)[0].seq, 2);
        assert!(log.since(5).is_empty());
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = CommitLog::new();
        let mut b = CommitLog::new();
        a.append(1, CommitOp::Get { key: 7 });
        a.append(
            2,
            CommitOp::Put {
                key: 7,
                value: vec![3, 4],
            },
        );
        b.append(
            1,
            CommitOp::Put {
                key: 7,
                value: vec![3, 4],
            },
        );
        b.append(2, CommitOp::Get { key: 7 });
        assert_ne!(a.digest(), b.digest());

        let mut c = CommitLog::new();
        c.append(1, CommitOp::Get { key: 7 });
        c.append(
            2,
            CommitOp::Put {
                key: 7,
                value: vec![3, 4],
            },
        );
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn value_bytes_embed_the_seq_and_are_deterministic() {
        let v = value_bytes(42, 0x0102_0304, 64);
        assert_eq!(v.len(), 64);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 0x0102_0304);
        assert_eq!(v, value_bytes(42, 0x0102_0304, 64));
        assert_ne!(v, value_bytes(43, 0x0102_0304, 64));
        assert_eq!(value_bytes(1, 2, 0).len(), 8, "seq header always fits");
    }

    #[test]
    fn disk_digest_sees_content_not_counters() {
        let mut a = RamDisk::new(8);
        let mut b = RamDisk::new(8);
        let block = [7u8; BSIZE];
        a.write_block(3, &block);
        b.write_block(3, &block);
        let mut probe = [0u8; BSIZE];
        b.read_block(0, &mut probe); // skew the counters only
        assert_eq!(disk_digest(a.clone()), disk_digest(b));
        a.write_block(4, &block);
        assert_ne!(disk_digest(a.clone()), disk_digest(RamDisk::new(8)));
    }
}
