//! sb-graph: multi-hop application graphs over a replayable commit log.
//!
//! The paper's end goal is real services talking over fast IPC. The
//! seed crates supply the services — `sb-db`'s pager/B-tree/journal
//! database, `sb-fs`'s journaling file system, `sb-ycsb`'s key mixes —
//! and `sb-transport` supplies four IPC personalities behind one
//! [`Transport`](sb_transport::Transport) trait. This crate composes
//! them into a *serving graph*:
//!
//! ```text
//!   client ──▶ gateway/auth ──▶ kv cache ──▶ db ──▶ fs
//!              (admission)      (cache-aside) (B-tree) (WAL)
//! ```
//!
//! * [`spec`] — [`GraphSpec`]: the declarative node/edge topology, with
//!   role-ordering validation and routing.
//! * [`commit`] — the per-cell **commit log**: every operation the cell
//!   admits becomes an append-only, auditable [`CommitEntry`] *before*
//!   it is applied. The log is the mediation point: replaying it from a
//!   snapshot reproduces the cell byte-for-byte.
//! * [`cell`] — [`GraphCell`]: the stateful core (cache-aside map +
//!   `sb-db` database on `sb-fs`), with snapshot/restore/replay, plus
//!   the charged FS adapter that turns every file operation into a real
//!   IPC crossing on the fs node's transport.
//! * [`serve`] — [`GraphTransport`]: the whole graph *as* a
//!   `Transport`. One client call fans through every hop as a real
//!   inner-transport call sharing the request's correlation id, so the
//!   sentinel assembles one connected span tree per request with no new
//!   instrumentation.
//!
//! Determinism is the design invariant: the simulated clocks, the cache
//! (a `BTreeMap` with smallest-key eviction), the seeded workloads and
//! the commit log are all deterministic, so two cells that start from
//! the same snapshot and apply the same entries end in byte-identical
//! db/fs state — the property the replay drill and the power-loss chaos
//! matrix assert.

pub mod cell;
pub mod commit;
pub mod serve;
pub mod spec;

pub use crate::{
    cell::{CellDisk, CellStats, ChargedFs, GraphCell, HopCtx, HopLink, CELL_DISK_BLOCKS},
    commit::{disk_digest, value_bytes, CommitEntry, CommitLog, CommitOp, Snapshot},
    serve::GraphTransport,
    spec::{GraphError, GraphSpec, NodeSpec, Role, Route},
};
