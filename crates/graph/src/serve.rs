//! The whole graph as one [`Transport`]: a client call fans through
//! every node as a real inner-transport call.
//!
//! [`GraphTransport`] owns one inner transport *per node* — all of the
//! same IPC personality, each carrying that node's service work — plus
//! the [`GraphCell`] holding the state. A `call(lane, req)`:
//!
//! 1. encodes the request into the graph's own lane (the one
//!    marshalling copy) and opens the end-to-end `Call` span;
//! 2. hops through gateway → cache (→ db on a cache miss / any write)
//!    as sequential inner calls on the same lane, all sharing the
//!    request's correlation id and threading one simulated clock, so
//!    the sentinel assembles a single connected span tree per request;
//! 3. admits the operation into the commit log, then serves it through
//!    the cell — during which the charged FS adapter bills each file
//!    operation as a crossing into the **fs node's** transport, under
//!    the same correlation id;
//! 4. writes the application reply into the graph lane and stamps the
//!    clock.
//!
//! Application bytes live host-side (the inner transports serve the
//! echo contract, as everywhere else in the repo); what the inner
//! crossings contribute is the *cost* and the *spans* — true payload
//! sizes, true clock advance, true critical path.

use std::cell::RefCell;
use std::rc::Rc;

use sb_observe::{Recorder, SpanKind};
use sb_sim::Cycles;
use sb_transport::{verify_reply_corr, CallError, CopyMeter, Lane, Request, Transport};

use crate::cell::{CellDisk, GraphCell, HopCtx, HopLink, SharedTransport};
use crate::commit::Snapshot;
use crate::spec::{GraphError, GraphSpec, Role};

struct NodeHop {
    transport: SharedTransport,
    name: String,
    role: Role,
    payload: usize,
}

/// A multi-hop serving graph behind the [`Transport`] trait: drop it
/// into the dispatcher, the chaos harness, or the differential tests
/// exactly like a single-server transport.
pub struct GraphTransport {
    label: String,
    nodes: Vec<NodeHop>,
    route: Vec<usize>,
    cell: GraphCell,
    ctx: Rc<HopCtx>,
    lanes: Vec<Lane>,
    clocks: Vec<Cycles>,
    meter: CopyMeter,
    recorder: Recorder,
}

impl GraphTransport {
    /// Assembles the graph on a fresh cell disk. `transports[i]` serves
    /// `spec.nodes[i]`; all must expose at least `lanes` lanes.
    pub fn assemble(
        label: impl Into<String>,
        spec: &GraphSpec,
        transports: Vec<Box<dyn Transport>>,
        lanes: usize,
    ) -> Result<Self, GraphError> {
        Self::assemble_on(
            label,
            spec,
            transports,
            lanes,
            CellDisk::Ram(sb_fs::RamDisk::new(crate::cell::CELL_DISK_BLOCKS)),
        )
    }

    /// Assembles the graph over an explicit cell disk (chaos drills
    /// pass a [`CellDisk::Faulty`]; keep its fault plane disarmed until
    /// this returns — the preload must land).
    pub fn assemble_on(
        label: impl Into<String>,
        spec: &GraphSpec,
        transports: Vec<Box<dyn Transport>>,
        lanes: usize,
        disk: CellDisk,
    ) -> Result<Self, GraphError> {
        let route = spec.route()?.order;
        assert_eq!(
            transports.len(),
            spec.nodes.len(),
            "one inner transport per node"
        );
        let nodes: Vec<NodeHop> = spec
            .nodes
            .iter()
            .zip(transports)
            .map(|(n, t)| NodeHop {
                transport: Rc::new(RefCell::new(t)),
                name: n.name.clone(),
                role: n.role,
                payload: n.payload,
            })
            .collect();
        let ctx = HopCtx::new();
        let link = nodes.iter().find(|n| n.role == Role::Fs).map(|n| HopLink {
            transport: n.transport.clone(),
            ctx: ctx.clone(),
            payload: n.payload,
        });
        let cell = GraphCell::build_on(
            disk,
            spec.records,
            spec.value_len,
            spec.cache_capacity,
            link,
        );
        Ok(GraphTransport {
            label: label.into(),
            nodes,
            route,
            cell,
            ctx,
            lanes: (0..lanes).map(|_| Lane::new()).collect(),
            clocks: vec![0; lanes],
            meter: CopyMeter::new(),
            recorder: Recorder::off(),
        })
    }

    /// The cell (commit log, counters, cache).
    pub fn cell(&self) -> &GraphCell {
        &self.cell
    }

    /// Mutable cell access (drills that roll state forward by hand).
    pub fn cell_mut(&mut self) -> &mut GraphCell {
        &mut self.cell
    }

    /// Checkpoints the cell mid-run; see [`GraphCell::snapshot`].
    pub fn snapshot(&mut self) -> Snapshot {
        self.cell.snapshot()
    }

    /// Consumes the transport, returning the cell for end-of-run
    /// inspection (final disk image, log, cache).
    pub fn into_cell(self) -> GraphCell {
        self.cell
    }

    /// Names of the explicit hops a db-miss request performs, in route
    /// order (per-hop attribution labels).
    pub fn hop_names(&self) -> Vec<String> {
        self.route
            .iter()
            .filter(|&&i| self.nodes[i].role != Role::Fs)
            .map(|&i| self.nodes[i].name.clone())
            .collect()
    }

    /// One inner-transport hop: idle the node's lane forward to the
    /// request clock, cross, return the advanced clock.
    fn hop(&self, node: usize, lane: usize, req: &Request, t: Cycles) -> Result<Cycles, CallError> {
        let n = &self.nodes[node];
        let mut inner = n.transport.borrow_mut();
        inner.wait_until(lane, t);
        let hop_req = Request {
            id: req.id,
            arrival: t,
            key: req.key,
            write: req.write,
            payload: n.payload,
            client: req.client,
            tenant: req.tenant,
        };
        inner.call(lane, &hop_req)?;
        Ok(inner.now(lane))
    }

    fn route_call(
        &mut self,
        lane: usize,
        req: &Request,
        t0: Cycles,
    ) -> Result<(Vec<u8>, Cycles), CallError> {
        let mut t = t0;
        for idx in 0..self.route.len() {
            let node = self.route[idx];
            match self.nodes[node].role {
                // The fs node is crossed from inside the db's file I/O,
                // not as a routed hop of its own.
                Role::Fs => continue,
                // Cache-aside: a read that hits the cache tier never
                // crosses into the db node.
                Role::Db if !req.write && self.cell.cache_contains(req.key) => continue,
                _ => {}
            }
            t = self.hop(node, lane, req, t)?;
        }
        // Mediation: the operation enters the commit log after
        // admission through the gateway, before any state changes.
        let op = self.cell.admit(req.id, req.key, req.write);
        self.ctx.now.set(t);
        let reply = self.cell.serve(&op);
        t = t.max(self.ctx.now.get());
        Ok((reply, t))
    }
}

impl Transport for GraphTransport {
    fn label(&self) -> &str {
        &self.label
    }

    fn lanes(&self) -> usize {
        self.clocks.len()
    }

    fn now(&mut self, lane: usize) -> Cycles {
        self.clocks[lane]
    }

    fn wait_until(&mut self, lane: usize, time: Cycles) {
        if time > self.clocks[lane] {
            self.clocks[lane] = time;
        }
    }

    fn bind(&mut self, lane: usize) -> bool {
        // Every node must bind — no short-circuit `any`.
        let mut bound = false;
        for n in &self.nodes {
            bound |= n.transport.borrow_mut().bind(lane);
        }
        bound
    }

    fn call(&mut self, lane: usize, req: &Request) -> Result<usize, CallError> {
        let t0 = self.clocks[lane];
        self.ctx.lane.set(lane);
        self.ctx.corr.set(req.id);
        self.lanes[lane].encode(req, 0, &self.meter);
        self.recorder.begin(lane, SpanKind::Call, t0, req.id);
        let routed = self.route_call(lane, req, t0);
        let (reply, t1) = match routed {
            Ok(ok) => ok,
            Err(e) => {
                self.recorder
                    .end(lane, SpanKind::Call, self.clocks[lane], req.id);
                return Err(e);
            }
        };
        self.clocks[lane] = t1;
        self.recorder.end(lane, SpanKind::Call, t1, req.id);
        self.lanes[lane].set_reply(&reply);
        verify_reply_corr(&self.lanes[lane], req.id)?;
        Ok(reply.len())
    }

    fn reply(&self, lane: usize) -> &[u8] {
        self.lanes[lane].reply()
    }

    fn recover(&mut self, lane: usize) -> bool {
        // Every node must attempt recovery — no short-circuit `any`.
        let mut recovered = false;
        for n in &self.nodes {
            recovered |= n.transport.borrow_mut().recover(lane);
        }
        recovered
    }

    fn bytes_copied(&self) -> u64 {
        self.meter.total()
            + self
                .nodes
                .iter()
                .map(|n| n.transport.borrow().bytes_copied())
                .sum::<u64>()
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        for n in &self.nodes {
            n.transport.borrow_mut().attach_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }
}
