//! Declarative graph topology: nodes, edges, roles, and routing.
//!
//! A [`GraphSpec`] names the servers a request visits and the wiring
//! between them. The validator insists on the shape the serving cell
//! can actually execute — a single chain from the gateway with the
//! storage roles in dependency order — and produces the [`Route`] the
//! transport walks per request.

use sb_sim::Cycles;
use sb_transport::opcode;

/// What a node does with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Admission/auth: every request crosses it first.
    Gateway,
    /// Cache-aside key/value tier (read hits stop here).
    Cache,
    /// The B-tree database (`sb-db`).
    Db,
    /// The journaling file system (`sb-fs`), charged per file op from
    /// inside the database's I/O path.
    Fs,
}

impl Role {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Gateway => "gateway",
            Role::Cache => "cache",
            Role::Db => "db",
            Role::Fs => "fs",
        }
    }

    /// The wire opcode a hop through this node carries for a read /
    /// write request (the graph's handler-adapter contract).
    pub fn opcode(self, write: bool) -> u8 {
        match (self, write) {
            (Role::Gateway, _) => opcode::AUTH,
            (Role::Cache, false) => opcode::CACHE_GET,
            (Role::Cache, true) => opcode::CACHE_INVAL,
            (Role::Db, false) => opcode::DB_QUERY,
            (Role::Db, true) => opcode::DB_UPSERT,
            (Role::Fs, false) => opcode::FS_READ,
            (Role::Fs, true) => opcode::FS_WRITE,
        }
    }
}

/// One server in the graph and its per-request service work.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display name (span/report labels).
    pub name: String,
    /// The node's role in the request path.
    pub role: Role,
    /// Fixed per-request compute at this node.
    pub cpu: Cycles,
    /// Handler code footprint in bytes.
    pub footprint: usize,
    /// Wire payload bytes per hop into this node.
    pub payload: usize,
}

/// A declarative multi-hop serving graph.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// The servers.
    pub nodes: Vec<NodeSpec>,
    /// Directed `(from, to)` request-flow edges between node indices.
    pub edges: Vec<(usize, usize)>,
    /// Records pre-loaded into the cell's database.
    pub records: u64,
    /// Value bytes per record.
    pub value_len: usize,
    /// Cache tier capacity in entries.
    pub cache_capacity: usize,
}

/// Why a spec cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// No nodes at all.
    Empty,
    /// An edge references a node index out of range.
    EdgeOutOfRange(usize, usize),
    /// A node has more than one incoming or outgoing edge.
    Branching(usize),
    /// No entry node (every node has an incoming edge — a cycle).
    NoEntry,
    /// More than one entry node (disconnected components).
    Disconnected,
    /// The roles are in an unserveable order.
    RoleOrder(&'static str),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::EdgeOutOfRange(a, b) => write!(f, "edge ({a},{b}) out of range"),
            GraphError::Branching(n) => write!(f, "node {n} branches (fan-out unsupported)"),
            GraphError::NoEntry => write!(f, "no entry node (cycle)"),
            GraphError::Disconnected => write!(f, "graph is not one chain"),
            GraphError::RoleOrder(why) => write!(f, "role order: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The validated request path: node indices in visit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Node indices, entry first.
    pub order: Vec<usize>,
}

impl GraphSpec {
    /// The standard 4-node serving graph the benchmarks run:
    /// gateway → cache → db → fs, with per-node service work scaled
    /// like the seed scenarios (gateway/cache light, db an order of
    /// magnitude heavier, fs block-sized payloads).
    pub fn standard(records: u64, value_len: usize, cache_capacity: usize) -> Self {
        GraphSpec {
            nodes: vec![
                NodeSpec {
                    name: "gateway".into(),
                    role: Role::Gateway,
                    cpu: 220,
                    footprint: 1024,
                    payload: 64,
                },
                NodeSpec {
                    name: "cache".into(),
                    role: Role::Cache,
                    cpu: 160,
                    footprint: 2048,
                    payload: 64 + value_len,
                },
                NodeSpec {
                    name: "db".into(),
                    role: Role::Db,
                    cpu: 2_400,
                    footprint: 8 * 1024,
                    payload: 128 + value_len,
                },
                NodeSpec {
                    name: "fs".into(),
                    role: Role::Fs,
                    cpu: 600,
                    footprint: 4 * 1024,
                    payload: 256,
                },
            ],
            edges: vec![(0, 1), (1, 2), (2, 3)],
            records,
            value_len,
            cache_capacity,
        }
    }

    /// Validates the topology and returns the request path.
    pub fn route(&self) -> Result<Route, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut next = vec![None::<usize>; n];
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err(GraphError::EdgeOutOfRange(a, b));
            }
            if next[a].is_some() {
                return Err(GraphError::Branching(a));
            }
            next[a] = Some(b);
            indeg[b] += 1;
            if indeg[b] > 1 {
                return Err(GraphError::Branching(b));
            }
        }
        let entries: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let entry = match entries.as_slice() {
            [] => return Err(GraphError::NoEntry),
            [e] => *e,
            _ => return Err(GraphError::Disconnected),
        };
        let mut order = Vec::with_capacity(n);
        let mut at = Some(entry);
        while let Some(i) = at {
            order.push(i);
            if order.len() > n {
                return Err(GraphError::NoEntry); // a cycle re-entered the chain
            }
            at = next[i];
        }
        if order.len() != n {
            return Err(GraphError::Disconnected);
        }
        self.check_roles(&order)?;
        Ok(Route { order })
    }

    fn check_roles(&self, order: &[usize]) -> Result<(), GraphError> {
        let roles: Vec<Role> = order.iter().map(|&i| self.nodes[i].role).collect();
        if roles[0] != Role::Gateway {
            return Err(GraphError::RoleOrder("the entry node must be the gateway"));
        }
        if roles.iter().filter(|r| **r == Role::Gateway).count() > 1 {
            return Err(GraphError::RoleOrder("only one gateway"));
        }
        if roles.iter().filter(|r| **r == Role::Db).count() > 1 {
            return Err(GraphError::RoleOrder("only one db node"));
        }
        let pos = |role: Role| roles.iter().position(|r| *r == role);
        if let (Some(c), Some(d)) = (pos(Role::Cache), pos(Role::Db)) {
            if c > d {
                return Err(GraphError::RoleOrder("the cache must precede the db"));
            }
        }
        if let Some(f) = pos(Role::Fs) {
            match pos(Role::Db) {
                Some(d) if d < f => {}
                _ => {
                    return Err(GraphError::RoleOrder(
                        "an fs node needs a db node ahead of it",
                    ))
                }
            }
        }
        Ok(())
    }

    /// The names of the explicit transport hops a *db-miss read* (or any
    /// write) performs, in order — every routed node except the fs node,
    /// whose crossings happen inside the db's file I/O.
    pub fn hop_names(&self) -> Result<Vec<String>, GraphError> {
        Ok(self
            .route()?
            .order
            .iter()
            .filter(|&&i| self.nodes[i].role != Role::Fs)
            .map(|&i| self.nodes[i].name.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_spec_routes_in_order() {
        let spec = GraphSpec::standard(100, 64, 16);
        let route = spec.route().unwrap();
        assert_eq!(route.order, vec![0, 1, 2, 3]);
        assert_eq!(spec.hop_names().unwrap(), vec!["gateway", "cache", "db"]);
    }

    #[test]
    fn shuffled_indices_still_route_by_edges() {
        let mut spec = GraphSpec::standard(10, 64, 4);
        spec.nodes.swap(0, 3); // fs first in the vec, gateway last
        spec.edges = vec![(3, 1), (1, 2), (2, 0)];
        assert_eq!(spec.route().unwrap().order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn branching_and_cycles_are_rejected() {
        let mut spec = GraphSpec::standard(10, 64, 4);
        spec.edges.push((0, 2));
        assert_eq!(spec.route().unwrap_err(), GraphError::Branching(0));

        let mut cyc = GraphSpec::standard(10, 64, 4);
        cyc.edges = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        assert_eq!(cyc.route().unwrap_err(), GraphError::NoEntry);
    }

    #[test]
    fn role_order_is_enforced() {
        let mut spec = GraphSpec::standard(10, 64, 4);
        // db before cache
        spec.edges = vec![(0, 2), (2, 1), (1, 3)];
        assert!(matches!(spec.route(), Err(GraphError::RoleOrder(_))));

        // fs without db ahead of it
        let mut fsfirst = GraphSpec::standard(10, 64, 4);
        fsfirst.edges = vec![(0, 3), (3, 1), (1, 2)];
        assert!(matches!(fsfirst.route(), Err(GraphError::RoleOrder(_))));
    }

    #[test]
    fn role_opcodes_follow_the_low_bit_write_convention() {
        use sb_transport::opcode;
        for role in [Role::Gateway, Role::Cache, Role::Db, Role::Fs] {
            // Gateway auth is read-only in both directions.
            let w = role.opcode(true);
            let r = role.opcode(false);
            if role == Role::Gateway {
                assert!(!opcode::is_write(w) && !opcode::is_write(r));
            } else {
                assert!(opcode::is_write(w), "{} write opcode", role.name());
                assert!(!opcode::is_write(r), "{} read opcode", role.name());
            }
        }
    }
}
