//! Address newtypes and paging arithmetic.
//!
//! Three distinct physical/virtual address kinds flow through SkyBridge's
//! CR3-remapping machinery; confusing them is exactly the bug class the
//! newtypes below make unrepresentable.

use std::fmt;

/// Bytes per base page (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Bytes per 2 MiB large page.
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// Bytes per 1 GiB huge page (the Rootkernel's base-EPT granule).
pub const PAGE_SIZE_1G: u64 = 1024 * 1024 * 1024;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Offset within the 4 KiB page.
            pub fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The containing 4 KiB page's base address.
            pub fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Page number (address divided by the page size).
            pub fn page_number(self) -> u64 {
                self.0 >> 12
            }

            /// True if 4 KiB-aligned.
            pub fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// Byte-offset addition.
            #[allow(clippy::should_implement_trait)] // Deliberate: `Gva::add` reads as address math.
            pub fn add(self, off: u64) -> $name {
                $name(self.0 + off)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }
    };
}

addr_newtype! {
    /// A guest-virtual address, translated by the process page table.
    Gva
}
addr_newtype! {
    /// A guest-physical address: the contents of CR3 and of page-table
    /// entries, translated by the active EPT.
    Gpa
}
addr_newtype! {
    /// A host-physical address: what actually names a RAM frame.
    Hpa
}

/// The four radix indices of an x86-64 virtual address, from PML4 down.
///
/// # Examples
///
/// ```
/// use sb_mem::addr::{pt_indices, Gva};
///
/// // 0x0000_7fff_ffff_f000 is the last canonical low-half page.
/// let idx = pt_indices(Gva(0x7fff_ffff_f000));
/// assert_eq!(idx, [255, 511, 511, 511]);
/// ```
pub fn pt_indices(gva: Gva) -> [usize; 4] {
    [
        ((gva.0 >> 39) & 0x1ff) as usize,
        ((gva.0 >> 30) & 0x1ff) as usize,
        ((gva.0 >> 21) & 0x1ff) as usize,
        ((gva.0 >> 12) & 0x1ff) as usize,
    ]
}

/// The four radix indices of a guest-physical address within an EPT.
pub fn ept_indices(gpa: Gpa) -> [usize; 4] {
    [
        ((gpa.0 >> 39) & 0x1ff) as usize,
        ((gpa.0 >> 30) & 0x1ff) as usize,
        ((gpa.0 >> 21) & 0x1ff) as usize,
        ((gpa.0 >> 12) & 0x1ff) as usize,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = Gva(0x1234);
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_base(), Gva(0x1000));
        assert_eq!(a.page_number(), 1);
        assert!(!a.is_page_aligned());
        assert!(a.page_base().is_page_aligned());
    }

    #[test]
    fn indices_roundtrip() {
        let gva = Gva((3u64 << 39) | (7 << 30) | (11 << 21) | (13 << 12) | 5);
        assert_eq!(pt_indices(gva), [3, 7, 11, 13]);
    }

    #[test]
    fn ept_indices_of_identity() {
        let gpa = Gpa(PAGE_SIZE_1G); // Exactly 1 GiB.
        assert_eq!(ept_indices(gpa), [0, 1, 0, 0]);
    }

    #[test]
    fn distinct_types_are_distinct() {
        // This is a compile-time property; spot-check Debug formatting.
        assert_eq!(format!("{:?}", Gpa(0x1000)), "Gpa(0x1000)");
        assert_eq!(format!("{:?}", Hpa(0x1000)), "Hpa(0x1000)");
    }
}
