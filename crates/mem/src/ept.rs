//! Extended page tables (EPT).
//!
//! EPTs are real 4-level radix trees stored in Rootkernel-reserved physical
//! frames. Three operations matter to SkyBridge:
//!
//! * building the **base EPT** that identity-maps (almost) all physical
//!   memory to the Subkernel with huge pages, so that the guest never takes
//!   an EPT violation and a TLB miss stays cheap (§4.1);
//! * the **shallow copy with CR3 remap** (§4.3): a per-binding server EPT
//!   that shares every subtree of the base EPT except the four pages on the
//!   path to the client's CR3 frame, which is remapped to the HPA of the
//!   server's page-table root;
//! * plain translation, used by the charged walker in [`crate::walk`].

use crate::{
    addr::{ept_indices, Gpa, Hpa, PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M},
    fault::MemFault,
    phys::HostMem,
};

const EPT_READ: u64 = 1 << 0;
const EPT_WRITE: u64 = 1 << 1;
const EPT_EXEC: u64 = 1 << 2;
const EPT_LEAF: u64 = 1 << 7;
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;
/// Domain-key nibble stashed in leaf entries, mirroring the guest PTE's
/// pkey position (bits 62:59). Hardware EPT entries have *no* protection
/// keys — PKRU guards guest-virtual mappings only — so these bits are
/// architecturally ignored here. The Rootkernel uses the stash purely as
/// an audit tag: which protection domain a frame was handed to. The MPK
/// enforcement teeth live in the guest-PTE walk ([`crate::walk`]).
const EPT_KEY_SHIFT: u64 = 59;
const EPT_KEY_MASK: u64 = 0xf << EPT_KEY_SHIFT;

/// Access permissions of an EPT mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptPerms {
    /// Guest reads allowed.
    pub read: bool,
    /// Guest writes allowed.
    pub write: bool,
    /// Guest instruction fetches allowed.
    pub exec: bool,
}

impl EptPerms {
    /// Read + write + execute (the base EPT's mapping for guest RAM).
    pub const RWX: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: true,
    };
    /// Read + write.
    pub const RW: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-only.
    pub const R: EptPerms = EptPerms {
        read: true,
        write: false,
        exec: false,
    };

    fn bits(self) -> u64 {
        (self.read as u64) * EPT_READ
            + (self.write as u64) * EPT_WRITE
            + (self.exec as u64) * EPT_EXEC
    }

    fn from_bits(bits: u64) -> Self {
        EptPerms {
            read: bits & EPT_READ != 0,
            write: bits & EPT_WRITE != 0,
            exec: bits & EPT_EXEC != 0,
        }
    }

    /// True if these permissions allow the requested access.
    pub fn allows(self, write: bool, exec: bool) -> bool {
        self.read && (!write || self.write) && (!exec || self.exec)
    }
}

/// Mapping granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSize {
    /// 4 KiB leaf at level 1.
    Size4K,
    /// 2 MiB leaf at level 2.
    Size2M,
    /// 1 GiB leaf at level 3 (the base EPT's granule).
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => PAGE_SIZE,
            PageSize::Size2M => PAGE_SIZE_2M,
            PageSize::Size1G => PAGE_SIZE_1G,
        }
    }

    /// Walk level at which this size's leaf entry lives (1, 2, or 3).
    fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }
}

/// Result of one EPT translation, including how much walking it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptTranslation {
    /// Resolved host-physical address.
    pub hpa: Hpa,
    /// Number of EPT entries read (1..=4): the memory accesses a hardware
    /// walker would perform.
    pub entries_read: u8,
    /// Physical addresses of the entries read, for charged walks.
    pub entry_addrs: [Hpa; 4],
    /// Permissions of the leaf mapping.
    pub perms: EptPerms,
    /// Domain-key tag of the leaf (0 unless mapped via
    /// [`Ept::map_keyed`]). Informational: EPT hardware ignores it.
    pub key: u8,
}

/// One extended page table, identified by its root frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ept {
    /// Host-physical address of the root (PML4-equivalent) frame.
    pub root: Hpa,
}

impl Ept {
    /// Allocates an empty EPT in the Rootkernel-reserved region.
    pub fn new(mem: &mut HostMem) -> Self {
        Ept {
            root: mem.alloc_reserved_frame(),
        }
    }

    /// Maps `gpa → hpa` at the given granularity.
    ///
    /// Intermediate tables are allocated as needed from the reserved
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if `gpa`/`hpa` are not aligned to `size`, or if the walk path
    /// is blocked by an existing larger leaf (splitting happens only on
    /// the shallow-copy path, [`Ept::shallow_copy_with_remap`]).
    pub fn map(&self, mem: &mut HostMem, gpa: Gpa, hpa: Hpa, size: PageSize, perms: EptPerms) {
        self.map_keyed(mem, gpa, hpa, size, perms, 0);
    }

    /// [`Ept::map`] with a 4-bit domain-key tag stashed in the leaf's
    /// ignored bits 62:59 (the guest-PTE pkey position). The tag is
    /// surfaced by [`Ept::translate`] for audit; it grants or denies
    /// nothing at this level.
    ///
    /// # Panics
    ///
    /// Panics on misalignment (as [`Ept::map`]) or a key ≥ 16.
    pub fn map_keyed(
        &self,
        mem: &mut HostMem,
        gpa: Gpa,
        hpa: Hpa,
        size: PageSize,
        perms: EptPerms,
        key: u8,
    ) {
        assert!(key < 16, "domain keys are 4 bits");
        assert_eq!(gpa.0 % size.bytes(), 0, "gpa misaligned for {size:?}");
        assert_eq!(hpa.0 % size.bytes(), 0, "hpa misaligned for {size:?}");
        let idx = ept_indices(gpa);
        let leaf_level = size.leaf_level();
        let mut table = self.root;
        let mut level = 4u8;
        while level > leaf_level {
            let entry_addr = table.add(idx[(4 - level) as usize] as u64 * 8);
            let entry = mem.read_u64(entry_addr);
            let next = if entry & EPT_READ == 0 {
                let frame = mem.alloc_reserved_frame();
                mem.write_u64(entry_addr, frame.0 | EPT_READ | EPT_WRITE | EPT_EXEC);
                frame
            } else {
                assert_eq!(
                    entry & EPT_LEAF,
                    0,
                    "mapping path blocked by a larger leaf at level {level}"
                );
                Hpa(entry & ADDR_MASK)
            };
            table = next;
            level -= 1;
        }
        let entry_addr = table.add(idx[(4 - level) as usize] as u64 * 8);
        let leaf_bit = if level > 1 { EPT_LEAF } else { 0 };
        let key_bits = (key as u64) << EPT_KEY_SHIFT;
        mem.write_u64(entry_addr, hpa.0 | perms.bits() | leaf_bit | key_bits);
    }

    /// Identity-maps `[start, end)` (GPA = HPA) at the given granularity.
    ///
    /// # Panics
    ///
    /// Panics unless both bounds are `size`-aligned.
    pub fn map_identity_range(
        &self,
        mem: &mut HostMem,
        start: u64,
        end: u64,
        size: PageSize,
        perms: EptPerms,
    ) {
        assert_eq!(start % size.bytes(), 0);
        assert_eq!(end % size.bytes(), 0);
        let mut at = start;
        while at < end {
            self.map(mem, Gpa(at), Hpa(at), size, perms);
            at += size.bytes();
        }
    }

    /// Translates a GPA without charging simulated time (hypervisor setup
    /// and test use; the charged path lives in [`crate::walk`]).
    pub fn translate(&self, mem: &HostMem, gpa: Gpa) -> Result<EptTranslation, MemFault> {
        let idx = ept_indices(gpa);
        let mut table = self.root;
        let mut entry_addrs = [Hpa(0); 4];
        for level in (1..=4u8).rev() {
            let entry_addr = table.add(idx[(4 - level) as usize] as u64 * 8);
            entry_addrs[(4 - level) as usize] = entry_addr;
            let entry = mem.read_u64(entry_addr);
            if entry & (EPT_READ | EPT_WRITE | EPT_EXEC) == 0 {
                return Err(MemFault::EptViolation { gpa });
            }
            let is_leaf = level == 1 || entry & EPT_LEAF != 0;
            if is_leaf {
                let granule = match level {
                    1 => PAGE_SIZE,
                    2 => PAGE_SIZE_2M,
                    3 => PAGE_SIZE_1G,
                    _ => panic!("1 GiB is the largest supported EPT leaf"),
                };
                let base = entry & ADDR_MASK;
                // For large leaves the low address bits come from the GPA.
                let hpa = Hpa((base & !(granule - 1)) | (gpa.0 & (granule - 1)));
                return Ok(EptTranslation {
                    hpa,
                    entries_read: 5 - level,
                    entry_addrs,
                    perms: EptPerms::from_bits(entry),
                    key: ((entry & EPT_KEY_MASK) >> EPT_KEY_SHIFT) as u8,
                });
            }
            table = Hpa(entry & ADDR_MASK);
        }
        unreachable!("loop always returns at level 1");
    }

    /// Creates the server-side EPT of a client/server binding: a shallow
    /// copy of `base` in which the 4 KiB page holding the client's
    /// page-table root (`client_cr3_gpa`) translates to the frame holding
    /// the *server's* page-table root (`server_cr3_hpa`).
    ///
    /// Only the pages on the walk path are copied or created; every other
    /// subtree is shared with `base`. Returns the new EPT and the number of
    /// pages that were written (the paper: "Only four pages … are
    /// modified").
    ///
    /// # Panics
    ///
    /// Panics if `client_cr3_gpa` is not mapped in `base`.
    pub fn shallow_copy_with_remap(
        mem: &mut HostMem,
        base: &Ept,
        client_cr3_gpa: Gpa,
        server_cr3_hpa: Hpa,
    ) -> (Ept, u64) {
        let gpa = client_cr3_gpa.page_base();
        let idx = ept_indices(gpa);
        let root = Self::copy_frame(mem, base.root);
        let mut pages_written = 1u64;
        let mut table = root;
        for level in (2..=4u8).rev() {
            let entry_addr = table.add(idx[(4 - level) as usize] as u64 * 8);
            let entry = mem.read_u64(entry_addr);
            assert!(
                entry & (EPT_READ | EPT_WRITE | EPT_EXEC) != 0,
                "client CR3 GPA not mapped in base EPT"
            );
            let next = if entry & EPT_LEAF != 0 {
                // Split the large leaf into a table of the next granularity,
                // preserving the identity-derived mapping of the region.
                let child_granule = match level {
                    3 => PAGE_SIZE_2M,
                    2 => PAGE_SIZE,
                    _ => unreachable!(),
                };
                let frame = mem.alloc_reserved_frame();
                pages_written += 1;
                let perms = entry & (EPT_READ | EPT_WRITE | EPT_EXEC | EPT_KEY_MASK);
                let leaf_base = entry & ADDR_MASK;
                let child_leaf_bit = if child_granule > PAGE_SIZE {
                    EPT_LEAF
                } else {
                    0
                };
                for i in 0..512u64 {
                    mem.write_u64(
                        frame.add(i * 8),
                        (leaf_base + i * child_granule) | perms | child_leaf_bit,
                    );
                }
                mem.write_u64(entry_addr, frame.0 | EPT_READ | EPT_WRITE | EPT_EXEC);
                frame
            } else {
                let copy = Self::copy_frame(mem, Hpa(entry & ADDR_MASK));
                pages_written += 1;
                mem.write_u64(entry_addr, copy.0 | EPT_READ | EPT_WRITE | EPT_EXEC);
                copy
            };
            table = next;
        }
        // `table` is now a private 4 KiB-granularity page table; remap the
        // client CR3 frame to the server's page-table root. Read/write: the
        // hardware walker reads it, and the guest kernel may update the
        // server's page table through its own mapping.
        let entry_addr = table.add(idx[3] as u64 * 8);
        mem.write_u64(
            entry_addr,
            server_cr3_hpa.page_base().0 | EPT_READ | EPT_WRITE,
        );
        (Ept { root }, pages_written)
    }

    /// Deep-copies every table frame of `base` (leaves are physical memory
    /// and stay shared). Exists for the shallow-vs-deep ablation bench;
    /// SkyBridge itself always shallow-copies.
    pub fn deep_copy(mem: &mut HostMem, base: &Ept) -> (Ept, u64) {
        fn copy_rec(mem: &mut HostMem, frame: Hpa, level: u8, count: &mut u64) -> Hpa {
            let copy = Ept::copy_frame(mem, frame);
            *count += 1;
            if level > 1 {
                for i in 0..512u64 {
                    let entry = mem.read_u64(copy.add(i * 8));
                    if entry & (EPT_READ | EPT_WRITE | EPT_EXEC) != 0 && entry & EPT_LEAF == 0 {
                        let child = copy_rec(mem, Hpa(entry & ADDR_MASK), level - 1, count);
                        mem.write_u64(copy.add(i * 8), child.0 | (entry & !ADDR_MASK));
                    }
                }
            }
            copy
        }
        let mut count = 0;
        let root = copy_rec(mem, base.root, 4, &mut count);
        (Ept { root }, count)
    }

    fn copy_frame(mem: &mut HostMem, src: Hpa) -> Hpa {
        let dst = mem.alloc_reserved_frame();
        let mut buf = [0u8; PAGE_SIZE as usize];
        mem.read_slice(src.page_base(), &mut buf);
        mem.write_slice(dst, &buf);
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::RESERVED_BYTES;

    fn base_ept(mem: &mut HostMem) -> Ept {
        // Mirror the Rootkernel: [reserved_end, 1G) as 2 MiB pages,
        // [1G, 4G) as 1 GiB pages (tests don't need all 16 GiB).
        let ept = Ept::new(mem);
        ept.map_identity_range(
            mem,
            RESERVED_BYTES,
            PAGE_SIZE_1G,
            PageSize::Size2M,
            EptPerms::RWX,
        );
        ept.map_identity_range(
            mem,
            PAGE_SIZE_1G,
            4 * PAGE_SIZE_1G,
            PageSize::Size1G,
            EptPerms::RWX,
        );
        ept
    }

    #[test]
    fn identity_translation_through_1g_leaf() {
        let mut mem = HostMem::new();
        let ept = base_ept(&mut mem);
        let gpa = Gpa(PAGE_SIZE_1G + 0x1234_5678);
        let t = ept.translate(&mem, gpa).unwrap();
        assert_eq!(t.hpa.0, gpa.0);
        assert_eq!(t.entries_read, 2); // Root + 1 GiB leaf in the PDPT.
    }

    #[test]
    fn identity_translation_through_2m_leaf() {
        let mut mem = HostMem::new();
        let ept = base_ept(&mut mem);
        let gpa = Gpa(RESERVED_BYTES + 0x4_2042);
        let t = ept.translate(&mem, gpa).unwrap();
        assert_eq!(t.hpa.0, gpa.0);
        assert_eq!(t.entries_read, 3);
    }

    #[test]
    fn reserved_region_is_not_mapped() {
        let mut mem = HostMem::new();
        let ept = base_ept(&mut mem);
        let gpa = Gpa(0x10_0000); // Inside the Rootkernel's 100 MiB.
        assert_eq!(
            ept.translate(&mem, gpa),
            Err(MemFault::EptViolation { gpa })
        );
    }

    #[test]
    fn map_4k_translates_with_four_reads() {
        let mut mem = HostMem::new();
        let ept = Ept::new(&mut mem);
        ept.map(
            &mut mem,
            Gpa(0x8000),
            Hpa(0x4_0000),
            PageSize::Size4K,
            EptPerms::RW,
        );
        let t = ept.translate(&mem, Gpa(0x8042)).unwrap();
        assert_eq!(t.hpa, Hpa(0x4_0042));
        assert_eq!(t.entries_read, 4);
        assert!(!t.perms.exec);
    }

    #[test]
    fn domain_key_tag_survives_mapping_and_grants_nothing() {
        let mut mem = HostMem::new();
        let ept = Ept::new(&mut mem);
        ept.map_keyed(
            &mut mem,
            Gpa(0x8000),
            Hpa(0x4_0000),
            PageSize::Size4K,
            EptPerms::RW,
            0xd,
        );
        let t = ept.translate(&mem, Gpa(0x8042)).unwrap();
        assert_eq!(t.key, 0xd, "audit tag rides the ignored bits 62:59");
        assert_eq!(t.hpa, Hpa(0x4_0042), "tag does not perturb the address");
        assert_eq!(t.perms, EptPerms::RW, "tag does not perturb permissions");
        // Untagged mappings read back key 0.
        ept.map(
            &mut mem,
            Gpa(0x9000),
            Hpa(0x5_0000),
            PageSize::Size4K,
            EptPerms::RWX,
        );
        assert_eq!(ept.translate(&mem, Gpa(0x9000)).unwrap().key, 0);
    }

    #[test]
    fn shallow_copy_writes_exactly_four_pages() {
        let mut mem = HostMem::new();
        let base = base_ept(&mut mem);
        let client_cr3 = mem.alloc_frame(); // Identity GPA == HPA.
        let server_cr3 = mem.alloc_frame();
        let (server_ept, pages) =
            Ept::shallow_copy_with_remap(&mut mem, &base, Gpa(client_cr3.0), server_cr3);
        assert_eq!(pages, 4, "paper: only four EPT pages are modified");
        // Under the server EPT, the client CR3 GPA resolves to the server's
        // page-table root frame.
        let t = server_ept.translate(&mem, Gpa(client_cr3.0)).unwrap();
        assert_eq!(t.hpa, server_cr3);
        // Every other page still translates identically.
        let other = Gpa(client_cr3.0 + PAGE_SIZE);
        assert_eq!(server_ept.translate(&mem, other).unwrap().hpa, Hpa(other.0));
        // And the base EPT is untouched.
        assert_eq!(
            base.translate(&mem, Gpa(client_cr3.0)).unwrap().hpa,
            client_cr3
        );
    }

    #[test]
    fn shallow_copy_remapped_page_is_not_executable() {
        let mut mem = HostMem::new();
        let base = base_ept(&mut mem);
        let client_cr3 = mem.alloc_frame();
        let server_cr3 = mem.alloc_frame();
        let (server_ept, _) =
            Ept::shallow_copy_with_remap(&mut mem, &base, Gpa(client_cr3.0), server_cr3);
        let t = server_ept.translate(&mem, Gpa(client_cr3.0)).unwrap();
        assert!(t.perms.read && t.perms.write && !t.perms.exec);
    }

    #[test]
    fn huge_page_base_ept_is_tiny() {
        // §4.1's rationale: with 1 GiB + 2 MiB mappings the whole base EPT
        // is three table pages (root, PDPT, one PD for the sub-1 GiB
        // region), so even a *deep* copy is cheap — and a shallow copy with
        // remap still touches only 4 pages.
        let mut mem = HostMem::new();
        let base = base_ept(&mut mem);
        let (_, deep_pages) = Ept::deep_copy(&mut mem, &base);
        assert_eq!(deep_pages, 3);
    }

    #[test]
    fn deep_copy_of_4k_ept_copies_many_more_pages_than_shallow() {
        let mut mem = HostMem::new();
        let base = base_ept(&mut mem);
        // An EPT managed at 4 KiB granularity (what a commodity hypervisor
        // would hand us) has a much larger tree.
        for i in 0..1024u64 {
            let at = 4 * PAGE_SIZE_1G + i * crate::addr::PAGE_SIZE_2M;
            base.map(&mut mem, Gpa(at), Hpa(at), PageSize::Size2M, EptPerms::RWX);
        }
        let cr3_a = mem.alloc_frame();
        let cr3_b = mem.alloc_frame();
        let (_, shallow_pages) = Ept::shallow_copy_with_remap(&mut mem, &base, Gpa(cr3_a.0), cr3_b);
        let (deep, deep_pages) = Ept::deep_copy(&mut mem, &base);
        assert_eq!(shallow_pages, 4);
        assert!(deep_pages > shallow_pages);
        // The deep copy still translates correctly.
        assert_eq!(deep.translate(&mem, Gpa(cr3_a.0)).unwrap().hpa, cr3_a);
    }

    #[test]
    fn offsets_within_large_leaves_are_preserved() {
        let mut mem = HostMem::new();
        let ept = Ept::new(&mut mem);
        ept.map(
            &mut mem,
            Gpa(2 * PAGE_SIZE_1G),
            Hpa(3 * PAGE_SIZE_1G),
            PageSize::Size1G,
            EptPerms::RWX,
        );
        let t = ept
            .translate(&mem, Gpa(2 * PAGE_SIZE_1G + 0x3abc_d123))
            .unwrap();
        assert_eq!(t.hpa, Hpa(3 * PAGE_SIZE_1G + 0x3abc_d123));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_large_map_panics() {
        let mut mem = HostMem::new();
        let ept = Ept::new(&mut mem);
        ept.map(
            &mut mem,
            Gpa(PAGE_SIZE),
            Hpa(0),
            PageSize::Size2M,
            EptPerms::RWX,
        );
    }
}
