//! Translation faults.

use crate::addr::{Gpa, Gva};

/// Why a translation failed.
///
/// Page faults are delivered to the Subkernel; EPT violations exit to the
/// Rootkernel (and are counted in the Table 5 experiment, whose headline
/// result is that the Rootkernel configuration produces *zero* of them in
/// steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// A guest page-table entry on the walk path was not present.
    NotPresent {
        /// Faulting virtual address.
        gva: Gva,
        /// Walk level at which the walk stopped (4 = PML4 … 1 = PT).
        level: u8,
    },
    /// The leaf entry was present but forbids the access.
    Protection {
        /// Faulting virtual address.
        gva: Gva,
        /// True if the access was a write to a read-only mapping.
        write: bool,
        /// True if a user-mode access hit a supervisor-only mapping.
        user: bool,
        /// True if an instruction fetch hit a no-execute mapping.
        exec: bool,
    },
    /// The guest-physical address is not mapped (or lacks permission) in
    /// the active EPT.
    EptViolation {
        /// Faulting guest-physical address.
        gpa: Gpa,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::NotPresent { gva, level } => {
                write!(f, "page not present at {gva:?} (level {level})")
            }
            MemFault::Protection {
                gva,
                write,
                user,
                exec,
            } => write!(
                f,
                "protection violation at {gva:?} (write={write} user={user} \
                 exec={exec})"
            ),
            MemFault::EptViolation { gpa } => {
                write!(f, "EPT violation at {gpa:?}")
            }
        }
    }
}

impl std::error::Error for MemFault {}
