//! Translation faults.

use crate::addr::{Gpa, Gva};

/// Why a translation failed.
///
/// Page faults are delivered to the Subkernel; EPT violations exit to the
/// Rootkernel (and are counted in the Table 5 experiment, whose headline
/// result is that the Rootkernel configuration produces *zero* of them in
/// steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// A guest page-table entry on the walk path was not present.
    NotPresent {
        /// Faulting virtual address.
        gva: Gva,
        /// Walk level at which the walk stopped (4 = PML4 … 1 = PT).
        level: u8,
    },
    /// The leaf entry was present but forbids the access.
    Protection {
        /// Faulting virtual address.
        gva: Gva,
        /// True if the access was a write to a read-only mapping.
        write: bool,
        /// True if a user-mode access hit a supervisor-only mapping.
        user: bool,
        /// True if an instruction fetch hit a no-execute mapping.
        exec: bool,
    },
    /// The guest-physical address is not mapped (or lacks permission) in
    /// the active EPT.
    EptViolation {
        /// Faulting guest-physical address.
        gpa: Gpa,
    },
    /// The leaf permits the access but the core's PKRU denies the
    /// mapping's protection key (a `PK`-bit page fault on hardware).
    /// This is the teeth of the MPK personality's isolation story: a
    /// handler that strays outside its pkey-permitted set faults here.
    PkeyDenied {
        /// Faulting virtual address.
        gva: Gva,
        /// Protection key of the mapping that was denied.
        key: u8,
        /// True if the denied access was a write.
        write: bool,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::NotPresent { gva, level } => {
                write!(f, "page not present at {gva:?} (level {level})")
            }
            MemFault::Protection {
                gva,
                write,
                user,
                exec,
            } => write!(
                f,
                "protection violation at {gva:?} (write={write} user={user} \
                 exec={exec})"
            ),
            MemFault::EptViolation { gpa } => {
                write!(f, "EPT violation at {gpa:?}")
            }
            MemFault::PkeyDenied { gva, key, write } => {
                write!(f, "pkey {key} denied at {gva:?} (write={write})")
            }
        }
    }
}

impl std::error::Error for MemFault {}
