//! Memory substrate: physical memory, guest page tables, and EPTs.
//!
//! SkyBridge's central trick (§4.3 of the paper) lives at the boundary of
//! three address spaces:
//!
//! * **GVA** — guest-virtual addresses, translated by per-process x86-64
//!   page tables whose root is named by CR3;
//! * **GPA** — guest-physical addresses, what page-table entries and CR3
//!   itself contain;
//! * **HPA** — host-physical addresses, what the active EPT translates GPAs
//!   into.
//!
//! The Rootkernel maps almost all physical memory *identity* GPA→HPA with
//! 1 GiB pages in a base EPT — except that each server's EPT remaps the GPA
//! of the client's page-table root to the HPA of the *server's* page-table
//! root. Executing `VMFUNC` therefore changes which page table the unchanged
//! CR3 value denotes, switching address spaces without a kernel entry.
//!
//! This crate implements all three translations literally: page tables and
//! EPTs are real radix trees stored in simulated physical frames, and the
//! walker in [`walk`] performs (and charges, through the simulated cache
//! hierarchy) every memory access a hardware walk would perform — including
//! the up-to-24 accesses of a fully nested 2-level walk that §4.1 cites as
//! the motivation for huge-page EPT mappings.

pub mod addr;
pub mod ept;
pub mod fault;
pub mod paging;
pub mod phys;
pub mod walk;

pub use crate::{
    addr::{Gpa, Gva, Hpa, PAGE_SIZE},
    ept::{Ept, EptPerms, PageSize},
    fault::MemFault,
    paging::{AddressSpace, PteFlags},
    phys::HostMem,
    walk::{read_bytes, translate, write_bytes, Access},
};
