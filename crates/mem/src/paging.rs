//! Guest (process) page tables.
//!
//! Every process keeps its own 4-level x86-64 page table — SkyBridge
//! explicitly *retains* per-process page tables instead of merging processes
//! into one address space (§4.3), which is what makes it easy to integrate
//! into existing microkernels. Page-table pages are allocated from the
//! general physical region, which the base EPT identity-maps, so the
//! Subkernel can edit them directly by physical address.

use crate::{
    addr::{pt_indices, Gpa, Gva, Hpa, PAGE_SIZE},
    fault::MemFault,
    phys::HostMem,
};

const PTE_PRESENT: u64 = 1 << 0;
const PTE_WRITE: u64 = 1 << 1;
const PTE_USER: u64 = 1 << 2;
const PTE_NX: u64 = 1 << 63;
const PTE_ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;
/// The protection key occupies PTE bits 62:59, exactly as on x86-64
/// with PKU enabled.
const PTE_PKEY_SHIFT: u64 = 59;
const PTE_PKEY_MASK: u64 = 0xf << PTE_PKEY_SHIFT;

/// Leaf permissions of a guest mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteFlags {
    /// Writes allowed.
    pub write: bool,
    /// User-mode (ring 3) access allowed.
    pub user: bool,
    /// Instruction fetch allowed (`false` sets the NX bit).
    pub exec: bool,
    /// 4-bit memory protection key (PTE bits 62:59). Key 0 is the
    /// conventional "shared" key every PKRU value leaves accessible in
    /// this codebase, so pkey-oblivious mappings behave exactly as
    /// before. Checked against the core's PKRU on user data accesses by
    /// [`crate::walk::translate`]; instruction fetches are exempt, as on
    /// hardware.
    pub pkey: u8,
}

impl PteFlags {
    /// User read/write data.
    pub const USER_DATA: PteFlags = PteFlags {
        write: true,
        user: true,
        exec: false,
        pkey: 0,
    };
    /// User read-only data.
    pub const USER_RO: PteFlags = PteFlags {
        write: false,
        user: true,
        exec: false,
        pkey: 0,
    };
    /// User executable code (W^X: not writable).
    pub const USER_CODE: PteFlags = PteFlags {
        write: false,
        user: true,
        exec: true,
        pkey: 0,
    };
    /// Kernel read/write data.
    pub const KERNEL_DATA: PteFlags = PteFlags {
        write: true,
        user: false,
        exec: false,
        pkey: 0,
    };
    /// Kernel executable code.
    pub const KERNEL_CODE: PteFlags = PteFlags {
        write: false,
        user: false,
        exec: true,
        pkey: 0,
    };

    /// The same permissions tagged with protection key `pkey` (low 4
    /// bits; higher bits would not fit the PTE field).
    ///
    /// # Panics
    ///
    /// Panics if `pkey` exceeds 15.
    pub const fn with_pkey(self, pkey: u8) -> PteFlags {
        assert!(pkey < 16, "protection keys are 4 bits");
        PteFlags {
            write: self.write,
            user: self.user,
            exec: self.exec,
            pkey,
        }
    }

    /// Packs the flags into the TLB's one-byte permission meta (3
    /// permission bits, then the 4-bit pkey).
    pub fn to_meta(self) -> u8 {
        (self.write as u8)
            | (self.user as u8) << 1
            | (self.exec as u8) << 2
            | (self.pkey & 0xf) << 3
    }

    /// Unpacks [`PteFlags::to_meta`].
    pub fn from_meta(meta: u8) -> Self {
        PteFlags {
            write: meta & 1 != 0,
            user: meta & 2 != 0,
            exec: meta & 4 != 0,
            pkey: meta >> 3 & 0xf,
        }
    }

    fn bits(self) -> u64 {
        PTE_PRESENT
            | ((self.write as u64) * PTE_WRITE)
            | ((self.user as u64) * PTE_USER)
            | ((self.pkey as u64 & 0xf) << PTE_PKEY_SHIFT)
            | if self.exec { 0 } else { PTE_NX }
    }

    fn from_bits(bits: u64) -> Self {
        PteFlags {
            write: bits & PTE_WRITE != 0,
            user: bits & PTE_USER != 0,
            exec: bits & PTE_NX == 0,
            pkey: ((bits & PTE_PKEY_MASK) >> PTE_PKEY_SHIFT) as u8,
        }
    }
}

/// A per-process virtual address space (one 4-level page table).
///
/// Page-table pages live in identity-mapped general memory, so `root_gpa`
/// is numerically also the HPA of the root frame — *except* when viewed
/// through a server EPT that remaps it, which is the whole point of
/// SkyBridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    /// Guest-physical address of the PML4 frame (the process's CR3 value).
    pub root_gpa: Gpa,
    /// The PCID the kernel assigned to this address space.
    pub pcid: u16,
}

impl AddressSpace {
    /// Allocates an empty address space.
    pub fn new(mem: &mut HostMem, pcid: u16) -> Self {
        let root = mem.alloc_frame();
        AddressSpace {
            root_gpa: Gpa(root.0),
            pcid,
        }
    }

    /// Maps the 4 KiB page at `gva` to the frame at `gpa`.
    ///
    /// Intermediate page-table pages are allocated on demand. Remapping an
    /// existing page simply overwrites the leaf (used by the W^X rewrite
    /// flow that flips a code page writable and back).
    ///
    /// # Panics
    ///
    /// Panics if `gva` or `gpa` is not page-aligned.
    pub fn map(&self, mem: &mut HostMem, gva: Gva, gpa: Gpa, flags: PteFlags) {
        assert!(gva.is_page_aligned(), "gva {gva:?} not page-aligned");
        assert!(gpa.is_page_aligned(), "gpa {gpa:?} not page-aligned");
        let idx = pt_indices(gva);
        // Page-table pages are in identity-mapped memory: GPA == HPA.
        let mut table = Hpa(self.root_gpa.0);
        for &i in &idx[..3] {
            let entry_addr = table.add(i as u64 * 8);
            let entry = mem.read_u64(entry_addr);
            let next = if entry & PTE_PRESENT == 0 {
                let frame = mem.alloc_frame();
                // Intermediate entries carry the most permissive bits; the
                // leaf decides (hardware ANDs, but leaf-only checking is
                // equivalent for the mappings we build).
                mem.write_u64(entry_addr, frame.0 | PTE_PRESENT | PTE_WRITE | PTE_USER);
                frame
            } else {
                Hpa(entry & PTE_ADDR_MASK)
            };
            table = next;
        }
        let leaf_addr = table.add(idx[3] as u64 * 8);
        mem.write_u64(leaf_addr, (gpa.0 & PTE_ADDR_MASK) | flags.bits());
    }

    /// Maps `pages` fresh frames at `gva`, returning the GPA of the first.
    ///
    /// The data frames are allocated *before* any page-table pages, so the
    /// region is physically contiguous: `first + i * PAGE_SIZE` is the
    /// frame of page `i`. Sharing code (SkyBridge shared buffers, shared
    /// libraries) relies on this.
    pub fn alloc_and_map(&self, mem: &mut HostMem, gva: Gva, pages: usize, flags: PteFlags) -> Gpa {
        let frames: Vec<Gpa> = (0..pages).map(|_| Gpa(mem.alloc_frame().0)).collect();
        for (i, frame) in frames.iter().enumerate() {
            self.map(mem, gva.add(i as u64 * PAGE_SIZE), *frame, flags);
        }
        frames.first().copied().unwrap_or(Gpa(0))
    }

    /// Changes the leaf permissions of an existing mapping.
    ///
    /// # Panics
    ///
    /// Panics if `gva` is unmapped (kernel bug, not a guest fault).
    pub fn protect(&self, mem: &mut HostMem, gva: Gva, flags: PteFlags) {
        let (gpa, _) = self
            .translate_setup(mem, gva)
            .expect("protect() of an unmapped page");
        self.map(mem, gva.page_base(), gpa.page_base(), flags);
    }

    /// Removes a mapping. The caller is responsible for TLB shootdown.
    pub fn unmap(&self, mem: &mut HostMem, gva: Gva) {
        let idx = pt_indices(gva);
        let mut table = Hpa(self.root_gpa.0);
        for &i in &idx[..3] {
            let entry = mem.read_u64(table.add(i as u64 * 8));
            if entry & PTE_PRESENT == 0 {
                return;
            }
            table = Hpa(entry & PTE_ADDR_MASK);
        }
        mem.write_u64(table.add(idx[3] as u64 * 8), 0);
    }

    /// Setup-time (uncharged, EPT-less) translation; the charged hardware
    /// path lives in [`crate::walk::translate`].
    pub fn translate_setup(&self, mem: &HostMem, gva: Gva) -> Result<(Gpa, PteFlags), MemFault> {
        let idx = pt_indices(gva);
        let mut table = Hpa(self.root_gpa.0);
        for (depth, &i) in idx.iter().enumerate() {
            let entry = mem.read_u64(table.add(i as u64 * 8));
            if entry & PTE_PRESENT == 0 {
                return Err(MemFault::NotPresent {
                    gva,
                    level: 4 - depth as u8,
                });
            }
            if depth == 3 {
                return Ok((
                    Gpa((entry & PTE_ADDR_MASK) | gva.page_offset()),
                    PteFlags::from_bits(entry),
                ));
            }
            table = Hpa(entry & PTE_ADDR_MASK);
        }
        unreachable!()
    }
}

/// Raw guest-PTE accessors used by the charged walker.
pub(crate) mod raw {
    use super::*;

    /// Decodes one PTE: `(present, table-or-frame address, flags)`.
    pub(crate) fn decode(entry: u64) -> (bool, Gpa, PteFlags) {
        (
            entry & PTE_PRESENT != 0,
            Gpa(entry & PTE_ADDR_MASK),
            PteFlags::from_bits(entry),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_then_translate() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        let frame = mem.alloc_frame();
        asp.map(&mut mem, Gva(0x40_0000), Gpa(frame.0), PteFlags::USER_CODE);
        let (gpa, flags) = asp.translate_setup(&mem, Gva(0x40_0123)).unwrap();
        assert_eq!(gpa, Gpa(frame.0 + 0x123));
        assert!(flags.exec && flags.user && !flags.write);
    }

    #[test]
    fn unmapped_is_not_present() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        assert!(matches!(
            asp.translate_setup(&mem, Gva(0xdead_b000)),
            Err(MemFault::NotPresent { .. })
        ));
    }

    #[test]
    fn two_spaces_are_disjoint() {
        let mut mem = HostMem::new();
        let a = AddressSpace::new(&mut mem, 1);
        let b = AddressSpace::new(&mut mem, 2);
        let fa = a.alloc_and_map(&mut mem, Gva(0x1000), 1, PteFlags::USER_DATA);
        let fb = b.alloc_and_map(&mut mem, Gva(0x1000), 1, PteFlags::USER_DATA);
        assert_ne!(fa, fb);
        assert_eq!(a.translate_setup(&mem, Gva(0x1000)).unwrap().0, fa);
        assert_eq!(b.translate_setup(&mem, Gva(0x1000)).unwrap().0, fb);
    }

    #[test]
    fn protect_flips_permissions_in_place() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        let gpa = asp.alloc_and_map(&mut mem, Gva(0x7000), 1, PteFlags::USER_DATA);
        asp.protect(&mut mem, Gva(0x7000), PteFlags::USER_CODE);
        let (gpa2, flags) = asp.translate_setup(&mem, Gva(0x7000)).unwrap();
        assert_eq!(gpa, gpa2);
        assert!(flags.exec && !flags.write);
    }

    #[test]
    fn unmap_removes_only_target() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        asp.alloc_and_map(&mut mem, Gva(0x1000), 2, PteFlags::USER_DATA);
        asp.unmap(&mut mem, Gva(0x1000));
        assert!(asp.translate_setup(&mem, Gva(0x1000)).is_err());
        assert!(asp.translate_setup(&mem, Gva(0x2000)).is_ok());
    }

    #[test]
    fn meta_roundtrip() {
        // 3 permission bits + 4 pkey bits = 7 meta bits.
        for meta in 0..128u8 {
            assert_eq!(PteFlags::from_meta(meta).to_meta(), meta);
        }
    }

    #[test]
    fn pkey_rides_pte_bits_59_to_62() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        let gpa = asp.alloc_and_map(&mut mem, Gva(0xa000), 1, PteFlags::USER_DATA.with_pkey(0xb));
        let (gpa2, flags) = asp.translate_setup(&mem, Gva(0xa123)).unwrap();
        assert_eq!(
            gpa2,
            Gpa(gpa.0 + 0x123),
            "the key must not disturb the address"
        );
        assert_eq!(flags.pkey, 0xb);
        assert!(flags.write && flags.user && !flags.exec);
        // protect() preserves an explicit retag and key 0 stays default.
        asp.protect(&mut mem, Gva(0xa000), PteFlags::USER_RO.with_pkey(3));
        assert_eq!(asp.translate_setup(&mem, Gva(0xa000)).unwrap().1.pkey, 3);
        assert_eq!(PteFlags::USER_DATA.pkey, 0);
    }

    #[test]
    fn alloc_and_map_region_is_physically_contiguous() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        let first = asp.alloc_and_map(&mut mem, Gva(0x4_0000), 8, PteFlags::USER_DATA);
        for i in 0..8u64 {
            let (gpa, _) = asp
                .translate_setup(&mem, Gva(0x4_0000 + i * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                gpa,
                Gpa(first.0 + i * PAGE_SIZE),
                "page {i} must sit at first + i * PAGE_SIZE"
            );
        }
    }

    #[test]
    fn alloc_and_map_returns_first_frame() {
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 1);
        let first = asp.alloc_and_map(&mut mem, Gva(0x9000), 3, PteFlags::USER_DATA);
        let (gpa, _) = asp.translate_setup(&mem, Gva(0x9000)).unwrap();
        assert_eq!(gpa, first);
    }
}
