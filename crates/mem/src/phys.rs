//! Sparse host physical memory and frame allocation.
//!
//! Models the 16 GiB of RAM in the paper's test machine as a sparse map of
//! 4 KiB frames allocated on first touch. Two bump allocators partition the
//! address space the way the Rootkernel does (§4.1): a small reserved region
//! (100 MiB) that holds the Rootkernel's own structures — EPT pages above
//! all — and the rest, which the base EPT identity-maps to the Subkernel
//! with 1 GiB pages.

use std::collections::HashMap;

use crate::addr::{Hpa, PAGE_SIZE};

/// Size of the region reserved for the Rootkernel (the paper reserves
/// 100 MiB; we round to a 2 MiB boundary).
pub const RESERVED_BYTES: u64 = 100 * 1024 * 1024;

/// Total modeled RAM (16 GiB, matching the evaluation machine).
pub const TOTAL_BYTES: u64 = 16 * 1024 * 1024 * 1024;

/// Sparse host physical memory.
#[derive(Debug, Default)]
pub struct HostMem {
    frames: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    /// Next free frame in the reserved (Rootkernel) region.
    next_reserved: u64,
    /// Next free frame in the general region.
    next_general: u64,
}

impl HostMem {
    /// Creates empty memory with both allocators at their region starts.
    ///
    /// Frame 0 of the general region is intentionally skipped so that a
    /// zero page-table root can be used as a "none" sentinel.
    pub fn new() -> Self {
        HostMem {
            frames: HashMap::new(),
            next_reserved: PAGE_SIZE,
            next_general: RESERVED_BYTES,
        }
    }

    /// Allocates a zeroed frame in the Rootkernel-reserved region.
    ///
    /// # Panics
    ///
    /// Panics if the reserved region (100 MiB) is exhausted.
    pub fn alloc_reserved_frame(&mut self) -> Hpa {
        let hpa = self.next_reserved;
        assert!(
            hpa + PAGE_SIZE <= RESERVED_BYTES,
            "Rootkernel reserved region exhausted"
        );
        self.next_reserved += PAGE_SIZE;
        self.frames
            .insert(hpa / PAGE_SIZE, Box::new([0; PAGE_SIZE as usize]));
        Hpa(hpa)
    }

    /// Allocates a zeroed frame in the general (Subkernel-visible) region.
    ///
    /// Under the base EPT this region is identity-mapped, so the returned
    /// HPA doubles as the frame's GPA.
    ///
    /// # Panics
    ///
    /// Panics if the 16 GiB of modeled RAM are exhausted.
    pub fn alloc_frame(&mut self) -> Hpa {
        let hpa = self.next_general;
        assert!(hpa + PAGE_SIZE <= TOTAL_BYTES, "physical memory exhausted");
        self.next_general += PAGE_SIZE;
        self.frames
            .insert(hpa / PAGE_SIZE, Box::new([0; PAGE_SIZE as usize]));
        Hpa(hpa)
    }

    /// True if `hpa` lies in the Rootkernel-reserved region.
    pub fn is_reserved(hpa: Hpa) -> bool {
        hpa.0 < RESERVED_BYTES
    }

    fn frame(&self, hpa: Hpa) -> &[u8; PAGE_SIZE as usize] {
        self.frames
            .get(&hpa.page_number())
            .unwrap_or_else(|| panic!("access to unallocated frame {hpa:?}"))
    }

    fn frame_mut(&mut self, hpa: Hpa) -> &mut [u8; PAGE_SIZE as usize] {
        self.frames
            .entry(hpa.page_number())
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Reads a naturally aligned little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned address or an unallocated frame.
    pub fn read_u64(&self, hpa: Hpa) -> u64 {
        assert_eq!(hpa.0 % 8, 0, "misaligned u64 read at {hpa:?}");
        let off = hpa.page_offset() as usize;
        let frame = self.frame(hpa);
        u64::from_le_bytes(frame[off..off + 8].try_into().unwrap())
    }

    /// Writes a naturally aligned little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned address.
    pub fn write_u64(&mut self, hpa: Hpa, value: u64) {
        assert_eq!(hpa.0 % 8, 0, "misaligned u64 write at {hpa:?}");
        let off = hpa.page_offset() as usize;
        self.frame_mut(hpa)[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Copies bytes out of physical memory. The range may span frames.
    pub fn read_slice(&self, hpa: Hpa, buf: &mut [u8]) {
        let mut addr = hpa;
        let mut done = 0;
        while done < buf.len() {
            let off = addr.page_offset() as usize;
            let n = (PAGE_SIZE as usize - off).min(buf.len() - done);
            buf[done..done + n].copy_from_slice(&self.frame(addr)[off..off + n]);
            addr = addr.add(n as u64);
            done += n;
        }
    }

    /// Copies bytes into physical memory. The range may span frames.
    pub fn write_slice(&mut self, hpa: Hpa, data: &[u8]) {
        let mut addr = hpa;
        let mut done = 0;
        while done < data.len() {
            let off = addr.page_offset() as usize;
            let n = (PAGE_SIZE as usize - off).min(data.len() - done);
            self.frame_mut(addr)[off..off + n].copy_from_slice(&data[done..done + n]);
            addr = addr.add(n as u64);
            done += n;
        }
    }

    /// Number of frames currently materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocators_stay_in_their_regions() {
        let mut m = HostMem::new();
        let r = m.alloc_reserved_frame();
        let g = m.alloc_frame();
        assert!(HostMem::is_reserved(r));
        assert!(!HostMem::is_reserved(g));
        assert_eq!(g.0, RESERVED_BYTES);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = HostMem::new();
        let f = m.alloc_frame();
        m.write_u64(f.add(16), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(f.add(16)), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(f), 0);
    }

    #[test]
    fn slice_roundtrip_across_frames() {
        let mut m = HostMem::new();
        let a = m.alloc_frame();
        let _b = m.alloc_frame(); // Contiguous with `a`.
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        m.write_slice(a.add(100), &data);
        let mut out = vec![0u8; data.len()];
        m.read_slice(a.add(100), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_u64_panics() {
        let mut m = HostMem::new();
        let f = m.alloc_frame();
        m.write_u64(f.add(3), 1);
    }

    #[test]
    fn frames_start_zeroed() {
        let mut m = HostMem::new();
        let f = m.alloc_frame();
        let mut buf = [1u8; 64];
        m.read_slice(f, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
