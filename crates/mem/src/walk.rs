//! The charged hardware translation path.
//!
//! [`translate`] performs exactly the memory accesses a hardware page walk
//! performs, through the simulated TLBs and cache hierarchy:
//!
//! * TLB hit: no memory traffic, permissions checked from the cached entry;
//! * TLB miss, no EPT: 4 guest-PTE reads;
//! * TLB miss under an EPT with 4 KiB mappings: each guest-PTE read first
//!   translates the PTE's GPA through the EPT (4 reads), and the final data
//!   GPA is translated too — 4 × (4 + 1) + 4 = **24 accesses**, the §4.1
//!   worst case the Rootkernel's 1 GiB mappings exist to avoid;
//! * TLB miss under the 1 GiB base EPT: 4 × (2 + 1) + 2 = 14 accesses.
//!
//! The resolved translation is inserted into the i- or d-TLB tagged with
//! the core's current (PCID, EPT root), so a `VMFUNC` EPTP switch makes the
//! entries of the previous space unreachable *without flushing them* — the
//! behaviour Table 2 attributes to VPID.

use sb_sim::{AccessKind, CpuId, Machine};

use crate::{
    addr::{pt_indices, Gpa, Gva, Hpa, PAGE_SIZE},
    ept::Ept,
    fault::MemFault,
    paging::{raw, PteFlags},
    phys::HostMem,
};

/// The kind of access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (i-TLB, L1i, needs execute permission).
    Fetch,
    /// Data read (d-TLB, L1d).
    Read,
    /// Data write (d-TLB, L1d, needs write permission).
    Write,
}

impl Access {
    fn cache_kind(self) -> AccessKind {
        match self {
            Access::Fetch => AccessKind::InstructionFetch,
            Access::Read => AccessKind::DataRead,
            Access::Write => AccessKind::DataWrite,
        }
    }

    fn allowed_by(self, flags: PteFlags, user: bool) -> bool {
        if user && !flags.user {
            return false;
        }
        match self {
            Access::Fetch => flags.exec,
            Access::Read => true,
            Access::Write => flags.write,
        }
    }

    fn protection_fault(self, gva: Gva, user: bool) -> MemFault {
        MemFault::Protection {
            gva,
            write: self == Access::Write,
            user,
            exec: self == Access::Fetch,
        }
    }
}

/// The protection-key check, applied after ordinary permissions pass:
/// data accesses to user-mode pages are checked against the core's live
/// PKRU; instruction fetches and supervisor-only mappings are exempt, as
/// on hardware. The reset PKRU (0) permits every key, so pkey-oblivious
/// paths never fault here.
fn pkey_check(
    m: &Machine,
    core: CpuId,
    flags: PteFlags,
    access: Access,
    gva: Gva,
) -> Result<(), MemFault> {
    if access == Access::Fetch || !flags.user {
        return Ok(());
    }
    let write = access == Access::Write;
    if m.cpu(core).pkey_denies(flags.pkey, write) {
        return Err(MemFault::PkeyDenied {
            gva,
            key: flags.pkey,
            write,
        });
    }
    Ok(())
}

/// Translates one GPA through the core's active EPT, charging the entry
/// reads. Identity (free) when no EPT is active.
fn ept_resolve(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gpa: Gpa,
    write: bool,
    exec: bool,
) -> Result<Hpa, MemFault> {
    let root = m.cpu(core).ept_root;
    if root == 0 {
        return Ok(Hpa(gpa.0));
    }
    let ept = Ept { root: Hpa(root) };
    let t = ept.translate(mem, gpa)?;
    for i in 0..t.entries_read as usize {
        m.mem_access(core, t.entry_addrs[i].0, AccessKind::DataRead);
    }
    let cpu = m.cpu_mut(core);
    cpu.pmu.walk_memory_accesses += t.entries_read as u64;
    if !t.perms.allows(write, exec) {
        return Err(MemFault::EptViolation { gpa });
    }
    Ok(t.hpa)
}

/// Translates `gva` for `access`, charging TLB/caches/walk time, and
/// returns the host-physical address.
///
/// `user` is true for ring-3 accesses. On success the translation is
/// cached in the appropriate TLB under the core's current tag.
pub fn translate(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    access: Access,
    user: bool,
) -> Result<Hpa, MemFault> {
    let tag = m.cpu(core).tlb_tag();
    let vpn = gva.page_number();
    let is_fetch = access == Access::Fetch;

    // TLB lookup.
    let hit = {
        let cpu = m.cpu_mut(core);
        let tlb = if is_fetch {
            &mut cpu.itlb
        } else {
            &mut cpu.dtlb
        };
        tlb.lookup(tag, vpn)
    };
    match hit {
        Some((ppn, meta)) => {
            let flags = PteFlags::from_meta(meta);
            if access.allowed_by(flags, user) {
                // The cached meta carries the mapping's pkey, so a PKRU
                // flip changes what a *hit* permits — no re-walk needed,
                // which is exactly why WRPKRU domain switches are cheap.
                pkey_check(m, core, flags, access, gva)?;
                return Ok(Hpa(ppn << 12 | gva.page_offset()));
            }
            // Insufficient cached permissions: hardware re-walks; the walk
            // below will fault or refresh the entry.
        }
        None => {
            let cpu = m.cpu_mut(core);
            if is_fetch {
                cpu.pmu.itlb_misses += 1;
            } else {
                cpu.pmu.dtlb_misses += 1;
            }
        }
    }

    // Guest page walk. CR3 holds a GPA; each PTE read goes through the EPT.
    let idx = pt_indices(gva);
    let mut table_gpa = Gpa(m.cpu(core).cr3).page_base();
    for (depth, &i) in idx.iter().enumerate() {
        let pte_gpa = table_gpa.add(i as u64 * 8);
        let pte_hpa = ept_resolve(m, core, mem, pte_gpa, false, false)?;
        m.mem_access(core, pte_hpa.0, AccessKind::DataRead);
        let walk_step = m.cost.walk_step;
        let cpu = m.cpu_mut(core);
        cpu.pmu.walk_memory_accesses += 1;
        cpu.tsc += walk_step;
        let (present, addr, flags) = raw::decode(mem.read_u64(pte_hpa));
        if !present {
            return Err(MemFault::NotPresent {
                gva,
                level: 4 - depth as u8,
            });
        }
        if depth == 3 {
            if !access.allowed_by(flags, user) {
                return Err(access.protection_fault(gva, user));
            }
            pkey_check(m, core, flags, access, gva)?;
            let frame_hpa = ept_resolve(m, core, mem, addr, access == Access::Write, is_fetch)?;
            let cpu = m.cpu_mut(core);
            cpu.pmu.page_walks += 1;
            let tlb = if is_fetch {
                &mut cpu.itlb
            } else {
                &mut cpu.dtlb
            };
            tlb.insert(tag, vpn, frame_hpa.page_number(), flags.to_meta());
            return Ok(frame_hpa.add(gva.page_offset()));
        }
        table_gpa = addr;
    }
    unreachable!("leaf level always returns")
}

/// Runs `f` for every cache line overlapped by `[gva, gva + len)`,
/// translating page by page.
#[allow(clippy::too_many_arguments)] // The hardware walk context really has this arity.
fn for_each_line(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    len: usize,
    access: Access,
    user: bool,
    mut f: impl FnMut(&mut Machine, Hpa, usize, usize),
) -> Result<(), MemFault> {
    let mut off = 0usize;
    while off < len {
        let at = gva.add(off as u64);
        let in_page = ((PAGE_SIZE - at.page_offset()) as usize).min(len - off);
        let hpa = translate(m, core, mem, at, access, user)?;
        // Touch each 64-byte line of the span through the cache hierarchy.
        let first_line = hpa.0 / 64;
        let last_line = (hpa.0 + in_page as u64 - 1) / 64;
        for line in first_line..=last_line {
            m.mem_access(core, line * 64, access.cache_kind());
        }
        f(m, hpa, off, in_page);
        off += in_page;
    }
    Ok(())
}

/// Reads guest-virtual memory into `buf`, charging translation and cache
/// traffic.
pub fn read_bytes(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    buf: &mut [u8],
    user: bool,
) -> Result<(), MemFault> {
    let len = buf.len();
    let buf_cell = std::cell::RefCell::new(buf);
    for_each_line(
        m,
        core,
        mem,
        gva,
        len,
        Access::Read,
        user,
        |_, hpa, off, n| {
            mem.read_slice(hpa, &mut buf_cell.borrow_mut()[off..off + n]);
        },
    )
}

/// Writes `data` to guest-virtual memory, charging translation and cache
/// traffic.
pub fn write_bytes(
    m: &mut Machine,
    core: CpuId,
    mem: &mut HostMem,
    gva: Gva,
    data: &[u8],
    user: bool,
) -> Result<(), MemFault> {
    // Two-phase: translate/charge first (may fault), then commit.
    let mut spans: Vec<(Hpa, usize, usize)> = Vec::new();
    for_each_line(
        m,
        core,
        mem,
        gva,
        data.len(),
        Access::Write,
        user,
        |_, hpa, off, n| spans.push((hpa, off, n)),
    )?;
    for (hpa, off, n) in spans {
        mem.write_slice(hpa, &data[off..off + n]);
    }
    Ok(())
}

/// Charges `len` bytes of guest-virtual traffic at `gva` — identical
/// translation, TLB and cache accounting to [`read_bytes`] /
/// [`write_bytes`] — without moving any host bytes. The zero-copy call
/// path uses this when the payload is already staged host-side and only
/// the simulated cost of touching the shared buffer must be paid.
pub fn touch_bytes(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    len: usize,
    access: Access,
    user: bool,
) -> Result<(), MemFault> {
    for_each_line(m, core, mem, gva, len, access, user, |_, _, _, _| {})
}

/// Models executing `len` bytes of code at `gva`: fetches every overlapped
/// line through the i-TLB and L1i.
pub fn fetch_code(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    len: usize,
    user: bool,
) -> Result<(), MemFault> {
    for_each_line(m, core, mem, gva, len, Access::Fetch, user, |_, _, _, _| {})
}

/// Convenience: reads a guest-virtual little-endian `u64`.
pub fn read_u64(
    m: &mut Machine,
    core: CpuId,
    mem: &HostMem,
    gva: Gva,
    user: bool,
) -> Result<u64, MemFault> {
    let mut b = [0u8; 8];
    read_bytes(m, core, mem, gva, &mut b, user)?;
    Ok(u64::from_le_bytes(b))
}

/// Convenience: writes a guest-virtual little-endian `u64`.
pub fn write_u64(
    m: &mut Machine,
    core: CpuId,
    mem: &mut HostMem,
    gva: Gva,
    value: u64,
    user: bool,
) -> Result<(), MemFault> {
    write_bytes(m, core, mem, gva, &value.to_le_bytes(), user)
}

#[cfg(test)]
mod tests {
    use sb_sim::Machine;

    use super::*;
    use crate::{
        addr::PAGE_SIZE_1G,
        ept::{EptPerms, PageSize},
        paging::AddressSpace,
        phys::RESERVED_BYTES,
    };

    struct Env {
        m: Machine,
        mem: HostMem,
    }

    fn env() -> Env {
        Env {
            m: Machine::skylake(),
            mem: HostMem::new(),
        }
    }

    fn user_space(mem: &mut HostMem, pcid: u16) -> AddressSpace {
        let asp = AddressSpace::new(mem, pcid);
        asp.alloc_and_map(mem, Gva(0x40_0000), 4, PteFlags::USER_CODE);
        asp.alloc_and_map(mem, Gva(0x50_0000), 4, PteFlags::USER_DATA);
        asp
    }

    fn activate(m: &mut Machine, asp: &AddressSpace) {
        let cpu = m.cpu_mut(0);
        cpu.load_cr3(asp.root_gpa.0, asp.pcid);
    }

    #[test]
    fn bare_walk_costs_four_accesses_then_tlb_hits() {
        let mut e = env();
        let asp = user_space(&mut e.mem, 1);
        activate(&mut e.m, &asp);
        let before = e.m.cpu(0).pmu;
        write_u64(&mut e.m, 0, &mut e.mem, Gva(0x50_0000), 42, true).unwrap();
        let d = e.m.cpu(0).pmu.delta(&before);
        assert_eq!(d.walk_memory_accesses, 4);
        assert_eq!(d.dtlb_misses, 1);
        assert_eq!(d.page_walks, 1);
        // Second access: TLB hit, no walk.
        let before = e.m.cpu(0).pmu;
        assert_eq!(
            read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap(),
            42
        );
        let d = e.m.cpu(0).pmu.delta(&before);
        assert_eq!(d.walk_memory_accesses, 0);
        assert_eq!(d.dtlb_misses, 0);
    }

    #[test]
    fn nested_walk_under_4k_ept_costs_24_accesses() {
        let mut e = env();
        let asp = user_space(&mut e.mem, 1);
        // Build a 4 KiB-granularity identity EPT over the used region.
        let ept = Ept::new(&mut e.mem);
        for page in 0..16384u64 {
            let at = RESERVED_BYTES + page * PAGE_SIZE;
            ept.map(
                &mut e.mem,
                Gpa(at),
                Hpa(at),
                PageSize::Size4K,
                EptPerms::RWX,
            );
        }
        activate(&mut e.m, &asp);
        e.m.cpu_mut(0).load_eptp(ept.root.0);
        let before = e.m.cpu(0).pmu;
        read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap();
        let d = e.m.cpu(0).pmu.delta(&before);
        // 4 PTE reads, each preceded by a 4-entry EPT walk, plus the final
        // 4-entry EPT walk of the data GPA: 4*(4+1) + 4 = 24. This is the
        // §4.1 "at most 24 memory accesses" worst case.
        assert_eq!(d.walk_memory_accesses, 24);
    }

    #[test]
    fn nested_walk_under_1g_ept_costs_14_accesses() {
        let mut e = env();
        let asp = user_space(&mut e.mem, 1);
        let ept = Ept::new(&mut e.mem);
        ept.map_identity_range(
            &mut e.mem,
            0,
            2 * PAGE_SIZE_1G,
            PageSize::Size1G,
            EptPerms::RWX,
        );
        activate(&mut e.m, &asp);
        e.m.cpu_mut(0).load_eptp(ept.root.0);
        let before = e.m.cpu(0).pmu;
        read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap();
        let d = e.m.cpu(0).pmu.delta(&before);
        // 4 * (2 + 1) + 2 = 14: the Rootkernel's huge pages cut the nested
        // walk nearly in half.
        assert_eq!(d.walk_memory_accesses, 14);
    }

    #[test]
    fn write_to_read_only_page_faults() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_RO);
        activate(&mut e.m, &asp);
        let err = write_u64(&mut e.m, 0, &mut e.mem, Gva(0x6000), 1, true).unwrap_err();
        assert!(matches!(err, MemFault::Protection { write: true, .. }));
    }

    #[test]
    fn user_access_to_kernel_page_faults() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::KERNEL_DATA);
        activate(&mut e.m, &asp);
        let err = read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), true).unwrap_err();
        assert!(matches!(err, MemFault::Protection { user: true, .. }));
        // The kernel itself may read it.
        assert!(read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), false).is_ok());
    }

    #[test]
    fn fetch_from_nx_page_faults() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_DATA);
        activate(&mut e.m, &asp);
        let err = fetch_code(&mut e.m, 0, &e.mem, Gva(0x6000), 64, true).unwrap_err();
        assert!(matches!(err, MemFault::Protection { exec: true, .. }));
    }

    #[test]
    fn pkey_denied_access_faults() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_DATA.with_pkey(5));
        activate(&mut e.m, &asp);
        // Reset PKRU (0) permits every key.
        write_u64(&mut e.m, 0, &mut e.mem, Gva(0x6000), 9, true).unwrap();
        // Access-disable bit for key 5: both read and write fault.
        e.m.cpu_mut(0).write_pkru(1 << 10);
        let err = read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), true).unwrap_err();
        assert_eq!(
            err,
            MemFault::PkeyDenied {
                gva: Gva(0x6000),
                key: 5,
                write: false
            }
        );
        // Write-disable only: reads pass, writes fault.
        e.m.cpu_mut(0).write_pkru(1 << 11);
        assert_eq!(read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), true).unwrap(), 9);
        let err = write_u64(&mut e.m, 0, &mut e.mem, Gva(0x6000), 1, true).unwrap_err();
        assert!(matches!(
            err,
            MemFault::PkeyDenied {
                key: 5,
                write: true,
                ..
            }
        ));
        // A differently-keyed page is untouched by key 5's rights.
        asp.alloc_and_map(&mut e.mem, Gva(0x7000), 1, PteFlags::USER_DATA.with_pkey(3));
        write_u64(&mut e.m, 0, &mut e.mem, Gva(0x7000), 2, true).unwrap();
    }

    #[test]
    fn pkey_exempts_fetches_and_supervisor_mappings() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_CODE.with_pkey(5));
        asp.alloc_and_map(
            &mut e.mem,
            Gva(0x7000),
            1,
            PteFlags::KERNEL_DATA.with_pkey(5),
        );
        activate(&mut e.m, &asp);
        // Deny key 5 entirely: instruction fetches are still exempt
        // (PKRU guards data accesses only, as on hardware)...
        e.m.cpu_mut(0).write_pkru(0b11 << 10);
        fetch_code(&mut e.m, 0, &e.mem, Gva(0x6000), 64, true).unwrap();
        // ...and so are supervisor-only mappings.
        read_u64(&mut e.m, 0, &e.mem, Gva(0x7000), false).unwrap();
    }

    /// The property WRPPKRU domain switching leans on: flipping PKRU
    /// changes what a *cached* translation permits, because the pkey
    /// rides the TLB meta and is re-checked against the live register on
    /// every hit — no CR3 write, no shootdown, no re-walk.
    #[test]
    fn tlb_cached_pkey_still_enforced_after_pkru_flip() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_DATA.with_pkey(7));
        activate(&mut e.m, &asp);
        // Warm the TLB while the key is permitted.
        write_u64(&mut e.m, 0, &mut e.mem, Gva(0x6000), 1, true).unwrap();
        e.m.cpu_mut(0).write_pkru(1 << 14);
        let before = e.m.cpu(0).pmu;
        let err = read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), true).unwrap_err();
        assert!(matches!(err, MemFault::PkeyDenied { key: 7, .. }));
        let d = e.m.cpu(0).pmu.delta(&before);
        assert_eq!(d.page_walks, 0, "denied on the TLB-hit path, not a re-walk");
    }

    #[test]
    fn ept_violation_on_unmapped_gpa() {
        let mut e = env();
        let asp = user_space(&mut e.mem, 1);
        // EPT that maps nothing the process uses.
        let ept = Ept::new(&mut e.mem);
        ept.map_identity_range(
            &mut e.mem,
            PAGE_SIZE_1G,
            2 * PAGE_SIZE_1G,
            PageSize::Size2M,
            EptPerms::RWX,
        );
        activate(&mut e.m, &asp);
        e.m.cpu_mut(0).load_eptp(ept.root.0);
        let err = read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap_err();
        assert!(matches!(err, MemFault::EptViolation { .. }));
    }

    /// The heart of SkyBridge (§4.3): with the server EPT active, the
    /// *unchanged* CR3 value resolves through the server's page table.
    #[test]
    fn cr3_remap_switches_address_space_without_cr3_write() {
        let mut e = env();
        let client = user_space(&mut e.mem, 1);
        let server = user_space(&mut e.mem, 2);
        // Distinct contents at the same GVA in the two spaces.
        let mut m = Machine::skylake();
        activate(&mut m, &client);
        write_u64(&mut m, 0, &mut e.mem, Gva(0x50_0000), 0xc11e47, true).unwrap();
        activate(&mut m, &server);
        write_u64(&mut m, 0, &mut e.mem, Gva(0x50_0000), 0x5e47e4, true).unwrap();

        // Base EPT + server EPT with the CR3 remap.
        let base = Ept::new(&mut e.mem);
        base.map_identity_range(
            &mut e.mem,
            RESERVED_BYTES,
            PAGE_SIZE_1G,
            PageSize::Size2M,
            EptPerms::RWX,
        );
        base.map_identity_range(
            &mut e.mem,
            PAGE_SIZE_1G,
            4 * PAGE_SIZE_1G,
            PageSize::Size1G,
            EptPerms::RWX,
        );
        let (server_ept, _) = Ept::shallow_copy_with_remap(
            &mut e.mem,
            &base,
            client.root_gpa,
            Hpa(server.root_gpa.0),
        );

        // Client runs under the base EPT with its own CR3.
        activate(&mut e.m, &client);
        e.m.cpu_mut(0).load_eptp(base.root.0);
        assert_eq!(
            read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap(),
            0xc11e47
        );
        let cr3_writes_before = e.m.cpu(0).pmu.cr3_writes;

        // VMFUNC: only the EPT root changes. CR3 is untouched.
        e.m.cpu_mut(0).load_eptp(server_ept.root.0);
        assert_eq!(
            read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap(),
            0x5e47e4,
            "same GVA and same CR3 must now resolve in the server space"
        );
        assert_eq!(e.m.cpu(0).pmu.cr3_writes, cr3_writes_before);

        // Switch back: the client's view is restored.
        e.m.cpu_mut(0).load_eptp(base.root.0);
        assert_eq!(
            read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap(),
            0xc11e47
        );
    }

    #[test]
    fn tlb_entries_survive_eptp_switch_but_do_not_leak() {
        let mut e = env();
        let client = user_space(&mut e.mem, 1);
        let server = user_space(&mut e.mem, 2);
        let base = Ept::new(&mut e.mem);
        base.map_identity_range(
            &mut e.mem,
            RESERVED_BYTES,
            PAGE_SIZE_1G,
            PageSize::Size2M,
            EptPerms::RWX,
        );
        let (server_ept, _) = Ept::shallow_copy_with_remap(
            &mut e.mem,
            &base,
            client.root_gpa,
            Hpa(server.root_gpa.0),
        );
        activate(&mut e.m, &client);
        e.m.cpu_mut(0).load_eptp(base.root.0);
        read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap();
        let resident = e.m.cpu(0).dtlb.resident();

        // VMFUNC to the server EPT: the cached client translation must not
        // be reachable (it has a different EPT-root tag)…
        e.m.cpu_mut(0).load_eptp(server_ept.root.0);
        let before = e.m.cpu(0).pmu;
        read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap();
        assert_eq!(e.m.cpu(0).pmu.delta(&before).dtlb_misses, 1);
        // …but it is still resident: VMFUNC does not flush (VPID).
        assert!(e.m.cpu(0).dtlb.resident() > resident);

        // Returning to the client EPT hits the surviving entry.
        e.m.cpu_mut(0).load_eptp(base.root.0);
        let before = e.m.cpu(0).pmu;
        read_u64(&mut e.m, 0, &e.mem, Gva(0x50_0000), true).unwrap();
        assert_eq!(e.m.cpu(0).pmu.delta(&before).dtlb_misses, 0);
    }

    #[test]
    fn read_write_roundtrip_across_pages() {
        let mut e = env();
        let asp = user_space(&mut e.mem, 1);
        activate(&mut e.m, &asp);
        let data: Vec<u8> = (0..6000).map(|i| (i % 255) as u8).collect();
        write_bytes(&mut e.m, 0, &mut e.mem, Gva(0x50_0100), &data, true).unwrap();
        let mut out = vec![0u8; data.len()];
        read_bytes(&mut e.m, 0, &e.mem, Gva(0x50_0100), &mut out, true).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn faulting_write_commits_nothing() {
        let mut e = env();
        let asp = AddressSpace::new(&mut e.mem, 1);
        asp.alloc_and_map(&mut e.mem, Gva(0x6000), 1, PteFlags::USER_DATA);
        // Page at 0x7000 is unmapped: a straddling write must fault whole.
        activate(&mut e.m, &asp);
        write_u64(&mut e.m, 0, &mut e.mem, Gva(0x6000), 0x1111, true).unwrap();
        let data = vec![0xaau8; 8192];
        assert!(write_bytes(&mut e.m, 0, &mut e.mem, Gva(0x6000), &data, true).is_err());
        assert_eq!(
            read_u64(&mut e.m, 0, &e.mem, Gva(0x6000), true).unwrap(),
            0x1111,
            "partial write must not be visible"
        );
    }
}
