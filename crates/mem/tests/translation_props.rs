//! Property tests of the translation machinery: the charged hardware
//! walker must agree with the setup-time walker for every mapping, under
//! every EPT, with any TLB state.

use proptest::prelude::*;
use sb_mem::{
    ept::{Ept, EptPerms, PageSize},
    paging::{AddressSpace, PteFlags},
    phys::RESERVED_BYTES,
    walk::{self, Access},
    Gpa, Gva, HostMem, Hpa, PAGE_SIZE,
};
use sb_sim::Machine;

fn arb_flags() -> impl Strategy<Value = PteFlags> {
    (any::<bool>(), any::<bool>(), 0u8..16).prop_map(|(write, exec, pkey)| PteFlags {
        write,
        user: true,
        exec,
        pkey,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Charged translation equals setup translation (identity EPT), for
    /// random sparse mappings and random access orders.
    #[test]
    fn charged_walk_matches_setup_walk(
        pages in proptest::collection::btree_map(0u64..512, arb_flags(), 1..24),
        accesses in proptest::collection::vec(0u64..512, 1..64),
    ) {
        let mut m = Machine::skylake();
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 3);
        let base = 0x4000_0000u64;
        for (&page, &flags) in &pages {
            asp.alloc_and_map(
                &mut mem,
                Gva(base + page * PAGE_SIZE),
                1,
                flags,
            );
        }
        m.cpu_mut(0).load_cr3(asp.root_gpa.0, 3);
        for page in accesses {
            let gva = Gva(base + page * PAGE_SIZE + (page % 4000));
            let charged = walk::translate(&mut m, 0, &mem, gva, Access::Read, true);
            let setup = asp.translate_setup(&mem, gva);
            match (charged, setup) {
                (Ok(hpa), Ok((gpa, _))) => prop_assert_eq!(hpa.0, gpa.0),
                (Err(_), Err(_)) => {}
                (c, s) => prop_assert!(
                    false,
                    "walkers disagree at {gva:?}: charged={c:?} setup={s:?}"
                ),
            }
        }
    }

    /// Under the huge-page base EPT plus a CR3-remapped binding EPT,
    /// switching EPT roots swaps which process's bytes are visible —
    /// for arbitrary page sets and values.
    #[test]
    fn cr3_remap_swaps_views(
        pages in proptest::collection::btree_set(0u64..64, 1..12),
        seed in any::<u64>(),
    ) {
        let mut m = Machine::skylake();
        let mut mem = HostMem::new();
        let client = AddressSpace::new(&mut mem, 1);
        let server = AddressSpace::new(&mut mem, 2);
        let base = 0x5000_0000u64;
        for &p in &pages {
            client.alloc_and_map(&mut mem, Gva(base + p * PAGE_SIZE), 1, PteFlags::USER_DATA);
            server.alloc_and_map(&mut mem, Gva(base + p * PAGE_SIZE), 1, PteFlags::USER_DATA);
        }
        let base_ept = Ept::new(&mut mem);
        base_ept.map_identity_range(&mut mem, RESERVED_BYTES, 1 << 30, PageSize::Size2M, EptPerms::RWX);
        let (bind, _) = Ept::shallow_copy_with_remap(
            &mut mem,
            &base_ept,
            client.root_gpa,
            Hpa(server.root_gpa.0),
        );
        // Write distinct values through each view.
        m.cpu_mut(0).load_cr3(client.root_gpa.0, 1);
        m.cpu_mut(0).load_eptp(base_ept.root.0);
        for &p in &pages {
            walk::write_u64(&mut m, 0, &mut mem, Gva(base + p * PAGE_SIZE), seed ^ p, true).unwrap();
        }
        m.cpu_mut(0).load_eptp(bind.root.0); // VMFUNC; CR3 untouched.
        for &p in &pages {
            walk::write_u64(&mut m, 0, &mut mem, Gva(base + p * PAGE_SIZE), !(seed ^ p), true).unwrap();
        }
        // Verify both views read back their own values.
        m.cpu_mut(0).load_eptp(base_ept.root.0);
        for &p in &pages {
            prop_assert_eq!(
                walk::read_u64(&mut m, 0, &mem, Gva(base + p * PAGE_SIZE), true).unwrap(),
                seed ^ p
            );
        }
        m.cpu_mut(0).load_eptp(bind.root.0);
        for &p in &pages {
            prop_assert_eq!(
                walk::read_u64(&mut m, 0, &mem, Gva(base + p * PAGE_SIZE), true).unwrap(),
                !(seed ^ p)
            );
        }
    }

    /// The EPT identity map is really the identity over its covered range,
    /// at any granule.
    #[test]
    fn identity_ept_is_identity(
        offsets in proptest::collection::vec(0u64..(1u64 << 30), 1..32),
        granule in prop_oneof![Just(PageSize::Size2M), Just(PageSize::Size4K)],
    ) {
        let mut mem = HostMem::new();
        let ept = Ept::new(&mut mem);
        match granule {
            PageSize::Size4K => {
                // 4 KiB over a small window only (construction cost).
                for page in 0..1024u64 {
                    let at = RESERVED_BYTES + page * PAGE_SIZE;
                    ept.map(&mut mem, Gpa(at), Hpa(at), PageSize::Size4K, EptPerms::RWX);
                }
                for off in offsets {
                    let gpa = Gpa(RESERVED_BYTES + off % (1024 * PAGE_SIZE));
                    prop_assert_eq!(ept.translate(&mem, gpa).unwrap().hpa.0, gpa.0);
                }
            }
            _ => {
                ept.map_identity_range(&mut mem, RESERVED_BYTES, 1 << 30, PageSize::Size2M, EptPerms::RWX);
                for off in offsets {
                    let gpa = Gpa(RESERVED_BYTES + off % ((1 << 30) - RESERVED_BYTES));
                    prop_assert_eq!(ept.translate(&mem, gpa).unwrap().hpa.0, gpa.0);
                }
            }
        }
    }

    /// Memory written through the charged path reads back identically
    /// through both paths, for random spans (page-straddling included).
    #[test]
    fn write_read_bytes_roundtrip(
        off in 0usize..8000,
        data in proptest::collection::vec(any::<u8>(), 1..6000),
    ) {
        let mut m = Machine::skylake();
        let mut mem = HostMem::new();
        let asp = AddressSpace::new(&mut mem, 5);
        asp.alloc_and_map(&mut mem, Gva(0x9000_0000), 4, PteFlags::USER_DATA);
        m.cpu_mut(0).load_cr3(asp.root_gpa.0, 5);
        let off = off.min(16384 - data.len());
        let gva = Gva(0x9000_0000 + off as u64);
        walk::write_bytes(&mut m, 0, &mut mem, gva, &data, true).unwrap();
        let mut out = vec![0u8; data.len()];
        walk::read_bytes(&mut m, 0, &mem, gva, &mut out, true).unwrap();
        prop_assert_eq!(out, data);
    }
}
