//! Synchronous IPC: call and reply, with Figure 7-style breakdowns.
//!
//! Every path really executes on the simulated machine: kernel text is
//! fetched, message bytes move between address spaces, CR3 loads are
//! charged, IPIs join core clocks. The returned [`Breakdown`] attributes
//! the *measured* cycles of each step to the component buckets Figure 7
//! uses, so the bench binary can print the same stacked bars.

use sb_mem::MemFault;
use sb_sim::{AccessKind, CpuId, Cycles};

use crate::{
    kernel::Kernel,
    layout,
    process::{Capability, ThreadId, ThreadState},
};

/// Figure 7's cost components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// `VMFUNC` (SkyBridge only).
    Vmfunc,
    /// `SYSCALL`/`SYSRET`/`SWAPGS` mode switching.
    SyscallSysret,
    /// Address-space switches (CR3 writes, including KPTI's).
    ContextSwitch,
    /// Inter-processor interrupts.
    Ipi,
    /// Message copying.
    MessageCopy,
    /// Scheduler involvement.
    Schedule,
    /// Everything else (capability checks, endpoint bookkeeping, kernel
    /// cache footprint, drq drains).
    Other,
}

impl Component {
    /// All components in Figure 7's legend order.
    pub const ALL: [Component; 7] = [
        Component::Vmfunc,
        Component::SyscallSysret,
        Component::ContextSwitch,
        Component::Ipi,
        Component::MessageCopy,
        Component::Schedule,
        Component::Other,
    ];

    /// The legend label used in Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            Component::Vmfunc => "VMFUNC",
            Component::SyscallSysret => "SYSCALL/SYSRET",
            Component::ContextSwitch => "context switch",
            Component::Ipi => "IPI",
            Component::MessageCopy => "message copy",
            Component::Schedule => "schedule",
            Component::Other => "others",
        }
    }
}

/// Cycles attributed per component for one operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    parts: Vec<(Component, Cycles)>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds cycles to a component (merging with an existing entry).
    pub fn add(&mut self, component: Component, cycles: Cycles) {
        if cycles == 0 {
            return;
        }
        if let Some(e) = self.parts.iter_mut().find(|(c, _)| *c == component) {
            e.1 += cycles;
        } else {
            self.parts.push((component, cycles));
        }
    }

    /// Cycles attributed to one component.
    pub fn get(&self, component: Component) -> Cycles {
        self.parts
            .iter()
            .find(|(c, _)| *c == component)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum over all components.
    pub fn total(&self) -> Cycles {
        self.parts.iter().map(|(_, v)| v).sum()
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for &(c, v) in &other.parts {
            self.add(c, v);
        }
    }

    /// Divides every bucket by `n` (averaging repeated runs).
    pub fn scaled_down(&self, n: u64) -> Breakdown {
        let mut out = Breakdown::new();
        for &(c, v) in &self.parts {
            out.add(c, v / n);
        }
        out
    }
}

/// Why an IPC was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcError {
    /// The capability slot is empty.
    NoCapability,
    /// The capability lacks the needed right.
    NoSendRight,
    /// No server thread is bound to the endpoint.
    NoServer,
    /// The server thread is not blocked in `recv`.
    ServerNotReady,
    /// Message exceeds the per-thread buffer.
    MessageTooLarge,
    /// A translation fault while moving the message.
    Fault(MemFault),
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::NoCapability => write!(f, "empty capability slot"),
            IpcError::NoSendRight => write!(f, "capability lacks send right"),
            IpcError::NoServer => write!(f, "endpoint has no server"),
            IpcError::ServerNotReady => write!(f, "server not in recv"),
            IpcError::MessageTooLarge => write!(f, "message too large"),
            IpcError::Fault(e) => write!(f, "fault during transfer: {e}"),
        }
    }
}

impl std::error::Error for IpcError {}

impl From<MemFault> for IpcError {
    fn from(f: MemFault) -> Self {
        IpcError::Fault(f)
    }
}

impl Kernel {
    fn tsc(&self, core: CpuId) -> Cycles {
        self.machine.cpu(core).tsc
    }

    /// Reads `len` message bytes out of `from`'s buffer under the *source*
    /// address space (which must be active on `read_core`), charging per
    /// the personality's copy regime. Returns the staged bytes; they are
    /// written into the destination space by
    /// [`Kernel::deliver_message`] *after* the address-space switch — a
    /// kernel cannot dereference the destination buffer before the
    /// receiver's mappings are in reach.
    fn read_message(
        &mut self,
        b: &mut Breakdown,
        from: ThreadId,
        len: usize,
        read_core: CpuId,
    ) -> Result<Option<Vec<u8>>, IpcError> {
        if len == 0 {
            return Ok(None);
        }
        let src = self.threads[from].msg_buf;
        let mut data = vec![0u8; len];
        let p = self.personality.clone();
        if len <= p.register_msg_max {
            // In-register transfer: no memory copy is charged; move the
            // bytes for functional fidelity only.
            let from_asp = self.processes[self.threads[from].process].asp;
            let (gpa, _) = from_asp.translate_setup(&self.mem, src).unwrap();
            self.mem.read_slice(sb_mem::Hpa(gpa.0), &mut data);
            return Ok(Some(data));
        }
        let t0 = self.tsc(read_core);
        if p.temporary_mapping {
            // §8.1 (L4's temporary mapping): the kernel maps the sender's
            // buffer into the receiver and the receiver-side write *is*
            // the single copy; here we only pay the map/unmap and read the
            // bytes out for delivery (the charged copy happens at
            // deliver time).
            const MAP_UNMAP: Cycles = 350;
            self.machine.cpu_mut(read_core).advance(MAP_UNMAP);
            let from_asp = self.processes[self.threads[from].process].asp;
            let mut off = 0usize;
            while off < len {
                let at = src.add(off as u64);
                let n = ((sb_mem::PAGE_SIZE - at.page_offset()) as usize).min(len - off);
                let (gpa, _) = from_asp.translate_setup(&self.mem, at).unwrap();
                self.mem
                    .read_slice(sb_mem::Hpa(gpa.0), &mut data[off..off + n]);
                off += n;
            }
            b.add(Component::MessageCopy, self.tsc(read_core) - t0);
            return Ok(Some(data));
        }
        sb_mem::walk::read_bytes(
            &mut self.machine,
            read_core,
            &self.mem,
            src,
            &mut data,
            false,
        )?;
        let words = len.div_ceil(8) as Cycles;
        let per_copy = p.copy_setup + words * self.machine.cost.copy_per_word;
        self.machine.cpu_mut(read_core).advance(per_copy);
        if p.copies_per_transfer >= 2 {
            // Zircon: stage through an in-kernel channel buffer.
            for off in (0..len).step_by(64) {
                let hpa = self.kernel_copy_buf_hpa() + off as u64;
                self.machine
                    .mem_access(read_core, hpa, AccessKind::DataWrite);
            }
            self.machine.cpu_mut(read_core).advance(per_copy);
        }
        b.add(Component::MessageCopy, self.tsc(read_core) - t0);
        Ok(Some(data))
    }

    /// Writes staged message bytes into `to`'s buffer under the receiver's
    /// address space (active on `write_core`).
    fn deliver_message(
        &mut self,
        b: &mut Breakdown,
        to: ThreadId,
        data: Option<Vec<u8>>,
        write_core: CpuId,
    ) -> Result<(), IpcError> {
        let Some(data) = data else { return Ok(()) };
        let dst = self.threads[to].msg_buf;
        if data.len() <= self.personality.register_msg_max {
            let to_asp = self.processes[self.threads[to].process].asp;
            let (gpa, _) = to_asp.translate_setup(&self.mem, dst).unwrap();
            self.mem.write_slice(sb_mem::Hpa(gpa.0), &data);
            return Ok(());
        }
        let t0 = self.tsc(write_core);
        sb_mem::walk::write_bytes(
            &mut self.machine,
            write_core,
            &mut self.mem,
            dst,
            &data,
            false,
        )?;
        b.add(Component::MessageCopy, self.tsc(write_core) - t0);
        Ok(())
    }

    fn kernel_copy_buf_hpa(&self) -> u64 {
        // Reuse the upper half of the kernel data region as channel
        // buffers.
        self.kernel_data_region() + 128 * 1024
    }

    /// Synchronous call: the client sends `msg_len` bytes from its message
    /// buffer through the capability in `cap_slot` and control transfers
    /// to the serving thread. On return the server is current on its core,
    /// ready to run the handler; the client is reply-blocked.
    pub fn ipc_call(
        &mut self,
        client: ThreadId,
        cap_slot: usize,
        msg_len: usize,
    ) -> Result<Breakdown, IpcError> {
        let cthread = self.threads[client].clone();
        let ccore = cthread.core;
        debug_assert_eq!(self.current_thread(ccore), Some(client));
        // Capability + endpoint resolution (validated before any charge;
        // the in-kernel check cost is part of the personality's logic).
        let Capability::Endpoint { endpoint, rights } = self.processes[cthread.process]
            .cap(cap_slot)
            .ok_or(IpcError::NoCapability)?;
        if !rights.send {
            return Err(IpcError::NoSendRight);
        }
        let server = self.endpoints[endpoint].server.ok_or(IpcError::NoServer)?;
        let sthread = self.threads[server].clone();
        if sthread.state != ThreadState::RecvBlocked {
            return Err(IpcError::ServerNotReady);
        }
        if msg_len > layout::MSG_BUF_SIZE {
            return Err(IpcError::MessageTooLarge);
        }

        let p = self.personality.clone();
        let score = sthread.core;
        let same_core = score == ccore;
        let fast = same_core && p.has_fastpath && msg_len <= p.register_msg_max;
        let mut b = Breakdown::new();

        // Kernel entry on the client core.
        let (mode, kpti) = self.mode_switch(ccore);
        b.add(Component::SyscallSysret, mode);
        b.add(Component::ContextSwitch, kpti);
        let t0 = self.tsc(ccore);
        self.kernel_work_seeded(
            ccore,
            if fast { p.text_fast } else { p.text_slow },
            p.data_touch,
            endpoint,
        );
        b.add(Component::Other, self.tsc(ccore) - t0);

        if fast {
            let logic = p.fastpath_logic + p.drq_cost;
            self.machine.cpu_mut(ccore).advance(logic);
            b.add(Component::Other, logic);
            let msg = self.read_message(&mut b, client, msg_len, ccore)?;
            let t0 = self.tsc(ccore);
            self.switch_address_space(ccore, sthread.process);
            b.add(Component::ContextSwitch, self.tsc(ccore) - t0);
            self.deliver_message(&mut b, server, msg, ccore)?;
            self.finish_transfer_to(ccore, client, server);
        } else if same_core {
            let logic = p.slowpath_logic;
            self.machine.cpu_mut(ccore).advance(logic);
            b.add(Component::Other, logic);
            let msg = self.read_message(&mut b, client, msg_len, ccore)?;
            self.machine.cpu_mut(ccore).advance(p.schedule_cost);
            b.add(Component::Schedule, p.schedule_cost);
            let t0 = self.tsc(ccore);
            self.switch_address_space(ccore, sthread.process);
            b.add(Component::ContextSwitch, self.tsc(ccore) - t0);
            self.deliver_message(&mut b, server, msg, ccore)?;
            self.finish_transfer_to(ccore, client, server);
        } else {
            // Cross-core: enqueue, IPI, remote wakeup + schedule.
            let logic = p.slowpath_logic;
            self.machine.cpu_mut(ccore).advance(logic);
            b.add(Component::Other, logic);
            let msg = self.read_message(&mut b, client, msg_len, ccore)?;
            self.machine.ipi(ccore, score);
            b.add(Component::Ipi, self.machine.cost.ipi);
            self.current_set(ccore, None);
            // Remote core: interrupt entry, slowpath, schedule the server.
            let (m2, k2) = self.mode_switch(score);
            b.add(Component::SyscallSysret, m2);
            b.add(Component::ContextSwitch, k2);
            let t0 = self.tsc(score);
            self.kernel_work_seeded(score, p.text_slow, p.data_touch, endpoint);
            b.add(Component::Other, self.tsc(score) - t0);
            let sched = p.schedule_cost + p.cross_core_extra;
            self.machine.cpu_mut(score).advance(sched);
            b.add(Component::Schedule, sched);
            let t0 = self.tsc(score);
            self.switch_address_space(score, sthread.process);
            b.add(Component::ContextSwitch, self.tsc(score) - t0);
            self.deliver_message(&mut b, server, msg, score)?;
            self.finish_transfer_to(score, client, server);
        }
        self.ipc_count += 1;
        Ok(b)
    }

    /// Reply: control returns from `server` to the reply-blocked `client`;
    /// the server re-enters `recv` on its endpoint (`ReplyWait`).
    pub fn ipc_reply(
        &mut self,
        server: ThreadId,
        client: ThreadId,
        reply_len: usize,
    ) -> Result<Breakdown, IpcError> {
        let sthread = self.threads[server].clone();
        let cthread = self.threads[client].clone();
        let score = sthread.core;
        let ccore = cthread.core;
        debug_assert_eq!(self.current_thread(score), Some(server));
        if cthread.state != ThreadState::ReplyBlocked {
            return Err(IpcError::ServerNotReady);
        }
        if reply_len > layout::MSG_BUF_SIZE {
            return Err(IpcError::MessageTooLarge);
        }
        let p = self.personality.clone();
        let same_core = score == ccore;
        let fast = same_core && p.has_fastpath && reply_len <= p.register_msg_max;
        let mut b = Breakdown::new();

        let (mode, kpti) = self.mode_switch(score);
        b.add(Component::SyscallSysret, mode);
        b.add(Component::ContextSwitch, kpti);
        let t0 = self.tsc(score);
        self.kernel_work_seeded(
            score,
            if fast { p.text_fast } else { p.text_slow },
            p.data_touch,
            server,
        );
        b.add(Component::Other, self.tsc(score) - t0);

        let mut reply_msg;
        if fast {
            let logic = p.fastpath_logic + p.drq_cost;
            self.machine.cpu_mut(score).advance(logic);
            b.add(Component::Other, logic);
            reply_msg = self.read_message(&mut b, server, reply_len, score)?;
            let t0 = self.tsc(score);
            self.switch_address_space(score, cthread.process);
            b.add(Component::ContextSwitch, self.tsc(score) - t0);
            self.deliver_message(&mut b, client, reply_msg.take(), score)?;
        } else if same_core {
            let logic = p.slowpath_logic;
            self.machine.cpu_mut(score).advance(logic);
            b.add(Component::Other, logic);
            reply_msg = self.read_message(&mut b, server, reply_len, score)?;
            self.machine.cpu_mut(score).advance(p.schedule_cost);
            b.add(Component::Schedule, p.schedule_cost);
            let t0 = self.tsc(score);
            self.switch_address_space(score, cthread.process);
            b.add(Component::ContextSwitch, self.tsc(score) - t0);
            self.deliver_message(&mut b, client, reply_msg.take(), score)?;
        } else {
            let logic = p.slowpath_logic;
            self.machine.cpu_mut(score).advance(logic);
            b.add(Component::Other, logic);
            reply_msg = self.read_message(&mut b, server, reply_len, score)?;
            self.machine.ipi(score, ccore);
            b.add(Component::Ipi, self.machine.cost.ipi);
            self.current_set(score, None);
            let (m2, k2) = self.mode_switch(ccore);
            b.add(Component::SyscallSysret, m2);
            b.add(Component::ContextSwitch, k2);
            let t0 = self.tsc(ccore);
            self.kernel_work_seeded(ccore, p.text_slow, p.data_touch, server);
            b.add(Component::Other, self.tsc(ccore) - t0);
            let sched = p.schedule_cost + p.cross_core_extra;
            self.machine.cpu_mut(ccore).advance(sched);
            b.add(Component::Schedule, sched);
            let t0 = self.tsc(ccore);
            self.switch_address_space(ccore, cthread.process);
            b.add(Component::ContextSwitch, self.tsc(ccore) - t0);
            self.deliver_message(&mut b, client, reply_msg.take(), ccore)?;
        }
        let _ = reply_msg;
        // Client resumes; server returns to recv.
        self.threads[client].state = ThreadState::Ready;
        self.current_set(ccore, Some(client));
        self.threads[server].state = ThreadState::RecvBlocked;
        if same_core {
            // The server is no longer current; the client is.
        } else {
            self.current_set(score, None);
        }
        Ok(b)
    }

    /// One empty-message call/reply roundtrip (the Figure 7 microbench
    /// unit), returning the merged breakdown.
    pub fn ipc_roundtrip(
        &mut self,
        client: ThreadId,
        cap_slot: usize,
        server: ThreadId,
    ) -> Result<Breakdown, IpcError> {
        let mut b = self.ipc_call(client, cap_slot, 0)?;
        let reply = self.ipc_reply(server, client, 0)?;
        b.merge(&reply);
        Ok(b)
    }

    fn finish_transfer_to(&mut self, core: CpuId, client: ThreadId, server: ThreadId) {
        self.threads[client].state = ThreadState::ReplyBlocked;
        self.threads[server].state = ThreadState::Ready;
        self.current_set(core, Some(server));
    }
}

#[cfg(test)]
mod tests {
    use crate::{kernel::KernelConfig, personality::Personality};

    use super::*;

    struct Rig {
        k: Kernel,
        client: ThreadId,
        server: ThreadId,
        send_slot: usize,
    }

    fn rig(personality: Personality, server_core: CpuId) -> Rig {
        let mut k = Kernel::boot(KernelConfig::native(personality));
        let code = vec![0x90u8; 4096];
        let cp = k.create_process(&code);
        let sp = k.create_process(&code);
        let client = k.create_thread(cp, 0);
        let server = k.create_thread(sp, server_core);
        let (ep, _) = k.create_endpoint(sp);
        let send_slot = k.grant_send(cp, ep);
        k.server_recv(server, ep);
        k.run_thread(client);
        Rig {
            k,
            client,
            server,
            send_slot,
        }
    }

    fn steady_roundtrip(r: &mut Rig, warmup: usize) -> Breakdown {
        for _ in 0..warmup {
            r.k.ipc_roundtrip(r.client, r.send_slot, r.server).unwrap();
        }
        r.k.ipc_roundtrip(r.client, r.send_slot, r.server).unwrap()
    }

    #[test]
    fn sel4_fastpath_roundtrip_near_986() {
        let mut r = rig(Personality::sel4(), 0);
        let b = steady_roundtrip(&mut r, 50);
        let t = b.total();
        assert!(
            (930..=1120).contains(&t),
            "seL4 fastpath roundtrip {t} not near the paper's 986"
        );
        assert_eq!(b.get(Component::Ipi), 0);
        assert_eq!(b.get(Component::Schedule), 0);
        // Direct-cost identities.
        assert_eq!(b.get(Component::SyscallSysret), 2 * 209);
        assert_eq!(b.get(Component::ContextSwitch), 2 * 186);
    }

    #[test]
    fn sel4_cross_core_pays_two_ipis() {
        let mut r = rig(Personality::sel4(), 1);
        let b = steady_roundtrip(&mut r, 50);
        assert_eq!(b.get(Component::Ipi), 2 * 1913);
        assert!(b.get(Component::Schedule) > 0);
        let t = b.total();
        assert!(
            (6000..=7600).contains(&t),
            "seL4 cross-core roundtrip {t} not near the paper's 6764"
        );
    }

    #[test]
    fn fiasco_fastpath_slower_than_sel4() {
        let mut rs = rig(Personality::sel4(), 0);
        let mut rf = rig(Personality::fiasco_oc(), 0);
        let s = steady_roundtrip(&mut rs, 50).total();
        let f = steady_roundtrip(&mut rf, 50).total();
        assert!(f > s, "Fiasco ({f}) must be slower than seL4 ({s})");
        assert!(
            (2400..=3100).contains(&f),
            "Fiasco roundtrip {f} not near the paper's 2717"
        );
    }

    #[test]
    fn zircon_always_schedules_and_copies_twice() {
        let mut r = rig(Personality::zircon(), 0);
        let b = steady_roundtrip(&mut r, 50);
        assert!(b.get(Component::Schedule) > 0, "no fastpath in Zircon");
        let t = b.total();
        assert!(
            (7300..=9100).contains(&t),
            "Zircon roundtrip {t} not near the paper's 8157"
        );
    }

    #[test]
    fn zircon_cross_core_near_20099() {
        let mut r = rig(Personality::zircon(), 1);
        let t = steady_roundtrip(&mut r, 50).total();
        assert!(
            (18000..=22500).contains(&t),
            "Zircon cross-core roundtrip {t} not near the paper's 20099"
        );
    }

    #[test]
    fn message_bytes_are_delivered() {
        let mut r = rig(Personality::sel4(), 0);
        let msg = b"query:k123".to_vec();
        r.k.user_write(r.client, r.k.threads[r.client].msg_buf, &msg)
            .unwrap();
        r.k.ipc_call(r.client, r.send_slot, msg.len()).unwrap();
        // Server is now current; read its buffer.
        let mut got = vec![0u8; msg.len()];
        r.k.user_read(r.server, r.k.threads[r.server].msg_buf, &mut got)
            .unwrap();
        assert_eq!(got, msg);
        r.k.ipc_reply(r.server, r.client, 0).unwrap();
    }

    #[test]
    fn large_message_charges_copy() {
        let mut r = rig(Personality::sel4(), 0);
        let msg = vec![7u8; 1024];
        r.k.user_write(r.client, r.k.threads[r.client].msg_buf, &msg)
            .unwrap();
        let b = r.k.ipc_call(r.client, r.send_slot, msg.len()).unwrap();
        assert!(b.get(Component::MessageCopy) > 0);
        r.k.ipc_reply(r.server, r.client, 0).unwrap();
    }

    #[test]
    fn register_sized_message_is_free_of_copies() {
        let mut r = rig(Personality::sel4(), 0);
        let msg = vec![7u8; 32];
        r.k.user_write(r.client, r.k.threads[r.client].msg_buf, &msg)
            .unwrap();
        let b = r.k.ipc_call(r.client, r.send_slot, msg.len()).unwrap();
        assert_eq!(b.get(Component::MessageCopy), 0);
        r.k.ipc_reply(r.server, r.client, 0).unwrap();
    }

    #[test]
    fn capability_enforcement() {
        let mut r = rig(Personality::sel4(), 0);
        // Slot beyond the table.
        assert_eq!(r.k.ipc_call(r.client, 99, 0), Err(IpcError::NoCapability));
        // A recv-only capability cannot send: give the client one.
        let ep = r.k.endpoints[0].id;
        let cp = r.k.threads[r.client].process;
        let slot = r.k.processes[cp].grant(Capability::Endpoint {
            endpoint: ep,
            rights: crate::process::CapRights::RECV,
        });
        assert_eq!(r.k.ipc_call(r.client, slot, 0), Err(IpcError::NoSendRight));
    }

    #[test]
    fn call_to_busy_server_is_refused() {
        let mut r = rig(Personality::sel4(), 0);
        r.k.ipc_call(r.client, r.send_slot, 0).unwrap();
        // Server is running (not in recv); a second call must fail.
        // (Re-run the client on core 0 to attempt it.)
        r.k.threads[r.client].state = ThreadState::Ready;
        r.k.run_thread(r.client);
        assert_eq!(
            r.k.ipc_call(r.client, r.send_slot, 0),
            Err(IpcError::ServerNotReady)
        );
    }

    #[test]
    fn kpti_doubles_context_switch_cost() {
        let mut k = Kernel::boot(KernelConfig {
            kpti: true,
            ..KernelConfig::native(Personality::sel4())
        });
        let code = vec![0x90u8; 4096];
        let cp = k.create_process(&code);
        let sp = k.create_process(&code);
        let client = k.create_thread(cp, 0);
        let server = k.create_thread(sp, 0);
        let (ep, _) = k.create_endpoint(sp);
        let slot = k.grant_send(cp, ep);
        k.server_recv(server, ep);
        k.run_thread(client);
        for _ in 0..20 {
            k.ipc_roundtrip(client, slot, server).unwrap();
        }
        let b = k.ipc_roundtrip(client, slot, server).unwrap();
        // 2 switches per one-way = 4 CR3 writes per roundtrip = 744.
        assert_eq!(b.get(Component::ContextSwitch), 4 * 186);
    }

    #[test]
    fn temporary_mapping_halves_long_message_copies() {
        let mut plain = rig(Personality::sel4(), 0);
        let mut tmpmap = rig(Personality::sel4().with_temporary_mapping(), 0);
        let msg = vec![3u8; 2048];
        for r in [&mut plain, &mut tmpmap] {
            r.k.user_write(r.client, r.k.threads[r.client].msg_buf, &msg)
                .unwrap();
            for _ in 0..16 {
                r.k.ipc_call(r.client, r.send_slot, msg.len()).unwrap();
                r.k.ipc_reply(r.server, r.client, 0).unwrap();
            }
        }
        let b_plain = plain
            .k
            .ipc_call(plain.client, plain.send_slot, msg.len())
            .unwrap();
        let b_tmp = tmpmap
            .k
            .ipc_call(tmpmap.client, tmpmap.send_slot, msg.len())
            .unwrap();
        assert!(
            b_tmp.get(Component::MessageCopy) < b_plain.get(Component::MessageCopy),
            "temporary mapping must cut the copy cost: {} vs {}",
            b_tmp.get(Component::MessageCopy),
            b_plain.get(Component::MessageCopy)
        );
        // Bytes still arrive.
        let mut got = vec![0u8; msg.len()];
        let srv = tmpmap.server;
        tmpmap
            .k
            .user_read(srv, tmpmap.k.threads[srv].msg_buf, &mut got)
            .unwrap();
        assert_eq!(got, msg);
        tmpmap.k.ipc_reply(srv, tmpmap.client, 0).unwrap();
        plain.k.ipc_reply(plain.server, plain.client, 0).unwrap();
    }

    #[test]
    fn breakdown_merge_and_scale() {
        let mut a = Breakdown::new();
        a.add(Component::Ipi, 100);
        a.add(Component::Other, 50);
        let mut b = Breakdown::new();
        b.add(Component::Ipi, 100);
        a.merge(&b);
        assert_eq!(a.get(Component::Ipi), 200);
        assert_eq!(a.total(), 250);
        let s = a.scaled_down(2);
        assert_eq!(s.get(Component::Ipi), 100);
        assert_eq!(s.get(Component::Other), 25);
    }
}
