//! The kernel facade: boot, processes, threads, scheduling, kernel entry.

use std::collections::VecDeque;

use sb_mem::{AddressSpace, Gpa, Gva, HostMem, MemFault, PteFlags, PAGE_SIZE};
use sb_rootkernel::{Rootkernel, RootkernelConfig};
use sb_sim::{AccessKind, CpuId, Cycles, Machine, MachineConfig, PrivilegeLevel, TlbTag};

use crate::{
    layout,
    personality::Personality,
    process::{
        Capability, Endpoint, EndpointId, Process, ProcessId, Thread, ThreadId, ThreadState,
    },
};

/// Kernel boot configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Which microkernel's IPC behaviour to model.
    pub personality: Personality,
    /// Kernel page-table isolation (Meltdown mitigation). The paper's
    /// baseline IPC numbers disable it; Table 2 quantifies the delta.
    pub kpti: bool,
    /// Machine configuration.
    pub machine: MachineConfig,
    /// `Some` boots the SkyBridge Rootkernel underneath the Subkernel
    /// during [`Kernel::boot`] (the self-virtualization of §4.1).
    pub rootkernel: Option<RootkernelConfig>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            personality: Personality::sel4(),
            kpti: false,
            machine: MachineConfig::default(),
            rootkernel: None,
        }
    }
}

impl KernelConfig {
    /// Default configuration with the SkyBridge Rootkernel enabled.
    pub fn with_rootkernel(personality: Personality) -> Self {
        KernelConfig {
            personality,
            rootkernel: Some(RootkernelConfig::small()),
            ..Default::default()
        }
    }

    /// Native (no hypervisor) configuration for a given personality.
    pub fn native(personality: Personality) -> Self {
        KernelConfig {
            personality,
            ..Default::default()
        }
    }
}

/// Bytes of kernel text the boot image reserves (large enough for every
/// personality's footprint).
const KERNEL_TEXT_BYTES: usize = 64 * 1024;

/// Bytes of kernel data (TCBs, endpoints, scheduler queues).
const KERNEL_DATA_BYTES: usize = 256 * 1024;

/// The Subkernel.
#[derive(Debug)]
pub struct Kernel {
    /// The simulated machine.
    pub machine: Machine,
    /// Physical memory.
    pub mem: HostMem,
    /// The SkyBridge hypervisor, if booted.
    pub rootkernel: Option<Rootkernel>,
    /// IPC personality.
    pub personality: Personality,
    /// Whether KPTI is active.
    pub kpti: bool,
    /// Process table.
    pub processes: Vec<Process>,
    /// Thread table.
    pub threads: Vec<Thread>,
    /// Endpoint table.
    pub endpoints: Vec<Endpoint>,
    /// Host-physical base of kernel text.
    kernel_text_hpa: u64,
    /// Host-physical base of kernel data.
    kernel_data_hpa: u64,
    /// The kernel's own page table (KPTI switches to it on entry).
    kernel_asp: AddressSpace,
    /// Currently running thread per core.
    current: Vec<Option<ThreadId>>,
    /// Per-core round-robin run queues.
    run_queues: Vec<VecDeque<ThreadId>>,
    /// GPA of the shared identity page (§4.2).
    pub identity_page: Gpa,
    /// Total synchronous IPCs performed.
    pub ipc_count: u64,
}

impl Kernel {
    /// Boots the Subkernel (and, if configured, the Rootkernel underneath
    /// it — the Subkernel "has one line of code to call the
    /// self-virtualization module", §3.2).
    pub fn boot(config: KernelConfig) -> Self {
        let mut machine = Machine::new(config.machine);
        let mut mem = HostMem::new();
        let kernel_asp = AddressSpace::new(&mut mem, 0);
        // Kernel image: contiguous frames from the bump allocator.
        let text = alloc_region(&mut mem, KERNEL_TEXT_BYTES);
        let data = alloc_region(&mut mem, KERNEL_DATA_BYTES);
        let identity_frame = mem.alloc_frame();
        let rootkernel = config
            .rootkernel
            .map(|rc| Rootkernel::boot(&mut machine, &mut mem, rc));
        let cores = machine.num_cores();
        Kernel {
            machine,
            mem,
            rootkernel,
            personality: config.personality,
            kpti: config.kpti,
            processes: Vec::new(),
            threads: Vec::new(),
            endpoints: Vec::new(),
            kernel_text_hpa: text,
            kernel_data_hpa: data,
            kernel_asp,
            current: vec![None; cores],
            run_queues: (0..cores).map(|_| VecDeque::new()).collect(),
            identity_page: Gpa(identity_frame.0),
            ipc_count: 0,
        }
    }

    /// Creates a process and loads `code` at [`layout::CODE_BASE`].
    ///
    /// The code region is mapped writable during the load, then flipped to
    /// W^X user-executable — the same flow a SkyBridge rescan relies on
    /// (§9).
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds [`layout::CODE_MAX`].
    pub fn create_process(&mut self, code: &[u8]) -> ProcessId {
        assert!(code.len() <= layout::CODE_MAX, "code image too large");
        let id = self.processes.len();
        let pcid = (id + 1) as u16;
        let asp = AddressSpace::new(&mut self.mem, pcid);
        let code_pages = code.len().div_ceil(PAGE_SIZE as usize).max(1);
        asp.alloc_and_map(
            &mut self.mem,
            layout::CODE_BASE,
            code_pages,
            PteFlags::USER_DATA,
        );
        // Load the image page by page through setup translation.
        for (i, chunk) in code.chunks(PAGE_SIZE as usize).enumerate() {
            let gva = layout::CODE_BASE.add(i as u64 * PAGE_SIZE);
            let (gpa, _) = asp.translate_setup(&self.mem, gva).unwrap();
            self.mem.write_slice(sb_mem::Hpa(gpa.0), chunk);
        }
        for i in 0..code_pages {
            asp.protect(
                &mut self.mem,
                layout::CODE_BASE.add(i as u64 * PAGE_SIZE),
                PteFlags::USER_CODE,
            );
        }
        // A default heap.
        asp.alloc_and_map(&mut self.mem, layout::HEAP_BASE, 16, PteFlags::USER_DATA);
        // The identity page, at the same GVA (and GPA) in every process.
        asp.map(
            &mut self.mem,
            layout::IDENTITY_PAGE,
            self.identity_page,
            PteFlags::USER_DATA,
        );
        self.processes.push(Process {
            id,
            asp,
            threads: Vec::new(),
            caps: Vec::new(),
            code_len: code.len(),
            eptp_list: None,
            own_ept: None,
        });
        id
    }

    /// Extends a process's heap by `pages`, returning the base GVA of the
    /// new region.
    pub fn map_heap(&mut self, pid: ProcessId, at: Gva, pages: usize) {
        let asp = self.processes[pid].asp;
        asp.alloc_and_map(&mut self.mem, at, pages, PteFlags::USER_DATA);
    }

    /// [`Kernel::map_heap`] with the pages tagged by a 4-bit protection
    /// key, so a PKRU value can later grant or deny the region as a unit
    /// — the MPK personality's way of carving domains out of a single
    /// address space.
    pub fn map_heap_keyed(&mut self, pid: ProcessId, at: Gva, pages: usize, pkey: u8) {
        let asp = self.processes[pid].asp;
        asp.alloc_and_map(
            &mut self.mem,
            at,
            pages,
            PteFlags::USER_DATA.with_pkey(pkey),
        );
    }

    /// Executes `WRPKRU` on `core`: loads `pkru` into the core's rights
    /// register and charges the instruction's cost. This is a *user-mode*
    /// instruction — no mode switch, no CR3 write, no TLB shootdown —
    /// which is the entire reason the MPK crossing is cheap.
    pub fn wrpkru(&mut self, core: CpuId, pkru: u32) {
        let cost = self.machine.cost.wrpkru;
        let cpu = self.machine.cpu_mut(core);
        cpu.write_pkru(pkru);
        cpu.advance(cost);
    }

    /// Creates a thread in `pid` pinned to `core`.
    pub fn create_thread(&mut self, pid: ProcessId, core: CpuId) -> ThreadId {
        let tid = self.threads.len();
        let asp = self.processes[pid].asp;
        let stack_top = Gva(layout::STACK_TOP.0 - (tid as u64) * layout::STACK_SIZE as u64);
        let stack_pages = layout::STACK_SIZE / PAGE_SIZE as usize;
        asp.alloc_and_map(
            &mut self.mem,
            Gva(stack_top.0 - layout::STACK_SIZE as u64),
            stack_pages,
            PteFlags::USER_DATA,
        );
        let msg_buf = layout::MSG_BUF_BASE.add(tid as u64 * PAGE_SIZE);
        asp.alloc_and_map(&mut self.mem, msg_buf, 1, PteFlags::USER_DATA);
        self.threads.push(Thread {
            id: tid,
            process: pid,
            core,
            state: ThreadState::Ready,
            stack_top,
            msg_buf,
        });
        self.processes[pid].threads.push(tid);
        tid
    }

    /// Creates an endpoint owned (served) by `pid`, granting it a receive
    /// capability, and returns `(endpoint, recv cap slot)`.
    pub fn create_endpoint(&mut self, pid: ProcessId) -> (EndpointId, usize) {
        let id = self.endpoints.len();
        self.endpoints.push(Endpoint {
            id,
            owner: pid,
            server: None,
        });
        let slot = self.processes[pid].grant(Capability::Endpoint {
            endpoint: id,
            rights: crate::process::CapRights::RECV,
        });
        (id, slot)
    }

    /// Grants `pid` a send capability to `endpoint`, returning the slot.
    pub fn grant_send(&mut self, pid: ProcessId, endpoint: EndpointId) -> usize {
        self.processes[pid].grant(Capability::Endpoint {
            endpoint,
            rights: crate::process::CapRights::SEND,
        })
    }

    /// Marks `tid` as blocked receiving on `endpoint` (the server loop's
    /// `recv()`).
    pub fn server_recv(&mut self, tid: ThreadId, endpoint: EndpointId) {
        self.endpoints[endpoint].server = Some(tid);
        self.threads[tid].state = ThreadState::RecvBlocked;
        let core = self.threads[tid].core;
        if self.current[core] == Some(tid) {
            self.current[core] = None;
        }
    }

    /// The thread currently running on `core`.
    pub fn current_thread(&self, core: CpuId) -> Option<ThreadId> {
        self.current[core]
    }

    /// Sets the current thread of `core` (IPC control transfer).
    pub(crate) fn current_set(&mut self, core: CpuId, tid: Option<ThreadId>) {
        self.current[core] = tid;
    }

    /// Host-physical base of the kernel data region (channel buffers use
    /// its upper half).
    pub(crate) fn kernel_data_region(&self) -> u64 {
        self.kernel_data_hpa
    }

    /// Context-switches `core` to `tid`: loads its CR3 (charged), installs
    /// its EPTP list if it registered with SkyBridge, and records its
    /// identity.
    pub fn run_thread(&mut self, tid: ThreadId) {
        let thread = self.threads[tid].clone();
        let core = thread.core;
        let pid = thread.process;
        let switching = self.current[core] != Some(tid);
        if switching {
            let (cr3, pcid) = {
                let p = &self.processes[pid];
                (p.cr3().0, p.asp.pcid)
            };
            let cr3_cost = self.machine.cost.cr3_write;
            let cpu = self.machine.cpu_mut(core);
            cpu.load_cr3(cr3, pcid);
            cpu.advance(cr3_cost);
            if let (Some(rk), Some(list)) = (
                self.rootkernel.as_mut(),
                self.processes[pid].eptp_list.clone(),
            ) {
                rk.cr3_write(&mut self.machine, core);
                rk.install_eptp_list(&mut self.machine, core, list);
                // Slot 0 of every list is the process's own EPT.
                rk.vmfunc(&mut self.machine, core, 0, 0)
                    .expect("slot 0 is always pinned");
            } else if let Some(rk) = self.rootkernel.as_mut() {
                rk.cr3_write(&mut self.machine, core);
            }
            self.identity_record(core, pid);
        }
        self.machine.cpu_mut(core).priv_level = PrivilegeLevel::User;
        self.current[core] = Some(tid);
        self.threads[tid].state = ThreadState::Ready;
    }

    /// Enqueues `tid` on its core's round-robin queue.
    pub fn enqueue(&mut self, tid: ThreadId) {
        let core = self.threads[tid].core;
        self.run_queues[core].push_back(tid);
    }

    /// Kills `tid` (handler panic, security violation): the thread leaves
    /// the scheduler's view and any core it was current on goes idle. Its
    /// TCB and address space survive so a supervisor can revive it.
    pub fn kill_thread(&mut self, tid: ThreadId) {
        self.threads[tid].state = ThreadState::Dead;
        let core = self.threads[tid].core;
        if self.current[core] == Some(tid) {
            self.current[core] = None;
        }
    }

    /// Revives a dead thread (supervisor restart after a crash): the TCB
    /// is reset to `Ready` so it can be scheduled again.
    pub fn revive_thread(&mut self, tid: ThreadId) {
        if self.threads[tid].state == ThreadState::Dead {
            self.threads[tid].state = ThreadState::Ready;
        }
    }

    /// Picks and runs the next ready thread on `core`, charging the
    /// scheduler cost. Returns the scheduled thread.
    pub fn schedule(&mut self, core: CpuId) -> Option<ThreadId> {
        let schedule_cost = self.personality.schedule_cost;
        let data = self.personality.data_touch;
        self.kernel_work(core, 0, data);
        self.machine.cpu_mut(core).advance(schedule_cost);
        while let Some(tid) = self.run_queues[core].pop_front() {
            if self.threads[tid].state == ThreadState::Ready {
                self.run_thread(tid);
                return Some(tid);
            }
        }
        None
    }

    /// Writes "core is running `pid`" into the identity page.
    pub fn identity_record(&mut self, core: CpuId, pid: ProcessId) {
        let at = sb_mem::Hpa(self.identity_page.0 + core as u64 * 8);
        self.mem.write_u64(at, pid as u64 + 1);
    }

    /// Kernel-side identity lookup (§4.2): which process does `core`
    /// currently execute, *according to the identity page* — correct even
    /// when a SkyBridge call has switched address spaces underneath an
    /// unchanged CR3.
    pub fn identity_current(&mut self, core: CpuId) -> Option<ProcessId> {
        let at = sb_mem::Hpa(self.identity_page.0 + core as u64 * 8);
        self.machine.mem_access(core, at.0, AccessKind::DataRead);
        let v = self.mem.read_u64(at);
        (v != 0).then(|| (v - 1) as ProcessId)
    }

    /// Charges one user→kernel→user mode-switch (SYSCALL + 2×SWAPGS +
    /// SYSRET) plus KPTI CR3 writes, returning `(mode_cycles,
    /// kpti_cycles)` for breakdown attribution.
    pub(crate) fn mode_switch(&mut self, core: CpuId) -> (Cycles, Cycles) {
        let cost = self.machine.cost.clone();
        let cpu = self.machine.cpu_mut(core);
        cpu.pmu.mode_switches += 1;
        cpu.advance(cost.mode_switch());
        let mut kpti_cycles = 0;
        if self.kpti {
            // Entry: switch to the kernel-half page table. KPTI keeps two
            // tables per process — the trimmed user half, and a kernel
            // half that maps the kernel *plus* the process's user pages
            // (the kernel must still reach message buffers to copy them).
            // We model the kernel half as the process's own root under
            // the kernel PCID 0, so TLB entries filled in kernel mode are
            // tagged apart from user-mode ones. The matching exit write
            // happens when the kernel switches to the target process
            // (`switch_address_space`) or restores the caller
            // (`kernel_exit`) — "an IPC usually involves two address space
            // switches" (§2.1.1).
            let kernel_cr3 = match self.current[core] {
                Some(tid) => self.processes[self.threads[tid].process].cr3().0,
                None => self.kernel_asp.root_gpa.0,
            };
            let cpu = self.machine.cpu_mut(core);
            cpu.load_cr3(kernel_cr3, 0);
            cpu.advance(cost.cr3_write);
            kpti_cycles += cost.cr3_write;
        }
        (cost.mode_switch(), kpti_cycles)
    }

    /// Returns to user mode in the same process (non-IPC syscall exit):
    /// under KPTI this reloads the caller's page table.
    pub(crate) fn kernel_exit(&mut self, core: CpuId) -> Cycles {
        if !self.kpti {
            return 0;
        }
        if let Some(tid) = self.current[core] {
            let pid = self.threads[tid].process;
            let (cr3, pcid) = {
                let p = &self.processes[pid];
                (p.cr3().0, p.asp.pcid)
            };
            let cost = self.machine.cost.cr3_write;
            let cpu = self.machine.cpu_mut(core);
            cpu.load_cr3(cr3, pcid);
            cpu.advance(cost);
            cost
        } else {
            0
        }
    }

    /// Fetches kernel text and touches kernel data through the cache
    /// hierarchy and TLBs — the *indirect* cost of entering the kernel
    /// (§2.1.2). `data_seed` scatters data touches so different kernel
    /// objects (endpoints, TCBs) hit different lines.
    pub(crate) fn kernel_work_seeded(
        &mut self,
        core: CpuId,
        text_bytes: usize,
        data_bytes: usize,
        data_seed: usize,
    ) {
        let tag = self.kernel_tag(core);
        let mut off = 0usize;
        while off < text_bytes.min(KERNEL_TEXT_BYTES) {
            let hpa = self.kernel_text_hpa + off as u64;
            self.machine
                .mem_access(core, hpa, AccessKind::InstructionFetch);
            if off.is_multiple_of(PAGE_SIZE as usize) {
                let vpn = layout::KERNEL_TEXT_VPN_BASE + (off as u64 >> 12);
                let cpu = self.machine.cpu_mut(core);
                if cpu.itlb.lookup(tag, vpn).is_none() {
                    cpu.pmu.itlb_misses += 1;
                    cpu.itlb.insert(tag, vpn, hpa >> 12, 0);
                }
            }
            off += 64;
        }
        let base = (data_seed * 4096) % (KERNEL_DATA_BYTES / 2);
        let mut off = 0usize;
        while off < data_bytes.min(KERNEL_DATA_BYTES) {
            let hpa = self.kernel_data_hpa + (base + off) as u64;
            self.machine.mem_access(core, hpa, AccessKind::DataRead);
            if off.is_multiple_of(PAGE_SIZE as usize) {
                let vpn = layout::KERNEL_DATA_VPN_BASE + ((base + off) as u64 >> 12);
                let cpu = self.machine.cpu_mut(core);
                if cpu.dtlb.lookup(tag, vpn).is_none() {
                    cpu.pmu.dtlb_misses += 1;
                    cpu.dtlb.insert(tag, vpn, hpa >> 12, 0);
                }
            }
            off += 64;
        }
        // Scattered kernel structures: one line in each of `data_pages`
        // distinct pages (TCBs, capability tables, kernel stacks). This
        // is the kernel-side TLB pressure of §2.1.2.
        let pages = self.personality.data_pages;
        for p in 0..pages {
            let page_off = ((data_seed + 7) * 8 + p) * PAGE_SIZE as usize
                % KERNEL_DATA_BYTES
                // Structures sit at varied offsets within their pages (and
                // so in varied cache sets).
                + (p * 192) % PAGE_SIZE as usize;
            let hpa = self.kernel_data_hpa + page_off as u64;
            self.machine.mem_access(core, hpa, AccessKind::DataRead);
            let vpn = layout::KERNEL_DATA_VPN_BASE + (page_off as u64 >> 12);
            let cpu = self.machine.cpu_mut(core);
            if cpu.dtlb.lookup(tag, vpn).is_none() {
                cpu.pmu.dtlb_misses += 1;
                cpu.dtlb.insert(tag, vpn, hpa >> 12, 0);
            }
        }
    }

    /// [`Kernel::kernel_work_seeded`] with a zero seed.
    pub(crate) fn kernel_work(&mut self, core: CpuId, text_bytes: usize, data_bytes: usize) {
        self.kernel_work_seeded(core, text_bytes, data_bytes, 0);
    }

    fn kernel_tag(&self, core: CpuId) -> TlbTag {
        // Kernel mappings are *global* pages (the G bit exempts them from
        // PCID tagging), so one TLB entry serves every process; under
        // KPTI they live in the kernel's own PCID-0 address space — the
        // same tag either way.
        let cpu = self.machine.cpu(core);
        TlbTag {
            pcid: 0,
            ept_root: cpu.ept_root,
        }
    }

    /// Direct in-kernel address-space switch to `pid` (the fastpath's
    /// "direct process switch"), charging one CR3 write.
    pub(crate) fn switch_address_space(&mut self, core: CpuId, pid: ProcessId) {
        let (cr3, pcid) = {
            let p = &self.processes[pid];
            (p.cr3().0, p.asp.pcid)
        };
        let cost = self.machine.cost.cr3_write;
        let cpu = self.machine.cpu_mut(core);
        cpu.load_cr3(cr3, pcid);
        cpu.advance(cost);
        if let Some(rk) = self.rootkernel.as_mut() {
            rk.cr3_write(&mut self.machine, core);
        }
        self.identity_record(core, pid);
    }

    // ----- user-level execution API (used by the scenario drivers) -----

    /// Reads user memory on behalf of the thread currently running on its
    /// core.
    pub fn user_read(&mut self, tid: ThreadId, gva: Gva, buf: &mut [u8]) -> Result<(), MemFault> {
        let core = self.require_current(tid);
        sb_mem::walk::read_bytes(&mut self.machine, core, &self.mem, gva, buf, true)
    }

    /// Writes user memory on behalf of the current thread.
    pub fn user_write(&mut self, tid: ThreadId, gva: Gva, data: &[u8]) -> Result<(), MemFault> {
        let core = self.require_current(tid);
        sb_mem::walk::write_bytes(&mut self.machine, core, &mut self.mem, gva, data, true)
    }

    /// Charges user-memory traffic for the current thread — the same
    /// translation and cache accounting as [`Kernel::user_read`] /
    /// [`Kernel::user_write`] — without moving host bytes. The zero-copy
    /// transport path uses this when the payload is already staged
    /// host-side.
    pub fn user_touch(
        &mut self,
        tid: ThreadId,
        gva: Gva,
        len: usize,
        access: sb_mem::walk::Access,
    ) -> Result<(), MemFault> {
        let core = self.require_current(tid);
        sb_mem::walk::touch_bytes(&mut self.machine, core, &self.mem, gva, len, access, true)
    }

    /// Models the current thread executing `len` bytes of code at `gva`
    /// (instruction fetches through i-TLB and L1i).
    pub fn user_exec(&mut self, tid: ThreadId, gva: Gva, len: usize) -> Result<(), MemFault> {
        let core = self.require_current(tid);
        sb_mem::walk::fetch_code(&mut self.machine, core, &self.mem, gva, len, true)
    }

    /// Pure compute: advances the thread's core by `cycles`.
    pub fn compute(&mut self, tid: ThreadId, cycles: Cycles) {
        let core = self.threads[tid].core;
        self.machine.cpu_mut(core).advance(cycles);
    }

    /// The core a thread is pinned to.
    pub fn core_of(&self, tid: ThreadId) -> CpuId {
        self.threads[tid].core
    }

    fn require_current(&self, tid: ThreadId) -> CpuId {
        let core = self.threads[tid].core;
        assert_eq!(
            self.current[core],
            Some(tid),
            "thread {tid} is not current on core {core}; call run_thread"
        );
        core
    }

    /// Simulated wall-clock (max core time).
    pub fn now(&self) -> Cycles {
        self.machine.wall_clock()
    }

    /// Executes a no-op system call on behalf of the current thread of
    /// `core`: full mode switch, trivial dispatch, KPTI page-table swap
    /// and restore (the Table 2 "no-op system call" rows).
    pub fn noop_syscall(&mut self, core: CpuId) -> Cycles {
        let t0 = self.machine.cpu(core).tsc;
        let (_m, _k) = self.mode_switch(core);
        self.machine.cpu_mut(core).advance(24); // Dispatch table walk.
        self.kernel_exit(core);
        self.machine.cpu(core).tsc - t0
    }
}

/// Allocates `bytes` of physically contiguous memory (bump allocator), and
/// returns the base HPA.
fn alloc_region(mem: &mut HostMem, bytes: usize) -> u64 {
    let frames = bytes.div_ceil(PAGE_SIZE as usize);
    let base = mem.alloc_frame();
    for i in 1..frames {
        let f = mem.alloc_frame();
        debug_assert_eq!(f.0, base.0 + i as u64 * PAGE_SIZE);
    }
    base.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_code() -> Vec<u8> {
        vec![0x90; 4096] // One page of NOPs.
    }

    #[test]
    fn boot_native_has_no_rootkernel() {
        let k = Kernel::boot(KernelConfig::default());
        assert!(k.rootkernel.is_none());
        assert_eq!(k.machine.num_cores(), 8);
    }

    #[test]
    fn boot_with_rootkernel_runs_non_root() {
        let k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
        let rk = k.rootkernel.as_ref().unwrap();
        assert_eq!(k.machine.cpu(0).ept_root, rk.base_ept.root.0);
    }

    #[test]
    fn create_process_loads_code_wx() {
        let mut k = Kernel::boot(KernelConfig::default());
        let code: Vec<u8> = (0..5000).map(|i| (i % 200) as u8).collect();
        let pid = k.create_process(&code);
        let asp = k.processes[pid].asp;
        let (_, flags) = asp.translate_setup(&k.mem, layout::CODE_BASE).unwrap();
        assert!(flags.exec && !flags.write, "code must be W^X");
        // Contents are loaded.
        let (gpa, _) = asp
            .translate_setup(&k.mem, layout::CODE_BASE.add(4096))
            .unwrap();
        let mut b = [0u8; 8];
        k.mem.read_slice(sb_mem::Hpa(gpa.0), &mut b);
        assert_eq!(b[0], (4096 % 200) as u8);
    }

    #[test]
    fn threads_get_disjoint_stacks_and_msg_bufs() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pid = k.create_process(&small_code());
        let t0 = k.create_thread(pid, 0);
        let t1 = k.create_thread(pid, 1);
        assert_ne!(k.threads[t0].stack_top, k.threads[t1].stack_top);
        assert_ne!(k.threads[t0].msg_buf, k.threads[t1].msg_buf);
    }

    #[test]
    fn run_thread_switches_cr3_and_identity() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pa = k.create_process(&small_code());
        let pb = k.create_process(&small_code());
        let ta = k.create_thread(pa, 0);
        let tb = k.create_thread(pb, 0);
        k.run_thread(ta);
        assert_eq!(k.machine.cpu(0).cr3, k.processes[pa].cr3().0);
        assert_eq!(k.identity_current(0), Some(pa));
        k.run_thread(tb);
        assert_eq!(k.machine.cpu(0).cr3, k.processes[pb].cr3().0);
        assert_eq!(k.identity_current(0), Some(pb));
    }

    #[test]
    fn user_memory_roundtrip() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pid = k.create_process(&small_code());
        let tid = k.create_thread(pid, 0);
        k.run_thread(tid);
        k.user_write(tid, layout::HEAP_BASE, b"hello skybridge")
            .unwrap();
        let mut buf = [0u8; 15];
        k.user_read(tid, layout::HEAP_BASE, &mut buf).unwrap();
        assert_eq!(&buf, b"hello skybridge");
    }

    #[test]
    fn user_cannot_touch_other_process_heap_contents() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pa = k.create_process(&small_code());
        let pb = k.create_process(&small_code());
        let ta = k.create_thread(pa, 0);
        let tb = k.create_thread(pb, 0);
        k.run_thread(ta);
        k.user_write(ta, layout::HEAP_BASE, b"secret-a").unwrap();
        k.run_thread(tb);
        let mut buf = [0u8; 8];
        k.user_read(tb, layout::HEAP_BASE, &mut buf).unwrap();
        assert_ne!(&buf, b"secret-a", "address spaces must be disjoint");
    }

    #[test]
    fn keyed_heap_is_gated_by_pkru() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pid = k.create_process(&small_code());
        let tid = k.create_thread(pid, 0);
        k.map_heap_keyed(pid, Gva(0x5100_0000), 1, 6);
        k.run_thread(tid);
        // Reset PKRU: the keyed region is reachable.
        k.user_write(tid, Gva(0x5100_0000), b"keyed").unwrap();
        // Deny key 6: the same touch now takes a pkey fault, and the
        // un-keyed msg_buf stays reachable (key 0 is never denied here).
        let t0 = k.machine.cpu(0).tsc;
        k.wrpkru(0, 0b11 << 12);
        assert_eq!(k.machine.cpu(0).tsc - t0, k.machine.cost.wrpkru);
        let err = k.user_write(tid, Gva(0x5100_0000), b"nope").unwrap_err();
        assert!(matches!(err, MemFault::PkeyDenied { key: 6, .. }));
        let msg_buf = k.threads[tid].msg_buf;
        k.user_write(tid, msg_buf, b"fine").unwrap();
        // Restore: rights come back with one more WRPKRU.
        k.wrpkru(0, 0);
        k.user_write(tid, Gva(0x5100_0000), b"back").unwrap();
        assert_eq!(k.machine.cpu(0).pmu.wrpkru_writes, 2);
    }

    #[test]
    fn kpti_costs_extra_cr3_writes() {
        let mut with = Kernel::boot(KernelConfig {
            kpti: true,
            ..KernelConfig::default()
        });
        let mut without = Kernel::boot(KernelConfig::default());
        let a0 = with.machine.cpu(0).pmu.cr3_writes;
        let b0 = without.machine.cpu(0).pmu.cr3_writes;
        with.mode_switch(0);
        without.mode_switch(0);
        assert_eq!(with.machine.cpu(0).pmu.cr3_writes - a0, 1);
        assert_eq!(without.machine.cpu(0).pmu.cr3_writes - b0, 0);
    }

    #[test]
    fn kernel_work_pollutes_icache() {
        let mut k = Kernel::boot(KernelConfig::default());
        let before = k.machine.cpu(0).pmu;
        k.kernel_work(0, 16384, 2048);
        let d = k.machine.cpu(0).pmu.delta(&before);
        assert!(d.l1i_misses >= 16384 / 64);
        assert!(d.l1d_misses >= 2048 / 64);
        // Second pass is warm.
        let before = k.machine.cpu(0).pmu;
        k.kernel_work(0, 16384, 2048);
        let d = k.machine.cpu(0).pmu.delta(&before);
        assert_eq!(d.l1i_misses, 0);
    }

    #[test]
    fn schedule_round_robins_ready_threads() {
        let mut k = Kernel::boot(KernelConfig::default());
        let pid = k.create_process(&small_code());
        let t0 = k.create_thread(pid, 0);
        let t1 = k.create_thread(pid, 0);
        k.enqueue(t0);
        k.enqueue(t1);
        assert_eq!(k.schedule(0), Some(t0));
        assert_eq!(k.schedule(0), Some(t1));
        assert_eq!(k.schedule(0), None);
    }
}
