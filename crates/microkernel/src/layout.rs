//! Virtual address-space layout of every process.
//!
//! All processes share one layout (as they would under one libOS runtime),
//! which is what lets SkyBridge map the trampoline and shared buffers at
//! the same virtual addresses in every participant.

use sb_mem::Gva;

/// Base of the process code image.
pub const CODE_BASE: Gva = Gva(0x0040_0000);

/// Maximum code image size (1 MiB).
pub const CODE_MAX: usize = 1024 * 1024;

/// Base of the process heap.
pub const HEAP_BASE: Gva = Gva(0x5000_0000);

/// Base of the per-thread IPC message buffers (one page per thread).
pub const MSG_BUF_BASE: Gva = Gva(0x6000_0000);

/// Bytes per message buffer.
pub const MSG_BUF_SIZE: usize = 4096;

/// The SkyBridge trampoline code page (mapped X-only at registration).
pub const TRAMPOLINE_BASE: Gva = Gva(0x7100_0000);

/// Base of the SkyBridge per-connection server stacks.
pub const SB_STACK_BASE: Gva = Gva(0x7180_0000);

/// Bytes per SkyBridge server stack.
pub const SB_STACK_SIZE: usize = 4 * 4096;

/// Base of the SkyBridge shared buffers (one per server thread/connection,
/// addressed by `(server id, connection)` across every participant's
/// address space — placed in a roomy region far above the 32-bit range so
/// hundreds of servers never collide with stacks or tables).
pub const SB_SHARED_BUF_BASE: Gva = Gva(0x20_0000_0000);

/// Bytes per SkyBridge shared buffer.
pub const SB_SHARED_BUF_SIZE: usize = 16 * 4096;

/// The identity page (§4.2): mapped at the same GVA in every process and
/// readable by the Subkernel, holding "which process does this core
/// currently execute" records.
pub const IDENTITY_PAGE: Gva = Gva(0x7300_0000);

/// Per-server calling-key table pages (in the server's address space).
pub const KEY_TABLE_BASE: Gva = Gva(0x7400_0000);

/// The server function list SkyBridge maps into clients at registration
/// (§3.1: "It maps a server function list into the client virtual address
/// space as well"): one entry per server id, holding the registered
/// handler's address.
pub const SERVER_LIST_BASE: Gva = Gva(0x7500_0000);

/// The rewrite page (§5.1): "the second page in the virtual address space",
/// deliberately left unmapped by most OSes, where rewritten instruction
/// snippets live.
pub const REWRITE_PAGE: Gva = Gva(0x1000);

/// Top of the per-thread user stacks (they grow down, one 16 KiB region
/// per thread).
pub const STACK_TOP: Gva = Gva(0x7fff_0000);

/// Bytes per user stack.
pub const STACK_SIZE: usize = 4 * 4096;

/// Kernel text window (a direct-map alias; kernel code is fetched through
/// the cache hierarchy at these host-physical addresses).
pub const KERNEL_TEXT_VPN_BASE: u64 = 0xffff_8000_0000_0000 >> 12;

/// Kernel data window.
pub const KERNEL_DATA_VPN_BASE: u64 = 0xffff_9000_0000_0000 >> 12;
