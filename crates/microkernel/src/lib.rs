//! The Subkernel: a microkernel substrate with three IPC personalities.
//!
//! SkyBridge is evaluated on seL4, Fiasco.OC, and Google Zircon. Rather than
//! porting three kernels, this crate implements one microkernel substrate —
//! processes in separate address spaces, threads, capability-checked
//! synchronous endpoints, a per-core round-robin scheduler, optional KPTI —
//! and three [`personality::Personality`] profiles that reproduce each
//! kernel's IPC control flow as the paper's Figure 7 decomposes it:
//!
//! * **seL4**: a fastpath for same-core `Call`/`ReplyWait` with in-register
//!   messages and direct process switch; the cross-core slowpath adds an
//!   IPI and the scheduler.
//! * **Fiasco.OC**: a fastpath that additionally drains deferred requests
//!   (drq), making it slower than seL4's.
//! * **Zircon**: no fastpath — every message takes two copies through a
//!   kernel buffer and goes through the scheduler, and the path is
//!   preemptible.
//!
//! Every path executes real work in the simulation: kernel text/data are
//! fetched through the cache hierarchy (polluting it, which is the indirect
//! cost of §2.1.2), message bytes move between real address spaces, CR3
//! loads and mode switches charge the measured costs, and cross-core paths
//! send real model IPIs.
//!
//! The SkyBridge integration points (the "~200 lines per kernel" of §6.2)
//! are here too: registration-time mapping hooks, the per-process EPTP
//! list installed at context switch, and the identity page that fixes
//! process misidentification (§4.2).

pub mod ipc;
pub mod kernel;
pub mod layout;
pub mod personality;
pub mod process;

pub use crate::{
    ipc::{Breakdown, Component, IpcError},
    kernel::{Kernel, KernelConfig},
    personality::Personality,
    process::{
        CapRights, Capability, EndpointId, Process, ProcessId, Thread, ThreadId, ThreadState,
    },
};
