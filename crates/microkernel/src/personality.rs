//! Per-microkernel IPC personalities.
//!
//! Figure 7 of the paper decomposes each kernel's synchronous IPC roundtrip
//! into components (SYSCALL/SYSRET, context switch, IPI, message copy,
//! schedule, others) and reports the totals: seL4 986 / 6764 cycles
//! (single / cross core), Fiasco.OC 2717 / 8440, Zircon 8157 / 20099.
//! A [`Personality`] captures the control-flow differences that produce
//! those numbers:
//!
//! * whether a fastpath exists (Zircon has none);
//! * the software logic on the fast and slow paths;
//! * Fiasco's deferred-request (drq) drain;
//! * the number of message copies (Zircon's channels copy twice);
//! * scheduler involvement;
//! * the kernel text/data footprint each path drags through the caches —
//!   the source of the indirect cost in Table 1.
//!
//! The cycle parameters are calibration constants chosen so the simulated
//! direct costs land near Figure 7; the *footprints* then add the indirect
//! cost on top, as on real hardware.

use sb_sim::Cycles;

/// Which microkernel's IPC behaviour to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// seL4 v10.0.0.
    Sel4,
    /// Fiasco.OC.
    FiascoOC,
    /// Google Zircon.
    Zircon,
}

/// Cost/behaviour profile of one microkernel's synchronous IPC.
#[derive(Debug, Clone)]
pub struct Personality {
    /// Which kernel this profiles.
    pub flavor: Flavor,
    /// Human-readable name.
    pub name: &'static str,
    /// True if a same-core fastpath exists (seL4, Fiasco.OC).
    pub has_fastpath: bool,
    /// One-way software logic on the fastpath (capability check, endpoint
    /// bookkeeping). seL4: 98 cycles (§2.1.1).
    pub fastpath_logic: Cycles,
    /// One-way software logic on the slowpath.
    pub slowpath_logic: Cycles,
    /// Fiasco.OC's deferred-request drain, charged per one-way fastpath
    /// IPC ("the fastpath in Fiasco.OC may handle deferred requests (drq)
    /// during IPC", §6.3).
    pub drq_cost: Cycles,
    /// Scheduler involvement per one-way slow/scheduled IPC.
    pub schedule_cost: Cycles,
    /// Extra one-way cost on the cross-core path beyond IPI + schedule
    /// (wakeup bookkeeping, remote-queue manipulation, re-scheduling of
    /// both sides — large for Zircon, §6.3).
    pub cross_core_extra: Cycles,
    /// Message copies per one-way transfer (1 = direct sender→receiver,
    /// 2 = via an in-kernel channel buffer, Zircon).
    pub copies_per_transfer: u32,
    /// Fixed overhead per copy (buffer management), in addition to the
    /// per-byte cost.
    pub copy_setup: Cycles,
    /// Largest message carried in registers (no memory copy). Zero for
    /// Zircon, which always copies.
    pub register_msg_max: usize,
    /// L4's *temporary mapping* optimization (§8.1): for long messages the
    /// kernel temporarily maps the sender's buffer into the receiver and
    /// copies once instead of twice. Off by default (it is orthogonal to
    /// SkyBridge; the ablation bench measures it).
    pub temporary_mapping: bool,
    /// Kernel text bytes fetched on the fastpath.
    pub text_fast: usize,
    /// Kernel text bytes fetched on the slowpath.
    pub text_slow: usize,
    /// Kernel data bytes touched per IPC (endpoint, TCBs, scheduler
    /// queues).
    pub data_touch: usize,
    /// Distinct kernel data *pages* referenced per IPC (TCBs, capability
    /// tables, kernel stacks, page-table metadata) — the kernel-side d-TLB
    /// pressure that SkyBridge avoids entirely by never entering the
    /// kernel.
    pub data_pages: usize,
}

impl Personality {
    /// seL4: the fastest of the three; fastpath with in-register messages
    /// and direct process switch.
    pub fn sel4() -> Self {
        Personality {
            flavor: Flavor::Sel4,
            name: "seL4",
            has_fastpath: true,
            fastpath_logic: 98,
            slowpath_logic: 300,
            drq_cost: 0,
            schedule_cost: 400,
            cross_core_extra: 0,
            copies_per_transfer: 1,
            copy_setup: 80,
            register_msg_max: 64,
            temporary_mapping: false,
            text_fast: 2048,
            text_slow: 8192,
            data_touch: 512,
            data_pages: 12,
        }
    }

    /// Fiasco.OC: fastpath that also drains deferred requests.
    pub fn fiasco_oc() -> Self {
        Personality {
            flavor: Flavor::FiascoOC,
            name: "Fiasco.OC",
            has_fastpath: true,
            fastpath_logic: 220,
            slowpath_logic: 450,
            drq_cost: 640,
            schedule_cost: 620,
            cross_core_extra: 700,
            copies_per_transfer: 1,
            copy_setup: 100,
            register_msg_max: 64,
            temporary_mapping: false,
            text_fast: 6144,
            text_slow: 12288,
            data_touch: 1024,
            data_pages: 16,
        }
    }

    /// Zircon: no fastpath, preemptible IPC path, channel semantics with
    /// two memory copies per transfer.
    pub fn zircon() -> Self {
        Personality {
            flavor: Flavor::Zircon,
            name: "Zircon",
            has_fastpath: false,
            fastpath_logic: 0,
            slowpath_logic: 1500,
            drq_cost: 0,
            schedule_cost: 1900,
            cross_core_extra: 3600,
            copies_per_transfer: 2,
            copy_setup: 320,
            register_msg_max: 0,
            temporary_mapping: false,
            text_fast: 16384,
            text_slow: 16384,
            data_touch: 2048,
            data_pages: 24,
        }
    }

    /// All three evaluation kernels, in the paper's order.
    pub fn all() -> [Personality; 3] {
        [Self::sel4(), Self::fiasco_oc(), Self::zircon()]
    }

    /// This personality with L4's temporary-mapping long-message
    /// optimization enabled (§8.1).
    pub fn with_temporary_mapping(mut self) -> Self {
        self.temporary_mapping = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sel4_fastpath_logic_matches_paper() {
        assert_eq!(Personality::sel4().fastpath_logic, 98);
    }

    #[test]
    fn zircon_has_no_fastpath_and_two_copies() {
        let z = Personality::zircon();
        assert!(!z.has_fastpath);
        assert_eq!(z.copies_per_transfer, 2);
        assert_eq!(z.register_msg_max, 0);
    }

    #[test]
    fn only_fiasco_pays_drq() {
        assert_eq!(Personality::sel4().drq_cost, 0);
        assert!(Personality::fiasco_oc().drq_cost > 0);
        assert_eq!(Personality::zircon().drq_cost, 0);
    }
}
