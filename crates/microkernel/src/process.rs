//! Processes, threads, capabilities, and endpoints.

use sb_mem::{AddressSpace, Gpa, Gva};
use sb_rootkernel::EptpList;
use sb_sim::CpuId;

/// Index of a process in the kernel's table.
pub type ProcessId = usize;

/// Index of a thread in the kernel's table.
pub type ThreadId = usize;

/// Index of an endpoint in the kernel's table.
pub type EndpointId = usize;

/// Rights carried by a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapRights {
    /// May send (call) through the endpoint.
    pub send: bool,
    /// May receive (serve) on the endpoint.
    pub recv: bool,
}

impl CapRights {
    /// Send-only rights (a client's view of a service endpoint).
    pub const SEND: CapRights = CapRights {
        send: true,
        recv: false,
    };
    /// Receive-only rights (the server's end).
    pub const RECV: CapRights = CapRights {
        send: false,
        recv: true,
    };
}

/// A capability: a reference to a kernel object plus rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capability {
    /// An IPC endpoint.
    Endpoint {
        /// Which endpoint.
        endpoint: EndpointId,
        /// With which rights.
        rights: CapRights,
    },
}

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable (queued or current).
    Ready,
    /// Blocked waiting to receive on an endpoint.
    RecvBlocked,
    /// Blocked waiting for a reply.
    ReplyBlocked,
    /// Exited or killed (e.g. after a SkyBridge security violation).
    Dead,
}

/// One thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Its id (index in the kernel's thread table).
    pub id: ThreadId,
    /// Owning process.
    pub process: ProcessId,
    /// The core this thread is affine to (the evaluation pins threads).
    pub core: CpuId,
    /// Scheduling state.
    pub state: ThreadState,
    /// Top of this thread's user stack.
    pub stack_top: Gva,
    /// This thread's IPC message buffer.
    pub msg_buf: Gva,
}

/// One process: an isolated address space plus kernel bookkeeping.
#[derive(Debug)]
pub struct Process {
    /// Its id (index in the kernel's process table).
    pub id: ProcessId,
    /// The process's own page table. SkyBridge keeps per-process page
    /// tables (§4.3) — this is what the server EPT's CR3 remap points at.
    pub asp: AddressSpace,
    /// Thread ids owned by this process.
    pub threads: Vec<ThreadId>,
    /// Capability space.
    pub caps: Vec<Capability>,
    /// Loaded code image size in bytes (the region the rewriter scans).
    pub code_len: usize,
    /// SkyBridge: the EPTP list to install when this process is scheduled
    /// (`None` until the process registers with SkyBridge).
    pub eptp_list: Option<EptpList>,
    /// SkyBridge: this process's own EPT root once registered.
    pub own_ept: Option<sb_mem::Hpa>,
}

/// A synchronous IPC endpoint.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// Its id.
    pub id: EndpointId,
    /// The process that created (serves) it.
    pub owner: ProcessId,
    /// The server thread currently bound to receive on it.
    pub server: Option<ThreadId>,
}

impl Process {
    /// Installs a capability, returning its slot index.
    pub fn grant(&mut self, cap: Capability) -> usize {
        self.caps.push(cap);
        self.caps.len() - 1
    }

    /// Looks up a capability by slot.
    pub fn cap(&self, slot: usize) -> Option<Capability> {
        self.caps.get(slot).copied()
    }

    /// The CR3 value (page-table root GPA) of this process.
    pub fn cr3(&self) -> Gpa {
        self.asp.root_gpa
    }
}

#[cfg(test)]
mod tests {
    use sb_mem::HostMem;

    use super::*;

    #[test]
    fn grant_and_lookup() {
        let mut mem = HostMem::new();
        let mut p = Process {
            id: 0,
            asp: AddressSpace::new(&mut mem, 1),
            threads: Vec::new(),
            caps: Vec::new(),
            code_len: 0,
            eptp_list: None,
            own_ept: None,
        };
        let slot = p.grant(Capability::Endpoint {
            endpoint: 3,
            rights: CapRights::SEND,
        });
        assert_eq!(
            p.cap(slot),
            Some(Capability::Endpoint {
                endpoint: 3,
                rights: CapRights::SEND
            })
        );
        assert_eq!(p.cap(slot + 1), None);
    }
}
