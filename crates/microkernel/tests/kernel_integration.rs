//! Cross-module microkernel tests: syscall paths, scheduling, and the
//! cross-core IPC state machine.

use sb_microkernel::{Kernel, KernelConfig, Personality, ThreadId, ThreadState};

fn boot(personality: Personality) -> Kernel {
    Kernel::boot(KernelConfig::native(personality))
}

fn spawn(k: &mut Kernel, core: usize) -> ThreadId {
    let pid = k.create_process(&sb_rewriter::corpus::generate(17, 2048, 0));
    k.create_thread(pid, core)
}

#[test]
fn noop_syscall_costs_match_table2() {
    for (kpti, expected) in [(false, 181u64), (true, 431 + 186)] {
        // With KPTI the live path pays the full exit CR3 write too; the
        // analytic Table 2 value (431) folds part of it into the
        // measurement — accept either bound.
        let mut k = Kernel::boot(KernelConfig {
            kpti,
            ..KernelConfig::native(Personality::sel4())
        });
        let tid = spawn(&mut k, 0);
        k.run_thread(tid);
        let measured = k.noop_syscall(0);
        assert!(
            (expected.saturating_sub(60)..=expected + 60).contains(&measured),
            "kpti={kpti}: measured {measured}, expected ~{expected}"
        );
    }
}

#[test]
fn scheduler_skips_blocked_threads() {
    let mut k = boot(Personality::sel4());
    let a = spawn(&mut k, 0);
    let b = spawn(&mut k, 0);
    let c = spawn(&mut k, 0);
    k.enqueue(a);
    k.enqueue(b);
    k.enqueue(c);
    // Block `b` in recv.
    let pid_b = k.threads[b].process;
    let (ep, _) = k.create_endpoint(pid_b);
    k.server_recv(b, ep);
    assert_eq!(k.schedule(0), Some(a));
    assert_eq!(k.schedule(0), Some(c), "blocked thread must be skipped");
    assert_eq!(k.schedule(0), None);
}

#[test]
fn cross_core_roundtrip_restores_thread_states() {
    let mut k = boot(Personality::fiasco_oc());
    let client = spawn(&mut k, 0);
    let server = spawn(&mut k, 3);
    let spid = k.threads[server].process;
    let cpid = k.threads[client].process;
    let (ep, _) = k.create_endpoint(spid);
    let slot = k.grant_send(cpid, ep);
    k.server_recv(server, ep);
    k.run_thread(client);
    for _ in 0..5 {
        k.ipc_call(client, slot, 0).unwrap();
        assert_eq!(k.current_thread(3), Some(server));
        assert_eq!(k.current_thread(0), None, "client core idles");
        assert_eq!(k.threads[client].state, ThreadState::ReplyBlocked);
        k.ipc_reply(server, client, 0).unwrap();
        assert_eq!(k.current_thread(0), Some(client));
        assert_eq!(k.threads[server].state, ThreadState::RecvBlocked);
        assert_eq!(k.threads[client].state, ThreadState::Ready);
    }
    // Clocks advanced on both cores and stayed ordered.
    assert!(k.machine.cpu(0).tsc > 0 && k.machine.cpu(3).tsc > 0);
}

#[test]
fn ipc_roundtrip_grows_monotonically_with_message_size() {
    let mut k = boot(Personality::sel4());
    let client = spawn(&mut k, 0);
    let server = spawn(&mut k, 0);
    let spid = k.threads[server].process;
    let cpid = k.threads[client].process;
    let (ep, _) = k.create_endpoint(spid);
    let slot = k.grant_send(cpid, ep);
    k.server_recv(server, ep);
    k.run_thread(client);
    let mut last = 0;
    for len in [0usize, 128, 1024, 4096] {
        for _ in 0..16 {
            k.ipc_call(client, slot, len).unwrap();
            k.ipc_reply(server, client, 0).unwrap();
        }
        let mut b = k.ipc_call(client, slot, len).unwrap();
        b.merge(&k.ipc_reply(server, client, 0).unwrap());
        assert!(
            b.total() >= last,
            "cost must not shrink as messages grow ({len} B)"
        );
        last = b.total();
    }
}

#[test]
fn zircon_copies_cost_more_than_sel4_at_every_size() {
    let mut totals = Vec::new();
    for p in [Personality::sel4(), Personality::zircon()] {
        let mut k = boot(p);
        let client = spawn(&mut k, 0);
        let server = spawn(&mut k, 0);
        let spid = k.threads[server].process;
        let cpid = k.threads[client].process;
        let (ep, _) = k.create_endpoint(spid);
        let slot = k.grant_send(cpid, ep);
        k.server_recv(server, ep);
        k.run_thread(client);
        let mut per_size = Vec::new();
        for len in [256usize, 2048] {
            for _ in 0..16 {
                k.ipc_call(client, slot, len).unwrap();
                k.ipc_reply(server, client, 0).unwrap();
            }
            let b = k.ipc_call(client, slot, len).unwrap();
            per_size.push(b.get(sb_microkernel::ipc::Component::MessageCopy));
            k.ipc_reply(server, client, 0).unwrap();
        }
        totals.push(per_size);
    }
    for i in 0..2 {
        assert!(
            totals[1][i] > totals[0][i],
            "Zircon's double copy must cost more (size idx {i}): {totals:?}"
        );
    }
}

#[test]
fn identity_starts_empty_and_tracks_switches() {
    let mut k = boot(Personality::sel4());
    assert_eq!(k.identity_current(5), None, "no process ran on core 5");
    let a = spawn(&mut k, 5);
    k.run_thread(a);
    assert_eq!(k.identity_current(5), Some(k.threads[a].process));
}

#[test]
fn context_switch_under_rootkernel_installs_eptp_list() {
    let mut k = Kernel::boot(KernelConfig::with_rootkernel(Personality::sel4()));
    let tid = spawn(&mut k, 0);
    let pid = k.threads[tid].process;
    // Simulate the SkyBridge registration side effect.
    let own = {
        let mut rk = k.rootkernel.take().unwrap();
        let root = rk.process_ept(&mut k.machine, 0, &mut k.mem, k.processes[pid].cr3());
        k.rootkernel = Some(rk);
        root
    };
    let mut list = sb_rootkernel::EptpList::new(1);
    list.pin(0, own);
    k.processes[pid].eptp_list = Some(list);
    let vmcalls_before = k.rootkernel.as_ref().unwrap().exits.vmcall;
    k.run_thread(tid);
    assert!(
        k.rootkernel.as_ref().unwrap().exits.vmcall > vmcalls_before,
        "the context-switch hook must hypercall to install the list"
    );
    assert_eq!(k.machine.cpu(0).ept_root, own.0, "own EPT active");
}
