//! Exporters: Chrome trace-event JSON (loadable in `chrome://tracing`
//! and Perfetto) plus a tiny standalone JSON validity checker.
//!
//! Begin/End pairs are folded into complete (`ph:"X"`) slices so the
//! retroactively-emitted spans (queue wait is stamped at service start,
//! covering the wait that already happened) need no monotone event
//! order; wait-state spans render on a separate thread track per lane so
//! they never overlap the call slices of the same lane. A trace whose
//! rings overwrote events is **marked truncated and warned about** —
//! the drop count rides in `otherData` so no report reads as complete
//! when it isn't.

use std::fmt::Write as _;

use crate::phase::validate_nesting;
use crate::ring::{EventKind, Recorder, SpanKind};

/// Simulated cycles per microsecond on the modeled 4 GHz part — the
/// trace `ts` unit conversion.
pub const CYCLES_PER_US: f64 = 4000.0;

/// A rendered Chrome trace.
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    /// The trace-event JSON document.
    pub json: String,
    /// Slices and instants exported.
    pub events: u64,
    /// Events the rings overwrote before export — when nonzero the
    /// trace is incomplete and says so.
    pub dropped: u64,
    /// Begin/End events that could not be folded into a slice.
    pub unmatched: u64,
    /// Whether the trace is missing events (`dropped > 0`).
    pub truncated: bool,
}

fn us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US
}

/// Whether `kind` renders on the lane's wait track instead of its call
/// track (wait spans can overlap earlier call slices in wall time).
fn is_wait(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::QueueWait | SpanKind::Backoff | SpanKind::RingWait
    )
}

fn push_slice(
    out: &mut String,
    first: &mut bool,
    name: &str,
    tid: String,
    t0: u64,
    t1: u64,
    corr: u64,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":\"{tid}\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"corr\":{corr}}}}}",
        us(t0),
        us(t1.saturating_sub(t0)),
    );
}

fn push_instant(out: &mut String, first: &mut bool, name: &str, tid: String, t: f64, corr: u64) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":\"{tid}\",\"ts\":{t:.3},\"args\":{{\"corr\":{corr}}}}}",
    );
}

/// Renders everything `rec` holds as Chrome trace-event JSON.
///
/// When the rings dropped events, a warning is printed to stderr and the
/// document carries `"truncated": true` plus the drop count — the
/// explicit alternative to silently presenting a partial trace.
pub fn chrome_trace(rec: &Recorder) -> ChromeTrace {
    let mut body = String::new();
    let mut first = true;
    let mut events = 0u64;
    let mut unmatched = 0u64;

    for lane in 0..rec.lane_count() {
        let evs = rec.events(lane);
        let mut stack: Vec<(SpanKind, u64, u64)> = Vec::new();
        for ev in &evs {
            match ev.kind {
                EventKind::Begin(kind) => stack.push((kind, ev.t, ev.corr)),
                EventKind::End(kind) => {
                    match stack.last() {
                        Some(&(open, _, _)) if open == kind => {}
                        _ => {
                            unmatched += 1;
                            continue;
                        }
                    }
                    let (_, t0, corr) = stack.pop().expect("matched above");
                    let tid = if is_wait(kind) {
                        format!("lane {lane} wait")
                    } else {
                        format!("lane {lane}")
                    };
                    push_slice(&mut body, &mut first, kind.name(), tid, t0, ev.t, corr);
                    events += 1;
                }
                EventKind::Instant(kind) => {
                    push_instant(
                        &mut body,
                        &mut first,
                        kind.name(),
                        format!("lane {lane}"),
                        us(ev.t),
                        ev.corr,
                    );
                    events += 1;
                }
                EventKind::Complete(kind, dur) => {
                    let tid = if is_wait(kind) {
                        format!("lane {lane} wait")
                    } else {
                        format!("lane {lane}")
                    };
                    push_slice(
                        &mut body,
                        &mut first,
                        kind.name(),
                        tid,
                        ev.t,
                        ev.t + dur as u64,
                        ev.corr,
                    );
                    events += 1;
                }
            }
        }
        unmatched += stack.len() as u64;
    }

    for ev in rec.global_events() {
        // Fault events are sequence-stamped, not cycle-stamped; they get
        // their own track with the raw sequence as `ts`.
        push_instant(
            &mut body,
            &mut first,
            &format!("{}:{}", ev.point, ev.stage.name()),
            "faults".to_string(),
            ev.seq as f64,
            0,
        );
        events += 1;
    }

    let dropped = rec.dropped();
    let truncated = dropped > 0;
    if truncated {
        eprintln!(
            "warning: trace export is missing {dropped} event(s) overwritten in the ring; \
             the trace is marked truncated"
        );
    }
    let json = format!(
        "{{\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{{\"truncated\":{truncated},\
         \"dropped_events\":{dropped},\"unmatched_events\":{unmatched}}},\
         \n\"traceEvents\":[{body}\n]\n}}\n"
    );
    ChromeTrace {
        json,
        events,
        dropped,
        unmatched,
        truncated,
    }
}

/// Validates the nesting of every lane's span stream (the exported trace
/// is well-formed iff this passes for every lane). Returns total spans.
pub fn validate_recorder_nesting(rec: &Recorder) -> Result<u64, String> {
    let mut spans = 0;
    for lane in 0..rec.lane_count() {
        spans += validate_nesting(&rec.events(lane)).map_err(|e| format!("lane {lane}: {e}"))?;
    }
    Ok(spans)
}

// --- a dependency-free JSON validity checker -----------------------------
//
// The workspace builds offline (no serde); tests and the trace_overhead
// gate still need to prove the exported document *is* JSON. This is a
// strict recursive-descent recogniser — it accepts exactly the JSON
// grammar, no extensions.

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("byte {}: expected {:?}", self.i, c as char))
        }
    }

    fn lit(&mut self, s: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(())
        } else {
            Err(format!("byte {}: expected {s}", self.i))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let e = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("byte {}: bad \\u digit", self.i));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(format!("byte {}: bad escape", self.i)),
                    }
                }
                0x00..=0x1f => return Err(format!("byte {}: raw control char", self.i)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            Err(format!("byte {}: expected digit", self.i))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        if self.peek() == Some(b'0') {
            self.i += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.ws();
                    self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.value()?;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("byte {}: expected , or }}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("byte {}: expected , or ]", self.i)),
                    }
                }
            }
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("byte {}: expected a JSON value", self.i)),
        }
    }
}

/// Checks that `s` is one complete JSON document.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Ok(())
    } else {
        Err(format!("byte {}: trailing garbage", p.i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{FaultStage, InstantKind};

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\":[1,2,{\"b\":\"x\\n\"}],\"c\":true}",
            "  [ 0.25 , \"\\u00e9\" ] ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1 2",
            "\"unterminated",
            "{'a':1}",
            "NaN",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn exported_trace_is_valid_json_with_expected_slices() {
        let rec = Recorder::new(64);
        rec.begin(0, SpanKind::Call, 1000, 1);
        rec.span(0, SpanKind::Handler, 1200, 1800, 1);
        rec.end(0, SpanKind::Call, 2000, 1);
        rec.span(1, SpanKind::QueueWait, 0, 500, 2);
        rec.instant(1, InstantKind::Retry, 700, 2);
        rec.fault("handler_panic", FaultStage::Fired);
        let t = chrome_trace(&rec);
        validate_json(&t.json).expect("exported trace must be JSON");
        assert_eq!(t.events, 5, "3 slices + 1 instant + 1 fault");
        assert!(!t.truncated);
        assert_eq!(t.unmatched, 0);
        assert!(t.json.contains("\"name\":\"handler\""));
        assert!(t.json.contains("lane 1 wait"), "wait spans get own track");
        assert!(t.json.contains("handler_panic:fired"));
        assert!(t.json.contains("\"truncated\":false"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn truncated_trace_is_marked_and_counted() {
        let rec = Recorder::new(4);
        for i in 0..8u64 {
            rec.span(0, SpanKind::Call, i * 10, i * 10 + 5, i);
        }
        let t = chrome_trace(&rec);
        validate_json(&t.json).expect("still JSON when truncated");
        assert!(t.truncated);
        assert_eq!(t.dropped, 4, "8 complete spans into 4 slots drop 4");
        assert!(t.json.contains("\"truncated\":true"));
        assert!(t.json.contains("\"dropped_events\":4"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn unmatched_ends_are_counted_not_exported() {
        let rec = Recorder::new(16);
        rec.end(0, SpanKind::Handler, 50, 1); // Nothing open.
        rec.begin(0, SpanKind::Call, 60, 2); // Never closed.
        let t = chrome_trace(&rec);
        validate_json(&t.json).unwrap();
        assert_eq!(t.events, 0);
        assert_eq!(t.unmatched, 2);
        assert!(validate_recorder_nesting(&rec).is_err());
    }
}
