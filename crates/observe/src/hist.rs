//! A log₂-bucketed histogram with linear sub-buckets.
//!
//! Fixed memory (976 `u64` buckets) over the full `u64` range: values
//! below 16 are exact; above that, each power-of-two octave is split into
//! 16 linear sub-buckets, so a reported quantile is within one
//! sub-bucket's width of the true value — a worst-case relative error
//! under `1/16 ≈ 6.25%`, independent of how many samples were recorded.
//! Exact
//! `count`/`sum`/`min`/`max` ride along, so the mean stays exact even
//! when the percentiles are bucketed.

use sb_sim::Cycles;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count: 16 exact small-value buckets plus 16 per octave for
/// octaves 4..=63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Worst-case relative error of a bucketed quantile, as a fraction.
pub const HIST_RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// Default exemplar retention when a caller opts in without choosing a
/// capacity.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 8;

/// One retained `(correlation, value)` pair: the request id behind a
/// recorded sample, so a fat p99 bucket or an SLO breach links back to
/// the concrete request — and through the recorder's span corr, to its
/// span tree in a flight-recorder bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The correlation id (request id) tagged at record time.
    pub corr: u64,
    /// The recorded value.
    pub value: Cycles,
}

/// The histogram.
#[derive(Clone)]
pub struct Log2Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: Cycles,
    max: Cycles,
    /// Last-K exemplar ring (empty Vec when retention is off).
    exemplars: Vec<Exemplar>,
    exemplar_cap: usize,
    exemplar_head: usize,
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        // Values below 16 (including 0) land in their own exact bucket.
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS here.
    let sub = ((v >> (octave - SUB_BITS)) as usize) & (SUB - 1);
    // Saturate explicitly: `u64::MAX` computes exactly BUCKETS - 1
    // today, but an index past the array must stay impossible even if
    // the bucket geometry changes.
    (SUB + (octave - SUB_BITS) as usize * SUB + sub).min(BUCKETS - 1)
}

/// The largest value that maps into `index` — the conservative (upper
/// bound) representative reported for quantiles. Saturating, so the
/// last bucket's bound (exactly `u64::MAX`) cannot wrap.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let octave = (index - SUB) as u32 / SUB as u32 + SUB_BITS;
    let sub = ((index - SUB) % SUB) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    (SUB as u64 + sub)
        .saturating_mul(width)
        .saturating_add(width - 1)
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: Cycles::MAX,
            max: 0,
            exemplars: Vec::new(),
            exemplar_cap: 0,
            exemplar_head: 0,
        }
    }

    /// An empty histogram retaining the last `k` tagged exemplars.
    pub fn with_exemplars(k: usize) -> Self {
        let mut h = Log2Histogram::new();
        h.set_exemplar_capacity(k);
        h
    }

    /// Sets exemplar retention to the last `k` tagged records (0 turns
    /// it off and drops what was held). Shrinking keeps the newest `k`.
    pub fn set_exemplar_capacity(&mut self, k: usize) {
        if k == 0 {
            self.exemplars.clear();
            self.exemplar_head = 0;
        } else if self.exemplars.len() > k {
            let keep: Vec<Exemplar> = self.exemplars().split_off(self.exemplars.len() - k);
            self.exemplars = keep;
            self.exemplar_head = 0;
        } else if self.exemplar_head != 0 {
            // Re-linearise so future pushes append oldest-first.
            self.exemplars = self.exemplars();
            self.exemplar_head = 0;
        }
        self.exemplar_cap = k;
    }

    /// Exemplar retention capacity (0 when off).
    pub fn exemplar_capacity(&self) -> usize {
        self.exemplar_cap
    }

    /// The retained exemplars, oldest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let head = self.exemplar_head;
        self.exemplars[head..]
            .iter()
            .chain(self.exemplars[..head].iter())
            .copied()
            .collect()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: Cycles) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records one sample tagged with a correlation id; the tag is
    /// retained in the last-K exemplar ring (when retention is on) so
    /// the bucket links back to a concrete request.
    #[inline]
    pub fn record_tagged(&mut self, v: Cycles, corr: u64) {
        self.record(v);
        if self.exemplar_cap == 0 {
            return;
        }
        let ex = Exemplar { corr, value: v };
        if self.exemplars.len() < self.exemplar_cap {
            self.exemplars.push(ex);
        } else {
            self.exemplars[self.exemplar_head] = ex;
            self.exemplar_head += 1;
            if self.exemplar_head == self.exemplar_cap {
                self.exemplar_head = 0;
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> Cycles {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> Cycles {
        self.max
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `p`-th percentile, bucketed: the same nearest-rank rule the
    /// exact path uses, resolved to the holding bucket's upper bound and
    /// clamped into `[min, max]`. `p` is clamped into `[0, 100]`; NaN
    /// reads as 0. Worst-case relative error [`HIST_RELATIVE_ERROR`].
    pub fn percentile(&self, p: f64) -> Cycles {
        match self.count {
            0 => return 0,
            1 => return self.min,
            _ => {}
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's samples into this one. `other`'s
    /// exemplars are replayed as the newer records (the merge direction
    /// every call site uses: pulling a later window into an
    /// accumulator), so the retained set stays "the last K" with their
    /// correlation ids intact. A retention-off accumulator adopts
    /// `other`'s capacity.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.exemplar_cap == 0 {
            self.exemplar_cap = other.exemplar_cap;
        }
        if self.exemplar_cap != 0 {
            for ex in other.exemplars() {
                if self.exemplars.len() < self.exemplar_cap {
                    self.exemplars.push(ex);
                } else {
                    self.exemplars[self.exemplar_head] = ex;
                    self.exemplar_head += 1;
                    if self.exemplar_head == self.exemplar_cap {
                        self.exemplar_head = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Log2Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let rank = ((p / 100.0) * 15.0_f64).round() as u64;
            assert_eq!(h.percentile(p), rank, "values < 16 bucket exactly");
        }
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_error_is_bounded_over_wide_ranges() {
        // A deterministic multiplicative walk spanning ~9 decades.
        let mut h = Log2Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut v: u64 = 3;
        for i in 0..4_000u64 {
            let sample = v + i % 7;
            h.record(sample);
            exact.push(sample);
            v = (v * 117) % 1_000_000_007 + 1;
        }
        exact.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * (exact.len() - 1) as f64).round() as usize;
            let truth = exact[rank] as f64;
            let got = h.percentile(p) as f64;
            let err = (got - truth).abs() / truth.max(1.0);
            assert!(
                err <= HIST_RELATIVE_ERROR + 1e-12,
                "p{p}: {got} vs exact {truth} (err {err:.4})"
            );
            assert!(got >= truth, "upper-bound representative never reads low");
        }
    }

    #[test]
    fn count_sum_min_max_are_exact() {
        let mut h = Log2Histogram::new();
        for v in [5u64, 1_000_000, 17, 0, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 1_000_000 + 17 + u64::MAX as u128);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        h.record(42);
        for p in [0.0, 50.0, 100.0, f64::NAN, -5.0, 300.0] {
            assert_eq!(h.percentile(p), 42, "one sample is every percentile");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
        );
        for i in 0..500u64 {
            let v = i * i + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        for p in [10.0, 50.0, 95.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn extreme_values_bucket_and_report_sanely() {
        // Bucket index saturation at both ends of the u64 range: 0 is
        // exact, u64::MAX lands in the last bucket whose upper bound is
        // exactly u64::MAX (no wrap in debug or release).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn exemplars_keep_the_last_k_in_order() {
        let mut h = Log2Histogram::with_exemplars(3);
        for i in 0..10u64 {
            h.record_tagged(i * 100, i);
        }
        let ex = h.exemplars();
        assert_eq!(ex.len(), 3);
        assert_eq!(
            ex,
            vec![
                Exemplar {
                    corr: 7,
                    value: 700
                },
                Exemplar {
                    corr: 8,
                    value: 800
                },
                Exemplar {
                    corr: 9,
                    value: 900
                },
            ],
            "last K, oldest first, corr intact"
        );
        assert_eq!(h.count(), 10, "tagged records still count");
        h.set_exemplar_capacity(0);
        assert!(h.exemplars().is_empty());
        h.record_tagged(1, 99);
        assert!(h.exemplars().is_empty(), "retention off drops tags");
    }

    #[test]
    fn merge_treats_other_exemplars_as_newer() {
        let mut a = Log2Histogram::with_exemplars(4);
        a.record_tagged(10, 1);
        a.record_tagged(20, 2);
        let mut b = Log2Histogram::with_exemplars(4);
        b.record_tagged(30, 3);
        b.record_tagged(40, 4);
        b.record_tagged(50, 5);
        a.merge(&b);
        let corrs: Vec<u64> = a.exemplars().iter().map(|e| e.corr).collect();
        assert_eq!(corrs, vec![2, 3, 4, 5], "other's ride in as the newest");
        // A retention-off accumulator adopts the capacity on merge.
        let mut acc = Log2Histogram::new();
        acc.merge(&b);
        assert_eq!(acc.exemplar_capacity(), 4);
        assert_eq!(acc.exemplars().len(), 3);
    }

    #[test]
    fn bucket_round_trip_bounds_every_value() {
        let mut v = 1u64;
        for _ in 0..63 {
            for probe in [v, v + v / 3, v + v / 2] {
                let idx = bucket_index(probe);
                let hi = bucket_upper(idx);
                assert!(hi >= probe, "upper bound holds for {probe}");
                let rel = (hi - probe) as f64 / probe as f64;
                assert!(rel <= HIST_RELATIVE_ERROR + 1e-12, "{probe}: {rel}");
            }
            v <<= 1;
        }
    }
}
