//! `sb-observe`: always-on tracing, metrics, and phase-level profiling
//! for the SkyBridge IPC stack.
//!
//! The paper's evaluation attributes SkyBridge's win by decomposing a
//! call into phases (trampoline, EPTP switch, handler — Table 3 and
//! Figure 7). This crate makes that decomposition a property of *every*
//! run, not just the dedicated bench:
//!
//! * [`Recorder`] + [`EventRing`] — per-lane fixed-capacity rings of
//!   typed [`Event`]s (call/phase spans, queue admit/shed/deadline,
//!   retry/backoff, fault lifecycle), timestamped by the transport's
//!   per-lane simulated-cycle clocks. The emit path is a flag check plus
//!   a slot write; with the `trace` feature off it compiles to nothing.
//! * [`Registry`] — named counters, gauges, and [`Log2Histogram`]s with
//!   a [`Snapshot`] diff API, plus a bridge surfacing `sim`'s
//!   [`sb_sim::Pmu`] counters per run.
//! * [`phase::attribute`] — folds a recorded run's spans into a
//!   trampoline / switch / marshal / queue-wait / handler cycle
//!   breakdown ([`PhaseProfile`]), a software Figure 7.
//! * [`export::chrome_trace`] — Chrome trace-event JSON loadable in
//!   Perfetto, with explicit truncation accounting when a ring
//!   overwrote events.
//! * [`profiler`] — a deterministic cycle-sampling profiler riding the
//!   emit path: per-lane span stacks sampled on a fixed grid of the
//!   simulated clock, folded into collapsed-stack flamegraphs and
//!   validated against the exact [`PhaseProfile`] shares.
//!
//! The crate depends only on `sb-sim`, so every layer of the stack —
//! transports, the SkyBridge core, the dispatcher, the chaos harness —
//! can hold a [`Recorder`] clone without dependency cycles.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod phase;
pub mod profiler;
pub mod ring;

pub use export::{chrome_trace, validate_json, validate_recorder_nesting, ChromeTrace};
pub use hist::{Exemplar, Log2Histogram, DEFAULT_EXEMPLAR_CAPACITY, HIST_RELATIVE_ERROR};
pub use metrics::{HistSummary, Registry, Snapshot};
pub use phase::{attribute, validate_nesting, PhaseProfile};
pub use profiler::{
    collapsed_lines, compare_shares, fold_samples, fold_samples_by_tenant, sampled_shares, Sample,
    SampleStats, SamplerConfig, ShareComparison, DEFAULT_SAMPLE_CAPACITY, DEFAULT_SAMPLE_PERIOD,
    MAX_SAMPLE_DEPTH,
};
pub use ring::{
    Event, EventKind, EventRing, FaultCounts, FaultEvent, FaultStage, InstantKind, Recorder,
    SpanKind, DEFAULT_RING_CAPACITY,
};
