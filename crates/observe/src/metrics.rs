//! The metrics registry: named counters, gauges, and log₂ histograms
//! with a snapshot/diff API, plus a bridge for `sim`'s PMU counters.
//!
//! The registry is deliberately dumb storage — instrumented code records
//! under stable string names; benches snapshot before and after a region
//! and diff, exactly the PMU discipline the rest of the workspace already
//! uses. Rendering to JSON stays in `sb-bench`'s report module.

use std::collections::BTreeMap;

use sb_sim::{Cycles, Pmu};

use crate::export::ChromeTrace;
use crate::hist::{Exemplar, Log2Histogram, DEFAULT_EXEMPLAR_CAPACITY};
use crate::ring::Recorder;

/// A metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to counter `name` (created at zero).
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, v: Cycles) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Records `v` into histogram `name` tagged with a correlation id.
    /// The first tagged record turns on exemplar retention
    /// ([`DEFAULT_EXEMPLAR_CAPACITY`]) for that histogram, so a fat
    /// bucket in any snapshot links back to concrete request ids.
    pub fn observe_tagged(&mut self, name: &str, v: Cycles, corr: u64) {
        let h = self.histograms.entry(name.to_string()).or_default();
        if h.exemplar_capacity() == 0 {
            h.set_exemplar_capacity(DEFAULT_EXEMPLAR_CAPACITY);
        }
        h.record_tagged(v, corr);
    }

    /// The current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if it ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Surfaces a [`Pmu`] bundle as counters under `prefix.<event>`.
    /// PMU counters only ever increase, so recording an absolute
    /// snapshot keeps the registry's own diff semantics aligned with
    /// [`Pmu::delta`].
    pub fn record_pmu(&mut self, prefix: &str, pmu: &Pmu) {
        let fields: [(&str, u64); 14] = [
            ("l1i_misses", pmu.l1i_misses),
            ("l1d_misses", pmu.l1d_misses),
            ("l2_misses", pmu.l2_misses),
            ("l3_misses", pmu.l3_misses),
            ("itlb_misses", pmu.itlb_misses),
            ("dtlb_misses", pmu.dtlb_misses),
            ("page_walks", pmu.page_walks),
            ("walk_memory_accesses", pmu.walk_memory_accesses),
            ("ipis", pmu.ipis),
            ("vm_exits", pmu.vm_exits),
            ("vmfuncs", pmu.vmfuncs),
            ("mode_switches", pmu.mode_switches),
            ("cr3_writes", pmu.cr3_writes),
            ("wrpkru_writes", pmu.wrpkru_writes),
        ];
        for (field, v) in fields {
            self.counters.insert(format!("{prefix}.{field}"), v);
        }
    }

    /// Surfaces a recorder's trace-loss accounting as absolute
    /// counters under `trace.*` — the registry-side mirror of the
    /// rings' exact drop counts, so every snapshot (and through
    /// `snapshot_json`, every results document) says whether its trace
    /// data is complete. Absolute values, like [`Registry::record_pmu`],
    /// so [`Snapshot::diff`] scopes them to a region.
    pub fn record_trace_loss(&mut self, rec: &Recorder) {
        let stats = rec.sample_stats();
        let fields: [(&str, u64); 6] = [
            ("events_recorded", rec.recorded()),
            ("events_dropped", rec.dropped()),
            ("samples_taken", stats.taken),
            ("samples_dropped", stats.dropped),
            ("samples_poisoned", stats.poisoned),
            ("sampler_broken_events", stats.broken_events),
        ];
        for (field, v) in fields {
            self.counters.insert(format!("trace.{field}"), v);
        }
    }

    /// Surfaces a rendered Chrome-trace export's truncation accounting
    /// as `trace.export_*` counters (absolute, latest-wins).
    pub fn record_export(&mut self, trace: &ChromeTrace) {
        let fields: [(&str, u64); 4] = [
            ("export_events", trace.events),
            ("export_dropped", trace.dropped),
            ("export_unmatched", trace.unmatched),
            ("export_truncated", trace.truncated as u64),
        ];
        for (field, v) in fields {
            self.counters.insert(format!("trace.{field}"), v);
        }
    }

    /// A point-in-time copy of everything recorded.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistSummary::of(h)))
                .collect(),
            exemplars: self
                .histograms
                .iter()
                .filter(|(_, h)| h.exemplar_capacity() != 0)
                .map(|(k, h)| (k.clone(), h.exemplars()))
                .collect(),
        }
    }
}

/// A fixed-quantile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: Cycles,
    /// Bucketed median.
    pub p50: Cycles,
    /// Bucketed 95th percentile.
    pub p95: Cycles,
    /// Bucketed 99th percentile.
    pub p99: Cycles,
    /// Largest sample.
    pub max: Cycles,
}

impl HistSummary {
    /// Summarises `h`.
    pub fn of(h: &Log2Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// A point-in-time view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values at snapshot time.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at snapshot time.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries at snapshot time.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Retained exemplars per histogram (only histograms with retention
    /// on appear; oldest first).
    pub exemplars: BTreeMap<String, Vec<Exemplar>>,
}

impl Snapshot {
    /// The region between `earlier` and `self`: counters subtract
    /// (saturating, so an absent-earlier counter reads as its full
    /// value), gauges and histogram summaries keep the later reading.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            exemplars: self.exemplars.clone(),
        }
    }

    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let mut r = Registry::new();
        r.count("calls", 3);
        let before = r.snapshot();
        r.count("calls", 7);
        r.count("sheds", 1);
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counter("calls"), 7);
        assert_eq!(d.counter("sheds"), 1, "absent-earlier reads full value");
        assert_eq!(d.counter("nothing"), 0);
    }

    #[test]
    fn histograms_summarise() {
        let mut r = Registry::new();
        for v in 1..=100u64 {
            r.observe("latency", v);
        }
        let s = r.snapshot();
        let h = s.histograms.get("latency").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!((h.min, h.max), (1, 100));
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert!(h.p50 >= 50 && h.p50 <= 55, "bucketed median near 50");
    }

    #[test]
    fn pmu_bridge_lands_under_prefix() {
        let mut r = Registry::new();
        let pmu = Pmu {
            vmfuncs: 12,
            dtlb_misses: 7,
            ..Pmu::default()
        };
        r.record_pmu("core0", &pmu);
        assert_eq!(r.counter("core0.vmfuncs"), 12);
        assert_eq!(r.counter("core0.dtlb_misses"), 7);
        assert_eq!(r.counter("core0.ipis"), 0);
        // Re-recording a later snapshot replaces, so diffs match
        // Pmu::delta.
        let before = r.snapshot();
        r.record_pmu(
            "core0",
            &Pmu {
                vmfuncs: 20,
                dtlb_misses: 7,
                ..Pmu::default()
            },
        );
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counter("core0.vmfuncs"), 8);
        assert_eq!(d.counter("core0.dtlb_misses"), 0);
    }

    #[test]
    fn tagged_observations_surface_exemplars_in_snapshots() {
        let mut r = Registry::new();
        r.observe("latency", 5); // Untagged first: no retention yet.
        for i in 0..20u64 {
            r.observe_tagged("latency", 1000 + i, 100 + i);
        }
        let s = r.snapshot();
        let ex = s.exemplars.get("latency").expect("retention turned on");
        assert_eq!(ex.len(), DEFAULT_EXEMPLAR_CAPACITY);
        assert_eq!(ex.last().unwrap().corr, 119, "newest tag retained");
        assert!(
            !s.exemplars.contains_key("untagged"),
            "histograms without retention stay out of the exemplar map"
        );
        assert_eq!(s.histograms["latency"].count, 21);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_loss_counters_mirror_the_recorder() {
        use crate::ring::SpanKind;

        let mut r = Registry::new();
        let rec = Recorder::new(2);
        rec.enable_sampling(crate::profiler::SamplerConfig {
            period: 10,
            capacity: 1,
            backend: "test".into(),
        });
        for i in 0..4u64 {
            rec.span(0, SpanKind::Call, i * 100, i * 100 + 50, i);
        }
        r.record_trace_loss(&rec);
        let s = r.snapshot();
        assert_eq!(s.counter("trace.events_recorded"), 4);
        assert_eq!(s.counter("trace.events_dropped"), 2);
        assert_eq!(s.counter("trace.samples_taken"), 20);
        assert_eq!(s.counter("trace.samples_dropped"), 19);
        assert_eq!(s.counter("trace.samples_poisoned"), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn export_truncation_counters_land_under_trace() {
        use crate::export::chrome_trace;
        use crate::ring::SpanKind;

        let mut r = Registry::new();
        let rec = Recorder::new(4);
        for i in 0..8u64 {
            rec.span(0, SpanKind::Call, i * 10, i * 10 + 5, i);
        }
        r.record_export(&chrome_trace(&rec));
        let s = r.snapshot();
        assert_eq!(s.counter("trace.export_events"), 4);
        assert_eq!(s.counter("trace.export_dropped"), 4);
        assert_eq!(s.counter("trace.export_truncated"), 1);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut r = Registry::new();
        r.gauge("utilization", 0.5);
        r.gauge("utilization", 0.8);
        assert_eq!(r.snapshot().gauges.get("utilization"), Some(&0.8));
    }
}
