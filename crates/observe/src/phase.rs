//! Phase attribution: folding a lane's span stream into a per-phase
//! cycle breakdown — a software Figure 7 for any recorded run.
//!
//! The fold walks each lane's events in order with a span stack and
//! charges every span its **self time** (duration minus the time covered
//! by nested child spans). A SkyBridge call therefore decomposes into
//! trampoline / switch / marshal / handler self-cycles plus whatever the
//! `call` span itself didn't delegate (uninstrumented glue), and the sum
//! of all phases equals the sum of call durations by construction — the
//! property the `trace_overhead` bench gates on.

use std::collections::BTreeMap;

use sb_sim::Cycles;

use crate::ring::{Event, EventKind, SpanKind};

/// The folded per-phase totals of a recorded run.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    /// Self-cycles charged to each span kind.
    pub phases: BTreeMap<&'static str, Cycles>,
    /// Completed `Call` spans seen.
    pub calls: u64,
    /// Sum of `Call` span durations — the end-to-end cycles the phases
    /// decompose.
    pub end_to_end: Cycles,
    /// `End` events that matched no open span of their kind (dropped
    /// begins after ring overwrite, or instrumentation bugs).
    pub unmatched: u64,
    /// Spans still open when a lane's stream ended.
    pub unclosed: u64,
}

impl PhaseProfile {
    /// Self-cycles charged to `kind` (0 when the phase never appeared).
    pub fn get(&self, kind: SpanKind) -> Cycles {
        self.phases.get(kind.name()).copied().unwrap_or(0)
    }

    /// Mean self-cycles per call for `kind` (0 when no calls completed).
    pub fn per_call(&self, kind: SpanKind) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.get(kind) as f64 / self.calls as f64
    }

    /// Total self-cycles across every phase. Queue-wait and backoff
    /// spans sit outside `Call` spans, so this can exceed
    /// [`PhaseProfile::end_to_end`]; restricted to the in-call phases it
    /// equals it exactly.
    pub fn total(&self) -> Cycles {
        self.phases.values().sum()
    }

    /// Accumulates another profile's totals into this one — the fold
    /// step of a chunked capture, where each harvested window is
    /// attributed while it still fits a ring and an arbitrarily long
    /// run gets an exact profile from bounded memory.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (phase, cycles) in &other.phases {
            *self.phases.entry(phase).or_insert(0) += cycles;
        }
        self.calls += other.calls;
        self.end_to_end += other.end_to_end;
        self.unmatched += other.unmatched;
        self.unclosed += other.unclosed;
    }

    /// Self-cycles of the phases nested inside calls (everything except
    /// the wait states — queue wait, backoff, ring wait — and the
    /// doorbell crossing shared across a ring batch) — the sum the
    /// acceptance gate compares to `end_to_end`.
    pub fn in_call_total(&self) -> Cycles {
        self.total()
            - self.get(SpanKind::QueueWait)
            - self.get(SpanKind::Backoff)
            - self.get(SpanKind::RingWait)
            - self.get(SpanKind::Doorbell)
    }
}

struct Open {
    kind: SpanKind,
    t0: Cycles,
    child: Cycles,
}

/// Folds one lane's event stream into `profile`.
fn fold_lane(events: &[Event], profile: &mut PhaseProfile) {
    let mut stack: Vec<Open> = Vec::new();
    for ev in events {
        match ev.kind {
            EventKind::Begin(kind) => stack.push(Open {
                kind,
                t0: ev.t,
                child: 0,
            }),
            EventKind::End(kind) => {
                match stack.last() {
                    Some(open) if open.kind == kind => {}
                    _ => {
                        profile.unmatched += 1;
                        continue;
                    }
                }
                let open = stack.pop().expect("matched above");
                let duration = ev.t.saturating_sub(open.t0);
                let self_time = duration.saturating_sub(open.child);
                *profile.phases.entry(kind.name()).or_insert(0) += self_time;
                if kind == SpanKind::Call {
                    profile.calls += 1;
                    profile.end_to_end += duration;
                }
                if let Some(parent) = stack.last_mut() {
                    parent.child += duration;
                }
            }
            EventKind::Complete(kind, dur) => {
                // A post-hoc leaf: its whole duration is self time, and
                // it is a child of whatever span is open around it.
                let dur = dur as Cycles;
                *profile.phases.entry(kind.name()).or_insert(0) += dur;
                if kind == SpanKind::Call {
                    profile.calls += 1;
                    profile.end_to_end += dur;
                }
                if let Some(parent) = stack.last_mut() {
                    parent.child += dur;
                }
            }
            EventKind::Instant(_) => {}
        }
    }
    profile.unclosed += stack.len() as u64;
}

/// Folds every lane's events (as returned by
/// `Recorder::events(lane)` for `0..lane_count`) into one profile.
pub fn attribute(events_by_lane: &[Vec<Event>]) -> PhaseProfile {
    let mut profile = PhaseProfile::default();
    for lane in events_by_lane {
        fold_lane(lane, &mut profile);
    }
    profile
}

/// Checks that a lane's span stream is well-formed: every `End` closes
/// an open span of the same kind and nothing is left open at the end.
/// Returns the number of complete spans on success.
pub fn validate_nesting(events: &[Event]) -> Result<u64, String> {
    let mut stack: Vec<SpanKind> = Vec::new();
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Begin(kind) => stack.push(kind),
            EventKind::End(kind) => match stack.pop() {
                Some(open) if open == kind => spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: End({}) closes an open {}",
                        kind.name(),
                        open.name()
                    ));
                }
                None => {
                    return Err(format!("event {i}: End({}) with nothing open", kind.name()));
                }
            },
            EventKind::Complete(..) => spans += 1,
            EventKind::Instant(_) => {}
        }
    }
    if stack.is_empty() {
        Ok(spans)
    } else {
        Err(format!(
            "{} span(s) left open: {:?}",
            stack.len(),
            stack.iter().map(|k| k.name()).collect::<Vec<_>>()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(t: Cycles, k: SpanKind) -> Event {
        Event {
            t,
            corr: 0,
            kind: EventKind::Begin(k),
        }
    }

    fn e(t: Cycles, k: SpanKind) -> Event {
        Event {
            t,
            corr: 0,
            kind: EventKind::End(k),
        }
    }

    #[test]
    fn self_time_excludes_children_and_sums_to_call_duration() {
        // call [0,100): trampoline [0,20), switch [20,30), handler
        // [30,80), switch [80,90), trampoline [90,100) — no glue gaps.
        let lane = vec![
            b(0, SpanKind::Call),
            b(0, SpanKind::Trampoline),
            e(20, SpanKind::Trampoline),
            b(20, SpanKind::Switch),
            e(30, SpanKind::Switch),
            b(30, SpanKind::Handler),
            e(80, SpanKind::Handler),
            b(80, SpanKind::Switch),
            e(90, SpanKind::Switch),
            b(90, SpanKind::Trampoline),
            e(100, SpanKind::Trampoline),
            e(100, SpanKind::Call),
        ];
        let p = attribute(&[lane]);
        assert_eq!(p.calls, 1);
        assert_eq!(p.end_to_end, 100);
        assert_eq!(p.get(SpanKind::Trampoline), 30);
        assert_eq!(p.get(SpanKind::Switch), 20);
        assert_eq!(p.get(SpanKind::Handler), 50);
        assert_eq!(p.get(SpanKind::Call), 0, "fully delegated call");
        assert_eq!(p.in_call_total(), p.end_to_end);
        assert_eq!((p.unmatched, p.unclosed), (0, 0));
    }

    #[test]
    fn complete_leaves_charge_like_begin_end_pairs() {
        let c = |t, k, dur| Event {
            t,
            corr: 0,
            kind: EventKind::Complete(k, dur),
        };
        let lane = vec![
            b(0, SpanKind::Call),
            c(0, SpanKind::Trampoline, 20),
            c(20, SpanKind::Switch, 10),
            c(30, SpanKind::Handler, 50),
            e(100, SpanKind::Call),
        ];
        let p = attribute(std::slice::from_ref(&lane));
        assert_eq!(p.get(SpanKind::Trampoline), 20);
        assert_eq!(p.get(SpanKind::Switch), 10);
        assert_eq!(p.get(SpanKind::Handler), 50);
        assert_eq!(p.get(SpanKind::Call), 20, "the uncovered tail is glue");
        assert_eq!(p.in_call_total(), p.end_to_end);
        assert_eq!(validate_nesting(&lane), Ok(4));
    }

    #[test]
    fn uninstrumented_glue_lands_on_the_call_span() {
        let lane = vec![
            b(0, SpanKind::Call),
            b(10, SpanKind::Handler),
            e(60, SpanKind::Handler),
            e(100, SpanKind::Call),
        ];
        let p = attribute(&[lane]);
        assert_eq!(p.get(SpanKind::Handler), 50);
        assert_eq!(p.get(SpanKind::Call), 50, "the gaps are the call's own");
        assert_eq!(p.in_call_total(), 100);
    }

    #[test]
    fn queue_wait_counts_outside_end_to_end() {
        let lane = vec![
            b(0, SpanKind::QueueWait),
            e(40, SpanKind::QueueWait),
            b(40, SpanKind::Call),
            e(90, SpanKind::Call),
        ];
        let p = attribute(&[lane]);
        assert_eq!(p.end_to_end, 50);
        assert_eq!(p.get(SpanKind::QueueWait), 40);
        assert_eq!(p.in_call_total(), 50);
        assert_eq!(p.total(), 90);
    }

    #[test]
    fn mismatched_end_is_counted_not_charged() {
        let lane = vec![
            b(0, SpanKind::Call),
            e(10, SpanKind::Handler), // No handler open.
            e(20, SpanKind::Call),
        ];
        let p = attribute(std::slice::from_ref(&lane));
        assert_eq!(p.unmatched, 1);
        assert_eq!(p.calls, 1, "the call still folds");
        assert!(validate_nesting(&lane).is_err());
    }

    #[test]
    fn validator_accepts_clean_nesting_and_rejects_open_tails() {
        let ok = vec![
            b(0, SpanKind::Call),
            b(1, SpanKind::Switch),
            e(2, SpanKind::Switch),
            e(3, SpanKind::Call),
        ];
        assert_eq!(validate_nesting(&ok), Ok(2));
        let open = vec![b(0, SpanKind::Call)];
        assert!(validate_nesting(&open).unwrap_err().contains("left open"));
    }

    #[test]
    fn merge_equals_attributing_one_stream() {
        let chunk1 = vec![
            b(0, SpanKind::Call),
            b(10, SpanKind::Handler),
            e(60, SpanKind::Handler),
            e(100, SpanKind::Call),
        ];
        let chunk2 = vec![
            b(100, SpanKind::Call),
            b(100, SpanKind::Switch),
            e(120, SpanKind::Switch),
            e(150, SpanKind::Call),
        ];
        let whole: Vec<Event> = chunk1.iter().chain(chunk2.iter()).copied().collect();
        let mut merged = attribute(&[chunk1]);
        merged.merge(&attribute(&[chunk2]));
        let one = attribute(&[whole]);
        assert_eq!(merged.calls, one.calls);
        assert_eq!(merged.end_to_end, one.end_to_end);
        assert_eq!(merged.phases, one.phases);
        assert_eq!(merged.in_call_total(), one.in_call_total());
    }

    #[test]
    fn multiple_lanes_accumulate() {
        let lane = vec![b(0, SpanKind::Call), e(10, SpanKind::Call)];
        let p = attribute(&[lane.clone(), lane]);
        assert_eq!(p.calls, 2);
        assert_eq!(p.end_to_end, 20);
    }
}
