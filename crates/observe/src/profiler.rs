//! Statistical cycle-sampling: a deterministic sampling profiler riding
//! the span stream, flamegraph folding, and the sampled-vs-exact gate.
//!
//! The exact [`PhaseProfile`](crate::phase::PhaseProfile) answers "where
//! did this run's cycles go" only while every event of the window fits a
//! ring; a long run overwrites its history and the answer silently
//! shrinks to the tail. The sampler answers the same question with fixed
//! memory over any horizon: the [`Recorder`](crate::ring::Recorder)
//! already sees every span boundary, so it can maintain a per-lane
//! current-span stack and, on a fixed grid of the lane's simulated cycle
//! clock (every [`SamplerConfig::period`] cycles), record one
//! [`Sample`] — `(lane, tenant, span stack)` — into a bounded ring with
//! exact loss accounting.
//!
//! Because the grid is deterministic, a sample point lands in a span
//! exactly when the span covers that cycle, so the expected share of
//! samples whose **innermost** frame is phase *k* equals *k*'s
//! self-time share — the quantity the exact profile measures. That
//! identity is this module's correctness gate
//! ([`compare_shares`]): sampled shares must track exact shares within
//! a relative tolerance for every phase that matters. The default
//! period is prime so the grid cannot alias against the near-periodic
//! call durations the simulator produces.
//!
//! Two grids per lane, because wait spans are emitted retroactively
//! (queue wait is stamped at service start, covering a wait that
//! overlaps earlier calls in lane time): the **main grid** covers the
//! forward-ordered call stream, the **wait grid** covers the wait spans
//! on their own cursor — the same split the Perfetto exporter makes
//! with its per-lane wait track.
//!
//! The sampler never guesses: a stack deeper than a sample can hold, or
//! an event stream the state machine cannot reconcile, poisons the
//! affected samples instead of truncating them silently.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sb_sim::Cycles;

use crate::phase::PhaseProfile;
use crate::ring::{Event, EventKind, SpanKind};

/// Default sampling period in simulated cycles. Prime, so the fixed
/// grid cannot phase-lock onto call durations (a 4096-cycle period
/// against a 1024-cycle call would sample the same offset forever).
pub const DEFAULT_SAMPLE_PERIOD: Cycles = 4093;

/// Default sample-ring capacity.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1 << 16;

/// Frames a [`Sample`] can hold. Deeper stacks poison the sample
/// rather than truncate it — see [`Sample::poisoned`].
pub const MAX_SAMPLE_DEPTH: usize = 8;

/// Sampler configuration, passed to
/// [`Recorder::enable_sampling`](crate::ring::Recorder::enable_sampling).
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Grid spacing in simulated cycles (clamped to ≥ 1). Keep it prime.
    pub period: Cycles,
    /// Sample-ring capacity (clamped to ≥ 1); a full ring overwrites
    /// the oldest sample and counts it in [`SampleStats::dropped`].
    pub capacity: usize,
    /// The transport personality label folded into flamegraph roots
    /// (`backend;frame;frame count`).
    pub backend: String,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            period: DEFAULT_SAMPLE_PERIOD,
            capacity: DEFAULT_SAMPLE_CAPACITY,
            backend: String::new(),
        }
    }
}

/// One sample: the span stack live on a lane at one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// The lane (simulated core) the grid point landed on.
    pub lane: u16,
    /// The tenant the lane was serving, per the latest
    /// [`note_tenant`](crate::ring::Recorder::note_tenant) (0 when
    /// nothing was noted).
    pub tenant: u16,
    /// Valid frames in `stack`.
    pub depth: u8,
    /// Nonzero when the sample is poisoned (stack deeper than
    /// [`MAX_SAMPLE_DEPTH`], or the lane's span stream desynchronised);
    /// a poisoned sample's frames must not be trusted.
    pub flags: u8,
    /// Span-kind codes ([`SpanKind::code`]), outermost first.
    pub stack: [u8; MAX_SAMPLE_DEPTH],
}

const FLAG_POISONED: u8 = 1;

impl Sample {
    /// The frames, outermost first (empty when poisoned past repair).
    pub fn frames(&self) -> impl Iterator<Item = SpanKind> + '_ {
        self.stack[..self.depth as usize]
            .iter()
            .filter_map(|&c| SpanKind::from_code(c))
    }

    /// The innermost frame — the phase this sampled cycle is charged
    /// to, mirroring the exact profile's self-time attribution.
    pub fn leaf(&self) -> Option<SpanKind> {
        if self.depth == 0 {
            return None;
        }
        SpanKind::from_code(self.stack[self.depth as usize - 1])
    }

    /// Whether the stack cannot be trusted.
    pub fn poisoned(&self) -> bool {
        self.flags & FLAG_POISONED != 0
    }

    /// Whether the sample landed inside a `Call` span (the in-call
    /// population the sampled-vs-exact gate compares).
    pub fn in_call(&self) -> bool {
        !self.poisoned() && self.frames().any(|k| k == SpanKind::Call)
    }
}

/// Exact sampler accounting, immune to sample-ring overwrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Samples ever taken (pushed into the ring).
    pub taken: u64,
    /// Samples lost to ring overwrite — `taken` minus what
    /// [`samples`](crate::ring::Recorder::samples) and prior drains
    /// returned.
    pub dropped: u64,
    /// Grid points that landed outside any span (lane idle). Counted,
    /// never stored: idle is not a phase.
    pub idle_points: u64,
    /// Poisoned samples among `taken`.
    pub poisoned: u64,
    /// Events the state machine could not reconcile (unmatched ends,
    /// out-of-order begins); each taints its lane until the stack
    /// drains empty.
    pub broken_events: u64,
}

/// A bounded overwrite-oldest sample ring with drain support: unlike
/// the event ring, samples are harvested incrementally over a long
/// run, so loss accounting must survive a drain.
#[derive(Debug, Default)]
struct SampleRing {
    buf: Vec<Sample>,
    capacity: usize,
    head: usize,
    pushed: u64,
    drained: u64,
}

impl SampleRing {
    fn new(capacity: usize) -> Self {
        SampleRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
            drained: 0,
        }
    }

    fn push(&mut self, s: Sample) {
        if self.buf.len() < self.capacity {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
        self.pushed += 1;
    }

    fn dropped(&self) -> u64 {
        self.pushed - self.drained - self.buf.len() as u64
    }

    fn ordered(&self) -> Vec<Sample> {
        let start = if self.buf.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.buf[start..]
            .iter()
            .chain(self.buf[..start].iter())
            .copied()
            .collect()
    }

    fn drain(&mut self) -> Vec<Sample> {
        let out = self.ordered();
        self.drained += out.len() as u64;
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// Frames the per-lane tracker stores inline. Deeper nesting is
/// counted (so depth accounting and drains stay exact) but the frames
/// themselves are unknowable, which taints the lane — never guess.
const TRACK_DEPTH: usize = 16;

/// The live span stack, inline and heap-free: the emit hot path pushes
/// and pops on every span boundary, so the frames live directly inside
/// the lane's track rather than behind a `Vec`'s pointer.
#[derive(Debug, Default)]
pub(crate) struct FrameStack {
    /// Frames held in `buf`.
    len: u8,
    /// Frames pushed beyond [`TRACK_DEPTH`] (counted, not stored).
    over: u8,
    /// Span-kind codes, innermost last.
    buf: [u8; TRACK_DEPTH],
}

impl FrameStack {
    #[inline]
    pub(crate) fn push(&mut self, kind: SpanKind) {
        if (self.len as usize) < TRACK_DEPTH {
            self.buf[self.len as usize] = kind.code();
            self.len += 1;
        } else {
            self.over = self.over.saturating_add(1);
        }
    }

    /// Drops the innermost frame (overflowed frames first).
    #[inline]
    pub(crate) fn pop(&mut self) {
        if self.over > 0 {
            self.over -= 1;
        } else if self.len > 0 {
            self.len -= 1;
        }
    }

    /// The innermost frame, or `None` when empty — or when the top
    /// overflowed the store and is unknowable (callers treat that as a
    /// mismatch and poison rather than guess).
    #[inline]
    pub(crate) fn last(&self) -> Option<SpanKind> {
        if self.over > 0 || self.len == 0 {
            None
        } else {
            SpanKind::from_code(self.buf[self.len as usize - 1])
        }
    }

    /// True nesting depth, including overflowed frames.
    #[inline]
    pub(crate) fn depth(&self) -> usize {
        self.len as usize + self.over as usize
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0 && self.over == 0
    }

    /// The stored frame codes, outermost first.
    fn codes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

/// Per-lane sampler state: the live span stack and the two grid
/// cursors. Lives inside the recorder's per-lane track (next to the
/// lane's event ring) so the emit hot path reaches it through the
/// borrow it already holds — the shared [`Sampler`] is only borrowed
/// when a grid point is actually crossed.
#[derive(Debug, Default)]
pub(crate) struct LaneSampler {
    pub(crate) stack: FrameStack,
    /// Set by an irreconcilable event; poisons samples until the stack
    /// drains empty (the next clean top-level boundary resynchronises).
    pub(crate) tainted: bool,
    /// Lane time covered so far on the main (call) grid.
    pub(crate) cursor: Cycles,
    /// Next main-grid point (a multiple of the period).
    pub(crate) next: Cycles,
    /// Next wait-grid point.
    pub(crate) wait_next: Cycles,
    pub(crate) tenant: u16,
    /// Events this lane's state machine could not reconcile.
    pub(crate) broken_events: u64,
}

/// The sampler the [`Recorder`](crate::ring::Recorder) drives from its
/// emit path: the shared half (grid period, sample ring, accounting);
/// the per-lane half is [`LaneSampler`].
#[derive(Debug)]
pub(crate) struct Sampler {
    period: Cycles,
    backend: String,
    ring: SampleRing,
    idle_points: u64,
    poisoned: u64,
}

fn is_wait(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::QueueWait | SpanKind::Backoff | SpanKind::RingWait
    )
}

impl Sampler {
    pub(crate) fn new(config: SamplerConfig) -> Self {
        Sampler {
            period: config.period.max(1),
            ring: SampleRing::new(config.capacity),
            backend: config.backend,
            idle_points: 0,
            poisoned: 0,
        }
    }

    pub(crate) fn backend(&self) -> &str {
        &self.backend
    }

    /// First grid point at or after `t`.
    fn grid_at(&self, t: Cycles) -> Cycles {
        t.div_ceil(self.period) * self.period
    }

    fn record(ring: &mut SampleRing, poisoned_total: &mut u64, lane: usize, ls: &LaneSampler) {
        let deep = ls.stack.depth() > MAX_SAMPLE_DEPTH;
        let poisoned = ls.tainted || deep;
        let mut s = Sample {
            lane: lane.min(u16::MAX as usize) as u16,
            tenant: ls.tenant,
            depth: 0,
            flags: if poisoned { FLAG_POISONED } else { 0 },
            stack: [0; MAX_SAMPLE_DEPTH],
        };
        if !poisoned {
            let codes = ls.stack.codes();
            s.stack[..codes.len()].copy_from_slice(codes);
            s.depth = codes.len() as u8;
        } else {
            *poisoned_total += 1;
        }
        ring.push(s);
    }

    /// Advances the main grid to `t`, attributing every crossed grid
    /// point to the lane's current stack (or counting it idle). Callers
    /// on the emit path reach this only when a grid point was actually
    /// crossed ([`drive`] filters the common nothing-to-do case without
    /// borrowing the sampler at all).
    fn advance_main(&mut self, lane: usize, ls: &mut LaneSampler, t: Cycles) {
        let period = self.period;
        if t <= ls.cursor {
            return;
        }
        if ls.next < ls.cursor {
            ls.next = ls.cursor.div_ceil(period) * period;
        }
        if ls.stack.is_empty() && !ls.tainted {
            // Idle stretch: count the grid points arithmetically, no
            // per-point work (this is the common inter-call path).
            if ls.next < t {
                let n = (t - 1 - ls.next) / period + 1;
                self.idle_points += n;
                ls.next += n * period;
            }
        } else {
            while ls.next < t {
                Self::record(&mut self.ring, &mut self.poisoned, lane, ls);
                ls.next += period;
            }
        }
        ls.cursor = t;
    }

    /// Samples a retroactive wait span `[t0, t1)` of `kind` on the wait
    /// grid. Wait spans overlap each other (two queued requests wait
    /// through the same cycles); a forward-only cursor samples each
    /// wait-grid point at most once, attributed to the first span
    /// processed over it.
    fn advance_wait(
        &mut self,
        lane: usize,
        ls: &mut LaneSampler,
        kind: SpanKind,
        t0: Cycles,
        t1: Cycles,
    ) {
        let period = self.period;
        let first = self.grid_at(t0);
        let start = ls.wait_next.max(first);
        let mut p = start;
        while p < t1 {
            let mut s = Sample {
                lane: lane.min(u16::MAX as usize) as u16,
                tenant: ls.tenant,
                depth: 1,
                flags: 0,
                stack: [0; MAX_SAMPLE_DEPTH],
            };
            s.stack[0] = kind.code();
            self.ring.push(s);
            p += period;
        }
        if p != start {
            // Only consumed points advance the cursor: a short span
            // between grid points must not swallow a later span's
            // point.
            ls.wait_next = p;
        }
    }

    pub(crate) fn samples(&self) -> Vec<Sample> {
        self.ring.ordered()
    }

    pub(crate) fn drain(&mut self) -> Vec<Sample> {
        self.ring.drain()
    }

    /// Exact accounting; `broken_events` is summed by the recorder from
    /// the per-lane state it owns.
    pub(crate) fn stats(&self, broken_events: u64) -> SampleStats {
        SampleStats {
            taken: self.ring.pushed,
            dropped: self.ring.dropped(),
            idle_points: self.idle_points,
            poisoned: self.poisoned,
            broken_events,
        }
    }

    /// Resets samples and accounting; keeps the configuration. The
    /// recorder resets the per-lane cursors alongside.
    pub(crate) fn reset(&mut self) {
        let capacity = self.ring.capacity;
        self.ring = SampleRing::new(capacity);
        self.idle_points = 0;
        self.poisoned = 0;
    }
}

/// Drives the sampler for one emitted event, in emit order.
///
/// This is the emit hot path: the per-lane state comes in through the
/// borrow the event push already paid for, so the common case — no
/// grid point crossed — is two compares and a stack push/pop, without
/// touching the shared sampler's `RefCell` at all. The cell is
/// borrowed only on a grid crossing (every `period` cycles) or for a
/// retroactive wait span.
#[inline]
pub(crate) fn drive(
    cell: &std::cell::RefCell<Option<Sampler>>,
    lane: usize,
    ls: &mut LaneSampler,
    ev: &Event,
) {
    match ev.kind {
        EventKind::Begin(kind) => {
            advance(cell, lane, ls, ev.t);
            ls.stack.push(kind);
        }
        EventKind::End(kind) => {
            advance(cell, lane, ls, ev.t);
            match ls.stack.last() {
                Some(top) if top == kind => {
                    ls.stack.pop();
                    if ls.stack.is_empty() {
                        // A clean top-level close resynchronises a
                        // tainted lane.
                        ls.tainted = false;
                    }
                }
                _ => {
                    // An end with no matching open span: the stream
                    // desynchronised (ring overwrite upstream or an
                    // instrumentation bug). Never guess — poison
                    // until the stack drains.
                    ls.tainted = true;
                    ls.broken_events += 1;
                }
            }
        }
        EventKind::Complete(kind, dur) => {
            let t1 = ev.t + dur as Cycles;
            // A leaf wholly inside the current grid interval can never
            // be sampled: just move the cursor forward. Tainted lanes
            // fall through so resync stays on one path.
            if !is_wait(kind) && t1 <= ls.next && !ls.tainted {
                if t1 > ls.cursor {
                    ls.cursor = t1;
                }
                return;
            }
            complete_slow(cell, lane, ls, kind, ev.t, t1);
        }
        EventKind::Instant(_) => advance(cell, lane, ls, ev.t),
    }
}

/// The grid-advance fast path: nothing to do unless `t` crosses the
/// lane's next grid point.
#[inline]
fn advance(
    cell: &std::cell::RefCell<Option<Sampler>>,
    lane: usize,
    ls: &mut LaneSampler,
    t: Cycles,
) {
    if t <= ls.cursor {
        return;
    }
    if t <= ls.next {
        ls.cursor = t;
        return;
    }
    flush(cell, lane, ls, t);
}

#[cold]
fn flush(cell: &std::cell::RefCell<Option<Sampler>>, lane: usize, ls: &mut LaneSampler, t: Cycles) {
    if let Some(s) = cell.borrow_mut().as_mut() {
        s.advance_main(lane, ls, t);
    }
}

/// The grid-crossing (or tainted / wait) half of `Complete` handling:
/// glue up to the leaf's start belongs to the enclosing stack, the
/// leaf's extent to stack + leaf.
#[cold]
fn complete_slow(
    cell: &std::cell::RefCell<Option<Sampler>>,
    lane: usize,
    ls: &mut LaneSampler,
    kind: SpanKind,
    t0: Cycles,
    t1: Cycles,
) {
    if is_wait(kind) {
        if let Some(s) = cell.borrow_mut().as_mut() {
            s.advance_wait(lane, ls, kind, t0, t1);
        }
        return;
    }
    advance(cell, lane, ls, t0);
    ls.stack.push(kind);
    advance(cell, lane, ls, t1);
    ls.stack.pop();
    if ls.stack.is_empty() {
        ls.tainted = false;
    }
}

// --- folding -------------------------------------------------------------

/// The poisoned-sample frame in folded output.
pub const POISONED_FRAME: &str = "(poisoned)";

fn stack_key(backend: &str, sample: &Sample) -> String {
    let mut key = String::from(backend);
    if sample.poisoned() {
        key.push(';');
        key.push_str(POISONED_FRAME);
        return key;
    }
    for f in sample.frames() {
        key.push(';');
        key.push_str(f.name());
    }
    key
}

/// Folds samples into collapsed-stack counts keyed
/// `backend;frame;...;frame`. Idle samples never exist (idle grid
/// points are only counted), and poisoned samples fold under
/// [`POISONED_FRAME`] so loss of attribution stays visible.
pub fn fold_samples<'a>(
    samples: impl IntoIterator<Item = &'a Sample>,
    backend: &str,
) -> BTreeMap<String, u64> {
    let mut folds = BTreeMap::new();
    for s in samples {
        if s.depth == 0 && !s.poisoned() {
            continue;
        }
        *folds.entry(stack_key(backend, s)).or_insert(0) += 1;
    }
    folds
}

/// Folds samples per tenant (same keys as [`fold_samples`]).
pub fn fold_samples_by_tenant<'a>(
    samples: impl IntoIterator<Item = &'a Sample>,
    backend: &str,
) -> BTreeMap<u16, BTreeMap<String, u64>> {
    let mut by_tenant: BTreeMap<u16, BTreeMap<String, u64>> = BTreeMap::new();
    for s in samples {
        if s.depth == 0 && !s.poisoned() {
            continue;
        }
        *by_tenant
            .entry(s.tenant)
            .or_default()
            .entry(stack_key(backend, s))
            .or_insert(0) += 1;
    }
    by_tenant
}

/// Renders folds as collapsed-stack text (`stack count` per line) — the
/// format `flamegraph.pl` and speedscope ingest directly.
pub fn collapsed_lines(folds: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, count) in folds {
        let _ = writeln!(out, "{stack} {count}");
    }
    out
}

// --- the sampled-vs-exact gate -------------------------------------------

/// One phase's exact-vs-sampled share, from [`compare_shares`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareComparison {
    /// The phase name.
    pub phase: &'static str,
    /// Exact self-time share of in-call cycles.
    pub exact: f64,
    /// Sampled leaf share of in-call samples.
    pub sampled: f64,
}

/// In-call sampled leaf shares: for each phase, the fraction of
/// unpoisoned in-call samples whose innermost frame is that phase.
pub fn sampled_shares(samples: &[Sample]) -> BTreeMap<&'static str, f64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total = 0u64;
    for s in samples {
        if !s.in_call() {
            continue;
        }
        let leaf = s.leaf().expect("in_call implies depth > 0");
        *counts.entry(leaf.name()).or_insert(0) += 1;
        total += 1;
    }
    counts
        .into_iter()
        .map(|(k, n)| (k, n as f64 / total.max(1) as f64))
        .collect()
}

/// The profiler's correctness gate: every in-call phase whose exact
/// self-time share is at least `min_share` must be sampled within
/// `tolerance` (relative) of that share. One sample's weight of
/// absolute slack rides on top, so a phase sitting exactly at the
/// threshold cannot fail on quantisation alone.
///
/// Wait phases (queue wait, backoff, ring wait) and the doorbell
/// crossing are outside the in-call population on both sides, mirroring
/// [`PhaseProfile::in_call_total`].
pub fn compare_shares(
    samples: &[Sample],
    exact: &PhaseProfile,
    min_share: f64,
    tolerance: f64,
) -> Result<Vec<ShareComparison>, String> {
    let in_call = exact.in_call_total();
    if in_call == 0 {
        return Err("no in-call cycles in the exact profile".to_string());
    }
    let n: u64 = samples.iter().filter(|s| s.in_call()).count() as u64;
    if n == 0 {
        return Err("no in-call samples".to_string());
    }
    let sampled = sampled_shares(samples);
    let quantum = 1.0 / n as f64;
    let mut out = Vec::new();
    let mut failures = Vec::new();
    for kind in SpanKind::ALL {
        if is_wait(kind) || kind == SpanKind::Doorbell {
            continue;
        }
        let exact_share = exact.get(kind) as f64 / in_call as f64;
        let sampled_share = sampled.get(kind.name()).copied().unwrap_or(0.0);
        if exact_share < min_share {
            continue;
        }
        out.push(ShareComparison {
            phase: kind.name(),
            exact: exact_share,
            sampled: sampled_share,
        });
        let err = (sampled_share - exact_share).abs();
        if err > exact_share * tolerance + quantum {
            failures.push(format!(
                "{}: sampled {:.3} vs exact {:.3} ({:+.1}% relative, tolerance {:.0}%)",
                kind.name(),
                sampled_share,
                exact_share,
                (sampled_share / exact_share - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Recorder;

    fn sampling_recorder(period: Cycles, capacity: usize) -> Recorder {
        let r = Recorder::new(1 << 12);
        r.enable_sampling(SamplerConfig {
            period,
            capacity,
            backend: "test".to_string(),
        });
        r
    }

    #[cfg(feature = "trace")]
    #[test]
    fn samples_land_on_the_grid_with_self_time_attribution() {
        // period 10; call [5, 95) with a handler [20, 60): grid points
        // 10..90. Points in [20,60) are handler leaves, the rest call
        // glue.
        let r = sampling_recorder(10, 1 << 8);
        r.begin(0, SpanKind::Call, 5, 1);
        r.span(0, SpanKind::Handler, 20, 60, 1);
        r.end(0, SpanKind::Call, 95, 1);
        let samples = r.samples();
        assert_eq!(samples.len(), 9, "grid points 10..=90");
        let handler = samples
            .iter()
            .filter(|s| s.leaf() == Some(SpanKind::Handler))
            .count();
        let glue = samples
            .iter()
            .filter(|s| s.leaf() == Some(SpanKind::Call))
            .count();
        assert_eq!(handler, 4, "points 20,30,40,50");
        assert_eq!(glue, 5, "points 10,60,70,80,90");
        assert!(samples.iter().all(|s| s.in_call()));
        assert_eq!(r.sample_stats().idle_points, 1, "point 0 was idle");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn idle_gaps_are_counted_not_stored() {
        let r = sampling_recorder(10, 1 << 8);
        r.span(0, SpanKind::Call, 100, 120, 1);
        r.span(0, SpanKind::Call, 500, 520, 2);
        let stats = r.sample_stats();
        // Grid points 100,110 in the first call; 500,510 in the second;
        // 0..100 and 120..500 idle (10 + 38 points).
        assert_eq!(stats.taken, 4);
        assert_eq!(stats.idle_points, 48);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn wait_spans_sample_on_their_own_grid() {
        let r = sampling_recorder(10, 1 << 8);
        // A call [0,40) on the main grid, then a retroactive queue wait
        // [5, 35) — overlapping the call in lane time.
        r.span(0, SpanKind::Call, 0, 40, 1);
        r.span(0, SpanKind::QueueWait, 5, 35, 2);
        let samples = r.samples();
        let wait: Vec<_> = samples
            .iter()
            .filter(|s| s.leaf() == Some(SpanKind::QueueWait))
            .collect();
        assert_eq!(wait.len(), 3, "wait points 10,20,30");
        let call = samples
            .iter()
            .filter(|s| s.leaf() == Some(SpanKind::Call))
            .count();
        assert_eq!(call, 4, "main points 0,10,20,30");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn overlapping_waits_sample_each_point_once() {
        let r = sampling_recorder(10, 1 << 8);
        r.span(0, SpanKind::QueueWait, 0, 50, 1);
        r.span(0, SpanKind::QueueWait, 20, 100, 2);
        let n = r.samples().len();
        assert_eq!(n, 10, "0..100 on one forward-only wait cursor");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn deep_stacks_poison_instead_of_truncating() {
        let r = sampling_recorder(10, 1 << 8);
        for _ in 0..(MAX_SAMPLE_DEPTH + 1) {
            r.begin(0, SpanKind::Call, 0, 1);
        }
        // Long enough to cross grid points with the over-deep stack.
        r.instant(0, crate::ring::InstantKind::Retry, 100, 1);
        let samples = r.samples();
        assert!(!samples.is_empty());
        assert!(
            samples.iter().all(|s| s.poisoned() && s.depth == 0),
            "a stack deeper than a sample can hold must poison, not guess"
        );
        assert_eq!(r.sample_stats().poisoned, samples.len() as u64);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn unmatched_end_taints_until_the_stack_drains() {
        let r = sampling_recorder(10, 1 << 8);
        r.begin(0, SpanKind::Call, 0, 1);
        r.end(0, SpanKind::Handler, 15, 1); // Desync: nothing matches.
        r.end(0, SpanKind::Call, 45, 1); // Stack drains; lane resyncs.
        r.span(0, SpanKind::Call, 50, 95, 2); // Clean again.
        let samples = r.samples();
        let poisoned = samples.iter().filter(|s| s.poisoned()).count();
        let clean = samples.iter().filter(|s| !s.poisoned()).count();
        assert_eq!(poisoned, 3, "points 20,30,40 in the tainted window");
        assert_eq!(clean, 7, "points 0,10 before and 50..90 after resync");
        assert_eq!(r.sample_stats().broken_events, 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn capacity_one_ring_keeps_newest_with_exact_loss() {
        let r = sampling_recorder(10, 1);
        r.span(0, SpanKind::Call, 0, 1000, 1);
        let stats = r.sample_stats();
        assert_eq!(stats.taken, 100);
        assert_eq!(stats.dropped, 99, "capacity 1 keeps exactly one");
        assert_eq!(r.samples().len(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn drain_preserves_loss_accounting() {
        let r = sampling_recorder(10, 4);
        r.span(0, SpanKind::Call, 0, 100, 1); // 10 points into 4 slots.
        let drained = r.drain_samples();
        assert_eq!(drained.len(), 4);
        let stats = r.sample_stats();
        assert_eq!(stats.taken, 10);
        assert_eq!(stats.dropped, 6, "drained samples are not dropped");
        r.span(0, SpanKind::Call, 100, 140, 2);
        let stats = r.sample_stats();
        assert_eq!(stats.taken, 14);
        assert_eq!(stats.dropped, 6, "post-drain samples fit");
        assert_eq!(r.samples().len(), 4);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn folds_key_backend_stack_and_tenants_split() {
        let r = sampling_recorder(10, 1 << 8);
        r.note_tenant(0, 7);
        r.begin(0, SpanKind::Call, 0, 1);
        r.span(0, SpanKind::Handler, 0, 40, 1);
        r.end(0, SpanKind::Call, 40, 1);
        r.note_tenant(0, 9);
        r.begin(0, SpanKind::Call, 40, 2);
        r.span(0, SpanKind::Handler, 40, 80, 2);
        r.end(0, SpanKind::Call, 80, 2);
        let samples = r.samples();
        let folds = fold_samples(&samples, "skybridge");
        assert_eq!(folds.get("skybridge;call;handler"), Some(&8));
        let by_tenant = fold_samples_by_tenant(&samples, "skybridge");
        assert_eq!(by_tenant[&7]["skybridge;call;handler"], 4);
        assert_eq!(by_tenant[&9]["skybridge;call;handler"], 4);
        let text = collapsed_lines(&folds);
        assert_eq!(text, "skybridge;call;handler 8\n");
    }

    #[test]
    fn compare_shares_matches_and_flags_drift() {
        // Build an exact profile and a perfectly proportional sample
        // set, then distort it.
        let mut exact = PhaseProfile::default();
        exact.phases.insert(SpanKind::Handler.name(), 600);
        exact.phases.insert(SpanKind::Switch.name(), 400);
        exact.calls = 10;
        exact.end_to_end = 1000;
        let mk = |kinds: &[SpanKind]| {
            let mut s = Sample {
                lane: 0,
                tenant: 0,
                depth: kinds.len() as u8,
                flags: 0,
                stack: [0; MAX_SAMPLE_DEPTH],
            };
            for (i, k) in kinds.iter().enumerate() {
                s.stack[i] = k.code();
            }
            s
        };
        let mut samples = Vec::new();
        for _ in 0..60 {
            samples.push(mk(&[SpanKind::Call, SpanKind::Handler]));
        }
        for _ in 0..40 {
            samples.push(mk(&[SpanKind::Call, SpanKind::Switch]));
        }
        let cmp = compare_shares(&samples, &exact, 0.02, 0.10).expect("proportional set passes");
        assert_eq!(cmp.len(), 2);
        // Now skew: handler over-sampled far past 10%.
        for _ in 0..40 {
            samples.push(mk(&[SpanKind::Call, SpanKind::Handler]));
        }
        let err = compare_shares(&samples, &exact, 0.02, 0.10).unwrap_err();
        assert!(err.contains("handler"), "{err}");
    }

    #[test]
    fn poisoned_samples_are_excluded_from_shares_but_folded() {
        let poisoned = Sample {
            lane: 0,
            tenant: 0,
            depth: 0,
            flags: FLAG_POISONED,
            stack: [0; MAX_SAMPLE_DEPTH],
        };
        assert!(!poisoned.in_call());
        let folds = fold_samples([&poisoned], "mpk");
        assert_eq!(folds.get("mpk;(poisoned)"), Some(&1));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn clear_resets_sampler_state_and_accounting() {
        let r = sampling_recorder(10, 1 << 8);
        r.span(0, SpanKind::Call, 0, 100, 1);
        assert!(r.sample_stats().taken > 0);
        r.clear();
        assert_eq!(r.sample_stats(), SampleStats::default());
        assert!(r.sampling_enabled(), "clear keeps the configuration");
        r.span(0, SpanKind::Call, 0, 50, 2);
        assert_eq!(r.sample_stats().taken, 5, "grid restarts at zero");
    }
}
