//! Typed trace events, the per-lane event ring, and the [`Recorder`].
//!
//! The recorder is the stack's one emit surface: every instrumented layer
//! (transports, the SkyBridge core, the dispatcher, the fault plane)
//! holds a cheap clone and pushes fixed-size [`Event`]s into per-lane
//! rings. Lanes are the transport's serving lanes — each owns a simulated
//! core, so a lane's events are timestamped by one monotone cycle clock
//! and need no cross-lane ordering. The dispatcher uses one extra lane
//! index (one past the last transport lane) as its own track.
//!
//! The emit path is lock-free in the only sense that matters for the
//! single-threaded simulation: one `enabled` flag read, one `RefCell`
//! borrow, one bounds-checked slot write — no heap traffic once a ring
//! has grown to capacity. A full ring overwrites its oldest events and
//! counts them in [`Recorder::dropped`], so exporters can refuse to
//! present a truncated trace as complete.
//!
//! With the crate's `trace` feature disabled every emit method compiles
//! to an empty inline function.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use sb_sim::Cycles;

use crate::profiler::{LaneSampler, Sample, SampleStats, Sampler, SamplerConfig};

/// Default per-lane ring capacity, in events.
///
/// Sized so the ring's working set stays cache-resident (4,096 events ≈
/// 96 KiB/lane — a few hundred calls of recent history): an always-on
/// flight recorder that cycles a multi-megabyte buffer turns every emit
/// into a cache miss and the tracing tax blows past the overhead budget
/// the `trace_overhead` bench gates on. Deliberate offline captures
/// (e.g. a Perfetto dump of a whole run) should pass a larger capacity
/// to [`Recorder::new`] instead.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 12;

/// A timed section of a call, one of the paper's phases or the
/// dispatcher's wait states. Begin/End pairs of the same kind nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole transport call, entry to reply.
    Call,
    /// Time between a request's arrival and its service start.
    QueueWait,
    /// Client-side trampoline work: fetch, register save/restore,
    /// function-list lookup, return-key recheck.
    Trampoline,
    /// One EPTP switch (`VMFUNC`, including any fault + reinstall).
    Switch,
    /// A real marshalling copy into or out of a message buffer.
    Marshal,
    /// Server-side work: identity, key check, handler body.
    Handler,
    /// A kernel IPC leg (`ipc_call` / `ipc_reply`) on a trap transport.
    KernelIpc,
    /// Idle lane time spent backing off before a retry.
    Backoff,
    /// Time a submitted frame sat in a submission ring before its batch
    /// was drained (ring mode's analogue of `QueueWait`).
    RingWait,
    /// One doorbell drain: the shared crossing that serves a whole batch
    /// in ring mode. Per-entry `Call` spans nest inside it, so its
    /// self-time is exactly the amortized crossing overhead.
    Doorbell,
    /// One `WRPKRU` protection-domain flip on the MPK transport (the
    /// analogue of `Switch` when the crossing changes pkey rights
    /// instead of EPTPs). Nested inside `Call`, so the phase identity
    /// `in_call_total == end_to_end` stays closed.
    Wrpkru,
}

impl SpanKind {
    /// Every span kind, in display order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::Call,
        SpanKind::QueueWait,
        SpanKind::Trampoline,
        SpanKind::Switch,
        SpanKind::Marshal,
        SpanKind::Handler,
        SpanKind::KernelIpc,
        SpanKind::Backoff,
        SpanKind::RingWait,
        SpanKind::Doorbell,
        SpanKind::Wrpkru,
    ];

    /// Compact stable code (the index in [`SpanKind::ALL`]) — the form
    /// a [`Sample`](crate::profiler::Sample) stores its stack frames in.
    pub fn code(self) -> u8 {
        SpanKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is in ALL") as u8
    }

    /// Decodes a [`SpanKind::code`] (None for an out-of-range code).
    pub fn from_code(code: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(code as usize).copied()
    }

    /// Stable display name (trace and report keys).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Call => "call",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Trampoline => "trampoline",
            SpanKind::Switch => "switch",
            SpanKind::Marshal => "marshal",
            SpanKind::Handler => "handler",
            SpanKind::KernelIpc => "kernel_ipc",
            SpanKind::Backoff => "backoff",
            SpanKind::RingWait => "ring_wait",
            SpanKind::Doorbell => "doorbell",
            SpanKind::Wrpkru => "wrpkru",
        }
    }
}

/// A point event with no duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// An arrival was admitted into the dispatch queue.
    QueueAdmit,
    /// An arrival was shed because the queue was full.
    ShedQueueFull,
    /// A queued request was dropped past its queue deadline.
    ShedDeadline,
    /// An arrival was shed at the tenant admission gate (rate limit or
    /// quarantine window).
    ShedRateLimit,
    /// A failed call is about to be re-attempted.
    Retry,
    /// A transport recovery (revive/rebind/respawn) succeeded.
    Recovery,
}

impl InstantKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::QueueAdmit => "queue_admit",
            InstantKind::ShedQueueFull => "shed_queue_full",
            InstantKind::ShedDeadline => "shed_deadline",
            InstantKind::ShedRateLimit => "shed_rate_limit",
            InstantKind::Retry => "retry",
            InstantKind::Recovery => "recovery",
        }
    }
}

/// Lifecycle stage of an injected fault, mirroring the fault-plane
/// ledger's transitions. The chaos suite's two-source check compares the
/// per-stage counts against the ledger's roll-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// The fault fired (an instance opened in the ledger).
    Fired,
    /// The instance was rescinded — it never actually misbehaved.
    Rescinded,
    /// The system observed the fault.
    Detected,
    /// A recovery path resolved the fault.
    Recovered,
}

impl FaultStage {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultStage::Fired => "fired",
            FaultStage::Rescinded => "rescinded",
            FaultStage::Detected => "detected",
            FaultStage::Recovered => "recovered",
        }
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span of `SpanKind` opened.
    Begin(SpanKind),
    /// The innermost open span of `SpanKind` closed.
    End(SpanKind),
    /// A point event.
    Instant(InstantKind),
    /// A completed **leaf** section recorded post-hoc as one event: it
    /// starts at [`Event::t`], runs `dur` cycles, and contains no child
    /// spans. [`Recorder::span`] emits this — one ring slot instead of a
    /// Begin/End pair, halving the hot path's ring traffic.
    Complete(SpanKind, u32),
}

/// One fixed-size trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Lane-clock timestamp in simulated cycles.
    pub t: Cycles,
    /// Correlation id — the request id for call-path events, zero where
    /// no request is in scope.
    pub corr: u64,
    /// What happened.
    pub kind: EventKind,
}

/// One fault-plane transition on the global track.
///
/// Kept as its own (wider) record so lane [`Event`]s stay small: fault
/// transitions are rare, call-path events are the hot ring traffic, and
/// a `&'static str` payload in [`EventKind`] would double every lane
/// event's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Monotone sequence number (fault events have no lane clock).
    pub seq: u64,
    /// The lifecycle stage.
    pub stage: FaultStage,
    /// The fault point's stable name.
    pub point: &'static str,
}

/// A fixed-capacity overwrite-oldest ring of events.
///
/// The backing storage grows on demand up to `capacity` and is then
/// reused forever; a push into a full ring overwrites the oldest event
/// and counts it as dropped.
#[derive(Debug)]
pub struct EventRing<T = Event> {
    buf: Vec<T>,
    capacity: usize,
    /// Next overwrite slot once the ring is full — the oldest held
    /// event. Kept as an explicit wrapping index so the hot push never
    /// divides.
    head: usize,
    /// Total events ever pushed.
    pushed: u64,
}

impl<T: Copy> EventRing<T> {
    /// An empty ring bounded at `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring needs at least one slot");
        EventRing {
            buf: Vec::new(),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends `ev`, overwriting the oldest event when full.
    #[inline]
    pub fn push(&mut self, ev: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
        self.pushed += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events lost to overwrite.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// The held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let start = if self.buf.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.buf[start..].iter().chain(self.buf[..start].iter())
    }
}

/// Per-stage fault-event totals, maintained as live counters so they
/// survive ring overwrite (the two-source chaos check depends on that).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Fault instances fired.
    pub fired: u64,
    /// Instances rescinded (never actually misbehaved).
    pub rescinded: u64,
    /// Instances detected.
    pub detected: u64,
    /// Instances recovered.
    pub recovered: u64,
}

impl FaultCounts {
    /// Instances that really happened: fired minus rescinded — the
    /// trace-side mirror of the ledger's `injected` total.
    pub fn injected(&self) -> u64 {
        self.fired - self.rescinded
    }
}

/// One lane's recording state: its event ring and its sampler half.
/// Keeping them in the same slot means the emit hot path pays one
/// borrow and one bounds check for both.
#[derive(Debug)]
struct LaneTrack {
    ring: EventRing,
    samp: LaneSampler,
}

impl LaneTrack {
    fn new(capacity: usize) -> Self {
        LaneTrack {
            ring: EventRing::new(capacity),
            samp: LaneSampler::default(),
        }
    }
}

#[derive(Debug)]
struct Inner {
    enabled: Cell<bool>,
    capacity: usize,
    lanes: RefCell<Vec<LaneTrack>>,
    global: RefCell<EventRing<FaultEvent>>,
    fault_seq: Cell<u64>,
    faults: Cell<FaultCounts>,
    /// Fast flag mirroring `sampler.is_some()` so the emit hot path
    /// skips the `RefCell` borrow when sampling is off.
    sampling: Cell<bool>,
    sampler: RefCell<Option<Sampler>>,
    /// Events removed by [`Recorder::take_lane_events`] and the drops
    /// they had already suffered — folded back into
    /// [`Recorder::recorded`] / [`Recorder::dropped`] so a chunked
    /// harvest keeps exact loss accounting.
    drained_events: Cell<u64>,
    drained_dropped: Cell<u64>,
}

/// The shared recorder handle every instrumented layer holds.
///
/// Cloning is an `Rc` bump; a clone records into the same rings. The
/// default recorder is **off**: emit methods return after one flag read
/// and nothing is ever allocated, so uninstrumented runs pay (almost)
/// nothing and a disabled-but-attached recorder is the overhead bench's
/// "disabled" mode.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Rc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::off()
    }
}

impl Recorder {
    /// An enabled recorder with `capacity` events per lane ring.
    pub fn new(capacity: usize) -> Self {
        Recorder::with_state(capacity, true)
    }

    /// A disabled recorder (the no-cost default every config starts
    /// with); [`Recorder::set_enabled`] can turn it on later.
    pub fn off() -> Self {
        Recorder::with_state(DEFAULT_RING_CAPACITY, false)
    }

    fn with_state(capacity: usize, enabled: bool) -> Self {
        Recorder {
            inner: Rc::new(Inner {
                enabled: Cell::new(enabled),
                capacity: capacity.max(1),
                lanes: RefCell::new(Vec::new()),
                global: RefCell::new(EventRing::new(capacity.max(1))),
                fault_seq: Cell::new(0),
                faults: Cell::new(FaultCounts::default()),
                sampling: Cell::new(false),
                sampler: RefCell::new(None),
                drained_events: Cell::new(0),
                drained_dropped: Cell::new(0),
            }),
        }
    }

    /// Whether emit calls record anything right now.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.enabled.get()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Turns recording on or off at runtime (a no-op without the
    /// `trace` feature).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    /// The per-lane ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, lane: usize, ev: Event) {
        if !self.inner.enabled.get() {
            return;
        }
        let mut lanes = self.inner.lanes.borrow_mut();
        if lanes.len() <= lane {
            let cap = self.inner.capacity;
            lanes.resize_with(lane + 1, || LaneTrack::new(cap));
        }
        let track = &mut lanes[lane];
        track.ring.push(ev);
        // The sampler rides the same funnel: it sees every event in
        // emit order, independently of event-ring overwrite (a sample
        // is taken even if the event it derives from is later lost).
        // Its per-lane state sits in the track borrowed above, so the
        // common no-grid-point case never touches the sampler cell.
        if self.inner.sampling.get() {
            crate::profiler::drive(&self.inner.sampler, lane, &mut track.samp, &ev);
        }
    }

    /// Opens a span of `kind` on `lane` at lane-clock `t`.
    #[inline]
    pub fn begin(&self, lane: usize, kind: SpanKind, t: Cycles, corr: u64) {
        #[cfg(feature = "trace")]
        self.emit(
            lane,
            Event {
                t,
                corr,
                kind: EventKind::Begin(kind),
            },
        );
        #[cfg(not(feature = "trace"))]
        let _ = (lane, kind, t, corr);
    }

    /// Closes the innermost open span of `kind` on `lane` at `t`.
    #[inline]
    pub fn end(&self, lane: usize, kind: SpanKind, t: Cycles, corr: u64) {
        #[cfg(feature = "trace")]
        self.emit(
            lane,
            Event {
                t,
                corr,
                kind: EventKind::End(kind),
            },
        );
        #[cfg(not(feature = "trace"))]
        let _ = (lane, kind, t, corr);
    }

    /// Records a completed **leaf** section as one [`EventKind::Complete`]
    /// event — the instrumentation pattern for sections with early-error
    /// exits: measure first, emit once the section's extent is known, so
    /// a `?` in the middle can never leave a span unclosed. A backwards
    /// `t1` clamps to a zero-length span; durations saturate at `u32::MAX`
    /// cycles (≈ one simulated second — far beyond any section).
    #[inline]
    pub fn span(&self, lane: usize, kind: SpanKind, t0: Cycles, t1: Cycles, corr: u64) {
        #[cfg(feature = "trace")]
        {
            let dur = t1.saturating_sub(t0).min(u32::MAX as Cycles) as u32;
            self.emit(
                lane,
                Event {
                    t: t0,
                    corr,
                    kind: EventKind::Complete(kind, dur),
                },
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = (lane, kind, t0, t1, corr);
    }

    /// Records a point event on `lane` at `t`.
    #[inline]
    pub fn instant(&self, lane: usize, kind: InstantKind, t: Cycles, corr: u64) {
        #[cfg(feature = "trace")]
        self.emit(
            lane,
            Event {
                t,
                corr,
                kind: EventKind::Instant(kind),
            },
        );
        #[cfg(not(feature = "trace"))]
        let _ = (lane, kind, t, corr);
    }

    /// Records a fault-plane transition on the global track. `point` is
    /// the fault point's stable name; the timestamp is a monotone
    /// sequence number (fault events have no lane clock).
    pub fn fault(&self, point: &'static str, stage: FaultStage) {
        #[cfg(feature = "trace")]
        {
            if !self.inner.enabled.get() {
                return;
            }
            let mut c = self.inner.faults.get();
            match stage {
                FaultStage::Fired => c.fired += 1,
                FaultStage::Rescinded => c.rescinded += 1,
                FaultStage::Detected => c.detected += 1,
                FaultStage::Recovered => c.recovered += 1,
            }
            self.inner.faults.set(c);
            let seq = self.inner.fault_seq.get();
            self.inner.fault_seq.set(seq + 1);
            self.inner
                .global
                .borrow_mut()
                .push(FaultEvent { seq, stage, point });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (point, stage);
    }

    /// Live per-stage fault totals (immune to ring overwrite).
    pub fn fault_counts(&self) -> FaultCounts {
        self.inner.faults.get()
    }

    /// Arms the cycle-sampling profiler: from now on every emitted
    /// event also drives the per-lane sampler, which records the live
    /// span stack at every `config.period` cycles of lane time. The
    /// recorder must be enabled for samples to be taken (sampling rides
    /// the emit funnel). A no-op without the `trace` feature.
    pub fn enable_sampling(&self, config: SamplerConfig) {
        #[cfg(feature = "trace")]
        {
            *self.inner.sampler.borrow_mut() = Some(Sampler::new(config));
            self.inner.sampling.set(true);
        }
        #[cfg(not(feature = "trace"))]
        let _ = config;
    }

    /// Whether a sampler is armed.
    pub fn sampling_enabled(&self) -> bool {
        self.inner.sampling.get()
    }

    /// The sampler's backend label (empty when sampling is off).
    pub fn sampler_backend(&self) -> String {
        self.inner
            .sampler
            .borrow()
            .as_ref()
            .map(|s| s.backend().to_string())
            .unwrap_or_default()
    }

    /// Notes the tenant lane `lane` is currently serving; subsequent
    /// samples on that lane carry it. Costs one flag read when sampling
    /// is off — cheap enough for every transport call path.
    #[inline]
    pub fn note_tenant(&self, lane: usize, tenant: u16) {
        #[cfg(feature = "trace")]
        {
            if !self.inner.sampling.get() || !self.inner.enabled.get() {
                return;
            }
            let mut lanes = self.inner.lanes.borrow_mut();
            if lanes.len() <= lane {
                let cap = self.inner.capacity;
                lanes.resize_with(lane + 1, || LaneTrack::new(cap));
            }
            lanes[lane].samp.tenant = tenant;
        }
        #[cfg(not(feature = "trace"))]
        let _ = (lane, tenant);
    }

    /// The samples currently held, oldest first (empty when sampling is
    /// off).
    pub fn samples(&self) -> Vec<Sample> {
        self.inner
            .sampler
            .borrow()
            .as_ref()
            .map(Sampler::samples)
            .unwrap_or_default()
    }

    /// Drains the sample ring (for chunked harvests over long runs);
    /// [`Recorder::sample_stats`] accounting survives the drain.
    pub fn drain_samples(&self) -> Vec<Sample> {
        self.inner
            .sampler
            .borrow_mut()
            .as_mut()
            .map(Sampler::drain)
            .unwrap_or_default()
    }

    /// Exact sampler accounting (zeroes when sampling is off).
    pub fn sample_stats(&self) -> SampleStats {
        let broken = self
            .inner
            .lanes
            .borrow()
            .iter()
            .map(|t| t.samp.broken_events)
            .sum();
        self.inner
            .sampler
            .borrow()
            .as_ref()
            .map(|s| s.stats(broken))
            .unwrap_or_default()
    }

    /// Drains every lane's event ring, returning the held events per
    /// lane (oldest first) — the chunked-capture primitive: harvest and
    /// fold into a [`PhaseProfile`](crate::phase::PhaseProfile) before
    /// the ring wraps, and an arbitrarily long run gets an exact
    /// profile from bounded memory. [`Recorder::recorded`] and
    /// [`Recorder::dropped`] keep counting across the drain.
    pub fn take_lane_events(&self) -> Vec<Vec<Event>> {
        let mut lanes = self.inner.lanes.borrow_mut();
        let cap = self.inner.capacity;
        let mut out = Vec::with_capacity(lanes.len());
        for track in lanes.iter_mut() {
            self.inner
                .drained_events
                .set(self.inner.drained_events.get() + track.ring.pushed());
            self.inner
                .drained_dropped
                .set(self.inner.drained_dropped.get() + track.ring.dropped());
            let drained = std::mem::replace(&mut track.ring, EventRing::new(cap));
            out.push(drained.iter().copied().collect());
        }
        out
    }

    /// Number of lane tracks that have recorded at least one event.
    pub fn lane_count(&self) -> usize {
        self.inner.lanes.borrow().len()
    }

    /// Lane `lane`'s held events, oldest first (empty for an unused
    /// lane).
    pub fn events(&self, lane: usize) -> Vec<Event> {
        let lanes = self.inner.lanes.borrow();
        match lanes.get(lane) {
            Some(t) => t.ring.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// The global (fault) track's held events, oldest first.
    pub fn global_events(&self) -> Vec<FaultEvent> {
        self.inner.global.borrow().iter().copied().collect()
    }

    /// Events lane `lane` alone lost to ring overwrite (0 for an unused
    /// lane). Assemblers use this to tell *which* track was truncated,
    /// not just that some track was.
    pub fn lane_dropped(&self, lane: usize) -> u64 {
        self.inner
            .lanes
            .borrow()
            .get(lane)
            .map_or(0, |t| t.ring.dropped())
    }

    /// Total events lost to ring overwrite, across every track
    /// (including tracks already harvested by
    /// [`Recorder::take_lane_events`]).
    pub fn dropped(&self) -> u64 {
        let lanes = self.inner.lanes.borrow();
        lanes.iter().map(|t| t.ring.dropped()).sum::<u64>()
            + self.inner.global.borrow().dropped()
            + self.inner.drained_dropped.get()
    }

    /// Total events ever recorded, across every track (including
    /// events already harvested by [`Recorder::take_lane_events`]).
    pub fn recorded(&self) -> u64 {
        let lanes = self.inner.lanes.borrow();
        lanes.iter().map(|t| t.ring.pushed()).sum::<u64>()
            + self.inner.global.borrow().pushed()
            + self.inner.drained_events.get()
    }

    /// Empties every track and zeroes the drop/fault/sample
    /// accounting; the enabled flag and the sampler configuration are
    /// untouched.
    pub fn clear(&self) {
        self.inner.lanes.borrow_mut().clear();
        *self.inner.global.borrow_mut() = EventRing::new(self.inner.capacity);
        self.inner.fault_seq.set(0);
        self.inner.faults.set(FaultCounts::default());
        self.inner.drained_events.set(0);
        self.inner.drained_dropped.set(0);
        if let Some(s) = self.inner.sampler.borrow_mut().as_mut() {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Cycles) -> Event {
        Event {
            t,
            corr: t,
            kind: EventKind::Instant(InstantKind::QueueAdmit),
        }
    }

    #[test]
    fn event_stays_within_its_footprint_budget() {
        // The default ring's cache-residency math (and DESIGN.md §12)
        // assumes 24-byte lane events; growing Event silently would
        // inflate every ring's working set.
        assert!(std::mem::size_of::<Event>() <= 24);
        assert!(std::mem::size_of::<FaultEvent>() <= 32);
    }

    #[test]
    fn ring_grows_then_wraps_overwriting_oldest() {
        let mut r = EventRing::new(4);
        for t in 0..4 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let held: Vec<Cycles> = r.iter().map(|e| e.t).collect();
        assert_eq!(held, vec![0, 1, 2, 3]);

        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4, "capacity is a hard bound");
        assert_eq!(r.dropped(), 2, "the two oldest were overwritten");
        let held: Vec<Cycles> = r.iter().map(|e| e.t).collect();
        assert_eq!(held, vec![2, 3, 4, 5], "oldest-first across the wrap");
    }

    #[test]
    fn ring_iterates_in_push_order_at_every_fill_level() {
        for n in 0..12u64 {
            let mut r = EventRing::new(5);
            for t in 0..n {
                r.push(ev(t));
            }
            let held: Vec<Cycles> = r.iter().map(|e| e.t).collect();
            let expect: Vec<Cycles> = (n.saturating_sub(5)..n).collect();
            assert_eq!(held, expect, "fill level {n}");
            assert_eq!(r.pushed(), n);
        }
    }

    #[test]
    fn disabled_recorder_records_nothing_and_allocates_nothing() {
        let r = Recorder::off();
        r.begin(0, SpanKind::Call, 10, 1);
        r.end(0, SpanKind::Call, 20, 1);
        r.span(1, SpanKind::Handler, 5, 9, 2);
        r.instant(2, InstantKind::Retry, 7, 3);
        r.fault("handler_panic", FaultStage::Fired);
        assert_eq!(r.lane_count(), 0, "no ring was ever created");
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.fault_counts(), FaultCounts::default());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn enable_toggle_gates_emission() {
        let r = Recorder::off();
        r.set_enabled(true);
        r.span(0, SpanKind::Call, 0, 5, 1);
        r.set_enabled(false);
        r.span(0, SpanKind::Call, 6, 9, 2);
        assert_eq!(r.events(0).len(), 1, "only the enabled window recorded");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn span_emits_one_complete_event_and_clamps_backwards_time() {
        let r = Recorder::new(8);
        r.span(0, SpanKind::Marshal, 100, 90, 7);
        let evs = r.events(0);
        assert_eq!(evs.len(), 1, "a leaf section costs one ring slot");
        assert_eq!(evs[0].t, 100);
        assert_eq!(
            evs[0].kind,
            EventKind::Complete(SpanKind::Marshal, 0),
            "a backwards end clamps to a zero-length span"
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn fault_counts_survive_ring_overwrite() {
        let r = Recorder::new(2);
        for _ in 0..10 {
            r.fault("torn_write", FaultStage::Fired);
            r.fault("torn_write", FaultStage::Recovered);
        }
        assert_eq!(r.global_events().len(), 2, "ring holds only the newest");
        assert!(r.dropped() > 0);
        let c = r.fault_counts();
        assert_eq!((c.fired, c.recovered), (10, 10), "counters never drop");
        assert_eq!(c.injected(), 10);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn clones_share_rings_and_clear_resets() {
        let r = Recorder::new(8);
        let r2 = r.clone();
        r2.span(3, SpanKind::Backoff, 0, 4, 1);
        assert_eq!(r.events(3).len(), 1, "clones record into the same rings");
        assert_eq!(r.lane_count(), 4);
        r.clear();
        assert_eq!(r.recorded(), 0);
        assert!(r.is_enabled(), "clear keeps the enabled flag");
    }
}
