//! Property tests for [`Log2Histogram`] at the extremes: quantiles on
//! inputs spanning the full `u64` range (including 0 and `u64::MAX`)
//! must stay bounded by the data and within the structure's advertised
//! relative error, and the last-K exemplar ring must retain exactly
//! the newest K tagged records — through shrinks, growth, and merges.

use proptest::prelude::*;
use sb_observe::{Exemplar, Log2Histogram, HIST_RELATIVE_ERROR};

/// Values biased toward the histogram's edge cases: the exact
/// sub-16 buckets, octave boundaries, and both ends of the range.
fn edge_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(15u64),
        Just(16u64),
        Just(17u64),
        Just(u64::MAX - 1),
        Just(u64::MAX),
        any::<u64>(),
        0u64..1024,
    ]
}

proptest! {
    /// Every reported percentile is bounded below by the true value at
    /// its rank and above by the structure's relative error — even
    /// when the data sits at 0 or `u64::MAX`.
    #[test]
    fn percentiles_bound_their_rank_value(
        values in proptest::collection::vec(edge_value(), 1..120),
        ps in proptest::collection::vec(0u32..=100, 1..8),
    ) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &p in &ps {
            let p = p as f64;
            let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            let truth = sorted[rank];
            let got = h.percentile(p);
            prop_assert!(got >= truth, "p{p}: reported {got} below true {truth}");
            // The bucket's upper bound overshoots by at most one
            // sub-bucket width (≤ truth/16); clamping to the observed
            // max can only tighten it.
            let bound = truth.saturating_add(
                ((truth as f64) * HIST_RELATIVE_ERROR).ceil() as u64
            );
            prop_assert!(got <= bound, "p{p}: reported {got} above bound {bound}");
        }
    }

    /// Percentiles are monotone in `p` and always inside `[min, max]`;
    /// count/sum/min/max are exact whatever the input range.
    #[test]
    fn moments_are_exact_and_quantiles_monotone(
        values in proptest::collection::vec(edge_value(), 1..120),
    ) {
        let mut h = Log2Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        prop_assert!(h.mean().is_finite());
        let mut last = h.percentile(0.0);
        prop_assert!(last >= h.min());
        for i in 1..=20 {
            let q = h.percentile(i as f64 * 5.0);
            prop_assert!(q >= last, "quantiles must be monotone");
            last = q;
        }
        prop_assert!(last <= h.max().max(h.percentile(0.0)));
        prop_assert_eq!(h.percentile(100.0), h.max());
    }

    /// The exemplar ring holds exactly the newest K tagged records,
    /// oldest first, with their correlation ids intact.
    #[test]
    fn exemplar_ring_retains_the_last_k(
        records in proptest::collection::vec((edge_value(), any::<u64>()), 0..48),
        k in 1usize..12,
    ) {
        let mut h = Log2Histogram::with_exemplars(k);
        for &(v, corr) in &records {
            h.record_tagged(v, corr);
        }
        let expect: Vec<Exemplar> = records
            .iter()
            .skip(records.len().saturating_sub(k))
            .map(|&(value, corr)| Exemplar { corr, value })
            .collect();
        prop_assert_eq!(h.exemplars(), expect);
        prop_assert_eq!(h.count(), records.len() as u64);
    }

    /// Merging replays the other side's exemplars as the newer records:
    /// the result is the last K of (this side's retained ++ the other
    /// side's retained), and the bucket moments add exactly.
    #[test]
    fn merge_replays_exemplars_as_newer(
        a in proptest::collection::vec((edge_value(), any::<u64>()), 0..32),
        b in proptest::collection::vec((edge_value(), any::<u64>()), 0..32),
        k in 1usize..10,
    ) {
        let mut ha = Log2Histogram::with_exemplars(k);
        let mut hb = Log2Histogram::with_exemplars(k);
        for &(v, corr) in &a {
            ha.record_tagged(v, corr);
        }
        for &(v, corr) in &b {
            hb.record_tagged(v, corr);
        }
        let tail = |recs: &[(u64, u64)]| -> Vec<Exemplar> {
            recs.iter()
                .skip(recs.len().saturating_sub(k))
                .map(|&(value, corr)| Exemplar { corr, value })
                .collect()
        };
        let mut expect: Vec<Exemplar> = tail(&a);
        expect.extend(tail(&b));
        let expect: Vec<Exemplar> = expect
            .iter()
            .skip(expect.len().saturating_sub(k))
            .copied()
            .collect();
        ha.merge(&hb);
        prop_assert_eq!(ha.exemplars(), expect);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }

    /// Capacity changes never fabricate: shrinking keeps the newest,
    /// zero clears, and re-growing starts from what was kept.
    #[test]
    fn capacity_changes_keep_the_newest(
        records in proptest::collection::vec((edge_value(), any::<u64>()), 1..40),
        k in 2usize..10,
    ) {
        let mut h = Log2Histogram::with_exemplars(k);
        for &(v, corr) in &records {
            h.record_tagged(v, corr);
        }
        let before = h.exemplars();
        let smaller = k / 2;
        h.set_exemplar_capacity(smaller);
        let kept = h.exemplars();
        prop_assert_eq!(
            kept.clone(),
            before[before.len().saturating_sub(smaller)..].to_vec()
        );
        h.set_exemplar_capacity(0);
        prop_assert!(h.exemplars().is_empty());
        h.set_exemplar_capacity(k);
        h.record_tagged(7, 42);
        prop_assert_eq!(h.exemplars(), vec![Exemplar { corr: 42, value: 7 }]);
        let _ = kept;
    }
}
