//! Synthetic code-corpus generation.
//!
//! Table 6 scans thousands of programs for inadvertent `VMFUNC`s. We scan
//! the real ELF binaries in this container ([`crate::elf`]), and — for
//! deterministic tests and benches — generate synthetic corpora here:
//! streams of valid, interpreter-supported x86-64 instructions with an
//! optional rate of injected pattern occurrences.

/// A tiny deterministic PRNG (xorshift64*), so the corpus needs no
/// external dependencies and is reproducible across runs.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (seed must be non-zero; 0 is mapped to 1).
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn emit_random_insn(rng: &mut Rng, out: &mut Vec<u8>) {
    // Only low registers, interpreter-supported forms.
    let r1 = rng.below(4) as u8;
    let r2 = rng.below(4) as u8;
    match rng.below(8) {
        0 => out.push(0x90), // nop
        1 => {
            // mov r32, imm32.
            out.push(0xb8 + r1);
            out.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        }
        2 => {
            // add r/m, r (mod 11).
            out.push(0x01);
            out.push(0xc0 | (r2 << 3) | r1);
        }
        3 => {
            // xor r/m, r.
            out.push(0x31);
            out.push(0xc0 | (r2 << 3) | r1);
        }
        4 => {
            // add r, imm32 (81 /0).
            out.push(0x81);
            out.push(0xc0 | r1);
            out.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        }
        5 => {
            // lea r, [r2 + disp32] (mod 10), 64-bit.
            out.push(0x48);
            out.push(0x8d);
            out.push(0x80 | (r1 << 3) | r2);
            out.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        }
        6 => {
            // mov r64, r64.
            out.push(0x48);
            out.push(0x89);
            out.push(0xc0 | (r2 << 3) | r1);
        }
        _ => {
            // imul r, r, imm32.
            out.push(0x69);
            out.push(0xc0 | (r1 << 3) | r2);
            out.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        }
    }
}

/// Generates roughly `size` bytes of valid instructions ending in `RET`.
///
/// With probability `inject_per_kib / 1024` per emitted instruction, an
/// instruction carrying the `VMFUNC` byte pattern in an immediate is
/// emitted instead — the "inadvertent occurrence" Table 6 hunts for.
pub fn generate(seed: u64, size: usize, inject_per_kib: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(size + 16);
    while out.len() < size {
        if inject_per_kib > 0 && rng.below(1024) < inject_per_kib {
            // add eax, 0x00D4010F — pattern inside the immediate.
            out.push(0x05);
            out.extend_from_slice(&0x00d4_010fu32.to_le_bytes());
        } else {
            emit_random_insn(&mut rng, &mut out);
        }
    }
    out.push(0xc3);
    // Padding so relocation regions near the end have room.
    out.extend_from_slice(&[0x90; 8]);
    out
}

#[cfg(test)]
mod tests {
    use crate::{scan::find_occurrences, scan::instruction_boundaries};

    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(generate(7, 512, 0), generate(7, 512, 0));
        assert_ne!(generate(7, 512, 0), generate(8, 512, 0));
    }

    #[test]
    fn clean_corpus_decodes_fully() {
        let code = generate(42, 4096, 0);
        for (off, insn) in instruction_boundaries(&code) {
            assert!(insn.is_some(), "undecodable byte at {off}");
        }
    }

    #[test]
    fn injection_rate_controls_occurrences() {
        let clean = generate(3, 16 * 1024, 0);
        let dirty = generate(3, 16 * 1024, 40);
        // The clean corpus may still contain accidental patterns (random
        // immediates), but the injected one must have strictly more.
        assert!(find_occurrences(&dirty).len() > find_occurrences(&clean).len());
        assert!(!find_occurrences(&dirty).is_empty());
    }
}
