//! Minimal ELF64 executable-section extraction.
//!
//! Table 6 of the paper scans SPEC CPU, PARSEC, Nginx, Apache, Redis,
//! `vmlinux`, every kernel module, and 2,605 other programs for
//! inadvertent `VMFUNC` encodings. Our equivalent corpus is the set of ELF
//! binaries installed in this container; this module pulls their
//! executable sections (`SHF_EXECINSTR`) out so the scanner can walk real
//! compiler output.

/// One executable section.
#[derive(Debug, Clone)]
pub struct ExecSection {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// Virtual address the section is linked at.
    pub addr: u64,
    /// The section bytes.
    pub bytes: Vec<u8>,
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Not an ELF file (bad magic).
    BadMagic,
    /// Not a 64-bit little-endian ELF.
    Unsupported,
    /// Structurally truncated or inconsistent.
    Malformed,
}

impl std::fmt::Display for ElfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF file"),
            ElfError::Unsupported => write!(f, "not a 64-bit LE ELF"),
            ElfError::Malformed => write!(f, "malformed ELF"),
        }
    }
}

impl std::error::Error for ElfError {}

fn u16le(b: &[u8], off: usize) -> Result<u16, ElfError> {
    Ok(u16::from_le_bytes(
        b.get(off..off + 2)
            .ok_or(ElfError::Malformed)?
            .try_into()
            .unwrap(),
    ))
}

fn u32le(b: &[u8], off: usize) -> Result<u32, ElfError> {
    Ok(u32::from_le_bytes(
        b.get(off..off + 4)
            .ok_or(ElfError::Malformed)?
            .try_into()
            .unwrap(),
    ))
}

fn u64le(b: &[u8], off: usize) -> Result<u64, ElfError> {
    Ok(u64::from_le_bytes(
        b.get(off..off + 8)
            .ok_or(ElfError::Malformed)?
            .try_into()
            .unwrap(),
    ))
}

/// Extracts the executable sections of an ELF64 image.
pub fn exec_sections(data: &[u8]) -> Result<Vec<ExecSection>, ElfError> {
    if data.len() < 64 {
        return Err(ElfError::BadMagic);
    }
    if &data[0..4] != b"\x7fELF" {
        return Err(ElfError::BadMagic);
    }
    if data[4] != 2 || data[5] != 1 {
        // ELFCLASS64, ELFDATA2LSB.
        return Err(ElfError::Unsupported);
    }
    let shoff = u64le(data, 0x28)? as usize;
    let shentsize = u16le(data, 0x3a)? as usize;
    let shnum = u16le(data, 0x3c)? as usize;
    let shstrndx = u16le(data, 0x3e)? as usize;
    if shentsize < 0x40 || shnum == 0 || shstrndx >= shnum {
        return Err(ElfError::Malformed);
    }
    let sh = |i: usize| -> Result<(u32, u64, u64, u64, u64), ElfError> {
        let base = shoff + i * shentsize;
        Ok((
            u32le(data, base)?,        // sh_name.
            u64le(data, base + 0x08)?, // sh_flags.
            u64le(data, base + 0x10)?, // sh_addr.
            u64le(data, base + 0x18)?, // sh_offset.
            u64le(data, base + 0x20)?, // sh_size.
        ))
    };
    let (_, _, _, str_off, str_size) = sh(shstrndx)?;
    let strtab = data
        .get(str_off as usize..(str_off + str_size) as usize)
        .ok_or(ElfError::Malformed)?;
    let name_of = |off: u32| -> String {
        let off = off as usize;
        let end = strtab[off..]
            .iter()
            .position(|&b| b == 0)
            .map_or(strtab.len(), |p| off + p);
        String::from_utf8_lossy(&strtab[off..end]).into_owned()
    };
    const SHF_EXECINSTR: u64 = 0x4;
    let mut out = Vec::new();
    for i in 0..shnum {
        let (name, flags, addr, off, size) = sh(i)?;
        if flags & SHF_EXECINSTR == 0 || size == 0 {
            continue;
        }
        let Some(bytes) = data.get(off as usize..(off + size) as usize) else {
            continue; // NOBITS or truncated; skip.
        };
        out.push(ExecSection {
            name: name_of(name),
            addr,
            bytes: bytes.to_vec(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_elf() {
        assert!(matches!(
            exec_sections(b"not an elf"),
            Err(ElfError::BadMagic)
        ));
        assert!(matches!(
            exec_sections(&[0u8; 100]),
            Err(ElfError::BadMagic)
        ));
    }

    #[test]
    fn parses_a_real_binary_if_present() {
        // Use this test binary itself: it is an ELF on Linux.
        let me = std::env::current_exe().unwrap();
        let data = std::fs::read(me).unwrap();
        let sections = exec_sections(&data).unwrap();
        assert!(
            sections.iter().any(|s| s.name == ".text"),
            "a Rust test binary must have .text"
        );
        let text = sections.iter().find(|s| s.name == ".text").unwrap();
        assert!(text.bytes.len() > 4096);
    }
}
