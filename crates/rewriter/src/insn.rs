//! An x86-64 instruction-length decoder.
//!
//! The rewriting strategy of §5.2 "is highly dependent on x86
//! variable-length instruction encoding": to classify an occurrence of
//! `0F 01 D4` the scanner must know exactly where instruction boundaries
//! fall and which encoding field (opcode, ModRM, SIB, displacement,
//! immediate) each byte of the pattern lies in. This module decodes the
//! five encoding regions the paper enumerates: prefixes + opcode, optional
//! ModRM, optional SIB, optional displacement, optional immediate.
//!
//! Coverage: the full legacy one- and two-byte opcode maps as laid down in
//! the SDM for 64-bit mode, the `0F 38`/`0F 3A` escape maps, and VEX
//! (`C4`/`C5`) encodings — enough to walk the `.text` of real Linux
//! binaries. Encodings that are invalid in 64-bit mode decode to
//! [`DecodeError::Invalid`]; the scanner resynchronizes byte by byte, as a
//! disassembler would.

/// Decode failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode is invalid or undefined in 64-bit mode.
    Invalid,
    /// The instruction runs past the end of the buffer.
    Truncated,
}

/// Which encoding field a byte offset falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Prefixes or opcode bytes.
    Opcode,
    /// The ModRM byte.
    ModRm,
    /// The SIB byte.
    Sib,
    /// Displacement bytes.
    Displacement,
    /// Immediate bytes.
    Immediate,
}

/// One decoded instruction (lengths and field offsets only — the rewriter
/// re-encodes from these plus the raw bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    /// Total length in bytes.
    pub len: usize,
    /// Offset of the first opcode byte (after prefixes).
    pub opcode_off: usize,
    /// Number of opcode bytes (1–3).
    pub opcode_len: usize,
    /// Offset of the ModRM byte, if present.
    pub modrm_off: Option<usize>,
    /// Offset of the SIB byte, if present.
    pub sib_off: Option<usize>,
    /// `(offset, length)` of the displacement, if present.
    pub disp: Option<(usize, usize)>,
    /// `(offset, length)` of the immediate, if present.
    pub imm: Option<(usize, usize)>,
    /// True if the immediate is an IP-relative branch target (`JMP`/`CALL`
    /// rel8/rel32, `Jcc`).
    pub is_relative_branch: bool,
}

impl Insn {
    /// Which field the byte at `off` (relative to instruction start)
    /// belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `off >= self.len`.
    pub fn field_at(&self, off: usize) -> Field {
        assert!(off < self.len, "offset beyond instruction");
        if let Some((o, l)) = self.imm {
            if off >= o && off < o + l {
                return Field::Immediate;
            }
        }
        if let Some((o, l)) = self.disp {
            if off >= o && off < o + l {
                return Field::Displacement;
            }
        }
        if Some(off) == self.sib_off {
            return Field::Sib;
        }
        if Some(off) == self.modrm_off {
            return Field::ModRm;
        }
        Field::Opcode
    }
}

// Opcode attribute flags.
const M: u16 = 1 << 0; // Has ModRM.
const I8: u16 = 1 << 1; // imm8.
const I16: u16 = 1 << 2; // imm16.
const IZ: u16 = 1 << 3; // imm16/32 by operand size (32 default).
const IV: u16 = 1 << 4; // imm16/32/64 by operand size (B8+r mov).
const REL: u16 = 1 << 5; // Immediate is an IP-relative branch offset.
const MOFFS: u16 = 1 << 6; // 64-bit (or 32 with 0x67) direct offset.
const GRP_F6: u16 = 1 << 7; // F6/F7: imm only when modrm.reg is 0 or 1.
const I16I8: u16 = 1 << 8; // ENTER: imm16 + imm8.
const BAD: u16 = 1 << 15; // Invalid in 64-bit mode.

/// One-byte opcode map for 64-bit mode.
static MAP1: [u16; 256] = build_map1();

const fn build_map1() -> [u16; 256] {
    let mut t = [0u16; 256];
    // ALU block pattern: x0..x3 ModRM, x4 imm8, x5 immZ.
    let mut base = 0x00;
    while base <= 0x38 {
        t[base] = M;
        t[base + 1] = M;
        t[base + 2] = M;
        t[base + 3] = M;
        t[base + 4] = I8;
        t[base + 5] = IZ;
        base += 0x08;
    }
    // Invalid-in-64-bit leftovers of the ALU rows.
    t[0x06] = BAD;
    t[0x07] = BAD;
    t[0x0e] = BAD;
    // 0x0F is the two-byte escape (handled out of band).
    t[0x16] = BAD;
    t[0x17] = BAD;
    t[0x1e] = BAD;
    t[0x1f] = BAD;
    t[0x27] = BAD;
    t[0x2f] = BAD;
    t[0x37] = BAD;
    t[0x3f] = BAD;
    // 40-4F REX (prefixes, handled out of band); 50-5F push/pop: no flags.
    t[0x60] = BAD;
    t[0x61] = BAD;
    t[0x62] = BAD; // EVEX, not decoded.
    t[0x63] = M; // MOVSXD.
                 // 64-67 prefixes (out of band).
    t[0x68] = IZ; // PUSH imm32.
    t[0x69] = M | IZ; // IMUL r, r/m, imm32.
    t[0x6a] = I8; // PUSH imm8.
    t[0x6b] = M | I8; // IMUL r, r/m, imm8.
                      // 6C-6F ins/outs: no flags.
    let mut i = 0x70;
    while i <= 0x7f {
        t[i] = I8 | REL; // Jcc rel8.
        i += 1;
    }
    t[0x80] = M | I8;
    t[0x81] = M | IZ;
    t[0x82] = BAD;
    t[0x83] = M | I8;
    t[0x84] = M;
    t[0x85] = M;
    t[0x86] = M;
    t[0x87] = M;
    t[0x88] = M;
    t[0x89] = M;
    t[0x8a] = M;
    t[0x8b] = M;
    t[0x8c] = M;
    t[0x8d] = M; // LEA.
    t[0x8e] = M;
    t[0x8f] = M; // POP r/m.
                 // 90-9F: no flags except 9A invalid.
    t[0x9a] = BAD;
    t[0xa0] = MOFFS;
    t[0xa1] = MOFFS;
    t[0xa2] = MOFFS;
    t[0xa3] = MOFFS;
    // A4-A7 string ops: no flags.
    t[0xa8] = I8; // TEST al, imm8.
    t[0xa9] = IZ;
    // AA-AF string ops: no flags.
    i = 0xb0;
    while i <= 0xb7 {
        t[i] = I8; // MOV r8, imm8.
        i += 1;
    }
    i = 0xb8;
    while i <= 0xbf {
        t[i] = IV; // MOV r, imm (16/32/64).
        i += 1;
    }
    t[0xc0] = M | I8;
    t[0xc1] = M | I8;
    t[0xc2] = I16; // RET imm16.
                   // C3 RET: no flags. C4/C5 are VEX (out of band).
    t[0xc6] = M | I8;
    t[0xc7] = M | IZ;
    t[0xc8] = I16I8; // ENTER imm16, imm8.
                     // C9 LEAVE: none.
    t[0xca] = I16; // RETF imm16.
                   // CB RETF, CC INT3: none.
    t[0xcd] = I8; // INT imm8.
    t[0xce] = BAD;
    // CF IRET: none.
    t[0xd0] = M;
    t[0xd1] = M;
    t[0xd2] = M;
    t[0xd3] = M;
    t[0xd4] = BAD;
    t[0xd5] = BAD;
    t[0xd6] = BAD;
    // D7 XLAT: none.
    i = 0xd8;
    while i <= 0xdf {
        t[i] = M; // x87.
        i += 1;
    }
    t[0xe0] = I8 | REL; // LOOPNE.
    t[0xe1] = I8 | REL;
    t[0xe2] = I8 | REL;
    t[0xe3] = I8 | REL; // JRCXZ.
    t[0xe4] = I8; // IN al, imm8.
    t[0xe5] = I8;
    t[0xe6] = I8; // OUT imm8, al.
    t[0xe7] = I8;
    t[0xe8] = IZ | REL; // CALL rel32.
    t[0xe9] = IZ | REL; // JMP rel32.
    t[0xea] = BAD;
    t[0xeb] = I8 | REL; // JMP rel8.
                        // EC-EF IN/OUT dx: none. F0-F3 prefixes. F4 HLT, F5 CMC: none.
    t[0xf1] = 0; // INT1.
    t[0xf6] = M | GRP_F6 | I8;
    t[0xf7] = M | GRP_F6 | IZ;
    // F8-FD flag ops: none.
    t[0xfe] = M;
    t[0xff] = M;
    t
}

/// Two-byte (`0F xx`) opcode map for 64-bit mode.
static MAP2: [u16; 256] = build_map2();

const fn build_map2() -> [u16; 256] {
    let mut t = [0u16; 256];
    t[0x00] = M;
    t[0x01] = M; // Group 7 — `0F 01 D4` is VMFUNC.
    t[0x02] = M; // LAR.
    t[0x03] = M; // LSL.
    t[0x04] = BAD;
    // 05 SYSCALL, 06 CLTS, 07 SYSRET, 08 INVD, 09 WBINVD: none.
    t[0x0a] = BAD;
    // 0B UD2: none.
    t[0x0c] = BAD;
    t[0x0d] = M; // PREFETCH (3DNow hint form).
                 // 0E FEMMS: none.
    t[0x0f] = BAD; // 3DNow (imm-suffixed) — not decoded.
    let mut i = 0x10;
    while i <= 0x17 {
        t[i] = M; // SSE moves.
        i += 1;
    }
    i = 0x18;
    while i <= 0x1f {
        t[i] = M; // Hint NOPs.
        i += 1;
    }
    t[0x20] = M;
    t[0x21] = M;
    t[0x22] = M;
    t[0x23] = M; // MOV cr/dr.
    t[0x24] = BAD;
    t[0x25] = BAD;
    t[0x26] = BAD;
    t[0x27] = BAD;
    i = 0x28;
    while i <= 0x2f {
        t[i] = M;
        i += 1;
    }
    // 30-37 WRMSR/RDTSC/RDMSR/RDPMC/SYSENTER/SYSEXIT: none; 34/35 valid.
    t[0x36] = BAD;
    t[0x37] = 0; // GETSEC.
                 // 38/3A are escapes (out of band).
    t[0x39] = BAD;
    t[0x3b] = BAD;
    t[0x3c] = BAD;
    t[0x3d] = BAD;
    t[0x3e] = BAD;
    t[0x3f] = BAD;
    i = 0x40;
    while i <= 0x4f {
        t[i] = M; // CMOVcc.
        i += 1;
    }
    i = 0x50;
    while i <= 0x6f {
        t[i] = M; // SSE/MMX.
        i += 1;
    }
    t[0x70] = M | I8; // PSHUFW/D.
    t[0x71] = M | I8;
    t[0x72] = M | I8;
    t[0x73] = M | I8;
    t[0x74] = M;
    t[0x75] = M;
    t[0x76] = M;
    // 77 EMMS: none.
    t[0x78] = M;
    t[0x79] = M;
    t[0x7a] = BAD;
    t[0x7b] = BAD;
    t[0x7c] = M;
    t[0x7d] = M;
    t[0x7e] = M;
    t[0x7f] = M;
    i = 0x80;
    while i <= 0x8f {
        t[i] = IZ | REL; // Jcc rel32.
        i += 1;
    }
    i = 0x90;
    while i <= 0x9f {
        t[i] = M; // SETcc.
        i += 1;
    }
    // A0/A1 PUSH/POP fs, A2 CPUID: none.
    t[0xa3] = M; // BT.
    t[0xa4] = M | I8; // SHLD imm8.
    t[0xa5] = M;
    t[0xa6] = BAD;
    t[0xa7] = BAD;
    // A8/A9 PUSH/POP gs, AA RSM: none.
    t[0xab] = M; // BTS.
    t[0xac] = M | I8; // SHRD imm8.
    t[0xad] = M;
    t[0xae] = M; // Group 15 (fences, xsave).
    t[0xaf] = M; // IMUL.
    t[0xb0] = M;
    t[0xb1] = M; // CMPXCHG.
    t[0xb2] = M;
    t[0xb3] = M;
    t[0xb4] = M;
    t[0xb5] = M;
    t[0xb6] = M;
    t[0xb7] = M; // MOVZX.
    t[0xb8] = M; // POPCNT (F3) / JMPE.
    t[0xb9] = M; // UD1.
    t[0xba] = M | I8; // BT group imm8.
    t[0xbb] = M;
    t[0xbc] = M;
    t[0xbd] = M;
    t[0xbe] = M;
    t[0xbf] = M; // MOVSX.
    t[0xc0] = M;
    t[0xc1] = M; // XADD.
    t[0xc2] = M | I8; // CMPPS imm8.
    t[0xc3] = M; // MOVNTI.
    t[0xc4] = M | I8; // PINSRW.
    t[0xc5] = M | I8; // PEXTRW.
    t[0xc6] = M | I8; // SHUFPS.
    t[0xc7] = M; // Group 9 (CMPXCHG16B).
                 // C8-CF BSWAP: none.
    i = 0xd0;
    while i <= 0xfe {
        t[i] = M; // MMX/SSE arithmetic block.
        i += 1;
    }
    t[0xd6] = M;
    t[0xff] = M; // UD0 (with modrm).
    t
}

/// ModRM/immediate layout of a VEX map-1 opcode: the 0F map's layout,
/// except that opcodes undefined there (VEX-only forms) conservatively
/// take a ModRM.
fn vex_map1_flags(op: u8) -> u16 {
    let f = MAP2[op as usize];
    if f & BAD != 0 {
        M
    } else {
        f
    }
}

fn is_legacy_prefix(b: u8) -> bool {
    matches!(
        b,
        0xf0 | 0xf2 | 0xf3 | 0x2e | 0x36 | 0x3e | 0x26 | 0x64 | 0x65 | 0x66 | 0x67
    )
}

/// Decodes the instruction at `code[0..]`.
///
/// Returns the decoded [`Insn`] or an error. The decoder never reads past
/// `code.len()`.
pub fn decode(code: &[u8]) -> Result<Insn, DecodeError> {
    let mut at = 0usize;
    let mut op_size_16 = false;
    let mut addr_size_32 = false;
    let mut rex_w = false;

    let next = |at: &mut usize| -> Result<u8, DecodeError> {
        let b = *code.get(*at).ok_or(DecodeError::Truncated)?;
        *at += 1;
        Ok(b)
    };

    // Legacy prefixes (at most 14 bytes of prefix+opcode in total; cap
    // prefixes at 14 to bound the loop).
    let mut prefix_count = 0;
    let mut b = next(&mut at)?;
    while is_legacy_prefix(b) {
        if b == 0x66 {
            op_size_16 = true;
        }
        if b == 0x67 {
            addr_size_32 = true;
        }
        prefix_count += 1;
        if prefix_count > 14 {
            return Err(DecodeError::Invalid);
        }
        b = next(&mut at)?;
    }
    // REX.
    if (0x40..=0x4f).contains(&b) {
        rex_w = b & 0x08 != 0;
        b = next(&mut at)?;
    }

    let opcode_off = at - 1;
    let mut is_vex_map3 = false;

    // VEX prefixes: C4 (3-byte) and C5 (2-byte). In 64-bit mode these are
    // always VEX (the LES/LDS forms are invalid).
    let flags: u16 = if b == 0xc4 {
        let b1 = next(&mut at)?;
        let _b2 = next(&mut at)?;
        let map = b1 & 0x1f;
        let op = next(&mut at)?;
        is_vex_map3 = map == 3;
        match map {
            // VEX map 1 mirrors the 0F map's ModRM/immediate layout.
            1 => vex_map1_flags(op),
            2 => M,
            3 => M | I8,
            _ => return Err(DecodeError::Invalid),
        }
    } else if b == 0xc5 {
        let _b1 = next(&mut at)?;
        let op = next(&mut at)?;
        vex_map1_flags(op)
    } else if b == 0x0f {
        let b2 = next(&mut at)?;
        match b2 {
            0x38 => {
                let _b3 = next(&mut at)?;
                M
            }
            0x3a => {
                let _b3 = next(&mut at)?;
                M | I8
            }
            _ => {
                let f = MAP2[b2 as usize];
                if f & BAD != 0 {
                    return Err(DecodeError::Invalid);
                }
                f
            }
        }
    } else {
        let f = MAP1[b as usize];
        if f & BAD != 0 {
            return Err(DecodeError::Invalid);
        }
        f
    };
    let _ = is_vex_map3;
    let opcode_len = at - opcode_off;

    let mut modrm_off = None;
    let mut sib_off = None;
    let mut disp = None;
    let mut modrm_reg = 0u8;
    if flags & M != 0 {
        let m = next(&mut at)?;
        modrm_off = Some(at - 1);
        let mode = m >> 6;
        let rm = m & 0x07;
        modrm_reg = (m >> 3) & 0x07;
        if mode != 0b11 {
            if rm == 0b100 {
                let sib = next(&mut at)?;
                sib_off = Some(at - 1);
                // SIB with base=101 and mod=00: disp32.
                if mode == 0b00 && (sib & 0x07) == 0b101 {
                    disp = Some((at, 4));
                    at += 4;
                }
            }
            match mode {
                0b00 => {
                    if rm == 0b101 {
                        // RIP-relative disp32.
                        disp = Some((at, 4));
                        at += 4;
                    }
                }
                0b01 => {
                    disp = Some((at, 1));
                    at += 1;
                }
                0b10 => {
                    disp = Some((at, 4));
                    at += 4;
                }
                _ => unreachable!(),
            }
        }
        if at > code.len() {
            return Err(DecodeError::Truncated);
        }
    }

    // Immediate.
    let mut imm = None;
    let mut add_imm = |at: &mut usize, n: usize| -> Result<(), DecodeError> {
        if *at + n > code.len() {
            return Err(DecodeError::Truncated);
        }
        imm = Some((*at, n));
        *at += n;
        Ok(())
    };
    let iz = if op_size_16 { 2 } else { 4 };
    if flags & GRP_F6 != 0 {
        if modrm_reg <= 1 {
            // TEST r/m, imm.
            let n = if flags & IZ != 0 { iz } else { 1 };
            add_imm(&mut at, n)?;
        }
    } else if flags & I8 != 0 {
        add_imm(&mut at, 1)?;
    } else if flags & I16 != 0 {
        add_imm(&mut at, 2)?;
    } else if flags & IZ != 0 {
        add_imm(&mut at, iz)?;
    } else if flags & IV != 0 {
        let n = if rex_w {
            8
        } else if op_size_16 {
            2
        } else {
            4
        };
        add_imm(&mut at, n)?;
    } else if flags & I16I8 != 0 {
        add_imm(&mut at, 2)?;
        // ENTER's trailing imm8 is folded into one 3-byte immediate span.
        imm = Some((imm.unwrap().0, 3));
        at += 1;
        if at > code.len() {
            return Err(DecodeError::Truncated);
        }
    } else if flags & MOFFS != 0 {
        let n = if addr_size_32 { 4 } else { 8 };
        add_imm(&mut at, n)?;
    }

    if at > code.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(Insn {
        len: at,
        opcode_off,
        opcode_len,
        modrm_off,
        sib_off,
        disp,
        imm,
        is_relative_branch: flags & REL != 0,
    })
}

/// True if the instruction at `code` is exactly `VMFUNC`, modulo prefixes.
pub fn is_vmfunc(code: &[u8], insn: &Insn) -> bool {
    insn.opcode_len == 2
        && code.get(insn.opcode_off) == Some(&0x0f)
        && code.get(insn.opcode_off + 1) == Some(&0x01)
        && insn.modrm_off.and_then(|o| code.get(o)) == Some(&0xd4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn len_of(bytes: &[u8]) -> usize {
        decode(bytes).unwrap().len
    }

    #[test]
    fn common_one_byte_forms() {
        assert_eq!(len_of(&[0x90]), 1); // nop
        assert_eq!(len_of(&[0xc3]), 1); // ret
        assert_eq!(len_of(&[0x50]), 1); // push rax
        assert_eq!(len_of(&[0x6a, 0x05]), 2); // push 5
        assert_eq!(len_of(&[0xcd, 0x80]), 2); // int 0x80
    }

    #[test]
    fn modrm_register_forms() {
        assert_eq!(len_of(&[0x48, 0x89, 0xd8]), 3); // mov rax, rbx
        assert_eq!(len_of(&[0x31, 0xc0]), 2); // xor eax, eax
        assert_eq!(len_of(&[0x48, 0x01, 0xc8]), 3); // add rax, rcx
    }

    #[test]
    fn modrm_memory_forms() {
        // mov rax, [rbx]
        assert_eq!(len_of(&[0x48, 0x8b, 0x03]), 3);
        // mov rax, [rbx+0x10] (disp8)
        assert_eq!(len_of(&[0x48, 0x8b, 0x43, 0x10]), 4);
        // mov rax, [rbx+0x12345678] (disp32)
        assert_eq!(len_of(&[0x48, 0x8b, 0x83, 0x78, 0x56, 0x34, 0x12]), 7);
        // mov rax, [rip+0x10] (RIP-relative)
        assert_eq!(len_of(&[0x48, 0x8b, 0x05, 0x10, 0x00, 0x00, 0x00]), 7);
    }

    #[test]
    fn sib_forms() {
        // lea rbx, [rdi + rcx*1] : 48 8D 1C 0F
        let i = decode(&[0x48, 0x8d, 0x1c, 0x0f]).unwrap();
        assert_eq!(i.len, 4);
        assert_eq!(i.sib_off, Some(3));
        // mov rax, [rsp] : 48 8B 04 24
        assert_eq!(len_of(&[0x48, 0x8b, 0x04, 0x24]), 4);
        // mov rax, [rbp + rax*4 + 0] : SIB + disp8 (mod=01)
        assert_eq!(len_of(&[0x48, 0x8b, 0x44, 0x85, 0x00]), 5);
        // SIB base=101 mod=00: disp32. mov rax, [rax*2 + 0x1000]
        assert_eq!(len_of(&[0x48, 0x8b, 0x04, 0x45, 0x00, 0x10, 0x00, 0x00]), 8);
    }

    #[test]
    fn immediates() {
        // add rax, 0x12345678
        let i = decode(&[0x48, 0x05, 0x78, 0x56, 0x34, 0x12]).unwrap();
        assert_eq!(i.len, 6);
        assert_eq!(i.imm, Some((2, 4)));
        // mov rax, imm64
        assert_eq!(len_of(&[0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8]), 10);
        // mov eax, imm32
        assert_eq!(len_of(&[0xb8, 1, 2, 3, 4]), 5);
        // 66: mov ax, imm16
        assert_eq!(len_of(&[0x66, 0xb8, 1, 2]), 4);
        // imul rcx, rdi, 0xD401 — the paper's Table 3 row 2 example.
        let i = decode(&[0x48, 0x69, 0xcf, 0x01, 0xd4, 0x00, 0x00]).unwrap();
        assert_eq!(i.len, 7);
        assert_eq!(i.modrm_off, Some(2));
        assert_eq!(i.imm, Some((3, 4)));
    }

    #[test]
    fn branches() {
        let i = decode(&[0xe8, 0x10, 0x00, 0x00, 0x00]).unwrap(); // call rel32
        assert_eq!(i.len, 5);
        assert!(i.is_relative_branch);
        let i = decode(&[0xeb, 0x05]).unwrap(); // jmp rel8
        assert_eq!(i.len, 2);
        assert!(i.is_relative_branch);
        let i = decode(&[0x0f, 0x84, 0, 0, 0, 0]).unwrap(); // jz rel32
        assert_eq!(i.len, 6);
        assert!(i.is_relative_branch);
    }

    #[test]
    fn f6_f7_group_immediates() {
        // test byte [rax], 0x5 : F6 00 05
        assert_eq!(len_of(&[0xf6, 0x00, 0x05]), 3);
        // not qword [rax] : F7 10 — reg=2, no immediate.
        assert_eq!(len_of(&[0xf7, 0x10]), 2);
        // test eax-form via modrm reg=0 with imm32: F7 C0 xx xx xx xx
        assert_eq!(len_of(&[0xf7, 0xc0, 1, 2, 3, 4]), 6);
    }

    #[test]
    fn two_byte_map() {
        assert_eq!(len_of(&[0x0f, 0x05]), 2); // syscall
        assert_eq!(len_of(&[0x0f, 0xa2]), 2); // cpuid
                                              // movzx eax, byte [rdi]
        assert_eq!(len_of(&[0x0f, 0xb6, 0x07]), 3);
        // nopw 0x0(%rax,%rax,1) : 66 0F 1F 44 00 00
        assert_eq!(len_of(&[0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00]), 6);
        // shld rbx, rcx, 5
        assert_eq!(len_of(&[0x48, 0x0f, 0xa4, 0xcb, 0x05]), 5);
    }

    #[test]
    fn vmfunc_decodes_as_three_bytes() {
        let i = decode(&[0x0f, 0x01, 0xd4]).unwrap();
        assert_eq!(i.len, 3);
        assert!(is_vmfunc(&[0x0f, 0x01, 0xd4], &i));
        // And other group-7 mod=11 forms too (e.g. 0F 01 F8 swapgs).
        assert_eq!(len_of(&[0x0f, 0x01, 0xf8]), 3);
        // sgdt [rax]: 0F 01 00 — memory form.
        assert_eq!(len_of(&[0x0f, 0x01, 0x00]), 3);
    }

    #[test]
    fn escape_maps_38_3a() {
        // pshufb xmm0, xmm1 : 66 0F 38 00 C1
        assert_eq!(len_of(&[0x66, 0x0f, 0x38, 0x00, 0xc1]), 5);
        // palignr xmm0, xmm1, 4 : 66 0F 3A 0F C1 04
        assert_eq!(len_of(&[0x66, 0x0f, 0x3a, 0x0f, 0xc1, 0x04]), 6);
    }

    #[test]
    fn vex_forms() {
        // vzeroupper: C5 F8 77
        assert_eq!(len_of(&[0xc5, 0xf8, 0x77]), 3);
        // vmovdqa ymm0, [rdi]: C5 FD 6F 07
        assert_eq!(len_of(&[0xc5, 0xfd, 0x6f, 0x07]), 4);
        // vpalignr ymm0, ymm1, ymm2, 4 (map3 has imm8):
        // C4 E3 75 0F C2 04
        assert_eq!(len_of(&[0xc4, 0xe3, 0x75, 0x0f, 0xc2, 0x04]), 6);
    }

    #[test]
    fn moffs_is_eight_bytes() {
        // mov al, [moffs64]
        assert_eq!(len_of(&[0xa0, 1, 2, 3, 4, 5, 6, 7, 8]), 9);
        // with 0x67: 4-byte offset
        assert_eq!(len_of(&[0x67, 0xa0, 1, 2, 3, 4]), 6);
    }

    #[test]
    fn invalid_and_truncated() {
        assert_eq!(decode(&[0x06]), Err(DecodeError::Invalid));
        assert_eq!(decode(&[0x48]), Err(DecodeError::Truncated));
        assert_eq!(
            decode(&[0x48, 0x8b, 0x83, 0x78]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn field_classification() {
        // imul rcx, rdi, 0x0001D401: REX 69 /r imm32.
        let code = [0x48, 0x69, 0xcf, 0x01, 0xd4, 0x01, 0x00];
        let i = decode(&code).unwrap();
        assert_eq!(i.field_at(0), Field::Opcode);
        assert_eq!(i.field_at(1), Field::Opcode);
        assert_eq!(i.field_at(2), Field::ModRm);
        assert_eq!(i.field_at(3), Field::Immediate);
        // lea with SIB: 48 8D 1C 0F.
        let code = [0x48, 0x8d, 0x1c, 0x0f];
        let i = decode(&code).unwrap();
        assert_eq!(i.field_at(3), Field::Sib);
        // disp: 48 8B 83 <disp32>.
        let code = [0x48, 0x8b, 0x83, 0x0f, 0x01, 0xd4, 0x00];
        let i = decode(&code).unwrap();
        assert_eq!(i.field_at(3), Field::Displacement);
        assert_eq!(i.field_at(6), Field::Displacement);
    }

    #[test]
    fn decoder_always_progresses_or_errors() {
        // Fuzzy smoke: every 3-byte seed either decodes with len>=1 or
        // errors; never panics, never returns len 0.
        for a in 0..=255u8 {
            for b in [0x00, 0x0f, 0x45, 0x90, 0xd4, 0xff] {
                let buf = [a, b, 0xd4, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06];
                if let Ok(i) = decode(&buf) {
                    assert!(i.len >= 1 && i.len <= buf.len())
                }
            }
        }
    }
}
