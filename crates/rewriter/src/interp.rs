//! A mini x86-64 interpreter for equivalence checking.
//!
//! "Functionally-equivalent instructions" (§5) is a testable claim: this
//! module executes the instruction subset the rewriter emits — moves, the
//! 81-group ALU, `IMUL`, `LEA`, `PUSH`/`POP`, branches, and `VMFUNC`
//! itself (logged, not executed) — so tests can run original and rewritten
//! code on the same inputs and compare final machine state.

use std::collections::HashMap;

use crate::insn::{decode, is_vmfunc, Insn};

/// Architectural state of the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// General-purpose registers, rax..r15.
    pub regs: [u64; 16],
    /// Byte-granular memory.
    pub mem: HashMap<u64, u8>,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Instruction pointer.
    pub rip: u64,
    /// Addresses at which `VMFUNC` executed.
    pub vmfunc_log: Vec<u64>,
}

/// Register numbers.
pub const RSP: usize = 4;

/// The sentinel return address that halts execution.
pub const HALT: u64 = 0xdead_0000_dead_0000;

impl State {
    /// Fresh state with the stack pointer placed in scratch memory.
    pub fn new() -> Self {
        let mut s = State {
            regs: [0; 16],
            mem: HashMap::new(),
            zf: false,
            sf: false,
            rip: 0,
            vmfunc_log: Vec::new(),
        };
        s.regs[RSP] = 0x7fff_0000;
        s
    }

    fn read_mem(&self, addr: u64, n: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..n {
            v |= (*self.mem.get(&(addr + i as u64)).unwrap_or(&0) as u64) << (8 * i);
        }
        v
    }

    fn write_mem(&mut self, addr: u64, v: u64, n: usize) {
        for i in 0..n {
            self.mem.insert(addr + i as u64, (v >> (8 * i)) as u8);
        }
    }

    fn push(&mut self, v: u64) {
        self.regs[RSP] -= 8;
        let sp = self.regs[RSP];
        self.write_mem(sp, v, 8);
    }

    fn pop(&mut self) -> u64 {
        let sp = self.regs[RSP];
        let v = self.read_mem(sp, 8);
        self.regs[RSP] += 8;
        v
    }
}

impl Default for State {
    fn default() -> Self {
        Self::new()
    }
}

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The instruction at `rip` is outside both code regions.
    OutOfBounds(u64),
    /// An instruction form the interpreter does not model.
    Unsupported(u64),
    /// The step budget ran out (likely a loop).
    StepLimit,
}

/// Code mapped at two regions: the program and the rewrite page.
#[derive(Debug, Clone, Copy)]
pub struct Program<'a> {
    /// Program bytes.
    pub code: &'a [u8],
    /// Virtual base of `code`.
    pub code_base: u64,
    /// Rewrite-page bytes (may be empty).
    pub page: &'a [u8],
    /// Virtual base of `page`.
    pub page_base: u64,
}

impl<'a> Program<'a> {
    fn fetch(&self, rip: u64) -> Option<&'a [u8]> {
        if rip >= self.code_base && rip < self.code_base + self.code.len() as u64 {
            Some(&self.code[(rip - self.code_base) as usize..])
        } else if rip >= self.page_base && rip < self.page_base + self.page.len() as u64 {
            Some(&self.page[(rip - self.page_base) as usize..])
        } else {
            None
        }
    }
}

fn rex_of(bytes: &[u8], insn: &Insn) -> u8 {
    if insn.opcode_off > 0 {
        let b = bytes[insn.opcode_off - 1];
        if (0x40..=0x4f).contains(&b) {
            return b;
        }
    }
    0
}

/// Where the ModRM rm operand lives.
enum Loc {
    Reg(usize),
    Mem(u64),
}

fn resolve_rm(bytes: &[u8], insn: &Insn, st: &State, rip_after: u64) -> Loc {
    let rex = rex_of(bytes, insn);
    let b = (rex & 1) as usize;
    let x = ((rex >> 1) & 1) as usize;
    let m = insn.modrm_off.expect("rm operand without ModRM");
    let modrm = bytes[m];
    let mode = modrm >> 6;
    let rm = (modrm & 7) as usize;
    if mode == 0b11 {
        return Loc::Reg(rm | (b << 3));
    }
    let disp = match insn.disp {
        Some((off, 1)) => bytes[off] as i8 as i64,
        Some((off, 4)) => i32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as i64,
        None => 0,
        _ => 0,
    };
    if mode == 0b00 && rm == 0b101 {
        // RIP-relative.
        return Loc::Mem(rip_after.wrapping_add(disp as u64));
    }
    let base_val = if rm == 0b100 {
        let sib = bytes[insn.sib_off.expect("SIB expected")];
        let scale = 1u64 << (sib >> 6);
        let index = ((sib >> 3) & 7) as usize | (x << 3);
        let base = (sib & 7) as usize | (b << 3);
        let mut ea = if (sib & 7) == 0b101 && mode == 0b00 {
            0 // disp32-only base.
        } else {
            st.regs[base]
        };
        if index != 0b100 {
            // index=rsp means "no index".
            ea = ea.wrapping_add(st.regs[index].wrapping_mul(scale));
        }
        ea
    } else {
        st.regs[rm | (b << 3)]
    };
    Loc::Mem(base_val.wrapping_add(disp as u64))
}

fn reg_field(bytes: &[u8], insn: &Insn) -> usize {
    let rex = rex_of(bytes, insn);
    let r = ((rex >> 2) & 1) as usize;
    let m = insn.modrm_off.expect("reg operand without ModRM");
    (((bytes[m] >> 3) & 7) as usize) | (r << 3)
}

fn op_width(bytes: &[u8], insn: &Insn) -> usize {
    if rex_of(bytes, insn) & 0x08 != 0 {
        8
    } else {
        4
    }
}

fn read_loc(st: &State, loc: &Loc, n: usize) -> u64 {
    match loc {
        Loc::Reg(r) => {
            if n == 8 {
                st.regs[*r]
            } else {
                st.regs[*r] & 0xffff_ffff
            }
        }
        Loc::Mem(a) => st.read_mem(*a, n),
    }
}

fn write_loc(st: &mut State, loc: &Loc, v: u64, n: usize) {
    match loc {
        Loc::Reg(r) => {
            // 32-bit writes zero-extend.
            st.regs[*r] = if n == 8 { v } else { v & 0xffff_ffff };
        }
        Loc::Mem(a) => st.write_mem(*a, v, n),
    }
}

fn set_flags(st: &mut State, result: u64, n: usize) {
    let masked = if n == 8 { result } else { result & 0xffff_ffff };
    st.zf = masked == 0;
    st.sf = (masked >> (n * 8 - 1)) & 1 == 1;
}

fn alu(op: u8, a: u64, b: u64) -> u64 {
    match op {
        0 => a.wrapping_add(b),
        1 => a | b,
        4 => a & b,
        5 => a.wrapping_sub(b),
        6 => a ^ b,
        7 => a.wrapping_sub(b), // CMP (result discarded by caller).
        8 => a & b,             // TEST.
        _ => unreachable!("unsupported ALU digit {op}"),
    }
}

/// Runs the program from `code_base` until `RET` pops the [`HALT`]
/// sentinel.
pub fn run(prog: Program<'_>, st: &mut State, max_steps: usize) -> Result<(), InterpError> {
    st.rip = prog.code_base;
    st.push(HALT);
    for _ in 0..max_steps {
        let bytes = prog.fetch(st.rip).ok_or(InterpError::OutOfBounds(st.rip))?;
        let insn = decode(bytes).map_err(|_| InterpError::Unsupported(st.rip))?;
        let rip_after = st.rip + insn.len as u64;
        if is_vmfunc(bytes, &insn) {
            st.vmfunc_log.push(st.rip);
            st.rip = rip_after;
            continue;
        }
        let rex = rex_of(bytes, &insn);
        let bbit = (rex & 1) as usize;
        let op = bytes[insn.opcode_off];
        let n = op_width(bytes, &insn);
        match (insn.opcode_len, op) {
            (1, 0x90) => {}
            (1, 0xc3) => {
                let ret = st.pop();
                if ret == HALT {
                    return Ok(());
                }
                st.rip = ret;
                continue;
            }
            (1, 0x50..=0x57) => {
                let r = (op - 0x50) as usize | (bbit << 3);
                let v = st.regs[r];
                st.push(v);
            }
            (1, 0x58..=0x5f) => {
                let r = (op - 0x58) as usize | (bbit << 3);
                let v = st.pop();
                st.regs[r] = v;
            }
            // MOV r/m, r and MOV r, r/m.
            (1, 0x89) | (1, 0x8b) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let reg = reg_field(bytes, &insn);
                if op == 0x89 {
                    let v = if n == 8 {
                        st.regs[reg]
                    } else {
                        st.regs[reg] & 0xffff_ffff
                    };
                    write_loc(st, &loc, v, n);
                } else {
                    let v = read_loc(st, &loc, n);
                    st.regs[reg] = if n == 8 { v } else { v & 0xffff_ffff };
                }
            }
            // LEA.
            (1, 0x8d) => {
                let Loc::Mem(ea) = resolve_rm(bytes, &insn, st, rip_after) else {
                    return Err(InterpError::Unsupported(st.rip));
                };
                let reg = reg_field(bytes, &insn);
                st.regs[reg] = if n == 8 { ea } else { ea & 0xffff_ffff };
            }
            // MOV r, imm.
            (1, 0xb8..=0xbf) => {
                let r = (op - 0xb8) as usize | (bbit << 3);
                let (ioff, ilen) = insn.imm.unwrap();
                let v = match ilen {
                    4 => u32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as u64,
                    8 => u64::from_le_bytes(bytes[ioff..ioff + 8].try_into().unwrap()),
                    _ => return Err(InterpError::Unsupported(st.rip)),
                };
                st.regs[r] = v;
            }
            (1, 0xc7) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let (ioff, _) = insn.imm.unwrap();
                let v = i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64 as u64;
                write_loc(st, &loc, v, n);
            }
            // ALU rm,r / r,rm forms: 01/09/21/29/31/39, 03/0B/23/2B/33/3B,
            // 85 test.
            (1, o)
                if matches!(
                    o,
                    0x01 | 0x09
                        | 0x21
                        | 0x29
                        | 0x31
                        | 0x39
                        | 0x03
                        | 0x0b
                        | 0x23
                        | 0x2b
                        | 0x33
                        | 0x3b
                        | 0x85
                ) =>
            {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let reg = reg_field(bytes, &insn);
                let digit = if o == 0x85 { 8 } else { (o >> 3) & 7 };
                let to_rm = o & 0x02 == 0 || o == 0x85;
                let rm_v = read_loc(st, &loc, n);
                let r_v = if n == 8 {
                    st.regs[reg]
                } else {
                    st.regs[reg] & 0xffff_ffff
                };
                let (a, b) = if to_rm { (rm_v, r_v) } else { (r_v, rm_v) };
                let res = alu(digit, a, b);
                set_flags(st, res, n);
                if digit != 7 && digit != 8 {
                    if to_rm {
                        write_loc(st, &loc, res, n);
                    } else {
                        st.regs[reg] = if n == 8 { res } else { res & 0xffff_ffff };
                    }
                }
            }
            // Group 81 imm32 and accumulator short forms.
            (1, 0x81) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let m = insn.modrm_off.unwrap();
                let digit = (bytes[m] >> 3) & 7;
                let (ioff, _) = insn.imm.unwrap();
                let imm =
                    i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64 as u64;
                let v = read_loc(st, &loc, n);
                let res = alu(digit, v, imm);
                set_flags(st, res, n);
                if digit != 7 {
                    write_loc(st, &loc, res, n);
                }
            }
            (1, 0x83) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let m = insn.modrm_off.unwrap();
                let digit = (bytes[m] >> 3) & 7;
                let (ioff, _) = insn.imm.unwrap();
                let imm = bytes[ioff] as i8 as i64 as u64;
                let v = read_loc(st, &loc, n);
                let res = alu(digit, v, imm);
                set_flags(st, res, n);
                if digit != 7 {
                    write_loc(st, &loc, res, n);
                }
            }
            (1, o) if matches!(o, 0x05 | 0x0d | 0x25 | 0x2d | 0x35 | 0x3d | 0xa9) => {
                let digit = if o == 0xa9 { 8 } else { (o >> 3) & 7 };
                let (ioff, _) = insn.imm.unwrap();
                let imm =
                    i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64 as u64;
                let v = if n == 8 {
                    st.regs[0]
                } else {
                    st.regs[0] & 0xffff_ffff
                };
                let res = alu(digit, v, imm);
                set_flags(st, res, n);
                if digit != 7 && digit != 8 {
                    st.regs[0] = if n == 8 { res } else { res & 0xffff_ffff };
                }
            }
            // F7 /0: TEST r/m, imm32.
            (1, 0xf7) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let m = insn.modrm_off.unwrap();
                if (bytes[m] >> 3) & 7 > 1 {
                    return Err(InterpError::Unsupported(st.rip));
                }
                let (ioff, _) = insn.imm.ok_or(InterpError::Unsupported(st.rip))?;
                let imm =
                    i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64 as u64;
                let res = read_loc(st, &loc, n) & imm;
                set_flags(st, res, n);
            }
            // IMUL r, r/m, imm32.
            (1, 0x69) => {
                let loc = resolve_rm(bytes, &insn, st, rip_after);
                let reg = reg_field(bytes, &insn);
                let (ioff, _) = insn.imm.unwrap();
                let imm =
                    i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64 as u64;
                let res = read_loc(st, &loc, n).wrapping_mul(imm);
                st.regs[reg] = if n == 8 { res } else { res & 0xffff_ffff };
            }
            // JMP rel8/rel32, CALL rel32.
            (1, 0xeb) | (1, 0xe9) | (1, 0xe8) => {
                let (ioff, ilen) = insn.imm.unwrap();
                let disp = match ilen {
                    1 => bytes[ioff] as i8 as i64,
                    4 => i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64,
                    _ => unreachable!(),
                };
                if op == 0xe8 {
                    st.push(rip_after);
                }
                st.rip = rip_after.wrapping_add(disp as u64);
                continue;
            }
            // Jcc rel8 (JZ/JNZ only).
            (1, 0x74) | (1, 0x75) => {
                let (ioff, _) = insn.imm.unwrap();
                let disp = bytes[ioff] as i8 as i64;
                let take = (op == 0x74) == st.zf;
                if take {
                    st.rip = rip_after.wrapping_add(disp as u64);
                    continue;
                }
            }
            // Two-byte map.
            (2, _) => {
                let op2 = bytes[insn.opcode_off + 1];
                match op2 {
                    // IMUL r, r/m.
                    0xaf => {
                        let loc = resolve_rm(bytes, &insn, st, rip_after);
                        let reg = reg_field(bytes, &insn);
                        let a = if n == 8 {
                            st.regs[reg]
                        } else {
                            st.regs[reg] & 0xffff_ffff
                        };
                        let res = a.wrapping_mul(read_loc(st, &loc, n));
                        st.regs[reg] = if n == 8 { res } else { res & 0xffff_ffff };
                    }
                    // Jcc rel32 (JZ/JNZ only).
                    0x84 | 0x85 => {
                        let (ioff, _) = insn.imm.unwrap();
                        let disp =
                            i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap()) as i64;
                        let take = (op2 == 0x84) == st.zf;
                        if take {
                            st.rip = rip_after.wrapping_add(disp as u64);
                            continue;
                        }
                    }
                    _ => return Err(InterpError::Unsupported(st.rip)),
                }
            }
            _ => return Err(InterpError::Unsupported(st.rip)),
        }
        st.rip = rip_after;
    }
    Err(InterpError::StepLimit)
}

/// Runs `original` and `(rewritten, page)` from the same initial state and
/// asserts identical final registers, memory, and `VMFUNC` count.
///
/// `setup` initializes both copies of the state (e.g. pointing `rdi` at a
/// buffer). Flags are *not* compared when `compare_flags` is false
/// (undefined-after-IMUL cases).
pub fn assert_equivalent(
    original: &[u8],
    rewritten: &[u8],
    page: &[u8],
    code_base: u64,
    page_base: u64,
    setup: impl Fn(&mut State),
    compare_flags: bool,
) {
    let mut a = State::new();
    setup(&mut a);
    run(
        Program {
            code: original,
            code_base,
            page: &[],
            page_base,
        },
        &mut a,
        10_000,
    )
    .expect("original program must run");
    let mut b = State::new();
    setup(&mut b);
    run(
        Program {
            code: rewritten,
            code_base,
            page,
            page_base,
        },
        &mut b,
        10_000,
    )
    .expect("rewritten program must run");
    assert_eq!(a.regs, b.regs, "register state diverged");
    // Bytes below the (restored) stack pointer are dead: the rewritten
    // code's PUSH/POP scratch traffic legitimately differs there.
    let live = |m: &HashMap<u64, u8>| -> HashMap<u64, u8> {
        m.iter()
            .filter(|(addr, _)| !(0x7ffe_0000..0x7fff_0000).contains(*addr))
            .map(|(a, v)| (*a, *v))
            .collect()
    };
    assert_eq!(live(&a.mem), live(&b.mem), "memory state diverged");
    assert_eq!(
        a.vmfunc_log.len(),
        b.vmfunc_log.len(),
        "VMFUNC execution count diverged"
    );
    if compare_flags {
        assert_eq!((a.zf, a.sf), (b.zf, b.sf), "flags diverged");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_code(code: &[u8], setup: impl Fn(&mut State)) -> State {
        let mut st = State::new();
        setup(&mut st);
        run(
            Program {
                code,
                code_base: 0x40_0000,
                page: &[],
                page_base: 0x1000,
            },
            &mut st,
            1000,
        )
        .unwrap();
        st
    }

    #[test]
    fn mov_add_roundtrip() {
        // mov eax, 5; add eax, 7; ret.
        let code = [0xb8, 5, 0, 0, 0, 0x05, 7, 0, 0, 0, 0xc3];
        let st = run_code(&code, |_| {});
        assert_eq!(st.regs[0], 12);
    }

    #[test]
    fn wide_mov_imm64() {
        let mut code = vec![0x48, 0xb8];
        code.extend_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        code.push(0xc3);
        let st = run_code(&code, |_| {});
        assert_eq!(st.regs[0], 0x1122_3344_5566_7788);
    }

    #[test]
    fn push_pop_balance() {
        // push rcx; pop rdx; ret.
        let code = [0x51, 0x5a, 0xc3];
        let st = run_code(&code, |s| s.regs[1] = 42);
        assert_eq!(st.regs[2], 42);
        assert_eq!(st.regs[RSP], 0x7fff_0000);
    }

    #[test]
    fn memory_load_store() {
        // mov [rdi], rax; mov rbx, [rdi]; ret.
        let code = [0x48, 0x89, 0x07, 0x48, 0x8b, 0x1f, 0xc3];
        let st = run_code(&code, |s| {
            s.regs[0] = 0xabcd;
            s.regs[7] = 0x9000;
        });
        assert_eq!(st.regs[3], 0xabcd);
        assert_eq!(st.read_mem(0x9000, 8), 0xabcd);
    }

    #[test]
    fn lea_with_sib_and_disp() {
        // lea rbx, [rdi + rcx*1 + 0x100]: 48 8D 9C 0F 00 01 00 00.
        let code = [0x48, 0x8d, 0x9c, 0x0f, 0x00, 0x01, 0x00, 0x00, 0xc3];
        let st = run_code(&code, |s| {
            s.regs[7] = 0x1000;
            s.regs[1] = 0x20;
        });
        assert_eq!(st.regs[3], 0x1120);
    }

    #[test]
    fn imul_three_operand() {
        // imul ecx, edi, 100: 69 CF 64 00 00 00.
        let code = [0x69, 0xcf, 100, 0, 0, 0, 0xc3];
        let st = run_code(&code, |s| s.regs[7] = 7);
        assert_eq!(st.regs[1], 700);
    }

    #[test]
    fn vmfunc_is_logged() {
        let code = [0x0f, 0x01, 0xd4, 0xc3];
        let st = run_code(&code, |_| {});
        assert_eq!(st.vmfunc_log, vec![0x40_0000]);
    }

    #[test]
    fn call_and_ret() {
        // call +1 (skip nothing); ret at target returns to after call;
        // then mov eax, 9; ret.
        // call rel32=2 → target = base+5+2; layout: call; mov eax,9; ret
        // ... simpler: jmp over a block.
        // jmp +5; mov eax, 1; ret; mov eax, 9; ret
        let code = [
            0xeb, 0x06, // jmp +6 → to mov eax,9
            0xb8, 1, 0, 0, 0, 0xc3, // mov eax,1; ret
            0xb8, 9, 0, 0, 0, 0xc3, // mov eax,9; ret
        ];
        let st = run_code(&code, |_| {});
        assert_eq!(st.regs[0], 9);
    }

    #[test]
    fn conditional_jump_on_zf() {
        // cmp eax, 5 (81 /7); jz +5; mov ebx,1; ret | mov ebx,2; ret.
        let code = [
            0x81, 0xf8, 5, 0, 0, 0, // cmp eax, 5
            0x74, 0x06, // jz +6
            0xbb, 1, 0, 0, 0, 0xc3, // mov ebx,1; ret
            0xbb, 2, 0, 0, 0, 0xc3, // mov ebx,2; ret
        ];
        let st = run_code(&code, |s| s.regs[0] = 5);
        assert_eq!(st.regs[3], 2);
        let st = run_code(&code, |s| s.regs[0] = 4);
        assert_eq!(st.regs[3], 1);
    }

    #[test]
    fn flags_from_alu() {
        // xor eax, eax → zf.
        let code = [0x31, 0xc0, 0xc3];
        let st = run_code(&code, |s| s.regs[0] = 77);
        assert!(st.zf);
        assert_eq!(st.regs[0], 0);
    }
}
