//! Dynamic binary rewriting of inadvertent `VMFUNC` instructions.
//!
//! SkyBridge's security hinges on the trampoline being the **only** place a
//! process can execute `VMFUNC` (§4.4): because the CR3-remap design makes
//! any `VMFUNC` at any address switch address spaces, a malicious process
//! could otherwise jump into the middle of its own code where the bytes
//! `0F 01 D4` happen to occur — inside an immediate, a displacement, a
//! ModRM byte, or spanning two instructions — and land in a victim's
//! address space outside the trampoline.
//!
//! The defense (§5, modeled on ERIM's `WRPKRU` scrubbing): at registration
//! time the Subkernel scans every executable page and rewrites every
//! occurrence of the byte pattern with functionally equivalent code,
//! relocating instructions that grow into a *rewrite page* mapped at the
//! otherwise-unused address `0x1000`.
//!
//! Unlike the rest of this reproduction, nothing here is simulated: the
//! decoder, scanner and rewriter operate on real x86-64 machine code (the
//! Table 6 experiment runs them over the ELF binaries installed in this
//! container), and the mini-interpreter in [`interp`] checks functional
//! equivalence of rewritten sequences.

pub mod corpus;
pub mod elf;
pub mod insn;
pub mod interp;
pub mod rewrite;
pub mod scan;

pub use crate::{
    insn::{decode, DecodeError, Insn},
    rewrite::{rewrite_code, RewriteError, RewriteOutput},
    scan::{classify, find_occurrences, Occurrence, OverlapKind},
};

/// The `VMFUNC` byte pattern.
pub const VMFUNC_BYTES: [u8; 3] = [0x0f, 0x01, 0xd4];
