//! The Table 3 rewriting strategies.
//!
//! Every occurrence of `0F 01 D4` in a code region is replaced with
//! functionally equivalent instructions:
//!
//! | Overlap | Strategy (paper Table 3) |
//! |---|---|
//! | opcode = VMFUNC (C1) | replace with 3 NOPs |
//! | spanning instructions (C2) | relocate the spanning instructions to the rewrite page with a NOP inserted between them |
//! | ModRM = 0x0F | push/pop a scratch register; address through it |
//! | SIB = 0x0F | same scratch-register substitution on the SIB base |
//! | displacement contains 0x0F... | precompute part of the displacement with `LEA` |
//! | immediate contains the bytes | apply the operation twice with two immediates (ALU), `MOV`+`LEA` split (moves), or relocate-and-refixup (jump-like) |
//!
//! Rewritten sequences that no longer fit in place are moved to the
//! *rewrite page* (mapped at the otherwise-unused low address, §5.1); the
//! original site becomes `JMP rel32` to the snippet plus NOP padding, and
//! each snippet ends with a `JMP rel32` back.
//!
//! After every patch the whole region is rescanned; if a patch's own bytes
//! (a jump offset, a split constant) happen to recreate the pattern, the
//! snippet is nudged (shifted by a NOP / the split constants rotated) and
//! re-emitted. [`rewrite_code`] only returns success when the final scan
//! is clean.

use crate::{
    insn::{decode, Field, Insn},
    scan::{classify, find_occurrences, Occurrence, OverlapKind},
};

/// Result of rewriting one code region.
#[derive(Debug, Clone)]
pub struct RewriteOutput {
    /// The patched code (same length as the input).
    pub code: Vec<u8>,
    /// Contents of the rewrite page(s); map at `rewrite_base`, executable.
    pub rewrite_page: Vec<u8>,
    /// Number of relocation snippets emitted.
    pub stubs: usize,
    /// Occurrences fixed in place (C1 NOPs).
    pub in_place: usize,
}

/// Why rewriting failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// An occurrence sits in an instruction form no strategy covers.
    Unrewritable {
        /// Offset of the occurrence.
        offset: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Patching made no progress (pathological overlapping patterns).
    NoProgress,
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Unrewritable { offset, reason } => {
                write!(f, "cannot rewrite occurrence at {offset:#x}: {reason}")
            }
            RewriteError::NoProgress => write!(f, "rewriting made no progress"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Scratch-constant candidates for immediate/displacement splitting; the
/// emitter rotates through them until the assembled bytes are
/// pattern-free.
const SPLIT_CANDIDATES: [i32; 4] = [0x0101_0101, 0x0202_0202, 0x1133_5577, 0x0907_0503];

/// Rewrites `code` (mapped at `code_base`), producing patched code plus a
/// rewrite page to map at `rewrite_base`.
///
/// # Examples
///
/// ```
/// use sb_rewriter::{rewrite::rewrite_code, scan::find_occurrences};
///
/// // add eax, 0x00D4010F — the VMFUNC bytes hide in the immediate.
/// let code = [0x05, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90];
/// assert_eq!(find_occurrences(&code).len(), 1);
/// let out = rewrite_code(&code, 0x40_0000, 0x1000).unwrap();
/// assert!(find_occurrences(&out.code).is_empty());
/// assert_eq!(out.code.len(), code.len());
/// ```
pub fn rewrite_code(
    code: &[u8],
    code_base: u64,
    rewrite_base: u64,
) -> Result<RewriteOutput, RewriteError> {
    let mut out = RewriteOutput {
        code: code.to_vec(),
        rewrite_page: Vec::new(),
        stubs: 0,
        in_place: 0,
    };
    let initial = find_occurrences(code).len();
    let mut fuse = initial * 4 + 8;
    loop {
        let occs = classify(&out.code);
        // Ignore occurrences inside already-emitted NOP/JMP patch sites?
        // There are none by construction; the loop re-verifies everything.
        let Some(occ) = occs.first().copied() else {
            break;
        };
        if fuse == 0 {
            return Err(RewriteError::NoProgress);
        }
        fuse -= 1;
        rewrite_one(&mut out, occ, code_base, rewrite_base)?;
    }
    // The rewrite page itself must be clean.
    if !find_occurrences(&out.rewrite_page).is_empty() {
        return Err(RewriteError::NoProgress);
    }
    Ok(out)
}

fn rewrite_one(
    out: &mut RewriteOutput,
    occ: Occurrence,
    code_base: u64,
    rewrite_base: u64,
) -> Result<(), RewriteError> {
    match occ.kind {
        OverlapKind::Vmfunc => {
            // C1: the whole instruction (including any prefixes) becomes
            // NOPs.
            for b in &mut out.code[occ.insn_start..occ.span_end] {
                *b = 0x90;
            }
            out.in_place += 1;
            Ok(())
        }
        OverlapKind::Spanning => relocate_region(
            out,
            occ.insn_start,
            occ.span_end,
            code_base,
            rewrite_base,
            occ.offset,
            Transform::NopSeparated,
        ),
        OverlapKind::Within(field) => {
            let insn =
                decode(&out.code[occ.insn_start..]).map_err(|_| RewriteError::Unrewritable {
                    offset: occ.offset,
                    reason: "undecodable instruction",
                })?;
            let end = occ.insn_start + insn.len;
            let transform = match field {
                Field::Opcode => {
                    return Err(RewriteError::Unrewritable {
                        offset: occ.offset,
                        reason: "pattern in a non-VMFUNC opcode",
                    })
                }
                Field::ModRm => Transform::ScratchRm,
                Field::Sib => Transform::ScratchSibBase,
                Field::Displacement => {
                    if is_rip_relative(&out.code[occ.insn_start..], &insn) {
                        Transform::RipRefixup
                    } else {
                        Transform::DispSplit
                    }
                }
                Field::Immediate => {
                    if insn.is_relative_branch {
                        Transform::BranchRefixup
                    } else {
                        Transform::ImmSplit
                    }
                }
            };
            relocate_region(
                out,
                occ.insn_start,
                end,
                code_base,
                rewrite_base,
                occ.offset,
                transform,
            )
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transform {
    /// Copy instructions verbatim (with branch fixups), NOP between them.
    NopSeparated,
    /// Replace the ModRM base register with a scratch register.
    ScratchRm,
    /// Replace the SIB base register with a scratch register.
    ScratchSibBase,
    /// Split the displacement via a scratch LEA.
    DispSplit,
    /// RIP-relative displacement: relocation refixup changes the bytes.
    RipRefixup,
    /// Split the immediate (ALU twice / MOV+LEA).
    ImmSplit,
    /// Relative branch: relocation refixup changes the offset bytes.
    BranchRefixup,
}

fn is_rip_relative(bytes: &[u8], insn: &Insn) -> bool {
    if let Some(m) = insn.modrm_off {
        let modrm = bytes[m];
        return modrm >> 6 == 0b00 && modrm & 0x07 == 0b101;
    }
    false
}

/// Relocates `[start, end)` (extended to ≥ 5 bytes on instruction
/// boundaries) into the rewrite page, applying `transform` to the
/// instruction containing `occ_offset`.
#[allow(clippy::too_many_arguments)]
fn relocate_region(
    out: &mut RewriteOutput,
    start: usize,
    mut end: usize,
    code_base: u64,
    rewrite_base: u64,
    occ_offset: usize,
    transform: Transform,
) -> Result<(), RewriteError> {
    // Extend the region to at least 5 bytes (JMP rel32) on instruction
    // boundaries.
    while end - start < 5 {
        if end >= out.code.len() {
            return Err(RewriteError::Unrewritable {
                offset: occ_offset,
                reason: "too little room for a JMP at end of region",
            });
        }
        let next = decode(&out.code[end..]).map(|i| i.len).unwrap_or(1);
        end += next;
    }
    let end = end.min(out.code.len());

    // Decode the instructions of the region.
    let mut insns = Vec::new();
    let mut at = start;
    while at < end {
        let i = decode(&out.code[at..]).map_err(|_| RewriteError::Unrewritable {
            offset: occ_offset,
            reason: "undecodable instruction in relocation region",
        })?;
        insns.push((at, i));
        at += i.len;
    }
    if at != end {
        return Err(RewriteError::Unrewritable {
            offset: occ_offset,
            reason: "region does not end on an instruction boundary",
        });
    }

    // Try emitting the snippet with increasing NOP nudges and rotating
    // split constants until the result is pattern-free.
    for nudge in 0..16usize {
        let snippet_off = out.rewrite_page.len() + nudge;
        let snippet_addr = rewrite_base + snippet_off as u64;
        match emit_snippet(
            &out.code,
            &insns,
            occ_offset,
            transform,
            code_base,
            snippet_addr,
            end,
            nudge,
        ) {
            Ok(snippet) => {
                // Patch site: JMP rel32 to the snippet + NOP fill.
                let mut site = Vec::with_capacity(end - start);
                let site_addr = code_base + start as u64;
                site.push(0xe9);
                site.extend_from_slice(
                    &(snippet_addr.wrapping_sub(site_addr + 5) as u32).to_le_bytes(),
                );
                site.resize(end - start, 0x90);
                // Verify the patch site (with one byte of context each
                // side) and snippet are clean.
                let mut probe = Vec::new();
                probe.extend_from_slice(&out.code[start.saturating_sub(2)..start]);
                probe.extend_from_slice(&site);
                probe.extend_from_slice(&out.code[end..(end + 2).min(out.code.len())]);
                if find_occurrences(&probe).is_empty() && find_occurrences(&snippet).is_empty() {
                    out.code[start..end].copy_from_slice(&site);
                    for _ in 0..nudge {
                        out.rewrite_page.push(0x90);
                    }
                    out.rewrite_page.extend_from_slice(&snippet);
                    out.stubs += 1;
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(RewriteError::Unrewritable {
        offset: occ_offset,
        reason: "could not find a pattern-free emission",
    })
}

/// Emits the snippet body: all region instructions (transformed /
/// fixed-up) followed by a JMP back to the instruction after the region.
#[allow(clippy::too_many_arguments)]
fn emit_snippet(
    code: &[u8],
    insns: &[(usize, Insn)],
    occ_offset: usize,
    transform: Transform,
    code_base: u64,
    snippet_addr: u64,
    region_end: usize,
    variant: usize,
) -> Result<Vec<u8>, RewriteError> {
    let mut s: Vec<u8> = Vec::new();
    for &(at, insn) in insns {
        let bytes = &code[at..at + insn.len];
        let contains_occ = occ_offset >= at && occ_offset < at + insn.len;
        let emit_addr = snippet_addr + s.len() as u64;
        let orig_addr = code_base + at as u64;
        if contains_occ && transform != Transform::NopSeparated {
            let rewritten = transform_insn(
                bytes,
                &insn,
                transform,
                orig_addr,
                emit_addr,
                occ_offset - at,
                variant,
            )?;
            s.extend_from_slice(&rewritten);
        } else if insn.is_relative_branch {
            let fixed = refix_branch(bytes, &insn, orig_addr, emit_addr).map_err(|reason| {
                RewriteError::Unrewritable {
                    offset: occ_offset,
                    reason,
                }
            })?;
            s.extend_from_slice(&fixed);
        } else if is_rip_relative(bytes, &insn) {
            let fixed = refix_rip(bytes, &insn, orig_addr, emit_addr);
            s.extend_from_slice(&fixed);
        } else {
            s.extend_from_slice(bytes);
        }
        if transform == Transform::NopSeparated {
            // §5.2 C2: a NOP between consecutive instructions breaks any
            // spanning pattern.
            s.push(0x90);
        }
    }
    // JMP back.
    let back_target = code_base + region_end as u64;
    let jmp_addr = snippet_addr + s.len() as u64;
    s.push(0xe9);
    s.extend_from_slice(&(back_target.wrapping_sub(jmp_addr + 5) as u32).to_le_bytes());
    Ok(s)
}

/// Recomputes a relative branch for its new address (promoting rel8 to
/// rel32 where needed).
fn refix_branch(
    bytes: &[u8],
    insn: &Insn,
    orig_addr: u64,
    emit_addr: u64,
) -> Result<Vec<u8>, &'static str> {
    let (imm_off, imm_len) = insn.imm.ok_or("branch without immediate")?;
    let disp: i64 = match imm_len {
        1 => bytes[imm_off] as i8 as i64,
        4 => i32::from_le_bytes(bytes[imm_off..imm_off + 4].try_into().unwrap()) as i64,
        _ => return Err("unsupported branch immediate width"),
    };
    let target = orig_addr
        .wrapping_add(insn.len as u64)
        .wrapping_add(disp as u64);
    let op = bytes[insn.opcode_off];
    // Promote to a rel32 form.
    let mut out = Vec::new();
    let rel32_len: u64 = match (insn.opcode_len, op) {
        (1, 0xeb) | (1, 0xe9) => {
            out.push(0xe9);
            5
        }
        (1, 0xe8) => {
            out.push(0xe8);
            5
        }
        (1, cc @ 0x70..=0x7f) => {
            out.push(0x0f);
            out.push(0x80 + (cc - 0x70));
            6
        }
        (2, cc @ 0x80..=0x8f) if bytes[insn.opcode_off] == 0x0f => {
            out.push(0x0f);
            out.push(cc);
            6
        }
        (2, _) if bytes[insn.opcode_off] == 0x0f => {
            let cc = bytes[insn.opcode_off + 1];
            out.push(0x0f);
            out.push(cc);
            6
        }
        _ => return Err("unsupported branch form (LOOP/JRCXZ)"),
    };
    let rel = target.wrapping_sub(emit_addr + rel32_len) as i64;
    let rel32 = i32::try_from(rel).map_err(|_| "branch target out of rel32 range")?;
    out.extend_from_slice(&rel32.to_le_bytes());
    Ok(out)
}

/// Recomputes a RIP-relative displacement for the new address.
fn refix_rip(bytes: &[u8], insn: &Insn, orig_addr: u64, emit_addr: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let (off, len) = insn.disp.expect("RIP-relative without displacement");
    debug_assert_eq!(len, 4);
    let disp = i32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as i64;
    let target = orig_addr
        .wrapping_add(insn.len as u64)
        .wrapping_add(disp as u64);
    let new_disp = target.wrapping_sub(emit_addr + insn.len as u64) as i64;
    // The relocation distance always fits: code and rewrite page sit in
    // the low 4 GiB of the address space.
    out[off..off + 4].copy_from_slice(&(new_disp as i32).to_le_bytes());
    out
}

/// Registers referenced by an instruction's ModRM/SIB (numbers 0–15).
fn referenced_regs(bytes: &[u8], insn: &Insn) -> Vec<u8> {
    let mut regs = Vec::new();
    let rex = rex_byte(bytes, insn);
    let (r, x, b) = (
        rex.map_or(0, |v| (v >> 2) & 1),
        rex.map_or(0, |v| (v >> 1) & 1),
        rex.map_or(0, |v| v & 1),
    );
    if let Some(m) = insn.modrm_off {
        let modrm = bytes[m];
        regs.push(((modrm >> 3) & 7) | (r << 3));
        let mode = modrm >> 6;
        let rm = modrm & 7;
        if mode == 0b11 || rm != 0b100 {
            regs.push(rm | (b << 3));
        }
    }
    if let Some(so) = insn.sib_off {
        let sib = bytes[so];
        regs.push(((sib >> 3) & 7) | (x << 3)); // Index.
        regs.push((sib & 7) | (b << 3)); // Base.
    }
    regs
}

fn rex_byte(bytes: &[u8], insn: &Insn) -> Option<u8> {
    (insn.opcode_off > 0)
        .then(|| bytes[insn.opcode_off - 1])
        .filter(|b| (0x40..=0x4f).contains(b))
}

fn pick_scratch(used: &[u8]) -> u8 {
    // Low registers only (no REX.B games): rax, rcx, rdx, rbx.
    for cand in [0u8, 1, 2, 3] {
        if !used.contains(&cand) {
            return cand;
        }
    }
    unreachable!("an instruction references at most 3 of the 4 candidates")
}

fn push_reg(s: &mut Vec<u8>, reg: u8) {
    debug_assert!(reg < 8);
    s.push(0x50 + reg);
}

fn pop_reg(s: &mut Vec<u8>, reg: u8) {
    debug_assert!(reg < 8);
    s.push(0x58 + reg);
}

/// `mov scratch, src` (64-bit, src may be r8–r15).
fn mov_reg64(s: &mut Vec<u8>, dst: u8, src: u8) {
    let rex = 0x48 | ((src >= 8) as u8) << 2 | ((dst >= 8) as u8);
    s.push(rex);
    s.push(0x89);
    s.push(0xc0 | ((src & 7) << 3) | (dst & 7));
}

/// `mov r32, imm32` via C7 /0 (no REX: zero-extends, which matches the
/// splitting math used below) or REX.W for sign-extended 64-bit.
fn mov_imm(s: &mut Vec<u8>, dst: u8, imm: i32, wide: bool) {
    debug_assert!(dst < 8);
    if wide {
        s.push(0x48);
    }
    s.push(0xc7);
    s.push(0xc0 | dst);
    s.extend_from_slice(&imm.to_le_bytes());
}

/// `add r, imm32` (81 /0), matching operand width.
fn add_imm(s: &mut Vec<u8>, dst: u8, imm: i32, wide: bool) {
    debug_assert!(dst < 8);
    if wide {
        s.push(0x48);
    }
    s.push(0x81);
    s.push(0xc0 | dst);
    s.extend_from_slice(&imm.to_le_bytes());
}

/// Splits `imm` into `(k1, k2)` with `k1 + k2 == imm` (as i64), rotating
/// candidates by `variant`.
fn split_imm(imm: i64, variant: usize) -> Option<(i32, i32)> {
    for i in 0..SPLIT_CANDIDATES.len() {
        let k2 = SPLIT_CANDIDATES[(variant + i) % SPLIT_CANDIDATES.len()] as i64;
        let k1 = imm - k2;
        if let (Ok(a), Ok(b)) = (i32::try_from(k1), i32::try_from(k2)) {
            return Some((a, b));
        }
        // Try the negated candidate for immediates near i32::MAX.
        let k2 = -k2;
        let k1 = imm - k2;
        if let (Ok(a), Ok(b)) = (i32::try_from(k1), i32::try_from(k2)) {
            return Some((a, b));
        }
    }
    None
}

/// Applies a Table 3 transform to the single offending instruction,
/// returning the replacement byte sequence.
fn transform_insn(
    bytes: &[u8],
    insn: &Insn,
    transform: Transform,
    orig_addr: u64,
    emit_addr: u64,
    _occ_off_in_insn: usize,
    variant: usize,
) -> Result<Vec<u8>, RewriteError> {
    let err = |reason: &'static str| RewriteError::Unrewritable {
        offset: orig_addr as usize,
        reason,
    };
    match transform {
        Transform::BranchRefixup => refix_branch(bytes, insn, orig_addr, emit_addr).map_err(err),
        Transform::RipRefixup => Ok(refix_rip(bytes, insn, orig_addr, emit_addr)),
        Transform::ScratchRm => {
            // ModRM == 0x0F: mod=00, reg=rcx, rm=[rdi]. Route the memory
            // operand through a scratch register: push s; mov s, rdi;
            // <insn with rm=s>; pop s.
            // Guard: CMPXCHG8B/16B (0F C7 /1) uses rax/rbx/rcx/rdx
            // implicitly — no safe scratch exists.
            if insn.opcode_len == 2 && bytes[insn.opcode_off + 1] == 0xc7 {
                return Err(err("CMPXCHG8B/16B has no free scratch register"));
            }
            let m = insn.modrm_off.ok_or_else(|| err("no ModRM"))?;
            let modrm = bytes[m];
            if modrm != 0x0f {
                return Err(err("ModRM overlap is not the 0x0F form"));
            }
            let rex = rex_byte(bytes, insn);
            let base = 7 | rex.map_or(0, |v| (v & 1) << 3); // rdi or r15.
            let scratch = pick_scratch(&referenced_regs(bytes, insn));
            let mut s = Vec::new();
            push_reg(&mut s, scratch);
            mov_reg64(&mut s, scratch, base);
            // Re-encode: clear REX.B (scratch is a low register), set
            // rm = scratch.
            let mut body = bytes.to_vec();
            if let Some(ro) = (insn.opcode_off > 0
                && (0x40..=0x4f).contains(&bytes[insn.opcode_off - 1]))
            .then(|| insn.opcode_off - 1)
            {
                body[ro] &= !0x01;
            }
            body[m] = (modrm & 0xf8) | scratch;
            s.extend_from_slice(&body);
            pop_reg(&mut s, scratch);
            Ok(s)
        }
        Transform::ScratchSibBase => {
            // SIB == 0x0F: scale=1, index=rcx, base=rdi. Same scratch
            // substitution on the SIB base.
            let so = insn.sib_off.ok_or_else(|| err("no SIB"))?;
            let sib = bytes[so];
            if sib != 0x0f {
                return Err(err("SIB overlap is not the 0x0F form"));
            }
            let rex = rex_byte(bytes, insn);
            let base = 7 | rex.map_or(0, |v| (v & 1) << 3);
            let scratch = pick_scratch(&referenced_regs(bytes, insn));
            let mut s = Vec::new();
            push_reg(&mut s, scratch);
            mov_reg64(&mut s, scratch, base);
            let mut body = bytes.to_vec();
            if let Some(ro) = (insn.opcode_off > 0
                && (0x40..=0x4f).contains(&bytes[insn.opcode_off - 1]))
            .then(|| insn.opcode_off - 1)
            {
                body[ro] &= !0x01;
            }
            body[so] = (sib & 0xf8) | scratch;
            s.extend_from_slice(&body);
            pop_reg(&mut s, scratch);
            Ok(s)
        }
        Transform::DispSplit => {
            // Precompute part of the displacement with LEA through a
            // scratch register (Table 3 row 4, made register-neutral).
            let m = insn.modrm_off.ok_or_else(|| err("no ModRM"))?;
            let modrm = bytes[m];
            let mode = modrm >> 6;
            let (doff, dlen) = insn.disp.ok_or_else(|| err("no displacement"))?;
            if dlen != 4 || mode != 0b10 {
                return Err(err("only disp32 register-base forms supported"));
            }
            if modrm & 0x07 == 0b100 {
                return Err(err("disp split with SIB not supported"));
            }
            let rex = rex_byte(bytes, insn);
            let base = (modrm & 7) | rex.map_or(0, |v| (v & 1) << 3);
            let disp = i32::from_le_bytes(bytes[doff..doff + 4].try_into().unwrap());
            let (k1, k2) = split_imm(disp as i64, variant)
                .ok_or_else(|| err("displacement not splittable"))?;
            let scratch = pick_scratch(&referenced_regs(bytes, insn));
            let mut s = Vec::new();
            push_reg(&mut s, scratch);
            // lea scratch, [base + k1] : REX.W 8D /r mod=10.
            let rex_lea = 0x48 | ((base >= 8) as u8);
            s.push(rex_lea);
            s.push(0x8d);
            s.push(0x80 | (scratch << 3) | (base & 7));
            s.extend_from_slice(&k1.to_le_bytes());
            // Original instruction with base=scratch, disp=k2.
            let mut body = bytes.to_vec();
            if let Some(ro) = (insn.opcode_off > 0
                && (0x40..=0x4f).contains(&bytes[insn.opcode_off - 1]))
            .then(|| insn.opcode_off - 1)
            {
                body[ro] &= !0x01;
            }
            body[m] = (modrm & 0xf8) | scratch;
            body[doff..doff + 4].copy_from_slice(&k2.to_le_bytes());
            s.extend_from_slice(&body);
            pop_reg(&mut s, scratch);
            Ok(s)
        }
        Transform::ImmSplit => imm_split(bytes, insn, variant, orig_addr),
        Transform::NopSeparated => unreachable!("handled by caller"),
    }
}

/// ALU opcode for `<op> r/m, r` keyed by the 81-group digit.
fn alu_rm_r_opcode(digit: u8) -> u8 {
    // add or adc sbb and sub xor cmp.
    [0x01, 0x09, 0x11, 0x19, 0x21, 0x29, 0x31, 0x39][digit as usize]
}

fn imm_split(
    bytes: &[u8],
    insn: &Insn,
    variant: usize,
    orig_addr: u64,
) -> Result<Vec<u8>, RewriteError> {
    let err = |reason: &'static str| RewriteError::Unrewritable {
        offset: orig_addr as usize,
        reason,
    };
    let (ioff, ilen) = insn.imm.ok_or_else(|| err("no immediate"))?;
    let rex = rex_byte(bytes, insn);
    let wide = rex.is_some_and(|r| r & 0x08 != 0);
    let op = bytes[insn.opcode_off];
    match (insn.opcode_len, op) {
        // MOV r, imm32/imm64 (B8+r) and MOV r/m, imm32 (C7 /0, mod=11):
        // mov dst, k1; lea dst, [dst + k2] — LEA preserves flags, so the
        // pair is flag-equivalent to the original MOV.
        (1, 0xb8..=0xbf) | (1, 0xc7) => {
            let dst = if op == 0xc7 {
                let m = insn.modrm_off.ok_or_else(|| err("no ModRM"))?;
                if bytes[m] >> 6 != 0b11 {
                    return Err(err("MOV imm to memory not supported"));
                }
                (bytes[m] & 7) | rex.map_or(0, |v| (v & 1) << 3)
            } else {
                (op - 0xb8) | rex.map_or(0, |v| (v & 1) << 3)
            };
            if dst >= 8 {
                return Err(err("MOV split to r8-r15 not supported"));
            }
            let imm: i64 = match ilen {
                4 => {
                    let v = i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap());
                    if wide {
                        v as i64
                    } else {
                        // 32-bit mov zero-extends; keep 32-bit math by
                        // emitting 32-bit mov + 32-bit lea below.
                        v as i64
                    }
                }
                8 => i64::from_le_bytes(bytes[ioff..ioff + 8].try_into().unwrap()),
                _ => return Err(err("unsupported MOV immediate width")),
            };
            let mut s = Vec::new();
            if ilen == 8 {
                // movabs dst, imm - k2 (full 64-bit residue), then
                // lea dst, [dst + k2]. Only k2 must fit a displacement;
                // the snippet rescan (with constant rotation across
                // nudge variants) ensures the residue is pattern-free.
                let k2 = SPLIT_CANDIDATES[variant % SPLIT_CANDIDATES.len()];
                let k1 = imm.wrapping_sub(k2 as i64);
                s.push(0x48);
                s.push(0xb8 + dst);
                s.extend_from_slice(&k1.to_le_bytes());
                s.push(0x48);
                s.push(0x8d);
                s.push(0x80 | (dst << 3) | dst);
                s.extend_from_slice(&k2.to_le_bytes());
            } else {
                let (k1, k2) = split_imm(imm, variant).ok_or_else(|| err("unsplittable"))?;
                mov_imm(&mut s, dst, k1, wide);
                if wide {
                    s.push(0x48);
                } // 32-bit lea keeps the zero-extension semantics.
                s.push(0x8d);
                s.push(0x80 | (dst << 3) | dst);
                s.extend_from_slice(&k2.to_le_bytes());
            }
            Ok(s)
        }
        // Group-81 ALU r/m, imm32 (mod=11 register forms) and the
        // accumulator short forms: build the immediate in a scratch
        // register (mov+add), then apply the register-register ALU form
        // twice-equivalent: `<op> r/m, scratch`.
        (1, 0x81)
        | (1, 0x05)
        | (1, 0x0d)
        | (1, 0x15)
        | (1, 0x1d)
        | (1, 0x25)
        | (1, 0x2d)
        | (1, 0x35)
        | (1, 0x3d)
        | (1, 0xa9)
        | (1, 0xf7) => {
            let (digit, dst) = if op == 0x81 || op == 0xf7 {
                let m = insn.modrm_off.ok_or_else(|| err("no ModRM"))?;
                if bytes[m] >> 6 != 0b11 {
                    return Err(err("ALU imm to memory not supported"));
                }
                let digit = (bytes[m] >> 3) & 7;
                if op == 0xf7 && digit > 1 {
                    return Err(err("F7 non-TEST form has no immediate"));
                }
                (
                    (if op == 0xf7 { 8 } else { digit }),
                    (bytes[m] & 7) | rex.map_or(0, |v| (v & 1) << 3),
                )
            } else if op == 0xa9 {
                (8, 0) // TEST eax.
            } else {
                ((op >> 3) & 7, 0) // Accumulator forms encode the digit.
            };
            if dst >= 8 {
                return Err(err("ALU split on r8-r15 not supported"));
            }
            if ilen != 4 {
                return Err(err("unsupported ALU immediate width"));
            }
            let imm = i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap());
            let (k1, k2) = split_imm(imm as i64, variant).ok_or_else(|| err("unsplittable"))?;
            let scratch = pick_scratch(&[dst]);
            let mut s = Vec::new();
            push_reg(&mut s, scratch);
            mov_imm(&mut s, scratch, k1, wide);
            add_imm(&mut s, scratch, k2, wide);
            // <op> dst, scratch.
            if wide {
                s.push(0x48);
            }
            if digit == 8 {
                s.push(0x85); // TEST r/m, r.
            } else {
                s.push(alu_rm_r_opcode(digit));
            }
            s.push(0xc0 | (scratch << 3) | dst);
            pop_reg(&mut s, scratch);
            Ok(s)
        }
        // IMUL r, r/m, imm32 (69 /r): build the factor in a scratch
        // register, multiply via the two-operand form (0F AF), move into
        // the destination.
        (1, 0x69) => {
            let m = insn.modrm_off.ok_or_else(|| err("no ModRM"))?;
            let modrm = bytes[m];
            let dst = ((modrm >> 3) & 7) | rex.map_or(0, |v| ((v >> 2) & 1) << 3);
            if dst >= 8 {
                return Err(err("IMUL split to r8-r15 not supported"));
            }
            if ilen != 4 {
                return Err(err("unsupported IMUL immediate width"));
            }
            let imm = i32::from_le_bytes(bytes[ioff..ioff + 4].try_into().unwrap());
            let (k1, k2) = split_imm(imm as i64, variant).ok_or_else(|| err("unsplittable"))?;
            let scratch = pick_scratch(&referenced_regs(bytes, insn));
            let mut s = Vec::new();
            push_reg(&mut s, scratch);
            mov_imm(&mut s, scratch, k1, wide);
            add_imm(&mut s, scratch, k2, wide);
            // imul scratch, r/m : REX(.W|.B as original) 0F AF /r with
            // reg=scratch, rm copied from the original (including memory
            // forms with SIB/disp).
            let mut rex_new = 0x40 | (wide as u8) << 3 | rex.map_or(0, |v| v & 0x03); // Keep X and B for the rm.
            if scratch >= 8 {
                rex_new |= 0x04;
            }
            if rex_new != 0x40 || rex.is_some() {
                s.push(rex_new);
            }
            s.push(0x0f);
            s.push(0xaf);
            // ModRM with reg=scratch, rest as original.
            s.push((modrm & 0xc7) | ((scratch & 7) << 3));
            // Copy SIB + displacement verbatim.
            if let Some(so) = insn.sib_off {
                s.push(bytes[so]);
            }
            if let Some((doff, dlen)) = insn.disp {
                s.extend_from_slice(&bytes[doff..doff + dlen]);
            }
            // mov dst, scratch (width-matched).
            if wide {
                s.push(0x48);
            }
            s.push(0x89);
            s.push(0xc0 | ((scratch & 7) << 3) | dst);
            pop_reg(&mut s, scratch);
            Ok(s)
        }
        _ => Err(err("immediate form without a split strategy")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE_BASE: u64 = 0x40_0000;
    const PAGE_BASE: u64 = 0x1000;

    fn rewrite(code: &[u8]) -> RewriteOutput {
        let out = rewrite_code(code, CODE_BASE, PAGE_BASE).unwrap();
        assert!(
            find_occurrences(&out.code).is_empty(),
            "patched code still contains the pattern"
        );
        assert!(
            find_occurrences(&out.rewrite_page).is_empty(),
            "rewrite page contains the pattern"
        );
        assert_eq!(out.code.len(), code.len(), "code size must not change");
        out
    }

    #[test]
    fn c1_literal_vmfunc_becomes_nops() {
        let code = [0x90, 0x0f, 0x01, 0xd4, 0xc3];
        let out = rewrite(&code);
        assert_eq!(out.code, [0x90, 0x90, 0x90, 0x90, 0xc3]);
        assert_eq!(out.in_place, 1);
        assert_eq!(out.stubs, 0);
    }

    #[test]
    fn c2_spanning_is_relocated() {
        // mov eax, 0x0F000000; add esp, edx; ret; plus padding so the
        // region has room.
        let code = [0xb8, 0x00, 0x00, 0x00, 0x0f, 0x01, 0xd4, 0xc3, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
        // The site starts with a JMP rel32 into the rewrite page.
        assert_eq!(out.code[0], 0xe9);
        // The snippet contains the original first opcode and a NOP
        // separator before the jump back.
        assert!(out.rewrite_page.contains(&0xb8));
    }

    #[test]
    fn c3_immediate_alu_split() {
        // add eax, 0x00D4010F (pattern in imm32) then ret + pad.
        let code = [0x05, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
    }

    #[test]
    fn c3_imul_immediate() {
        // imul ecx, edi, 0x00D4010F : 69 CF 0F 01 D4 00.
        let code = [0x69, 0xcf, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
    }

    #[test]
    fn c3_modrm_scratch() {
        // imul ecx, [rdi], 0x0000D401 : 69 0F 01 D4 00 00 (ModRM=0x0F).
        let code = [0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
        // Snippet routes through a scratch register: starts with PUSH.
        assert!(out.rewrite_page.iter().any(|&b| (0x50..=0x53).contains(&b)));
    }

    #[test]
    fn c3_sib_scratch() {
        // lea ebx, [rdi + rcx + 0xD401] : 8D 9C 0F 01 D4 00 00.
        let code = [0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
    }

    #[test]
    fn c3_displacement_split() {
        // add ebx, [rax + 0x00D4010F] : 03 98 0F 01 D4 00.
        let code = [0x03, 0x98, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
    }

    #[test]
    fn c3_jump_like_immediate() {
        // call rel32 whose offset bytes contain the pattern:
        // E8 0F 01 D4 00 targets +0xD4010F... relocation refixes it.
        let code = [0xe8, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90];
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
        // The relocated call must target the same absolute address:
        // original target = base + 5 + 0x00D4010F.
        let target = CODE_BASE + 5 + 0x00d4_010f;
        // Find the call in the snippet (first byte E8 after any NOP
        // nudges).
        let pos = out.rewrite_page.iter().position(|&b| b == 0xe8).unwrap();
        let rel = i32::from_le_bytes(out.rewrite_page[pos + 1..pos + 5].try_into().unwrap()) as i64;
        let call_addr = PAGE_BASE + pos as u64;
        assert_eq!(call_addr.wrapping_add(5).wrapping_add(rel as u64), target);
    }

    #[test]
    fn clean_code_is_untouched() {
        let code = [0x55, 0x48, 0x89, 0xe5, 0xc9, 0xc3];
        let out = rewrite_code(&code, CODE_BASE, PAGE_BASE).unwrap();
        assert_eq!(out.code, code);
        assert!(out.rewrite_page.is_empty());
    }

    #[test]
    fn mov_imm64_with_pattern() {
        // movabs rax, 0x1122_D401_0F33_4455 (LE bytes contain 0F 01 D4).
        let mut code = vec![0x48, 0xb8];
        code.extend_from_slice(&0x1122_d401_0f33_4455u64.to_le_bytes());
        code.push(0xc3);
        let out = rewrite(&code);
        assert_eq!(out.stubs, 1);
    }

    #[test]
    fn multiple_occurrences_all_fixed() {
        let mut code = Vec::new();
        code.extend_from_slice(&[0x0f, 0x01, 0xd4]); // C1.
        code.extend_from_slice(&[0x05, 0x0f, 0x01, 0xd4, 0x00]); // C3 imm.
        code.extend_from_slice(&[0xb8, 0x00, 0x00, 0x00, 0x0f]); // C2 lead.
        code.extend_from_slice(&[0x01, 0xd4]); // add esp, edx.
        code.push(0xc3);
        code.resize(code.len() + 4, 0x90);
        let out = rewrite(&code);
        assert_eq!(out.in_place, 1);
        assert!(out.stubs >= 2);
    }
}
