//! Scanning executable bytes for inadvertent `VMFUNC` occurrences.
//!
//! §5.2 classifies every occurrence of `0F 01 D4` into three conditions:
//!
//! * **C1** — the instruction *is* `VMFUNC`;
//! * **C2** — the pattern spans two or more instructions;
//! * **C3** — the pattern lies inside one longer instruction, in its ModRM,
//!   SIB, displacement, or immediate field.
//!
//! Classification requires instruction boundaries, so the scanner decodes
//! linearly from the start of the region (resynchronizing byte-by-byte on
//! undecodable input, as the Subkernel's loader would from a symbol
//! boundary).

use crate::{
    insn::{decode, is_vmfunc, Field, Insn},
    VMFUNC_BYTES,
};

/// How an occurrence overlaps instruction boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapKind {
    /// C1: a literal `VMFUNC` instruction.
    Vmfunc,
    /// C2: the pattern spans two or more instructions.
    Spanning,
    /// C3: the pattern is inside one longer instruction; `field` is the
    /// encoding field holding the leading `0x0F` byte (Table 3's "overlap
    /// case" column).
    Within(Field),
}

/// One occurrence of the byte pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Byte offset of the `0x0F`.
    pub offset: usize,
    /// Offset of the first instruction whose bytes overlap the pattern.
    pub insn_start: usize,
    /// End offset (exclusive) of the last instruction overlapping the
    /// pattern.
    pub span_end: usize,
    /// Classification.
    pub kind: OverlapKind,
}

/// Returns the offsets of every `0F 01 D4` in `code`.
pub fn find_occurrences(code: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    if code.len() < 3 {
        return out;
    }
    for i in 0..=code.len() - 3 {
        if code[i..i + 3] == VMFUNC_BYTES {
            out.push(i);
        }
    }
    out
}

/// Decodes `code` linearly and returns the boundary offsets of each
/// decoded instruction as `(start, insn)` pairs. Undecodable bytes are
/// skipped one at a time (treated as 1-byte opaque instructions).
pub fn instruction_boundaries(code: &[u8]) -> Vec<(usize, Option<Insn>)> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < code.len() {
        match decode(&code[at..]) {
            Ok(i) => {
                let len = i.len;
                out.push((at, Some(i)));
                at += len;
            }
            Err(_) => {
                out.push((at, None));
                at += 1;
            }
        }
    }
    out
}

/// Classifies every occurrence of the pattern in `code`.
pub fn classify(code: &[u8]) -> Vec<Occurrence> {
    let offsets = find_occurrences(code);
    if offsets.is_empty() {
        return Vec::new();
    }
    let bounds = instruction_boundaries(code);
    let mut out = Vec::new();
    for off in offsets {
        // The instruction containing the first pattern byte.
        let idx = match bounds.binary_search_by(|(s, _)| s.cmp(&off)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (start, insn) = &bounds[idx];
        let insn_len = insn.as_ref().map_or(1, |i| i.len);
        let end = start + insn_len;
        let kind = if off + 3 <= end {
            // Fully inside one instruction.
            match insn {
                Some(i) if is_vmfunc(&code[*start..], i) && off == *start + i.opcode_off => {
                    OverlapKind::Vmfunc
                }
                Some(i) => OverlapKind::Within(i.field_at(off - start)),
                None => OverlapKind::Spanning, // Opaque byte: treat as C2.
            }
        } else {
            OverlapKind::Spanning
        };
        // Find the end of the last instruction overlapping the pattern.
        let mut span_end = end;
        let mut j = idx;
        while span_end < off + 3 && j + 1 < bounds.len() {
            j += 1;
            let (s, i) = &bounds[j];
            span_end = s + i.as_ref().map_or(1, |i| i.len);
        }
        out.push(Occurrence {
            offset: off,
            insn_start: *start,
            span_end: span_end.max(off + 3).min(code.len()),
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_raw_occurrences() {
        let code = [0x90, 0x0f, 0x01, 0xd4, 0x90, 0x0f, 0x01, 0xd4];
        assert_eq!(find_occurrences(&code), vec![1, 5]);
        assert_eq!(find_occurrences(&[0x0f, 0x01]), Vec::<usize>::new());
    }

    #[test]
    fn classifies_literal_vmfunc_as_c1() {
        let code = [0x90, 0x0f, 0x01, 0xd4, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Vmfunc);
        assert_eq!(occ[0].insn_start, 1);
        assert_eq!(occ[0].span_end, 4);
    }

    #[test]
    fn classifies_immediate_overlap_as_c3() {
        // add eax, 0x00D4010F: 05 0F 01 D4 00 — pattern at offset 1,
        // entirely inside the imm32.
        let code = [0x05, 0x0f, 0x01, 0xd4, 0x00, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Within(Field::Immediate));
    }

    #[test]
    fn classifies_modrm_overlap_as_c3() {
        // imul ecx, [rdi], 0x0000D401: 69 0F 01 D4 00 00 — ModRM = 0x0F.
        let code = [0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Within(Field::ModRm));
    }

    #[test]
    fn classifies_sib_overlap_as_c3() {
        // lea ebx, [rdi + rcx*1 + 0x0000D401]:
        // 8D 9C 0F 01 D4 00 00 — SIB = 0x0F at offset 2.
        let code = [0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Within(Field::Sib));
    }

    #[test]
    fn classifies_displacement_overlap_as_c3() {
        // add ebx, [rax + 0x00D4010F]: 03 98 0F 01 D4 00 — disp32 holds
        // the pattern.
        let code = [0x03, 0x98, 0x0f, 0x01, 0xd4, 0x00, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Within(Field::Displacement));
    }

    #[test]
    fn classifies_spanning_as_c2() {
        // mov eax, 0x0F ends with 0F; next insn starts 01 D4 (add esp? 01
        // D4 = add esp, edx mod11). Pattern spans the boundary.
        // B8 0F 00 00 00 ends at offset 5... place 0F as last imm byte:
        // mov eax, 0x0F000000 : B8 00 00 00 0F, then add esp, edx: 01 D4.
        let code = [0xb8, 0x00, 0x00, 0x00, 0x0f, 0x01, 0xd4, 0xc3];
        let occ = classify(&code);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].kind, OverlapKind::Spanning);
        assert_eq!(occ[0].insn_start, 0);
        assert_eq!(occ[0].span_end, 7);
    }

    #[test]
    fn no_false_positives_on_clean_code() {
        // A realistic clean snippet.
        let code = [
            0x55, // push rbp
            0x48, 0x89, 0xe5, // mov rbp, rsp
            0x48, 0x83, 0xec, 0x10, // sub rsp, 0x10
            0xb8, 0x2a, 0x00, 0x00, 0x00, // mov eax, 42
            0xc9, // leave
            0xc3, // ret
        ];
        assert!(classify(&code).is_empty());
    }

    #[test]
    fn boundaries_resync_on_junk() {
        let code = [0x06, 0x90, 0xc3]; // Invalid, nop, ret.
        let b = instruction_boundaries(&code);
        assert_eq!(b.len(), 3);
        assert!(b[0].1.is_none());
        assert_eq!(b[1].0, 1);
    }

    #[test]
    fn multiple_occurrences_all_classified() {
        let mut code = Vec::new();
        code.extend_from_slice(&[0x0f, 0x01, 0xd4]); // C1.
        code.extend_from_slice(&[0x05, 0x0f, 0x01, 0xd4, 0x00]); // C3 imm.
        code.push(0xc3);
        let occ = classify(&code);
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].kind, OverlapKind::Vmfunc);
        assert_eq!(occ[1].kind, OverlapKind::Within(Field::Immediate));
    }
}
