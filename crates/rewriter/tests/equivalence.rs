//! End-to-end rewriting correctness: rewritten code must be pattern-free
//! AND functionally equivalent to the original under the interpreter.

use proptest::prelude::*;
use sb_rewriter::{
    corpus,
    interp::{assert_equivalent, run, Program, State},
    rewrite::rewrite_code,
    scan::find_occurrences,
};

const CODE_BASE: u64 = 0x40_0000;
const PAGE_BASE: u64 = 0x1000;

fn rewrite_checked(code: &[u8]) -> sb_rewriter::rewrite::RewriteOutput {
    let out = rewrite_code(code, CODE_BASE, PAGE_BASE).unwrap();
    assert!(find_occurrences(&out.code).is_empty());
    assert!(find_occurrences(&out.rewrite_page).is_empty());
    out
}

fn equivalent(code: &[u8], setup: impl Fn(&mut State), flags: bool) {
    let out = rewrite_checked(code);
    assert_equivalent(
        code,
        &out.code,
        &out.rewrite_page,
        CODE_BASE,
        PAGE_BASE,
        setup,
        flags,
    );
}

#[test]
fn alu_immediate_split_is_equivalent() {
    // add eax, 0x00D4010F; ret (+pad).
    let code = [0x05, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90];
    equivalent(&code, |s| s.regs[0] = 123456789, true);
    equivalent(&code, |s| s.regs[0] = u64::MAX, true);
}

#[test]
fn xor_and_sub_immediate_splits_are_equivalent() {
    // xor eax, 0x00D4010F (35 imm32).
    let code = [0x35, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90, 0x90];
    equivalent(&code, |s| s.regs[0] = 0xdeadbeef, true);
    // sub ecx, 0x00D4010F (81 /5).
    let code = [0x81, 0xe9, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
    equivalent(&code, |s| s.regs[1] = 0x1_0000_0000 - 5, true);
}

#[test]
fn cmp_immediate_preserves_flags() {
    // cmp edx, 0x00D4010F (81 /7) — the replacement must leave the same
    // ZF/SF because a branch may follow.
    let code = [0x81, 0xfa, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
    equivalent(&code, |s| s.regs[2] = 0x00d4_010f, true);
    equivalent(&code, |s| s.regs[2] = 0, true);
    equivalent(&code, |s| s.regs[2] = 0xffff_ffff, true);
}

#[test]
fn imul_immediate_split_is_equivalent() {
    // imul ecx, edi, 0x00D4010F.
    let code = [0x69, 0xcf, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
    equivalent(&code, |s| s.regs[7] = 3, false);
    equivalent(&code, |s| s.regs[7] = 0xffff_fff1, false);
    // Destination == source register: imul edi, edi, imm.
    let code = [0x69, 0xff, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
    equivalent(&code, |s| s.regs[7] = 7, false);
}

#[test]
fn imul_wide_is_equivalent() {
    // imul rcx, rdi, 0x00D4010F (REX.W).
    let code = [0x48, 0x69, 0xcf, 0x0f, 0x01, 0xd4, 0x00, 0xc3];
    equivalent(&code, |s| s.regs[7] = 0x1_0000_0001, false);
}

#[test]
fn modrm_scratch_is_equivalent() {
    // imul ecx, [rdi], 0x0000D401 — ModRM = 0x0F.
    let code = [0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3, 0x90];
    equivalent(
        &code,
        |s| {
            s.regs[7] = 0x9000;
            for (i, b) in 11u32.to_le_bytes().iter().enumerate() {
                s.mem.insert(0x9000 + i as u64, *b);
            }
        },
        false,
    );
}

#[test]
fn sib_scratch_is_equivalent() {
    // lea ebx, [rdi + rcx + 0xD401] : 8D 9C 0F 01 D4 00 00 (SIB=0x0F).
    let code = [0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3];
    equivalent(
        &code,
        |s| {
            s.regs[7] = 0x1234;
            s.regs[1] = 0x10;
        },
        true,
    );
}

#[test]
fn displacement_split_is_equivalent() {
    // add ebx, [rax + 0x00D4010F].
    let code = [0x03, 0x98, 0x0f, 0x01, 0xd4, 0x00, 0xc3, 0x90];
    equivalent(
        &code,
        |s| {
            s.regs[0] = 0x100;
            s.regs[3] = 5;
            let addr = 0x100 + 0x00d4_010f;
            for (i, b) in 21u32.to_le_bytes().iter().enumerate() {
                s.mem.insert(addr + i as u64, *b);
            }
        },
        true,
    );
}

#[test]
fn spanning_relocation_is_equivalent() {
    // mov eax, 0x0F000000; add esp, edx — pattern spans them. Use ebx
    // instead of esp to keep the stack sane: add ebx, edx = 01 D3...
    // That changes the bytes; keep add esp, edx (01 D4) but with edx = 0
    // so rsp is unchanged.
    let code = [0xb8, 0x00, 0x00, 0x00, 0x0f, 0x01, 0xd4, 0xc3, 0x90];
    equivalent(&code, |s| s.regs[2] = 0, true);
}

#[test]
fn literal_vmfunc_no_longer_executes() {
    let code = [0x0f, 0x01, 0xd4, 0xc3];
    let out = rewrite_checked(&code);
    let mut st = State::new();
    run(
        Program {
            code: &out.code,
            code_base: CODE_BASE,
            page: &out.rewrite_page,
            page_base: PAGE_BASE,
        },
        &mut st,
        1000,
    )
    .unwrap();
    assert!(st.vmfunc_log.is_empty(), "VMFUNC must be scrubbed");
}

#[test]
fn mov_imm64_split_is_equivalent() {
    let mut code = vec![0x48, 0xb8];
    code.extend_from_slice(&0x1122_d401_0f33_4455u64.to_le_bytes());
    code.push(0xc3);
    code.extend_from_slice(&[0x90; 4]);
    equivalent(&code, |_| {}, true);
}

#[test]
fn branch_with_pattern_offset_reaches_same_target() {
    // jmp rel32 = 0x00D4010F would land outside our buffer; instead use a
    // jz whose rel32 contains the pattern partially... construct a jnz
    // backwards: place target code, then the branch. Simplest verified
    // case: call-style handled in unit tests; here check a jmp rel32 with
    // pattern bytes that stays in-buffer is impossible (target would be
    // ~13 MiB away), so assert the rewriter still produces pattern-free
    // code and the *static* target math is preserved (done in unit
    // tests). Run the C2 path with a branch in the relocated region:
    // cmp eax, 0x0F; jz +2; nop; nop; ret — the 0x0F ends the cmp imm and
    // 01 D4 does not follow, so craft: mov ebx, 0x0F000000 (imm ends 0F)
    // then add esp,edx (01 D4) spanning, followed by jz.
    let code = [
        0xbb, 0x00, 0x00, 0x00, 0x0f, // mov ebx, 0x0F000000
        0x01, 0xd4, // add esp, edx (edx=0)
        0x31, 0xc0, // xor eax, eax (sets ZF)
        0x74, 0x02, // jz +2
        0xb8, 0x01, // (skipped, partial mov…)
        0x90, 0x90, // landing pad
        0xc3, 0x90, 0x90,
    ];
    equivalent(&code, |s| s.regs[2] = 0, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any synthetic corpus rewrites to pattern-free code of unchanged
    /// size.
    #[test]
    fn corpus_rewrites_clean(seed in 1u64..5000, inject in 0u64..60) {
        let code = corpus::generate(seed, 2048, inject);
        let out = rewrite_code(&code, CODE_BASE, PAGE_BASE).unwrap();
        prop_assert!(find_occurrences(&out.code).is_empty());
        prop_assert!(find_occurrences(&out.rewrite_page).is_empty());
        prop_assert_eq!(out.code.len(), code.len());
    }

    /// Rewritten synthetic programs compute the same result.
    #[test]
    fn corpus_rewrites_equivalent(seed in 1u64..2000, inject in 0u64..60) {
        let code = corpus::generate(seed, 512, inject);
        let out = rewrite_code(&code, CODE_BASE, PAGE_BASE).unwrap();
        let setup = |s: &mut State| {
            s.regs[0] = 0x1111;
            s.regs[1] = 0x2222;
            s.regs[2] = 0x3333;
            s.regs[3] = 0x4444;
        };
        let mut a = State::new();
        setup(&mut a);
        run(
            Program {
                code: &code,
                code_base: CODE_BASE,
                page: &[],
                page_base: PAGE_BASE,
            },
            &mut a,
            100_000,
        )
        .unwrap();
        let mut b = State::new();
        setup(&mut b);
        run(
            Program {
                code: &out.code,
                code_base: CODE_BASE,
                page: &out.rewrite_page,
                page_base: PAGE_BASE,
            },
            &mut b,
            100_000,
        )
        .unwrap();
        prop_assert_eq!(a.regs, b.regs);
        prop_assert_eq!(a.vmfunc_log.len(), b.vmfunc_log.len());
    }
}
