//! The rewriter against real compiler output: decode coverage and scan
//! behaviour on actual ELF `.text` sections.

use sb_rewriter::{
    elf::exec_sections,
    rewrite::rewrite_code,
    scan::{find_occurrences, instruction_boundaries},
};

fn own_text() -> Vec<u8> {
    let me = std::env::current_exe().unwrap();
    let data = std::fs::read(me).unwrap();
    exec_sections(&data)
        .unwrap()
        .into_iter()
        .find(|s| s.name == ".text")
        .expect("test binary has .text")
        .bytes
}

/// The length decoder walks a real Rust/LLVM `.text` with a low
/// resynchronization rate (opaque bytes are where linear decode loses
/// sync after data-in-text / padding — a disassembler hazard, not a
/// soundness issue for the scanner, which resyncs byte by byte).
#[test]
fn decoder_coverage_on_real_text_is_high() {
    let text = own_text();
    let sample = &text[..text.len().min(512 * 1024)];
    let bounds = instruction_boundaries(sample);
    let opaque = bounds.iter().filter(|(_, i)| i.is_none()).count();
    let rate = opaque as f64 / bounds.len() as f64;
    assert!(
        rate < 0.02,
        "opaque-byte rate {rate:.4} too high over {} decoded items",
        bounds.len()
    );
}

/// A clean real binary round-trips through the rewriter unchanged.
#[test]
fn clean_real_text_is_left_untouched() {
    let text = own_text();
    let sample = &text[..text.len().min(128 * 1024)];
    if !find_occurrences(sample).is_empty() {
        // Astronomically unlikely, but if the compiler emitted the
        // pattern, the rewriter must still produce clean output.
        let out = rewrite_code(sample, 0x40_0000, 0x1000).unwrap();
        assert!(find_occurrences(&out.code).is_empty());
        return;
    }
    let out = rewrite_code(sample, 0x40_0000, 0x1000).unwrap();
    assert_eq!(out.code, sample);
    assert!(out.rewrite_page.is_empty());
}

/// System binaries (if present) scan cleanly — the Table 6 observation.
#[test]
fn system_binaries_scan_clean() {
    let mut scanned = 0;
    let mut occurrences = 0;
    for name in ["/bin/ls", "/bin/cat", "/usr/bin/env", "/bin/sh"] {
        let Ok(data) = std::fs::read(name) else {
            continue;
        };
        let Ok(sections) = exec_sections(&data) else {
            continue;
        };
        for sec in sections {
            scanned += 1;
            occurrences += find_occurrences(&sec.bytes).len();
        }
    }
    if scanned > 0 {
        assert_eq!(
            occurrences, 0,
            "coreutils should carry no inadvertent VMFUNCs (paper: 1 in \
             ~7000 programs)"
        );
    }
}
