//! Rewriter round-trip properties over generated corpora.
//!
//! For any generated code region: rewriting must leave **zero**
//! `0F 01 D4` occurrences in the patched code and the rewrite page, keep
//! the region length unchanged, preserve the instruction boundaries of
//! every untouched instruction, and be idempotent (a second pass finds
//! nothing to do).

use std::collections::HashSet;

use proptest::prelude::*;
use sb_rewriter::{
    corpus,
    rewrite::rewrite_code,
    scan::{find_occurrences, instruction_boundaries},
    VMFUNC_BYTES,
};

const CODE_BASE: u64 = 0x40_0000;
const PAGE_BASE: u64 = 0x1000;

/// Asserts the round-trip invariants; returns the rewritten code.
fn roundtrip(code: &[u8]) -> Vec<u8> {
    let out = rewrite_code(code, CODE_BASE, PAGE_BASE).expect("corpus must be rewritable");
    assert_eq!(out.code.len(), code.len(), "patched region changed length");
    assert!(
        find_occurrences(&out.code).is_empty(),
        "pattern survived in the code"
    );
    assert!(
        find_occurrences(&out.rewrite_page).is_empty(),
        "pattern survived in the rewrite page"
    );

    // Untouched instructions keep their boundaries: linear decode of the
    // patched region must stop at every original boundary whose
    // instruction bytes were not modified by a patch.
    let changed: Vec<bool> = code.iter().zip(&out.code).map(|(a, b)| a != b).collect();
    let new_bounds: HashSet<usize> = instruction_boundaries(&out.code)
        .iter()
        .map(|(s, _)| *s)
        .collect();
    for (start, insn) in instruction_boundaries(code) {
        let len = insn.as_ref().map_or(1, |i| i.len);
        if changed[start..start + len].iter().any(|&c| c) {
            continue;
        }
        assert!(
            new_bounds.contains(&start),
            "untouched instruction at {start:#x} lost its boundary"
        );
    }

    // Idempotence: a clean region rewrites to itself.
    let again = rewrite_code(&out.code, CODE_BASE, PAGE_BASE).expect("second pass");
    assert_eq!(again.code, out.code);
    assert_eq!(again.stubs, 0);
    assert_eq!(again.in_place, 0);
    out.code
}

#[test]
fn literal_vmfunc_is_scrubbed_in_place() {
    // vmfunc; ret (+pad) — the C1 case becomes NOPs.
    let mut code = VMFUNC_BYTES.to_vec();
    code.push(0xc3);
    code.extend_from_slice(&[0x90; 8]);
    let rewritten = roundtrip(&code);
    assert_eq!(&rewritten[..3], &[0x90, 0x90, 0x90]);
}

#[test]
fn dense_injection_corpus_rewrites_clean() {
    let code = corpus::generate(0x7e57_0001, 8 * 1024, 32);
    assert!(
        !find_occurrences(&code).is_empty(),
        "a 32/KiB injection rate must produce occurrences"
    );
    roundtrip(&code);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary seeds, sizes and injection rates: the round-trip
    /// invariants hold on every generated region.
    #[test]
    fn generated_corpora_roundtrip(
        seed in any::<u64>(),
        size in 256usize..2048,
        inject in 0u64..40,
    ) {
        let code = corpus::generate(seed, size, inject);
        roundtrip(&code);
    }

    /// Rewriting never invents the pattern: a clean region stays
    /// byte-identical (no gratuitous patches).
    #[test]
    fn clean_regions_are_untouched(seed in any::<u64>(), size in 256usize..2048) {
        let code = corpus::generate(seed, size, 0);
        if !find_occurrences(&code).is_empty() {
            // A chance occurrence in random bytes: not this test's case.
            return Ok(());
        }
        let out = rewrite_code(&code, CODE_BASE, PAGE_BASE).unwrap();
        prop_assert_eq!(out.code, code);
        prop_assert!(out.rewrite_page.is_empty());
    }
}
