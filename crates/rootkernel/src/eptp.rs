//! The per-process EPTP list, including the >512-entry LRU extension.
//!
//! VT-x stores at most 512 EPT pointers in the VMCS's EPTP list; `VMFUNC`
//! leaf 0 can switch to any of them without an exit. The paper's §10 notes
//! this limit and *plans* an LRU eviction scheme for processes bound to more
//! than 512 servers — we implement that plan: [`EptpList::ensure`] returns
//! the slot of an EPT root, evicting the least-recently-used slot (above a
//! pinned prefix) when the list is full. A `VMFUNC` to a stale slot faults
//! to the Rootkernel, which reinstalls the mapping and retries — slow but
//! correct, exactly like a TLB refill.

use sb_mem::Hpa;

/// Hardware capacity of the VMCS EPTP list.
pub const EPTP_LIST_CAPACITY: usize = 512;

/// An EPTP list with LRU slot management.
#[derive(Debug, Clone, Default)]
pub struct EptpList {
    /// `slots[i]` is the EPT root installed at `VMFUNC` index `i`.
    slots: Vec<Option<Hpa>>,
    /// Recency stamps parallel to `slots`.
    stamps: Vec<u64>,
    /// Slots below this index are pinned (slot 0 = the process's own EPT).
    pinned: usize,
    clock: u64,
    /// Evictions performed because the list was full (each implies a future
    /// fault + reinstall for the evicted target).
    pub evictions: u64,
}

impl EptpList {
    /// An empty list with `pinned` reserved low slots.
    pub fn new(pinned: usize) -> Self {
        assert!(pinned <= EPTP_LIST_CAPACITY);
        EptpList {
            slots: Vec::new(),
            stamps: Vec::new(),
            pinned,
            clock: 0,
            evictions: 0,
        }
    }

    /// Installs `root` at a specific pinned slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not below the pinned prefix.
    pub fn pin(&mut self, slot: usize, root: Hpa) {
        assert!(slot < self.pinned, "slot {slot} is not pinned");
        self.grow_to(slot + 1);
        self.slots[slot] = Some(root);
        self.stamps[slot] = u64::MAX; // Never evicted.
    }

    fn grow_to(&mut self, len: usize) {
        while self.slots.len() < len {
            self.slots.push(None);
            self.stamps.push(0);
        }
    }

    /// Returns the slot currently holding `root`, if any, refreshing its
    /// recency.
    pub fn slot_of(&mut self, root: Hpa) -> Option<usize> {
        self.clock += 1;
        let idx = self.slots.iter().position(|s| *s == Some(root))?;
        if idx >= self.pinned {
            self.stamps[idx] = self.clock;
        }
        Some(idx)
    }

    /// Ensures `root` occupies some slot and returns `(slot, evicted)`.
    ///
    /// `evicted` is the EPT root that was displaced, if the list was full —
    /// the caller (Rootkernel) must treat a later `VMFUNC` to that root as
    /// a fault + reinstall.
    pub fn ensure(&mut self, root: Hpa) -> (usize, Option<Hpa>) {
        if let Some(idx) = self.slot_of(root) {
            return (idx, None);
        }
        self.clock += 1;
        // Free slot?
        if let Some(idx) = self.slots.iter().position(Option::is_none) {
            self.slots[idx] = Some(root);
            self.stamps[idx] = self.clock;
            return (idx, None);
        }
        if self.slots.len() < EPTP_LIST_CAPACITY {
            self.slots.push(Some(root));
            self.stamps.push(self.clock);
            return (self.slots.len() - 1, None);
        }
        // Full: evict the LRU unpinned slot.
        let (idx, _) = self
            .stamps
            .iter()
            .enumerate()
            .skip(self.pinned)
            .min_by_key(|(_, &s)| s)
            .expect("list has unpinned slots");
        let evicted = self.slots[idx];
        self.slots[idx] = Some(root);
        self.stamps[idx] = self.clock;
        self.evictions += 1;
        (idx, evicted)
    }

    /// Forcibly evicts `root` from its slot (fault injection / a hostile
    /// sibling filling the list). Pinned slots are immune. Returns whether
    /// a slot was vacated; a later `VMFUNC` to `root` takes the fault +
    /// reinstall path.
    pub fn evict(&mut self, root: Hpa) -> bool {
        match self.slots.iter().position(|s| *s == Some(root)) {
            Some(idx) if idx >= self.pinned => {
                self.slots[idx] = None;
                self.stamps[idx] = 0;
                self.evictions += 1;
                true
            }
            _ => false,
        }
    }

    /// The EPT root installed at `slot`.
    pub fn get(&self, slot: usize) -> Option<Hpa> {
        self.slots.get(slot).copied().flatten()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_slot_zero_survives_everything() {
        let mut l = EptpList::new(1);
        l.pin(0, Hpa(0x1000));
        for i in 0..2 * EPTP_LIST_CAPACITY as u64 {
            l.ensure(Hpa(0x10_0000 + i * 0x1000));
        }
        assert_eq!(l.get(0), Some(Hpa(0x1000)));
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut l = EptpList::new(1);
        l.pin(0, Hpa(0x1000));
        let (a, _) = l.ensure(Hpa(0x2000));
        let (b, _) = l.ensure(Hpa(0x2000));
        assert_eq!(a, b);
        assert_eq!(l.evictions, 0);
    }

    #[test]
    fn fills_up_to_hardware_capacity_without_eviction() {
        let mut l = EptpList::new(1);
        l.pin(0, Hpa(0x1000));
        for i in 0..(EPTP_LIST_CAPACITY - 1) as u64 {
            let (slot, evicted) = l.ensure(Hpa(0x10_0000 + i * 0x1000));
            assert!(evicted.is_none());
            assert!(slot < EPTP_LIST_CAPACITY);
        }
        assert_eq!(l.len(), EPTP_LIST_CAPACITY);
        assert_eq!(l.evictions, 0);
    }

    #[test]
    fn eviction_picks_least_recently_used() {
        let mut l = EptpList::new(1);
        l.pin(0, Hpa(0x1000));
        for i in 0..(EPTP_LIST_CAPACITY - 1) as u64 {
            l.ensure(Hpa(0x10_0000 + i * 0x1000));
        }
        // Refresh everything except the first unpinned root.
        for i in 1..(EPTP_LIST_CAPACITY - 1) as u64 {
            l.slot_of(Hpa(0x10_0000 + i * 0x1000));
        }
        let (_, evicted) = l.ensure(Hpa(0xdead_0000));
        assert_eq!(evicted, Some(Hpa(0x10_0000)));
        assert_eq!(l.evictions, 1);
    }

    #[test]
    fn evicted_root_gets_a_new_slot_on_reensure() {
        let mut l = EptpList::new(0);
        for i in 0..EPTP_LIST_CAPACITY as u64 {
            l.ensure(Hpa(0x10_0000 + i * 0x1000));
        }
        let victim = Hpa(0x10_0000);
        let (_, evicted) = l.ensure(Hpa(0xbeef_0000));
        assert_eq!(evicted, Some(victim));
        let (slot, _) = l.ensure(victim);
        assert_eq!(l.get(slot), Some(victim));
        assert_eq!(l.evictions, 2);
    }
}
