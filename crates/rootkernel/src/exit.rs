//! VM-exit reasons and accounting.

/// Why control left non-root mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// `CPUID` unconditionally exits on VT-x.
    Cpuid,
    /// `VMCALL`: the Subkernel↔Rootkernel hypercall interface.
    Vmcall,
    /// A guest-physical access missed (or was denied by) the active EPT.
    EptViolation,
    /// An external interrupt arrived while the exit control demanded exits
    /// (the Rootkernel's pass-through configuration avoids these).
    ExternalInterrupt,
    /// A privileged instruction (CR3 write, `HLT`, …) trapped because
    /// pass-through was disabled.
    PrivilegedInstruction,
    /// `VMFUNC` with an invalid leaf or an out-of-range/empty EPTP index.
    VmfuncFault,
}

/// Exit counters, one per reason.
///
/// Table 5's headline is that the count stays **zero** under a real
/// workload; the commercial-hypervisor ablation shows what SkyBridge's
/// pass-through configuration saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExitStats {
    /// `CPUID` exits.
    pub cpuid: u64,
    /// `VMCALL` hypercalls.
    pub vmcall: u64,
    /// EPT violations.
    pub ept_violation: u64,
    /// External-interrupt exits.
    pub external_interrupt: u64,
    /// Privileged-instruction exits.
    pub privileged: u64,
    /// `VMFUNC` faults.
    pub vmfunc_fault: u64,
}

impl ExitStats {
    /// Total exits across all reasons.
    pub fn total(&self) -> u64 {
        self.cpuid
            + self.vmcall
            + self.ept_violation
            + self.external_interrupt
            + self.privileged
            + self.vmfunc_fault
    }

    /// Records one exit.
    pub fn record(&mut self, reason: ExitReason) {
        match reason {
            ExitReason::Cpuid => self.cpuid += 1,
            ExitReason::Vmcall => self.vmcall += 1,
            ExitReason::EptViolation => self.ept_violation += 1,
            ExitReason::ExternalInterrupt => self.external_interrupt += 1,
            ExitReason::PrivilegedInstruction => self.privileged += 1,
            ExitReason::VmfuncFault => self.vmfunc_fault += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = ExitStats::default();
        s.record(ExitReason::Vmcall);
        s.record(ExitReason::Vmcall);
        s.record(ExitReason::EptViolation);
        assert_eq!(s.vmcall, 2);
        assert_eq!(s.ept_violation, 1);
        assert_eq!(s.total(), 3);
    }
}
