//! The Rootkernel proper: boot, hypercalls, exits, and `VMFUNC`.

use std::collections::HashMap;

use sb_mem::{
    addr::PAGE_SIZE_1G,
    ept::{Ept, EptPerms, PageSize},
    phys::{HostMem, RESERVED_BYTES},
    Gpa, Hpa, PAGE_SIZE,
};
use sb_sim::{CpuId, CpuMode, Cycles, Machine};

use crate::{
    eptp::EptpList,
    exit::{ExitReason, ExitStats},
    vmcs::{ExitControls, Vmcs},
};

/// How the Rootkernel is configured at boot.
#[derive(Debug, Clone)]
pub struct RootkernelConfig {
    /// Exit controls (default: SkyBridge's exitless pass-through).
    pub controls: ExitControls,
    /// Granule of the base EPT above 1 GiB (default 1 GiB; 2 MiB exists for
    /// the huge-page ablation bench).
    pub base_granule: PageSize,
    /// Top of guest-visible physical memory. Defaults to 16 GiB; tests use
    /// less to keep EPT construction fast.
    pub mem_top: u64,
}

impl Default for RootkernelConfig {
    fn default() -> Self {
        RootkernelConfig {
            controls: ExitControls::skybridge(),
            base_granule: PageSize::Size1G,
            mem_top: 16 * PAGE_SIZE_1G,
        }
    }
}

impl RootkernelConfig {
    /// A small-memory configuration for tests (4 GiB).
    pub fn small() -> Self {
        RootkernelConfig {
            mem_top: 4 * PAGE_SIZE_1G,
            ..Default::default()
        }
    }
}

/// Errors of the `VMFUNC` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmfuncError {
    /// Executed outside non-root mode (#UD on real hardware).
    NotInNonRootMode,
    /// A leaf other than 0 (EPTP switching) was requested.
    InvalidLeaf,
    /// The EPTP index is out of range or its slot is empty; on hardware
    /// this is a VM exit the Rootkernel turns into a fault against the
    /// caller (or a reinstall, for LRU-evicted slots).
    InvalidIndex,
}

impl std::fmt::Display for VmfuncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmfuncError::NotInNonRootMode => {
                write!(f, "VMFUNC outside non-root mode (#UD)")
            }
            VmfuncError::InvalidLeaf => write!(f, "unsupported VMFUNC leaf"),
            VmfuncError::InvalidIndex => {
                write!(f, "EPTP index out of range or empty")
            }
        }
    }
}

impl std::error::Error for VmfuncError {}

/// The tiny hypervisor.
#[derive(Debug)]
pub struct Rootkernel {
    /// Boot configuration.
    pub config: RootkernelConfig,
    /// The huge-page identity EPT the Subkernel runs under.
    pub base_ept: Ept,
    /// Per-core VMCS.
    pub vmcs: Vec<Vmcs>,
    /// Exit counters (Table 5).
    pub exits: ExitStats,
    /// Per-client process EPTs (unmodified shallow root copies of the base
    /// EPT), keyed by the process's CR3 GPA.
    process_epts: HashMap<u64, Hpa>,
    /// Per-binding server EPTs, keyed by `(client CR3, server CR3)`.
    binding_epts: HashMap<(u64, u64), Hpa>,
    /// Total EPT pages the shallow copies wrote (4 per binding).
    pub ept_pages_written: u64,
}

/// Cycles charged to the booting core for the self-virtualization sequence
/// (VMXON, VMCS setup, EPT construction kick-off). One-time cost.
const BOOT_CYCLES: Cycles = 150_000;

impl Rootkernel {
    /// Self-virtualization (§4.1): called *by the Subkernel* during its own
    /// boot. Builds the base EPT — 2 MiB identity pages between the
    /// reserved region and 1 GiB, `config.base_granule` identity pages
    /// above — and demotes every core to non-root mode under it.
    pub fn boot(machine: &mut Machine, mem: &mut HostMem, config: RootkernelConfig) -> Self {
        let base_ept = Ept::new(mem);
        base_ept.map_identity_range(
            mem,
            RESERVED_BYTES,
            PAGE_SIZE_1G,
            PageSize::Size2M,
            EptPerms::RWX,
        );
        if config.mem_top > PAGE_SIZE_1G {
            base_ept.map_identity_range(
                mem,
                PAGE_SIZE_1G,
                config.mem_top,
                match config.base_granule {
                    PageSize::Size1G => PageSize::Size1G,
                    other => other,
                },
                EptPerms::RWX,
            );
        }
        let vmcs = (0..machine.num_cores())
            .map(|_| Vmcs::new(base_ept.root, config.controls))
            .collect();
        for core in 0..machine.num_cores() {
            let cpu = machine.cpu_mut(core);
            cpu.mode = CpuMode::NonRoot;
            cpu.load_eptp(base_ept.root.0);
        }
        machine.cpu_mut(0).advance(BOOT_CYCLES);
        Rootkernel {
            config,
            base_ept,
            vmcs,
            exits: ExitStats::default(),
            process_epts: HashMap::new(),
            binding_epts: HashMap::new(),
            ept_pages_written: 0,
        }
    }

    /// Records a VM exit and charges the world-switch cost.
    fn take_exit(&mut self, machine: &mut Machine, core: CpuId, reason: ExitReason) {
        self.exits.record(reason);
        let cost = machine.cost.vm_exit;
        let cpu = machine.cpu_mut(core);
        cpu.pmu.vm_exits += 1;
        cpu.advance(cost);
    }

    /// `VMCALL`: returns (after charging the exit) so the caller can invoke
    /// a specific management operation below. All Subkernel→Rootkernel
    /// communication goes through this.
    pub fn vmcall(&mut self, machine: &mut Machine, core: CpuId) {
        self.take_exit(machine, core, ExitReason::Vmcall);
    }

    /// `CPUID` always exits on VT-x.
    pub fn cpuid(&mut self, machine: &mut Machine, core: CpuId) {
        self.take_exit(machine, core, ExitReason::Cpuid);
    }

    /// An external interrupt arrived on `core`.
    ///
    /// Returns `true` if it caused a VM exit (commercial configuration);
    /// with SkyBridge's pass-through controls it is injected directly into
    /// the Subkernel and costs nothing extra.
    pub fn external_interrupt(&mut self, machine: &mut Machine, core: CpuId) -> bool {
        if self.vmcs[core].controls.passthrough_interrupts {
            false
        } else {
            self.take_exit(machine, core, ExitReason::ExternalInterrupt);
            true
        }
    }

    /// A CR3 write executed on `core`. Pass-through under SkyBridge.
    pub fn cr3_write(&mut self, machine: &mut Machine, core: CpuId) -> bool {
        if self.vmcs[core].controls.passthrough_cr3 {
            false
        } else {
            self.take_exit(machine, core, ExitReason::PrivilegedInstruction);
            true
        }
    }

    /// An EPT violation on `core` at `gpa`. Always exits; the Rootkernel's
    /// design goal is that this never fires in steady state.
    pub fn ept_violation(&mut self, machine: &mut Machine, core: CpuId) {
        self.take_exit(machine, core, ExitReason::EptViolation);
    }

    /// Hypercall: obtain (creating if needed) the process EPT for a client
    /// — an unmodified shallow copy of the base EPT ("EPT-C" in Fig. 6).
    pub fn process_ept(
        &mut self,
        machine: &mut Machine,
        core: CpuId,
        mem: &mut HostMem,
        client_cr3: Gpa,
    ) -> Hpa {
        self.vmcall(machine, core);
        if let Some(&root) = self.process_epts.get(&client_cr3.0) {
            return root;
        }
        let root = clone_root(mem, self.base_ept.root);
        self.ept_pages_written += 1;
        self.process_epts.insert(client_cr3.0, root);
        root
    }

    /// Hypercall: bind a client to a server (§4.2/§4.3) — create "EPT-S",
    /// the shallow copy of the base EPT in which the GPA of the client's
    /// CR3 frame translates to the HPA of the server's page-table root.
    ///
    /// Idempotent per `(client, server)` pair.
    pub fn bind(
        &mut self,
        machine: &mut Machine,
        core: CpuId,
        mem: &mut HostMem,
        client_cr3: Gpa,
        server_cr3: Gpa,
    ) -> Hpa {
        self.vmcall(machine, core);
        let key = (client_cr3.0, server_cr3.0);
        if let Some(&root) = self.binding_epts.get(&key) {
            return root;
        }
        let (ept, pages) = Ept::shallow_copy_with_remap(
            mem,
            &self.base_ept,
            client_cr3,
            // The server's page-table pages live in identity-mapped general
            // memory, so the HPA of its root equals the CR3 GPA.
            Hpa(server_cr3.0),
        );
        self.ept_pages_written += pages;
        self.binding_epts.insert(key, ept.root);
        ept.root
    }

    /// Hypercall: install `list` as `core`'s EPTP list (called by the
    /// Subkernel's context-switch hook before scheduling a process).
    pub fn install_eptp_list(&mut self, machine: &mut Machine, core: CpuId, list: EptpList) {
        self.vmcall(machine, core);
        self.vmcs[core].eptp_list = list;
    }

    /// The EPTP list currently installed on `core`.
    pub fn eptp_list(&self, core: CpuId) -> &EptpList {
        &self.vmcs[core].eptp_list
    }

    /// Executes `VMFUNC(leaf, index)` on `core` — the entire hypervisor
    /// involvement in a SkyBridge IPC.
    ///
    /// On success: the active EPTP becomes `eptp_list[index]`, 134 cycles,
    /// no TLB flush, **no VM exit**. Error cases exit to the Rootkernel,
    /// which records the fault and lets the Subkernel kill the offender.
    pub fn vmfunc(
        &mut self,
        machine: &mut Machine,
        core: CpuId,
        leaf: u64,
        index: usize,
    ) -> Result<(), VmfuncError> {
        if machine.cpu(core).mode != CpuMode::NonRoot {
            return Err(VmfuncError::NotInNonRootMode);
        }
        let vmfunc_cost = machine.cost.vmfunc;
        {
            let cpu = machine.cpu_mut(core);
            cpu.pmu.vmfuncs += 1;
            cpu.advance(vmfunc_cost);
        }
        if leaf != 0 {
            self.take_exit(machine, core, ExitReason::VmfuncFault);
            return Err(VmfuncError::InvalidLeaf);
        }
        let Some(root) = self.vmcs[core].eptp_list.get(index) else {
            self.take_exit(machine, core, ExitReason::VmfuncFault);
            return Err(VmfuncError::InvalidIndex);
        };
        self.vmcs[core].eptp = root;
        machine.cpu_mut(core).load_eptp(root.0);
        Ok(())
    }

    /// Number of distinct binding EPTs created so far.
    pub fn binding_count(&self) -> usize {
        self.binding_epts.len()
    }
}

/// Copies just the root frame of an EPT (all subtrees shared).
fn clone_root(mem: &mut HostMem, src: Hpa) -> Hpa {
    let dst = mem.alloc_reserved_frame();
    let mut buf = [0u8; PAGE_SIZE as usize];
    mem.read_slice(src, &mut buf);
    mem.write_slice(dst, &buf);
    dst
}

#[cfg(test)]
mod tests {
    use sb_mem::{
        paging::{AddressSpace, PteFlags},
        walk, Gva,
    };
    use sb_sim::PrivilegeLevel;

    use super::*;

    struct Env {
        machine: Machine,
        mem: HostMem,
        rk: Rootkernel,
    }

    fn boot() -> Env {
        let mut machine = Machine::skylake();
        let mut mem = HostMem::new();
        let rk = Rootkernel::boot(&mut machine, &mut mem, RootkernelConfig::small());
        Env { machine, mem, rk }
    }

    fn make_space(e: &mut Env, pcid: u16) -> AddressSpace {
        let asp = AddressSpace::new(&mut e.mem, pcid);
        asp.alloc_and_map(&mut e.mem, Gva(0x50_0000), 2, PteFlags::USER_DATA);
        asp
    }

    #[test]
    fn boot_demotes_all_cores_under_base_ept() {
        let e = boot();
        for cpu in &e.machine.cores {
            assert_eq!(cpu.mode, CpuMode::NonRoot);
            assert_eq!(cpu.ept_root, e.rk.base_ept.root.0);
        }
        assert_eq!(e.rk.exits.total(), 0);
    }

    #[test]
    fn steady_state_has_zero_exits() {
        let mut e = boot();
        let asp = make_space(&mut e, 1);
        let cpu = e.machine.cpu_mut(0);
        cpu.priv_level = PrivilegeLevel::User;
        cpu.load_cr3(asp.root_gpa.0, asp.pcid);
        // Ordinary guest execution: memory traffic through the base EPT.
        for i in 0..64 {
            walk::write_u64(
                &mut e.machine,
                0,
                &mut e.mem,
                Gva(0x50_0000 + i * 8),
                i,
                true,
            )
            .unwrap();
        }
        assert_eq!(e.rk.exits.total(), 0, "Table 5: no exits in steady state");
    }

    #[test]
    fn vmfunc_switches_ept_and_costs_134() {
        let mut e = boot();
        let client = make_space(&mut e, 1);
        let server = make_space(&mut e, 2);
        let server_root = e.rk.bind(
            &mut e.machine,
            0,
            &mut e.mem,
            client.root_gpa,
            server.root_gpa,
        );
        let mut list = EptpList::new(1);
        list.pin(0, e.rk.base_ept.root);
        let (slot, _) = list.ensure(server_root);
        e.rk.install_eptp_list(&mut e.machine, 0, list);

        let before = e.machine.cpu(0).tsc;
        e.rk.vmfunc(&mut e.machine, 0, 0, slot).unwrap();
        assert_eq!(e.machine.cpu(0).tsc - before, 134);
        assert_eq!(e.machine.cpu(0).ept_root, server_root.0);
        assert_eq!(e.machine.cpu(0).pmu.vmfuncs, 1);
        // Return: slot 0 is the caller's own EPT.
        e.rk.vmfunc(&mut e.machine, 0, 0, 0).unwrap();
        assert_eq!(e.machine.cpu(0).ept_root, e.rk.base_ept.root.0);
    }

    #[test]
    fn vmfunc_does_not_exit_on_success() {
        let mut e = boot();
        let mut list = EptpList::new(1);
        list.pin(0, e.rk.base_ept.root);
        e.rk.install_eptp_list(&mut e.machine, 0, list);
        let exits_before = e.rk.exits.total();
        e.rk.vmfunc(&mut e.machine, 0, 0, 0).unwrap();
        assert_eq!(e.rk.exits.total(), exits_before);
    }

    #[test]
    fn vmfunc_bad_index_faults() {
        let mut e = boot();
        let mut list = EptpList::new(1);
        list.pin(0, e.rk.base_ept.root);
        e.rk.install_eptp_list(&mut e.machine, 0, list);
        assert_eq!(
            e.rk.vmfunc(&mut e.machine, 0, 0, 7),
            Err(VmfuncError::InvalidIndex)
        );
        assert_eq!(e.rk.exits.vmfunc_fault, 1);
    }

    #[test]
    fn vmfunc_bad_leaf_faults() {
        let mut e = boot();
        assert_eq!(
            e.rk.vmfunc(&mut e.machine, 0, 1, 0),
            Err(VmfuncError::InvalidLeaf)
        );
        assert_eq!(e.rk.exits.vmfunc_fault, 1);
    }

    #[test]
    fn vmfunc_in_root_mode_is_ud() {
        let mut e = boot();
        e.machine.cpu_mut(0).mode = CpuMode::Root;
        assert_eq!(
            e.rk.vmfunc(&mut e.machine, 0, 0, 0),
            Err(VmfuncError::NotInNonRootMode)
        );
        // #UD is not a VM exit.
        assert_eq!(e.rk.exits.total(), 0);
    }

    #[test]
    fn bind_is_idempotent_and_writes_four_pages() {
        let mut e = boot();
        let client = make_space(&mut e, 1);
        let server = make_space(&mut e, 2);
        let a = e.rk.bind(
            &mut e.machine,
            0,
            &mut e.mem,
            client.root_gpa,
            server.root_gpa,
        );
        let pages_after_first = e.rk.ept_pages_written;
        let b = e.rk.bind(
            &mut e.machine,
            0,
            &mut e.mem,
            client.root_gpa,
            server.root_gpa,
        );
        assert_eq!(a, b);
        assert_eq!(pages_after_first, 4);
        assert_eq!(e.rk.ept_pages_written, 4);
        assert_eq!(e.rk.binding_count(), 1);
        assert_eq!(e.rk.exits.vmcall, 2, "each bind hypercall is a VMCALL");
    }

    #[test]
    fn interrupts_pass_through_under_skybridge() {
        let mut e = boot();
        assert!(!e.rk.external_interrupt(&mut e.machine, 0));
        assert!(!e.rk.cr3_write(&mut e.machine, 0));
        assert_eq!(e.rk.exits.total(), 0);
    }

    #[test]
    fn commercial_controls_exit_on_everything() {
        let mut machine = Machine::skylake();
        let mut mem = HostMem::new();
        let config = RootkernelConfig {
            controls: ExitControls::commercial(),
            ..RootkernelConfig::small()
        };
        let mut rk = Rootkernel::boot(&mut machine, &mut mem, config);
        let t0 = machine.cpu(0).tsc;
        assert!(rk.external_interrupt(&mut machine, 0));
        assert!(rk.cr3_write(&mut machine, 0));
        assert_eq!(rk.exits.total(), 2);
        assert_eq!(machine.cpu(0).tsc - t0, 2 * machine.cost.vm_exit);
    }

    #[test]
    fn process_ept_is_cached() {
        let mut e = boot();
        let client = make_space(&mut e, 1);
        let a =
            e.rk.process_ept(&mut e.machine, 0, &mut e.mem, client.root_gpa);
        let b =
            e.rk.process_ept(&mut e.machine, 0, &mut e.mem, client.root_gpa);
        assert_eq!(a, b);
        assert_ne!(a, e.rk.base_ept.root);
    }
}
