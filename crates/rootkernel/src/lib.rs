//! The Rootkernel: SkyBridge's tiny hypervisor.
//!
//! The paper's Rootkernel (§4.1) is a ~1.5 KLoC virtualization layer slipped
//! *underneath* an existing microkernel. It is deliberately not a general
//! hypervisor:
//!
//! * it is **booted by the Subkernel** ("self-virtualization", inspired by
//!   CloudVisor): the running microkernel calls one entry point, the
//!   Rootkernel builds a base EPT that identity-maps almost all physical
//!   memory with huge pages, and demotes the microkernel to non-root mode;
//! * it **eliminates VM exits**: privileged instructions (CR3 writes, `HLT`)
//!   and external interrupts are configured as pass-through, and the
//!   huge-page base EPT means no EPT violations in steady state — the
//!   Table 5 experiment counts exactly zero exits under the YCSB workload;
//! * its only jobs are **EPT management** (per-binding shallow copies with
//!   the CR3 remap), **EPTP-list installation** at context-switch time, and
//!   handling the handful of unavoidable exits (`CPUID`, `VMCALL`, EPT
//!   violations).
//!
//! [`Rootkernel::vmfunc`] implements the EPTP-switching VM function: the
//! only hypervisor-provided operation on the IPC fast path, executable from
//! user mode, costing 134 cycles and no TLB flush.

pub mod eptp;
pub mod exit;
pub mod kernel;
pub mod vmcs;

pub use crate::{
    eptp::{EptpList, EPTP_LIST_CAPACITY},
    exit::{ExitReason, ExitStats},
    kernel::{Rootkernel, RootkernelConfig, VmfuncError},
    vmcs::Vmcs,
};
