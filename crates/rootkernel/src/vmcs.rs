//! Per-core virtual-machine control structure.
//!
//! The model keeps only the fields SkyBridge touches: the active EPTP, the
//! EPTP list that `VMFUNC` indexes, and the exit controls that make the
//! Rootkernel "exitless".

use sb_mem::Hpa;

use crate::eptp::EptpList;

/// Exit controls: which guest events leave non-root mode.
///
/// SkyBridge's Rootkernel configures everything as pass-through (§4.1); the
/// `commercial()` preset models the KVM/Xen-style configuration the paper
/// contrasts against (SeCage and CrossOver reuse commercial hypervisors;
/// Dune exits on most system calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitControls {
    /// External interrupts are injected directly into the guest kernel.
    pub passthrough_interrupts: bool,
    /// CR3 writes do not trap.
    pub passthrough_cr3: bool,
    /// `HLT` does not trap.
    pub passthrough_hlt: bool,
}

impl ExitControls {
    /// SkyBridge's exitless configuration.
    pub const fn skybridge() -> Self {
        ExitControls {
            passthrough_interrupts: true,
            passthrough_cr3: true,
            passthrough_hlt: true,
        }
    }

    /// A conventional hypervisor configuration (everything exits).
    pub const fn commercial() -> Self {
        ExitControls {
            passthrough_interrupts: false,
            passthrough_cr3: false,
            passthrough_hlt: false,
        }
    }
}

/// The per-core VMCS subset the simulation models.
#[derive(Debug, Clone)]
pub struct Vmcs {
    /// The active extended-page-table pointer.
    pub eptp: Hpa,
    /// The `VMFUNC` leaf-0 EPTP list.
    pub eptp_list: EptpList,
    /// Exit controls.
    pub controls: ExitControls,
}

impl Vmcs {
    /// A VMCS pointing at the base EPT with an empty list.
    pub fn new(base_eptp: Hpa, controls: ExitControls) -> Self {
        Vmcs {
            eptp: base_eptp,
            eptp_list: EptpList::new(1),
            controls,
        }
    }
}
