//! Model-based property tests of the EPTP list (the §10 LRU extension).

use proptest::prelude::*;
use sb_mem::Hpa;
use sb_rootkernel::{EptpList, EPTP_LIST_CAPACITY};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the access sequence: `ensure` always yields a slot that
    /// `get` resolves to the requested root, pinned slots never move, and
    /// occupancy never exceeds the hardware capacity.
    #[test]
    fn ensure_is_always_consistent(
        roots in proptest::collection::vec(1u64..2000, 1..1500)
    ) {
        let mut l = EptpList::new(1);
        let own = Hpa(0xAAAA_0000);
        l.pin(0, own);
        for r in roots {
            let root = Hpa(0x10_0000 + r * 0x1000);
            let (slot, evicted) = l.ensure(root);
            prop_assert!(slot < EPTP_LIST_CAPACITY);
            prop_assert_eq!(l.get(slot), Some(root), "slot must hold the root");
            prop_assert_eq!(l.get(0), Some(own), "pinned slot is immutable");
            prop_assert!(l.len() <= EPTP_LIST_CAPACITY);
            if let Some(e) = evicted {
                prop_assert_ne!(e, own, "the pinned root is never evicted");
            }
        }
    }

    /// A working set that fits is never evicted, no matter how it is
    /// accessed.
    #[test]
    fn small_working_set_never_faults(
        accesses in proptest::collection::vec(0u64..100, 1..2000)
    ) {
        let mut l = EptpList::new(1);
        l.pin(0, Hpa(0x1000));
        // Install 100 roots (< capacity).
        for r in 0..100u64 {
            l.ensure(Hpa(0x10_0000 + r * 0x1000));
        }
        for a in accesses {
            let root = Hpa(0x10_0000 + a * 0x1000);
            prop_assert!(
                l.slot_of(root).is_some(),
                "resident root must stay resident"
            );
        }
        prop_assert_eq!(l.evictions, 0);
    }
}
