//! Transport-agnostic chaos: a fault-injecting [`Engine`] wrapper.
//!
//! The SkyBridge engine injects handler panics and hangs *inside* the
//! facility (`skybridge::SkyBridge::attach_faults`), where the real
//! detection machinery lives. The trap-IPC engines have no such interior,
//! so the chaos suite wraps them in [`FaultyEngine`]: the same
//! [`FaultPoint::HandlerPanic`] / [`FaultPoint::HandlerHang`] schedule,
//! applied at the serve boundary — a panic kills the worker's server until
//! [`Engine::recover`] respawns it; a hang burns the budget and surfaces
//! as a timeout. Detection and recovery accounting land in the same
//! ledger, so the chaos invariants hold uniformly across personalities.

use sb_faultplane::{FaultHandle, FaultPoint};
use sb_sim::Cycles;

use crate::engine::{Engine, Request, ServeError};

/// A fault-injecting wrapper around any engine.
pub struct FaultyEngine<E: Engine> {
    inner: E,
    faults: FaultHandle,
    /// Worker `w`'s server died (injected panic) and awaits recovery.
    dead: Vec<bool>,
    /// Cycles an injected hang consumes before the forced return.
    hang: Cycles,
}

impl<E: Engine> FaultyEngine<E> {
    /// Wraps `inner`, injecting per `faults`. `hang` is the per-call
    /// budget an injected hang burns before control is forced back.
    pub fn new(inner: E, faults: FaultHandle, hang: Cycles) -> Self {
        let workers = inner.workers();
        FaultyEngine {
            inner,
            faults,
            dead: vec![false; workers],
            hang,
        }
    }

    /// The shared fault plane.
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Panic/hang interception shared by both serve paths. `Ok(())` means
    /// "no injection — delegate".
    fn intercept(&mut self, worker: usize) -> Result<(), ServeError> {
        if self.dead[worker] {
            // Still dead: keep refusing without opening new instances.
            return Err(ServeError::Failed("server dead (injected crash)".into()));
        }
        if self.faults.fire(FaultPoint::HandlerPanic) {
            self.dead[worker] = true;
            self.faults.detected(FaultPoint::HandlerPanic);
            return Err(ServeError::Failed("handler panicked (injected)".into()));
        }
        if self.faults.fire(FaultPoint::HandlerHang) {
            // The hang spins until the watchdog budget forces a return;
            // the forced return is the recovery.
            let t = self.inner.now(worker);
            self.inner.wait_until(worker, t.saturating_add(self.hang));
            self.faults.recovered(FaultPoint::HandlerHang);
            return Err(ServeError::Timeout { elapsed: self.hang });
        }
        Ok(())
    }
}

impl<E: Engine> Engine for FaultyEngine<E> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn now(&mut self, worker: usize) -> Cycles {
        self.inner.now(worker)
    }

    fn wait_until(&mut self, worker: usize, time: Cycles) {
        self.inner.wait_until(worker, time);
    }

    fn serve(&mut self, worker: usize, req: &Request) -> Result<(), ServeError> {
        self.intercept(worker)?;
        self.inner.serve(worker, req)
    }

    fn serve_with_reply(&mut self, worker: usize, req: &Request) -> Result<Vec<u8>, ServeError> {
        self.intercept(worker)?;
        self.inner.serve_with_reply(worker, req)
    }

    fn recover(&mut self, worker: usize) -> bool {
        if self.dead[worker] {
            self.dead[worker] = false;
            // Respawn the transport underneath (fresh endpoint/threads)
            // where the engine supports it; the wrapper-level revive is
            // the recovery either way.
            self.inner.recover(worker);
            self.faults.recovered(FaultPoint::HandlerPanic);
            return true;
        }
        self.inner.recover(worker)
    }
}

#[cfg(test)]
mod tests {
    use sb_faultplane::FaultMix;

    use super::*;
    use crate::engine::FixedServiceEngine;

    fn req(id: u64) -> Request {
        Request {
            id,
            arrival: 0,
            key: id,
            write: false,
            payload: 16,
            client: None,
        }
    }

    #[test]
    fn injected_panic_kills_until_recover() {
        let h = FaultHandle::new(4, FaultMix::none().with(FaultPoint::HandlerPanic, 10_000));
        let mut e = FaultyEngine::new(FixedServiceEngine::new(1, 100), h.clone(), 1_000);
        assert!(matches!(e.serve(0, &req(0)), Err(ServeError::Failed(_))));
        assert!(matches!(e.serve(0, &req(1)), Err(ServeError::Failed(_))));
        assert_eq!(h.injected_at(FaultPoint::HandlerPanic), 1);
        assert!(e.recover(0));
        h.disarm();
        e.serve(0, &req(2)).unwrap();
        let r = h.report();
        assert_eq!((r.injected(), r.leaked()), (1, 0), "{r}");
    }

    #[test]
    fn injected_hang_times_out_and_recovers_in_place() {
        let h = FaultHandle::new(4, FaultMix::none().with(FaultPoint::HandlerHang, 10_000));
        let mut e = FaultyEngine::new(FixedServiceEngine::new(1, 100), h.clone(), 5_000);
        let t0 = e.now(0);
        match e.serve(0, &req(0)) {
            Err(ServeError::Timeout { elapsed }) => assert_eq!(elapsed, 5_000),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(e.now(0) - t0, 5_000, "the hang burns real worker time");
        let r = h.report();
        assert_eq!((r.injected(), r.leaked()), (1, 0), "{r}");
    }

    #[test]
    fn transparent_when_nothing_fires() {
        let h = FaultHandle::new(4, FaultMix::none());
        let mut e = FaultyEngine::new(FixedServiceEngine::new(2, 100), h.clone(), 1_000);
        for i in 0..10 {
            e.serve((i % 2) as usize, &req(i)).unwrap();
        }
        assert_eq!(h.report().injected(), 0);
        assert!(!e.recover(0));
    }
}
