//! The serving loop: a discrete-event dispatcher over per-worker clocks.
//!
//! The runtime simulates an M/G/k server: arrivals (open-loop Poisson or
//! closed-loop clients) enter one bounded [`DispatchQueue`]; the
//! dispatcher starts each queued request on the earliest-free worker, in
//! arrival order, never starting a request before everything that starts
//! earlier in simulated time has been issued. Worker clocks are the
//! engine's simulated cores, so service times (and their cache/TLB
//! history) come out of the machine model, not a distribution.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sb_faultplane::{FaultHandle, FaultPoint};
use sb_sim::Cycles;

use crate::{
    engine::{Engine, Request, ServeError},
    load::RequestFactory,
    queue::{AdmissionPolicy, DispatchQueue},
    stats::RunStats,
};

/// How the dispatcher retries failed serves.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum re-attempts after the initial serve.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base << n` cycles (exponential,
    /// spent as worker idle time).
    pub backoff_base: Cycles,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 1_000,
        }
    }
}

/// Longest injected deadline-storm window, in cycles.
const STORM_WINDOW_MAX: Cycles = 20_000;

/// Dispatcher knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bound on admitted-but-unserved requests.
    pub queue_capacity: usize,
    /// What happens to arrivals that find the queue full.
    pub policy: AdmissionPolicy,
    /// Optional bound on time spent queued: a request that waits longer
    /// before service starts is dropped (counted in `shed_deadline`)
    /// without consuming worker time.
    pub queue_deadline: Option<Cycles>,
    /// Retry failed/timed-out serves with exponential backoff; a failure
    /// (crashed server, broken binding) additionally runs the engine's
    /// recovery path before the retry. `None` fails fast.
    pub retry: Option<RetryPolicy>,
    /// The chaos fault plane, for injected queue-deadline storms. `None`
    /// (the default) never injects.
    pub faults: Option<FaultHandle>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            queue_capacity: 64,
            policy: AdmissionPolicy::Shed,
            queue_deadline: None,
            retry: None,
            faults: None,
        }
    }
}

/// A dispatcher bound to an engine.
pub struct ServerRuntime<'a, E: Engine + ?Sized> {
    engine: &'a mut E,
    cfg: RuntimeConfig,
    /// Active/past injected deadline storms as `[start, end]` windows of
    /// arrival time: requests arriving inside one see their effective
    /// queue deadline collapse to zero.
    storms: Vec<(Cycles, Cycles)>,
}

impl<'a, E: Engine + ?Sized> ServerRuntime<'a, E> {
    /// Wraps `engine` with the dispatcher configuration.
    pub fn new(engine: &'a mut E, cfg: RuntimeConfig) -> Self {
        assert!(engine.workers() > 0);
        ServerRuntime {
            engine,
            cfg,
            storms: Vec::new(),
        }
    }

    /// At each admission: maybe start a deadline storm at `t`. A storm is
    /// detected the moment it starts (the collapsed deadline is the
    /// dispatcher's own machinery) and recovered when the run's final
    /// drain has flushed every stale request ([`RunStats::seal`] time).
    fn maybe_storm(&mut self, t: Cycles) {
        let Some(f) = &self.cfg.faults else { return };
        if self.storms.iter().any(|&(s, e)| t >= s && t <= e) {
            return; // One storm at a time.
        }
        if f.fire(FaultPoint::DeadlineStorm) {
            let len = 1 + f.draw(STORM_WINDOW_MAX);
            f.detected(FaultPoint::DeadlineStorm);
            self.storms.push((t, t.saturating_add(len)));
        }
    }

    /// The queue deadline in force for `req`: zero inside a storm window.
    fn effective_deadline(&self, arrival: Cycles) -> Option<Cycles> {
        if self
            .storms
            .iter()
            .any(|&(s, e)| arrival >= s && arrival <= e)
        {
            return Some(0);
        }
        self.cfg.queue_deadline
    }

    /// Closes out a run: every storm window has passed and the queue has
    /// drained, so outstanding storm instances are recovered.
    fn settle_storms(&mut self) {
        if let Some(f) = &self.cfg.faults {
            if !self.storms.is_empty() {
                f.recover_all(FaultPoint::DeadlineStorm);
            }
        }
        self.storms.clear();
    }

    /// The earliest-free worker and its clock.
    fn min_worker(&mut self) -> (usize, Cycles) {
        let mut best = (0, self.engine.now(0));
        for w in 1..self.engine.workers() {
            let t = self.engine.now(w);
            if t < best.1 {
                best = (w, t);
            }
        }
        best
    }

    /// Runs `req` on worker `w` (idling the worker to the arrival first),
    /// applying the queue deadline and recording the outcome. Closed-loop
    /// completions are reported through `completions`.
    fn serve_one(
        &mut self,
        w: usize,
        req: Request,
        stats: &mut RunStats,
        completions: &mut Vec<(usize, Cycles)>,
    ) {
        self.engine.wait_until(w, req.arrival);
        let start = self.engine.now(w);
        let client = req.client;
        let past_deadline = self
            .effective_deadline(req.arrival)
            .is_some_and(|d| start - req.arrival > d);
        if past_deadline {
            stats.shed_deadline += 1;
        } else {
            match self.serve_with_retries(w, &req, stats) {
                Ok(()) => {
                    let done = self.engine.now(w);
                    stats.completed += 1;
                    stats.latencies.push(done - req.arrival);
                    stats.busy[w] += done - start;
                }
                Err(ServeError::Timeout { .. }) => {
                    stats.timed_out += 1;
                    stats.busy[w] += self.engine.now(w) - start;
                }
                Err(ServeError::Failed(_)) => {
                    stats.failed += 1;
                    stats.busy[w] += self.engine.now(w) - start;
                }
            }
        }
        if let Some(c) = client {
            completions.push((c, self.engine.now(w)));
        }
    }

    /// One serve plus the configured retry policy: exponential backoff
    /// (idle worker time) before each re-attempt, and — for failures, the
    /// recoverable class (crashed server, broken binding) — the engine's
    /// recovery path (revive + rebind / respawn) before retrying.
    fn serve_with_retries(
        &mut self,
        w: usize,
        req: &Request,
        stats: &mut RunStats,
    ) -> Result<(), ServeError> {
        let mut last = match self.engine.serve(w, req) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        let Some(policy) = self.cfg.retry.clone() else {
            return Err(last);
        };
        for attempt in 0..policy.max_retries {
            if let ServeError::Failed(_) = last {
                if self.engine.recover(w) {
                    stats.recoveries += 1;
                }
            }
            let backoff = policy.backoff_base << attempt.min(32);
            let t = self.engine.now(w);
            self.engine.wait_until(w, t.saturating_add(backoff));
            stats.retries += 1;
            match self.engine.serve(w, req) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Starts queued requests, earliest-free worker first, until no worker
    /// frees up at or before `horizon` (so no service start is issued out
    /// of order with arrivals at the horizon).
    fn drain_until(
        &mut self,
        queue: &mut DispatchQueue,
        horizon: Cycles,
        stats: &mut RunStats,
        completions: &mut Vec<(usize, Cycles)>,
    ) {
        while !queue.is_empty() {
            let (w, t) = self.min_worker();
            if t > horizon {
                break;
            }
            let req = queue.pop().expect("checked non-empty");
            self.serve_one(w, req, stats, completions);
        }
    }

    /// Frees one queue slot under the Block policy by force-running the
    /// oldest queued request on the earliest-free worker.
    fn block_until_slot(
        &mut self,
        queue: &mut DispatchQueue,
        stats: &mut RunStats,
        completions: &mut Vec<(usize, Cycles)>,
    ) {
        while queue.is_full() {
            let (w, _) = self.min_worker();
            let req = queue.pop().expect("full queue is non-empty");
            self.serve_one(w, req, stats, completions);
        }
    }

    /// The instant the server is ready: the latest worker clock. Engine
    /// setup (boot, registration, binary rewriting) runs on the same
    /// simulated cores that serve requests, so worker clocks are well past
    /// zero when a run starts; arrival times are offsets from this epoch,
    /// not from machine power-on.
    fn epoch(&mut self) -> Cycles {
        (0..self.engine.workers())
            .map(|w| self.engine.now(w))
            .max()
            .unwrap_or(0)
    }

    /// Open-loop run: `arrivals` yields monotone arrival times relative to
    /// server readiness (Poisson in the benches, arbitrary sequences in
    /// the property tests); each arrival takes its operation from
    /// `factory`. Arrivals are independent of service progress — under
    /// overload the queue fills and the admission policy decides.
    pub fn run_open_loop<I>(&mut self, arrivals: I, factory: &mut RequestFactory) -> RunStats
    where
        I: IntoIterator<Item = Cycles>,
    {
        let mut stats = RunStats::new(self.engine.label(), self.engine.workers());
        let mut queue = DispatchQueue::new(self.cfg.queue_capacity);
        let mut completions = Vec::new();
        let epoch = self.epoch();
        let mut first = None;
        let mut clock = 0;
        for t in arrivals {
            let t = t.saturating_add(epoch).max(clock); // Never backwards.
            clock = t;
            first.get_or_insert(t);
            stats.offered += 1;
            self.maybe_storm(t);
            self.drain_until(&mut queue, t, &mut stats, &mut completions);
            if queue.is_full() {
                match self.cfg.policy {
                    AdmissionPolicy::Shed => {
                        stats.shed_queue_full += 1;
                        continue;
                    }
                    AdmissionPolicy::Block => {
                        self.block_until_slot(&mut queue, &mut stats, &mut completions)
                    }
                }
            }
            queue.push(factory.make(t, None));
            stats.max_queue_depth = stats.max_queue_depth.max(queue.len());
        }
        self.drain_until(&mut queue, Cycles::MAX, &mut stats, &mut completions);
        self.settle_storms();
        stats.start = first.unwrap_or(0);
        stats.end = (0..self.engine.workers())
            .map(|w| self.engine.now(w))
            .max()
            .unwrap_or(0);
        stats.seal();
        stats
    }

    /// Closed-loop run: `clients` issuers each keep exactly one request in
    /// flight, issuing the next one `think` cycles after the previous
    /// completion, `ops_per_client` times. Offered load self-adjusts to
    /// service capacity, so queue-full shedding only appears when
    /// `clients` exceeds `queue_capacity + workers`.
    pub fn run_closed_loop(
        &mut self,
        clients: usize,
        ops_per_client: u64,
        think: Cycles,
        factory: &mut RequestFactory,
    ) -> RunStats {
        assert!(clients > 0);
        let mut stats = RunStats::new(self.engine.label(), self.engine.workers());
        let mut queue = DispatchQueue::new(self.cfg.queue_capacity);
        let mut completions: Vec<(usize, Cycles)> = Vec::new();
        let epoch = self.epoch();
        // One-cycle stagger breaks the all-at-once tie deterministically.
        let mut ready: BinaryHeap<Reverse<(Cycles, usize)>> = (0..clients)
            .map(|c| Reverse((epoch + c as Cycles, c)))
            .collect();
        let mut remaining = vec![ops_per_client; clients];
        loop {
            for (c, done) in completions.drain(..) {
                if remaining[c] > 0 {
                    ready.push(Reverse((done.saturating_add(think), c)));
                }
            }
            let Some(&Reverse((t, c))) = ready.peek() else {
                if queue.is_empty() {
                    break;
                }
                self.drain_until(&mut queue, Cycles::MAX, &mut stats, &mut completions);
                continue;
            };
            // Completions inside the drain may schedule arrivals earlier
            // than `t`; flush them into the heap before admitting.
            self.drain_until(&mut queue, t, &mut stats, &mut completions);
            if !completions.is_empty() {
                continue;
            }
            ready.pop();
            stats.offered += 1;
            remaining[c] -= 1;
            self.maybe_storm(t);
            if queue.is_full() {
                match self.cfg.policy {
                    AdmissionPolicy::Shed => {
                        stats.shed_queue_full += 1;
                        if remaining[c] > 0 {
                            ready.push(Reverse((t.saturating_add(think.max(1)), c)));
                        }
                        continue;
                    }
                    AdmissionPolicy::Block => {
                        self.block_until_slot(&mut queue, &mut stats, &mut completions)
                    }
                }
            }
            queue.push(factory.make(t, Some(c)));
            stats.max_queue_depth = stats.max_queue_depth.max(queue.len());
        }
        self.settle_storms();
        stats.start = epoch;
        stats.end = (0..self.engine.workers())
            .map(|w| self.engine.now(w))
            .max()
            .unwrap_or(0);
        stats.seal();
        stats
    }
}

#[cfg(test)]
mod tests {
    use sb_ycsb::WorkloadSpec;

    use super::*;
    use crate::engine::FixedServiceEngine;

    fn factory() -> RequestFactory {
        RequestFactory::new(WorkloadSpec::ycsb_a(1000, 64), 64)
    }

    fn cfg(capacity: usize, policy: AdmissionPolicy) -> RuntimeConfig {
        RuntimeConfig {
            queue_capacity: capacity,
            policy,
            ..RuntimeConfig::default()
        }
    }

    /// offered must equal the sum of all outcome counters.
    fn assert_conserved(s: &RunStats) {
        assert_eq!(
            s.offered,
            s.completed + s.shed_queue_full + s.shed_deadline + s.timed_out + s.failed,
            "request conservation violated: {s:?}"
        );
    }

    #[test]
    fn underload_completes_everything_with_flat_latency() {
        let mut e = FixedServiceEngine::new(2, 100);
        let mut rt = ServerRuntime::new(&mut e, cfg(16, AdmissionPolicy::Shed));
        let arrivals: Vec<Cycles> = (0..50).map(|i| i * 100).collect();
        let s = rt.run_open_loop(arrivals, &mut factory());
        assert_eq!(s.completed, 50);
        assert_eq!(s.shed(), 0);
        assert_eq!(s.p50(), 100, "no queueing at half load");
        assert_conserved(&s);
    }

    #[test]
    fn overload_sheds_and_respects_queue_bound() {
        let mut e = FixedServiceEngine::new(1, 1000);
        let mut rt = ServerRuntime::new(&mut e, cfg(4, AdmissionPolicy::Shed));
        let arrivals: Vec<Cycles> = (0..200).map(|i| i * 10).collect();
        let s = rt.run_open_loop(arrivals, &mut factory());
        assert!(s.shed_queue_full > 0, "10x overload must shed");
        assert!(s.max_queue_depth <= 4);
        assert!(s.completed > 0);
        assert_conserved(&s);
    }

    #[test]
    fn block_policy_never_sheds_but_latency_grows() {
        let mut e = FixedServiceEngine::new(1, 1000);
        let mut rt = ServerRuntime::new(&mut e, cfg(4, AdmissionPolicy::Block));
        let arrivals: Vec<Cycles> = (0..100).map(|i| i * 10).collect();
        let s = rt.run_open_loop(arrivals, &mut factory());
        assert_eq!(s.shed_queue_full, 0);
        assert_eq!(s.completed, 100);
        assert!(s.p99() > 50_000, "blocked waits show up in tail latency");
        assert_conserved(&s);
    }

    #[test]
    fn queue_deadline_drops_stale_requests() {
        let mut e = FixedServiceEngine::new(1, 1000);
        let mut rt = ServerRuntime::new(
            &mut e,
            RuntimeConfig {
                queue_capacity: 16,
                policy: AdmissionPolicy::Shed,
                queue_deadline: Some(500),
                ..RuntimeConfig::default()
            },
        );
        let s = rt.run_open_loop(vec![0, 1, 2, 3], &mut factory());
        assert_eq!(s.completed, 1, "only the first request starts in time");
        assert_eq!(s.shed_deadline, 3);
        assert_conserved(&s);
    }

    #[test]
    fn closed_loop_self_paces_to_capacity() {
        let mut e = FixedServiceEngine::new(2, 100);
        let mut rt = ServerRuntime::new(&mut e, cfg(16, AdmissionPolicy::Shed));
        let s = rt.run_closed_loop(4, 50, 0, &mut factory());
        assert_eq!(s.offered, 200);
        assert_eq!(s.completed, 200);
        assert_eq!(
            s.shed(),
            0,
            "closed loop cannot overrun 16 slots with 4 clients"
        );
        // 200 requests x 100 cycles over 2 workers ~ 10_000 cycles.
        let tput = s.throughput_per_mcycle();
        assert!(
            (15_000.0..25_000.0).contains(&tput),
            "closed-loop throughput {tput} should sit near 2 workers / 100 cycles"
        );
        assert_conserved(&s);
    }

    #[test]
    fn closed_loop_with_more_clients_than_slots_sheds() {
        let mut e = FixedServiceEngine::new(1, 1000);
        let mut rt = ServerRuntime::new(&mut e, cfg(2, AdmissionPolicy::Shed));
        let s = rt.run_closed_loop(8, 20, 0, &mut factory());
        assert!(s.shed_queue_full > 0);
        assert_conserved(&s);
    }

    #[test]
    fn retry_policy_recovers_injected_crashes() {
        use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};

        use crate::chaos::FaultyEngine;

        let h = FaultHandle::new(0xc4a5, FaultMix::none().with(FaultPoint::HandlerPanic, 800));
        let mut e = FaultyEngine::new(FixedServiceEngine::new(2, 100), h.clone(), 1_000);
        let mut rt = ServerRuntime::new(
            &mut e,
            RuntimeConfig {
                queue_capacity: 32,
                retry: Some(RetryPolicy::default()),
                ..RuntimeConfig::default()
            },
        );
        let arrivals: Vec<Cycles> = (0..300).map(|i| i * 200).collect();
        let s = rt.run_open_loop(arrivals, &mut factory());
        assert_conserved(&s);
        assert!(s.retries > 0, "an 8% crash rate over 300 serves must retry");
        assert!(s.recoveries > 0, "crashed workers must be repaired");
        assert!(
            s.completed > s.offered - s.offered / 10,
            "retry-with-recovery should complete nearly everything: {s:?}"
        );
        // Close any worker still dead at end-of-run, then audit the ledger.
        h.disarm();
        for w in 0..2 {
            e.recover(w);
        }
        let r = h.report();
        assert!(r.injected() > 0, "the mix must actually have fired");
        assert_eq!(r.leaked(), 0, "{r}");
    }

    #[test]
    fn retries_fail_fast_without_a_policy() {
        use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};

        use crate::chaos::FaultyEngine;

        // Crash on (nearly) every serve with no retry policy: failures
        // surface directly and the run conserves through `failed`.
        let h = FaultHandle::new(7, FaultMix::none().with(FaultPoint::HandlerPanic, 10_000));
        let mut e = FaultyEngine::new(FixedServiceEngine::new(1, 100), h.clone(), 1_000);
        let mut rt = ServerRuntime::new(&mut e, cfg(8, AdmissionPolicy::Shed));
        let s = rt.run_open_loop(vec![0, 500, 1_000], &mut factory());
        assert_eq!(s.completed, 0);
        assert_eq!(s.failed, 3);
        assert_eq!(s.retries, 0);
        assert_conserved(&s);
    }

    #[test]
    fn deadline_storms_shed_and_settle_clean() {
        use sb_faultplane::{FaultHandle, FaultMix, FaultPoint};

        let h = FaultHandle::new(
            0x5708_0001,
            FaultMix::none().with(FaultPoint::DeadlineStorm, 2_500),
        );
        let mut e = FixedServiceEngine::new(1, 1_000);
        let mut rt = ServerRuntime::new(
            &mut e,
            RuntimeConfig {
                queue_capacity: 64,
                // Generous in calm weather; storms collapse it to zero.
                queue_deadline: Some(1_000_000),
                faults: Some(h.clone()),
                ..RuntimeConfig::default()
            },
        );
        // 4x overload on one worker: every queued request waits, so any
        // arrival inside a storm window is past its (zeroed) deadline.
        let arrivals: Vec<Cycles> = (0..400).map(|i| i * 250).collect();
        let s = rt.run_open_loop(arrivals, &mut factory());
        assert_conserved(&s);
        assert!(s.shed_deadline > 0, "storm windows must shed stale work");
        assert!(s.completed > 0, "calm stretches still complete");
        let r = h.report();
        assert!(r.injected() > 0, "storms must actually start");
        assert_eq!(r.leaked(), 0, "settle_storms closes every window: {r}");
    }
}
